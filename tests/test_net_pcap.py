"""Unit + property tests for the libpcap reader/writer."""

import io
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (CapturedPacket, PcapError, PcapReader, PcapWriter,
                       dump_bytes, load_bytes, load_file, save_file)
from repro.net.pcap import LINKTYPE_ETHERNET, MAGIC_USEC


def _packets(n=5):
    return [CapturedPacket(i * 1_000_000, bytes([i]) * (20 + i))
            for i in range(n)]


class TestRoundTrip:
    def test_memory_roundtrip(self):
        packets = _packets()
        loaded = load_bytes(dump_bytes(packets))
        assert len(loaded) == len(packets)
        for original, copy in zip(packets, loaded):
            assert copy.data == original.data

    def test_timestamp_microsecond_precision(self):
        packet = CapturedPacket(1_234_567_890, b"x" * 30)
        loaded = load_bytes(dump_bytes([packet]))[0]
        # nanoseconds are truncated to microseconds by the pcap format
        assert loaded.timestamp == 1_234_567_000

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "capture.pcap")
        count = save_file(path, _packets(7))
        assert count == 7
        assert len(load_file(path)) == 7

    def test_empty_capture(self):
        assert load_bytes(dump_bytes([])) == []

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=2 ** 40),
        st.binary(min_size=14, max_size=200)), max_size=20))
    def test_roundtrip_property(self, items):
        packets = [CapturedPacket(ts, data) for ts, data in items]
        loaded = load_bytes(dump_bytes(packets))
        assert [p.data for p in loaded] == [p.data for p in packets]


class TestHeader:
    def test_magic_and_linktype(self):
        raw = dump_bytes(_packets(1))
        magic, = struct.unpack("<I", raw[:4])
        assert magic == MAGIC_USEC
        linktype, = struct.unpack("<I", raw[20:24])
        assert linktype == LINKTYPE_ETHERNET

    def test_writer_counts(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        assert writer.count == 0
        writer.write_all(_packets(3))
        assert writer.count == 3

    def test_reader_exposes_version(self):
        reader = PcapReader(io.BytesIO(dump_bytes([])))
        assert reader.version == (2, 4)


class TestSnaplen:
    def test_writer_truncates_records_to_snaplen(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=64)
        writer.write(CapturedPacket(1_000_000, b"\xab" * 200))
        raw = buffer.getvalue()
        __, __, incl_len, orig_len = struct.unpack("<IIII", raw[24:40])
        assert (incl_len, orig_len) == (64, 200)
        assert raw[40:] == b"\xab" * 64

    def test_reader_returns_truncated_record(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=64)
        writer.write(CapturedPacket(0, bytes(range(200)) + b"z" * 56))
        loaded = load_bytes(buffer.getvalue())
        assert len(loaded) == 1
        assert loaded[0].data == bytes(range(64))

    def test_short_packets_pass_through_unchanged(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=64)
        writer.write(CapturedPacket(0, b"ok" * 10))
        raw = buffer.getvalue()
        __, __, incl_len, orig_len = struct.unpack("<IIII", raw[24:40])
        assert (incl_len, orig_len) == (20, 20)
        assert load_bytes(raw)[0].data == b"ok" * 10

    def test_default_snaplen_never_truncates_ethernet(self):
        packets = [CapturedPacket(0, b"\x01" * 1514)]
        assert load_bytes(dump_bytes(packets))[0].data == b"\x01" * 1514

    def test_nonpositive_snaplen_rejected(self):
        with pytest.raises(ValueError):
            PcapWriter(io.BytesIO(), snaplen=0)


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(PcapError):
            load_bytes(b"\x00" * 24)

    def test_truncated_global_header(self):
        with pytest.raises(PcapError):
            load_bytes(b"\xd4\xc3\xb2\xa1")

    def test_truncated_record(self):
        raw = dump_bytes(_packets(1))
        with pytest.raises(PcapError):
            load_bytes(raw[:-5])

    def test_truncated_record_header(self):
        raw = dump_bytes(_packets(1))
        # cut into the record header
        with pytest.raises(PcapError):
            load_bytes(raw[:24 + 8])

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            CapturedPacket(-1, b"")
