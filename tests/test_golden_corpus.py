"""Golden-corpus regression: scorecard/report bytes are pinned.

The committed artifacts under ``tests/golden/`` (regenerated with
``make golden-update``) pin the per-vendor scorecards and the paper
report byte for byte.  Any unintended simulation or rendering drift —
a reordered dict, a float format change, a perturbed RNG stream — fails
here with a diff instead of silently changing the published numbers.

The artifact recipe is :func:`repro.experiments.golden.artifacts`,
shared with ``scripts/update_golden.py`` so the test always validates
exactly what the update script writes.
"""

import hashlib
import json
import os

import pytest

from repro.experiments.golden import artifacts

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "golden")
ARTIFACT_NAMES = ("scorecard_paper.txt", "scorecard_roku.txt",
                  "scorecard_vizio.txt", "report_paper.md")


def _read(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name), "r",
              encoding="utf-8") as fileobj:
        return fileobj.read()


def _pins() -> dict:
    return json.loads(_read("golden.json"))


class TestPinIndex:
    """Fast self-consistency: the committed files match their pins."""

    def test_every_pin_has_a_file_and_matches(self):
        pins = _pins()
        assert set(pins) == set(ARTIFACT_NAMES)
        for name, expected in pins.items():
            digest = hashlib.sha256(
                _read(name).encode("utf-8")).hexdigest()
            assert digest == expected, (
                f"{name} does not match its sha256 pin — regenerate "
                f"with `make golden-update` and commit both")


@pytest.mark.slow
class TestRegeneration:
    """The simulator still produces the pinned bytes from scratch."""

    def test_artifacts_are_byte_identical(self):
        pins = _pins()
        seen = set()
        for name, content in artifacts():
            seen.add(name)
            expected = _read(name)
            assert content == expected, (
                f"{name} drifted from the committed golden output; if "
                f"the change is intentional run `make golden-update`")
            digest = hashlib.sha256(content.encode("utf-8")).hexdigest()
            assert digest == pins[name]
        assert seen == set(ARTIFACT_NAMES), (
            "artifact recipe and pin index disagree — rerun "
            "`make golden-update`")
