"""Tests for the domain registry, zone, resolver and stub cache."""

import pytest

from repro.dnsinfra import (DomainRegistry, RecursiveResolver,
                            ROTATION_PERIOD_NS, ROTATION_POOL_SIZE,
                            StubCache, Zone)
from repro.net import DnsRecord, Ipv4Address
from repro.sim import hours, seconds


@pytest.fixture(scope="module")
def registry():
    return DomainRegistry()


@pytest.fixture(scope="module")
def zone(registry):
    return Zone(registry)


class TestCatalog:
    def test_lg_uk_has_rotating_pool(self, registry):
        names = [r.name for r in registry.domains_for("lg", "uk")]
        pool = [n for n in names if n.startswith("eu-acr")]
        assert len(pool) == ROTATION_POOL_SIZE
        assert "eu-acr1.alphonso.tv" in pool

    def test_lg_us_uses_tkacr(self, registry):
        names = [r.name for r in registry.domains_for("lg", "us")]
        assert any(n.startswith("tkacr") for n in names)
        assert not any(n.startswith("eu-acr") for n in names)

    def test_samsung_uk_domain_set(self, registry):
        """The four UK Samsung ACR domains from §4.1."""
        names = {r.name for r in registry.domains_for("samsung", "uk")
                 if r.role.startswith("acr")}
        assert "acr-eu-prd.samsungcloud.tv" in names
        assert "acr0.samsungcloudsolution.com" in names
        assert "log-config.samsungacr.com" in names
        assert "log-ingestion-eu.samsungacr.com" in names

    def test_samsung_us_omits_cloudsolution(self, registry):
        """§4.3: the US set omits the samsungcloudsolution domain."""
        names = {r.name for r in registry.domains_for("samsung", "us")
                 if r.role.startswith("acr")}
        assert "acr-us-prd.samsungcloud.tv" in names
        assert "log-ingestion.samsungacr.com" in names
        assert not any("samsungcloudsolution" in n for n in names)

    def test_catalog_includes_non_acr_chatter(self, registry):
        roles = {r.role for r in registry.domains_for("samsung", "uk")}
        assert "ads" in roles and "platform" in roles and "ott" in roles

    def test_unknown_vendor_rejected(self, registry):
        with pytest.raises(KeyError):
            registry.domains_for("philips", "uk")

    def test_every_domain_has_server(self, registry):
        for name in registry.all_names():
            server = registry.server(name)
            assert server.address is not None

    def test_shared_domain_single_allocation(self, registry):
        # log-config appears in both UK and US catalogs; one server.
        uk = registry.server("log-config.samsungacr.com").address
        us = registry.server("log-config.samsungacr.com").address
        assert uk == us

    def test_acr_servers_in_correct_cities(self, registry):
        assert registry.server("eu-acr1.alphonso.tv").city.name == \
            "Amsterdam"
        assert registry.server("acr-eu-prd.samsungcloud.tv").city.name == \
            "London"
        assert registry.server("log-config.samsungacr.com").city.name == \
            "New York"
        assert registry.server("tkacr1.alphonso.tv").city.country == "US"
        assert registry.server("acr-us-prd.samsungcloud.tv").city.country \
            == "US"


class TestRotation:
    def test_rotation_stable_within_window(self, registry):
        a = registry.rotating_acr_domain("lg", "uk", 0, seed=3)
        b = registry.rotating_acr_domain("lg", "uk",
                                         ROTATION_PERIOD_NS - 1, seed=3)
        assert a == b

    def test_rotation_changes_across_windows(self, registry):
        domains = {registry.rotating_acr_domain(
            "lg", "uk", i * ROTATION_PERIOD_NS, seed=3) for i in range(20)}
        assert len(domains) > 1

    def test_rotation_in_catalog(self, registry):
        name = registry.rotating_acr_domain("lg", "us", hours(7), seed=1)
        assert registry.knows(name)

    def test_samsung_not_rotating(self, registry):
        with pytest.raises(ValueError):
            registry.rotating_acr_domain("samsung", "uk", 0)

    def test_fingerprint_domain_per_vendor(self, registry):
        assert registry.fingerprint_domain("samsung", "uk", 0) == \
            "acr-eu-prd.samsungcloud.tv"
        assert registry.fingerprint_domain(
            "lg", "uk", 0, seed=2).endswith("alphonso.tv")


class TestZone:
    def test_a_lookup(self, zone):
        records = zone.lookup_a("acr-eu-prd.samsungcloud.tv")
        assert records and records[0].rtype == 1

    def test_nxdomain(self, zone):
        assert zone.lookup_a("does.not.exist") is None

    def test_ptr_for_acr_server(self, zone, registry):
        address = registry.server("eu-acr1.alphonso.tv").address
        ptr = zone.lookup_ptr(address)
        assert ptr is not None
        assert "ams" in ptr.target_name  # geographic hint

    def test_acr_ttl_short(self, zone):
        records = zone.lookup_a("eu-acr1.alphonso.tv")
        assert records[0].ttl == 60

    def test_platform_ttl_default(self, zone):
        records = zone.lookup_a("time.samsungcloudsolution.com")
        assert records[0].ttl == 300

    def test_add_local_record(self, registry):
        local_zone = Zone(registry)
        local_zone.add_a("ap.testbed.local",
                         Ipv4Address.parse("192.168.1.1"))
        assert local_zone.lookup_a("ap.testbed.local")


class TestRecursiveResolver:
    def test_cache_hit_within_ttl(self, zone):
        resolver = RecursiveResolver(zone)
        first = resolver.resolve("eu-acr1.alphonso.tv", 0)
        second = resolver.resolve("eu-acr1.alphonso.tv", seconds(30))
        assert not first.from_cache
        assert second.from_cache
        assert resolver.cache_hits == 1

    def test_cache_expires_after_ttl(self, zone):
        resolver = RecursiveResolver(zone)
        resolver.resolve("eu-acr1.alphonso.tv", 0)
        later = resolver.resolve("eu-acr1.alphonso.tv", seconds(61))
        assert not later.from_cache

    def test_negative_cache(self, zone):
        resolver = RecursiveResolver(zone)
        first = resolver.resolve("ghost.example", 0)
        second = resolver.resolve("ghost.example", seconds(1))
        assert first.nxdomain and second.nxdomain
        assert second.from_cache

    def test_ptr_resolution(self, zone, registry):
        resolver = RecursiveResolver(zone)
        address = registry.server("log-config.samsungacr.com").address
        name = resolver.resolve_ptr(address, 0)
        assert name is not None and "nyc" in name


class TestStubCache:
    def test_miss_then_hit(self):
        cache = StubCache()
        assert cache.lookup("a.b", 0) is None
        cache.store("a.b", [DnsRecord.a(
            "a.b", Ipv4Address.parse("1.2.3.4"), ttl=60)], 0)
        assert cache.lookup("a.b", seconds(59)) is not None
        assert cache.lookup("a.b", seconds(61)) is None

    def test_flush_on_power_cycle(self):
        cache = StubCache()
        cache.store("a.b", [DnsRecord.a(
            "a.b", Ipv4Address.parse("1.2.3.4"), ttl=600)], 0)
        cache.flush()
        assert cache.lookup("a.b", 1) is None
        assert len(cache) == 0

    def test_empty_records_not_stored(self):
        cache = StubCache()
        cache.store("a.b", [], 0)
        assert len(cache) == 0
