"""Tests for fingerprinting: dHash, audio landmarks, batch codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.acr import (Capture, FingerprintBatch, audio_fingerprint,
                       capture_state, hamming_distance, video_fingerprint)
from repro.media import (PlayState, render_audio, render_frame,
                         standard_library)


@pytest.fixture(scope="module")
def library():
    return standard_library("uk", seed=3)


class TestVideoFingerprint:
    def test_deterministic(self, library):
        frame = render_frame(PlayState(library.shows[0], 10.0))
        assert video_fingerprint(frame) == video_fingerprint(frame)

    def test_64_bits(self, library):
        frame = render_frame(PlayState(library.shows[0], 10.0))
        assert 0 <= video_fingerprint(frame) < (1 << 64)

    def test_same_scene_low_distance(self, library):
        item = library.shows[0]
        h1 = video_fingerprint(render_frame(PlayState(item, 32.0)))
        h2 = video_fingerprint(render_frame(PlayState(item, 33.0)))
        assert hamming_distance(h1, h2) <= 6

    def test_different_content_high_distance(self, library):
        h1 = video_fingerprint(render_frame(PlayState(library.shows[0],
                                                      32.0)))
        h2 = video_fingerprint(render_frame(PlayState(library.shows[1],
                                                      32.0)))
        assert hamming_distance(h1, h2) > 15

    def test_brightness_invariance(self, library):
        """dHash depends on gradients, not absolute brightness."""
        frame = render_frame(PlayState(library.shows[0], 10.0))
        brighter = np.clip(frame + 0.05, 0.0, 1.0)
        distance = hamming_distance(video_fingerprint(frame),
                                    video_fingerprint(brighter))
        assert distance <= 8

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            video_fingerprint(np.zeros(10, dtype=np.float32))

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_hamming_properties(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)
        assert hamming_distance(a, a) == 0
        assert 0 <= hamming_distance(a, b) <= 64


class TestVectorizedResampleEquivalence:
    """The batched `_resample`/packbits dHash must be bit-identical to
    the per-block reference loop — fingerprints feed matcher verdicts,
    which feed wire traffic, so any drift would change captures."""

    @staticmethod
    def _reference_fingerprint(frame):
        rows, cols = 8, 9
        h, w = frame.shape
        row_edges = np.linspace(0, h, rows + 1).astype(int)
        col_edges = np.linspace(0, w, cols + 1).astype(int)
        grid = np.empty((rows, cols), dtype=np.float64)
        for r in range(rows):
            for c in range(cols):
                block = frame[row_edges[r]:max(row_edges[r + 1],
                                               row_edges[r] + 1),
                              col_edges[c]:max(col_edges[c + 1],
                                               col_edges[c] + 1)]
                grid[r, c] = float(block.mean())
        bits = 0
        for r in range(rows):
            for c in range(cols - 1):
                bits = (bits << 1) | int(grid[r, c] > grid[r, c + 1])
        return bits

    def test_matches_reference_on_rendered_frames(self, library):
        for item in (library.shows[0], library.ads[0]):
            for position in (0.0, 9.5, 63.0, 127.9):
                frame = render_frame(PlayState(item, position))
                assert video_fingerprint(frame) == \
                    self._reference_fingerprint(frame)

    def test_matches_reference_on_random_frames(self):
        rng = np.random.default_rng(7)
        for __ in range(200):
            frame = rng.random((18, 32), dtype=np.float32)
            assert video_fingerprint(frame) == \
                self._reference_fingerprint(frame)


class TestAudioFingerprint:
    def test_deterministic(self, library):
        audio = render_audio(PlayState(library.shows[0], 10.0))
        assert audio_fingerprint(audio) == audio_fingerprint(audio)

    def test_landmark_count(self, library):
        audio = render_audio(PlayState(library.shows[0], 10.0))
        landmarks = audio_fingerprint(audio)
        assert 1 <= len(landmarks) <= 15

    def test_same_scene_overlap(self, library):
        item = library.shows[0]
        a = set(audio_fingerprint(render_audio(PlayState(item, 32.0))))
        b = set(audio_fingerprint(render_audio(PlayState(item, 33.0))))
        assert len(a & b) >= 3

    def test_different_content_low_overlap(self, library):
        a = set(audio_fingerprint(render_audio(
            PlayState(library.shows[0], 32.0))))
        b = set(audio_fingerprint(render_audio(
            PlayState(library.shows[1], 32.0))))
        assert len(a & b) <= 2

    def test_rejects_non_1d(self):
        with pytest.raises(ValueError):
            audio_fingerprint(np.zeros((4, 4), dtype=np.float32))


class TestBatchCodec:
    def _batch(self, library, n=5):
        captures = [capture_state(PlayState(library.shows[0], 10.0 + i),
                                  offset_ns=i * 10 ** 9)
                    for i in range(n)]
        return FingerprintBatch("tv-psid-0001", captures)

    def test_roundtrip(self, library):
        batch = self._batch(library)
        decoded = FingerprintBatch.decode(batch.encode())
        assert decoded.device_id == "tv-psid-0001"
        assert len(decoded) == len(batch)
        for a, b in zip(batch.captures, decoded.captures):
            assert a.video_hash == b.video_hash
            assert a.audio_hashes == b.audio_hashes
            # offsets survive at millisecond precision
            assert abs(a.offset_ns - b.offset_ns) < 10 ** 6

    def test_encoded_size_grows_with_captures(self, library):
        small = self._batch(library, n=2)
        large = self._batch(library, n=10)
        assert large.encoded_size > small.encoded_size

    def test_empty_batch(self):
        batch = FingerprintBatch("tv", [])
        decoded = FingerprintBatch.decode(batch.encode())
        assert len(decoded) == 0

    def test_bad_magic_rejected(self, library):
        raw = bytearray(self._batch(library).encode())
        raw[0] = ord("X")
        with pytest.raises(ValueError):
            FingerprintBatch.decode(bytes(raw))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            FingerprintBatch.decode(b"ACR")

    def test_capture_repr(self):
        capture = Capture(10 ** 9, 0xDEADBEEF, [1, 2])
        assert "audio landmarks" in repr(capture)
