"""The fault-injection layer's contracts, unit and end-to-end.

Three tiers of claim:

* **Plan** — the decision oracle is a pure function of ``(fault seed,
  site, coordinates)``: reproducible, order-free, bounded.
* **Salvage** — quarantining a damaged capture keeps every decodable
  record byte-for-byte, reports every dropped one with evidence, and
  is a strict no-op on healthy captures.
* **Recovery** — the keystone property: under ANY lossless fault plan
  (drops, dups, reorders, starvation, crashes, hangs, torn/corrupt
  checkpoints — including a kill/resume in the middle) the service
  report is byte-identical to the fault-free batch fleet.  Lossy plans
  (pcap damage) never abort: they complete with counted degradation
  records carrying evidence, identically at every job count.
"""

import hashlib
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.grid import ResultCache
from repro.faults import (FAULT_ATTEMPT_CAP, FaultPlan, FaultSpecError,
                          NULL_PLAN, produce_with_retries,
                          salvage_pcap_bytes, tamper_pcap_bytes)
from repro.fleet import (FleetRunner, PopulationSpec,
                         render_population_report)
from repro.net import (CapturedPacket, Ipv4Address, MacAddress,
                       PcapError, TcpSegment, dump_bytes)
from repro.net.packet import build_tcp_frame
from repro.service import (ServiceConfig, ServiceStopped, serve_fleet,
                           split_pcap_bytes)

UK_QUICK = {"country": {"uk": 1.0}, "diary": {"second_screen": 1.0}}
POP = dict(households=4, seed=21, mixes=UK_QUICK)

#: The fault-free UK_QUICK fleet report, pinned by digest: a run
#: without --faults must stay byte-identical to the output this layer
#: shipped against.  If this moves, the fault machinery leaked into
#: the clean path.
CLEAN_REPORT_SHA = \
    "21f54f53a5a40cbd3233774c1fae8003bfcb0ed7cc934b69408e6851303a1e6b"

#: Sites whose recovery is lossless (byte-identical convergence);
#: the pcap.* sites are deliberately absent — they are lossy by design.
LOSSLESS_SITES = ("segment.drop", "segment.dup", "segment.reorder",
                  "segment.starve", "worker.crash", "worker.hang",
                  "checkpoint.torn", "checkpoint.corrupt")

MAC_TV = MacAddress.parse("02:00:00:00:00:01")
MAC_GW = MacAddress.parse("02:00:00:00:00:02")
TV = Ipv4Address.parse("192.168.1.2")
REMOTE = Ipv4Address.parse("203.0.113.7")


def sha(report: str) -> str:
    return hashlib.sha256(report.encode()).hexdigest()


def _capture(records: int = 6) -> bytes:
    """A healthy multi-record capture (valid TCP frames)."""
    return dump_bytes([
        CapturedPacket((i + 1) * 1_000_000, build_tcp_frame(
            MAC_TV, MAC_GW, TV, REMOTE,
            TcpSegment(40000 + i, 443, i, 2, 0x18,
                       payload=bytes([i]) * (20 + i)),
            identification=i))
        for i in range(records)])


# -- the plan oracle ----------------------------------------------------------


class TestFaultPlanGrammar:
    def test_parse_rates_and_bare_sites(self):
        plan = FaultPlan.parse(
            " segment.drop:0.25 , worker.crash ", seed=3)
        assert plan.rate("segment.drop") == 0.25
        assert plan.rate("worker.crash") == 1.0
        assert plan.seed == 3
        assert plan

    def test_zero_rate_sites_are_dropped(self):
        assert not FaultPlan.parse("segment.drop:0")
        assert FaultPlan.parse("segment.drop:0") == FaultPlan()

    def test_unknown_site_is_refused(self):
        with pytest.raises(FaultSpecError, match="unknown fault site"):
            FaultPlan.parse("segment.dorp:0.5")

    def test_duplicate_site_is_refused(self):
        with pytest.raises(FaultSpecError, match="duplicate"):
            FaultPlan.parse("segment.drop:0.1,segment.drop:0.2")

    def test_bad_rate_is_refused(self):
        with pytest.raises(FaultSpecError, match="bad fault rate"):
            FaultPlan.parse("segment.drop:lots")
        with pytest.raises(FaultSpecError, match=r"in \[0, 1\]"):
            FaultPlan.parse("segment.drop:1.5")

    def test_tuple_round_trip(self):
        plan = FaultPlan.parse("segment.drop:0.2,worker.hang:0.7",
                               seed=9)
        assert FaultPlan.from_tuple(plan.as_tuple()) == plan
        assert FaultPlan.from_tuple(NULL_PLAN.as_tuple()) == NULL_PLAN


class TestFaultPlanOracle:
    def test_draws_are_deterministic_and_seed_dependent(self):
        one = FaultPlan({"segment.drop": 0.5}, seed=1)
        two = FaultPlan({"segment.drop": 0.5}, seed=2)
        assert one.draw("segment.drop", 3, 4) \
            == one.draw("segment.drop", 3, 4)
        assert one.draw("segment.drop", 3, 4) \
            != two.draw("segment.drop", 3, 4)
        assert 0.0 <= one.draw("segment.drop", 3, 4) < 1.0

    def test_rate_extremes(self):
        always = FaultPlan({"segment.drop": 1.0})
        assert all(always.fires("segment.drop", i) for i in range(20))
        assert not any(NULL_PLAN.fires("segment.drop", i)
                       for i in range(20))

    def test_bounded_sites_never_fire_past_the_cap(self):
        always = FaultPlan({"worker.crash": 1.0})
        for attempt in range(FAULT_ATTEMPT_CAP):
            assert always.fires_bounded("worker.crash", attempt, 7)
        assert not always.fires_bounded("worker.crash",
                                        FAULT_ATTEMPT_CAP, 7)

    @given(rate=st.floats(min_value=0.0, max_value=1.0),
           seed=st.integers(0, 10_000),
           coords=st.lists(st.integers(0, 999), min_size=1, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_decisions_are_pure_functions_of_coordinates(
            self, rate, seed, coords):
        plan = FaultPlan({"segment.drop": rate}, seed=seed)
        twin = FaultPlan.from_tuple(plan.as_tuple())
        assert plan.fires("segment.drop", *coords) \
            == twin.fires("segment.drop", *coords)


class TestWorkerRetry:
    def test_bounded_crash_always_recovers(self):
        plan = FaultPlan({"worker.crash": 1.0}, seed=4)
        calls = []

        def produce():
            calls.append(1)
            return "done"

        result, injected = produce_with_retries(plan, (11,), produce)
        assert result == "done"
        assert len(calls) == 1
        assert injected == ["worker.crash"] * FAULT_ATTEMPT_CAP

    def test_null_plan_is_free(self):
        result, injected = produce_with_retries(NULL_PLAN, (0,),
                                                lambda: 42)
        assert (result, injected) == (42, [])


# -- tamper + salvage ---------------------------------------------------------


class TestTamper:
    def test_null_plan_and_header_only_are_no_ops(self):
        raw = _capture()
        assert tamper_pcap_bytes(NULL_PLAN, raw, 0, 0) == (raw, [])
        lossy = FaultPlan({"pcap.corrupt": 1.0})
        header_only = dump_bytes([])
        assert tamper_pcap_bytes(lossy, header_only, 0, 0) \
            == (header_only, [])

    def test_tamper_is_deterministic(self):
        plan = FaultPlan({"pcap.corrupt": 1.0, "pcap.truncate": 1.0},
                         seed=8)
        raw = _capture()
        first = tamper_pcap_bytes(plan, raw, 2, 5)
        assert first == tamper_pcap_bytes(plan, raw, 2, 5)
        assert first[0] != raw
        assert set(first[1]) == {"pcap.corrupt", "pcap.truncate"}

    def test_different_coordinates_different_damage(self):
        plan = FaultPlan({"pcap.truncate": 1.0}, seed=8)
        raw = _capture()
        cuts = {len(tamper_pcap_bytes(plan, raw, 0, seq)[0])
                for seq in range(8)}
        assert len(cuts) > 1


class TestSalvage:
    def test_healthy_capture_is_a_strict_no_op(self):
        raw = _capture()
        assert salvage_pcap_bytes(raw) == (raw, [])

    def test_unusable_global_header(self):
        clean, drops = salvage_pcap_bytes(b"not a pcap at all")
        assert clean == b""
        assert len(drops) == 1
        assert drops[0][0] == -1
        assert drops[0][1].startswith("unusable global header")

    def test_truncated_tail_keeps_the_prefix(self):
        raw = _capture(records=4)
        torn = raw[:-5]
        clean, drops = salvage_pcap_bytes(torn)
        assert drops == [(3, "truncated pcap record data")]
        # The surviving records are byte-identical slices.
        assert raw.startswith(clean)
        assert salvage_pcap_bytes(clean) == (clean, [])

    def test_corrupt_record_is_quarantined_alone(self):
        plan = FaultPlan({"pcap.corrupt": 1.0}, seed=8)
        raw = _capture(records=6)
        damaged, injected = tamper_pcap_bytes(plan, raw, 1, 2)
        assert injected == ["pcap.corrupt"]
        clean, drops = salvage_pcap_bytes(damaged)
        assert len(drops) == 1
        index, reason = drops[0]
        assert 0 <= index < 6
        assert "ValueError" in reason
        # Exactly one record was lost; the rest re-decode cleanly.
        assert salvage_pcap_bytes(clean) == (clean, [])
        assert len(clean) < len(raw)


class TestSegmenterEvidence:
    """Satellite: truncated-capture errors carry record + offset."""

    def test_truncated_record_data_names_index_and_offset(self):
        raw = _capture(records=2)
        with pytest.raises(PcapError,
                           match=r"record 1 at byte \d+ declares"):
            split_pcap_bytes(raw[:-3], 2)

    def test_truncated_record_header_names_index_and_offset(self):
        from repro.service.segments import PCAP_HEADER_LEN
        raw = _capture(records=2)
        with pytest.raises(PcapError,
                           match=r"record 0 at byte 24 needs"):
            split_pcap_bytes(raw[:PCAP_HEADER_LEN + 8], 2)


# -- end-to-end recovery ------------------------------------------------------


@pytest.fixture(scope="module")
def cache():
    root = os.path.join(os.environ["REPRO_CACHE_DIR"], "faults-suite")
    return ResultCache(root, version="faults-1")


@pytest.fixture(scope="module")
def population():
    return PopulationSpec(**POP)


@pytest.fixture(scope="module")
def batch_sha(cache, population):
    result = FleetRunner(cache=cache, jobs=1).run(population)
    return sha(render_population_report(result.aggregate, population))


def serve_faults_sha(population, cache, faults, **kwargs) -> str:
    config = ServiceConfig(
        window=kwargs.pop("window", 3),
        credits=kwargs.pop("credits", 2),
        segments=kwargs.pop("segments", 5),
        arrival_seed=kwargs.pop("arrival_seed", None),
        checkpoint_every=kwargs.pop("checkpoint_every", 1),
        faults=faults)
    result = serve_fleet(population, cache=cache, config=config,
                         **kwargs)
    return sha(render_population_report(result.state,
                                        result.population))


@pytest.mark.slow
class TestFaultFreeBaseline:
    def test_clean_fleet_report_is_pinned(self, batch_sha):
        assert batch_sha == CLEAN_REPORT_SHA

    def test_null_plan_serve_matches_the_pin(self, cache, population):
        assert serve_faults_sha(population, cache, NULL_PLAN) \
            == CLEAN_REPORT_SHA


@pytest.mark.slow
class TestLosslessPlansConverge:
    """The keystone property: any lossless plan, any kill point."""

    @given(rates=st.dictionaries(st.sampled_from(LOSSLESS_SITES),
                                 st.integers(min_value=1, max_value=6),
                                 min_size=1, max_size=4),
           fault_seed=st.integers(0, 999),
           stop_after=st.integers(min_value=1, max_value=80),
           arrival_seed=st.integers(0, 10_000))
    @settings(max_examples=5, deadline=None)
    def test_kill_resume_under_random_plan_matches_batch(
            self, cache, population, batch_sha, rates, fault_seed,
            stop_after, arrival_seed):
        plan = FaultPlan({site: rate / 10.0
                          for site, rate in rates.items()},
                         seed=fault_seed)
        with tempfile.TemporaryDirectory() as ckdir:
            ticks = [0]

            def stop_check():
                ticks[0] += 1
                return ticks[0] > stop_after

            try:
                report_sha = serve_faults_sha(
                    population, cache, plan, arrival_seed=arrival_seed,
                    checkpoint_dir=ckdir, stop_check=stop_check)
            except ServiceStopped:
                # Resume under the SAME plan: the replayed schedule
                # re-derives the same injections and still converges.
                report_sha = serve_faults_sha(
                    population, cache, plan, arrival_seed=arrival_seed,
                    checkpoint_dir=ckdir, resume=True)
            assert report_sha == batch_sha

    def test_aggressive_everything_plan_converges(self, cache,
                                                  population,
                                                  batch_sha):
        plan = FaultPlan.parse(
            "segment.drop:0.4,segment.dup:0.4,segment.reorder:0.5,"
            "segment.starve:0.4,worker.crash:0.3,worker.hang:0.2,"
            "checkpoint.torn:0.6,checkpoint.corrupt:0.5", seed=11)
        with tempfile.TemporaryDirectory() as ckdir:
            assert serve_faults_sha(population, cache, plan,
                                    checkpoint_dir=ckdir) == batch_sha

    def test_pool_production_under_faults_matches_batch(
            self, cache, population, batch_sha):
        plan = FaultPlan.parse("worker.crash:0.5,segment.drop:0.3",
                               seed=6)
        assert serve_faults_sha(population, cache, plan, jobs=2) \
            == batch_sha


@pytest.mark.slow
class TestLossyPlansDegrade:
    """pcap damage never aborts: counted degradations with evidence,
    identical at every job count."""

    PLAN = dict(rates={"pcap.corrupt": 0.6, "pcap.truncate": 0.4,
                       "worker.crash": 0.5}, seed=5)

    def _fleet(self, cache, population, jobs):
        plan = FaultPlan(**self.PLAN)
        result = FleetRunner(cache=cache, jobs=jobs, faults=plan).run(
            population)
        return result, render_population_report(result.aggregate,
                                                population)

    def test_degradations_carry_evidence_and_render(self, cache,
                                                    population,
                                                    batch_sha):
        result, report = self._fleet(cache, population, jobs=1)
        assert result.aggregate.degradations
        for evidence in result.aggregate.degradations:
            assert evidence.startswith("household ")
            assert "record" in evidence or "global header" in evidence
        assert "## Degradations" in report
        assert sha(report) != batch_sha

    def test_lossy_fleet_is_jobs_invariant(self, cache, population):
        __, serial = self._fleet(cache, population, jobs=1)
        __, parallel = self._fleet(cache, population, jobs=2)
        assert serial == parallel

    def test_lossy_serve_completes_deterministically(self, cache,
                                                     population):
        plan = FaultPlan(**self.PLAN)
        first = serve_faults_sha(population, cache, plan)
        assert first == serve_faults_sha(population, cache, plan)


@pytest.mark.slow
class TestShmVanishFallback:
    """Satellite: a column segment unlinked mid-run (or replaced with
    garbage) is a cache miss — the audit re-decodes and the report is
    unchanged."""

    MIXES = {"country": {"uk": 1.0}, "diary": {"second_screen": 1.0}}

    def test_vanished_segments_fall_back_to_decode(self, tmp_path):
        population = PopulationSpec(3, seed=21, mixes=self.MIXES)

        def runner(**kwargs):
            return FleetRunner(
                cache=ResultCache(str(tmp_path), version="faults-shm"),
                jobs=1, **kwargs)

        base = runner().run(population)
        vanish = runner(shm_columns=True,
                        faults=FaultPlan({"shm.vanish": 1.0})).run(
            population)
        assert render_population_report(vanish.aggregate, population) \
            == render_population_report(base.aggregate, population)

    def test_attach_of_garbage_segment_is_a_cache_miss(self):
        from multiprocessing import shared_memory

        from repro.fleet.shm import ColumnArena, _untrack, shm_key
        key = shm_key("hh-garbage", 1, 2, "faults-t")
        segment = shared_memory.SharedMemory(name=key, create=True,
                                             size=64)
        _untrack(segment)
        try:
            # A header length pointing far past the mapping: attach
            # must treat it as a miss, never raise.
            segment.buf[0:8] = (1 << 32).to_bytes(8, "little")
            assert ColumnArena().attach(key) is None
        finally:
            segment.close()
            ColumnArena.unlink(key)

    def test_unlink_mid_run_regression(self):
        """Publish, unlink behind the arena's back, then attach."""
        from repro.fleet.shm import ColumnArena, shm_key
        from repro.net import ColumnarCapture
        raw = _capture()
        capture = ColumnarCapture.from_pcap_bytes(raw)
        key = shm_key("hh-vanish", 3, 4, "faults-t")
        arena = ColumnArena()
        assert arena.publish(key, capture, {"tv_ip": str(TV)}) == key
        assert ColumnArena.unlink(key)
        assert ColumnArena().attach(key) is None
