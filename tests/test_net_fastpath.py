"""Equivalence tests for the fast-path codec tiers.

The perf rewrite (vectorized checksum, template-based encode, lazy
decode) is only allowed to change *speed*: every test here pins a fast
tier against its reference implementation — the arithmetic checksum
against the RFC 1071 carry loop, template frames against the full
object codec, and the lazy decoder against ``decode_packet`` — under
hypothesis-generated inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (CapturedPacket, FlowTable, Ipv4Address, MacAddress,
                       TcpFrameTemplate, TcpSegment, UdpDatagram,
                       canonical_key, decode_packet, lazy_decode,
                       lazy_decode_all)
from repro.net.checksum import (incremental_update, internet_checksum,
                                ones_complement_sum, verify_checksum)
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.ip import PROTO_TCP, PROTO_UDP, Ipv4Packet
from repro.net.packet import build_tcp_frame, build_udp_frame

MAC_A = MacAddress.parse("02:00:00:00:00:01")
MAC_B = MacAddress.parse("02:00:00:00:00:02")

addresses = st.integers(min_value=1, max_value=(1 << 32) - 2).map(
    Ipv4Address)
ports = st.integers(min_value=1, max_value=65535)


def _loop_checksum(data: bytes) -> int:
    """The seed RFC 1071 implementation: per-byte end-around carry."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class TestChecksumEquivalence:
    @given(st.binary(max_size=300))
    @settings(max_examples=300)
    def test_matches_reference_loop(self, data):
        assert internet_checksum(data) == _loop_checksum(data)

    @pytest.mark.parametrize("data", [
        b"",
        b"\x00" * 40,                 # true zero sum
        b"\xff\xff",                  # one's-complement "negative zero"
        b"\xff\xfe\x00\x01",          # nonzero words summing to 0xFFFF
        b"\xff\xff" * 500,            # large multiple of the modulus
        b"\x01",                      # odd length, padded
    ])
    def test_zero_collapse_corners(self, data):
        assert internet_checksum(data) == _loop_checksum(data)

    @given(st.binary(min_size=2, max_size=120).filter(
        lambda d: any(d) and len(d) % 2 == 0))
    @settings(max_examples=200)
    def test_verify_accepts_own_checksum(self, data):
        # Word-aligned buffers, as every protocol embedding its own
        # checksum (IP/TCP/UDP headers) guarantees.
        checksum = internet_checksum(data)
        assert verify_checksum(data + checksum.to_bytes(2, "big"))

    def test_verify_rejects_all_zero(self):
        assert not verify_checksum(b"\x00" * 20)

    def test_sum_is_shared_between_compute_and_verify(self):
        data = b"\x12\x34\x56\x78"
        assert internet_checksum(data) == \
            (~ones_complement_sum(data)) & 0xFFFF

    @given(st.binary(min_size=12, max_size=60).filter(lambda d: any(d)),
           st.integers(min_value=0, max_value=4),
           st.binary(min_size=4, max_size=4))
    @settings(max_examples=200)
    def test_incremental_update_matches_recompute(self, data, word,
                                                  replacement):
        buffer = bytearray(data if len(data) % 2 == 0 else data + b"\x01")
        offset = word * 2
        checksum = internet_checksum(bytes(buffer))
        old = bytes(buffer[offset:offset + 4])
        buffer[offset:offset + 4] = replacement
        if not any(buffer):
            return  # RFC 1624 path documents the nonzero-buffer contract
        assert incremental_update(checksum, old, replacement) == \
            internet_checksum(bytes(buffer))


class TestTemplateEquivalence:
    @given(addresses, addresses, ports, ports,
           st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=65535),
           st.sampled_from([64, 57, 3]),
           st.binary(max_size=1460))
    @settings(max_examples=150)
    def test_frame_matches_object_codec(self, src, dst, sport, dport,
                                        seq, ack, flags, ip_id, ttl,
                                        payload):
        template = TcpFrameTemplate(MAC_A, MAC_B, src, dst, sport, dport,
                                    ttl=ttl)
        segment = TcpSegment(sport, dport, seq, ack, flags,
                             payload=payload)
        reference = build_tcp_frame(MAC_A, MAC_B, src, dst, segment,
                                    identification=ip_id, ttl=ttl)
        assert template.frame(ip_id, seq, ack, flags, payload) == reference

    def test_template_is_reusable_across_segments(self):
        src = Ipv4Address.parse("192.168.1.23")
        dst = Ipv4Address.parse("203.0.113.9")
        template = TcpFrameTemplate(MAC_A, MAC_B, src, dst, 40001, 443)
        for seq, payload in ((100, b""), (100, b"abc"), (103, b"x" * 1460)):
            segment = TcpSegment(40001, 443, seq, 7, 0x18, payload=payload)
            assert template.frame(5, seq, 7, 0x18, payload) == \
                build_tcp_frame(MAC_A, MAC_B, src, dst, segment,
                                identification=5)


def _tcp_capture(items):
    return [CapturedPacket(i * 1_000, build_tcp_frame(
        MAC_A, MAC_B, src, dst,
        TcpSegment(sport, dport, i, 2, 0x18, payload=payload),
        identification=i & 0xFFFF))
        for i, (src, dst, sport, dport, payload) in enumerate(items)]


class TestLazyDecodeEquivalence:
    @given(st.lists(st.tuples(addresses, addresses, ports, ports,
                              st.binary(max_size=400)),
                    min_size=1, max_size=25))
    @settings(max_examples=50)
    def test_agrees_with_full_decode_on_tcp(self, items):
        for packet in _tcp_capture(items):
            fast = lazy_decode(packet)
            full = decode_packet(packet)
            assert fast.timestamp == full.timestamp
            assert fast.length == full.length
            assert fast.src_ip == full.src_ip
            assert fast.dst_ip == full.dst_ip
            assert fast.src_port == full.src_port
            assert fast.dst_port == full.dst_port
            assert fast.flow_proto == full.flow_proto
            assert fast.transport_payload == full.transport_payload
            assert canonical_key(fast) == canonical_key(full)

    @given(addresses, addresses, ports, ports, st.binary(max_size=300))
    @settings(max_examples=100)
    def test_agrees_with_full_decode_on_udp(self, src, dst, sport, dport,
                                            payload):
        packet = CapturedPacket(7, build_udp_frame(
            MAC_A, MAC_B, src, dst, sport, dport, payload))
        fast = lazy_decode(packet)
        full = decode_packet(packet)
        assert (fast.src_ip, fast.dst_ip) == (full.src_ip, full.dst_ip)
        assert (fast.src_port, fast.dst_port) == \
            (full.src_port, full.dst_port)
        assert fast.flow_proto == full.flow_proto == "udp"
        assert fast.transport_payload == full.transport_payload
        assert canonical_key(fast) == canonical_key(full)

    def test_truncated_ipv4_raises_like_full_tier(self):
        # A snaplen-clipped record must fail the audit loudly (as the
        # full tier always did), not silently vanish from the flows.
        frame = _tcp_capture([(Ipv4Address.parse("10.0.0.1"),
                               Ipv4Address.parse("10.0.0.2"),
                               1234, 443, b"p" * 200)])[0]
        clipped = CapturedPacket(1, frame.data[:64])
        with pytest.raises(ValueError):
            decode_packet(clipped)
        with pytest.raises(ValueError):
            lazy_decode(clipped)

    def test_snaplen_truncated_capture_fails_audit(self):
        import io
        from repro.analysis import AuditPipeline
        from repro.net import PcapWriter
        frame = _tcp_capture([(Ipv4Address.parse("192.168.1.5"),
                               Ipv4Address.parse("203.0.113.1"),
                               1234, 443, b"p" * 400)])[0]
        buffer = io.BytesIO()
        PcapWriter(buffer, snaplen=60).write(frame)
        with pytest.raises(ValueError):
            AuditPipeline.from_pcap_bytes(
                buffer.getvalue(), Ipv4Address.parse("192.168.1.5"))

    def test_non_ip_frame_has_no_flow_key(self):
        frame = EthernetFrame(MAC_A, MAC_B, 0x0806, b"\x00" * 28).encode()
        fast = lazy_decode(CapturedPacket(1, frame))
        assert fast.flow_proto is None
        assert fast.src_ip is None
        assert canonical_key(fast) is None

    def test_dns_parses_in_place(self):
        from repro.net import DnsMessage
        query = DnsMessage.query(77, "acr0.samsungcloudsolution.com")
        packet = CapturedPacket(3, build_udp_frame(
            MAC_A, MAC_B, Ipv4Address.parse("192.168.1.2"),
            Ipv4Address.parse("8.8.8.8"), 40000, 53, query.encode()))
        fast = lazy_decode(packet)
        full = decode_packet(packet)
        assert fast.dns is not None
        assert fast.dns.questions[0].name == full.dns.questions[0].name

    def test_object_layers_available_on_demand(self):
        packet = _tcp_capture([(Ipv4Address.parse("10.0.0.1"),
                                Ipv4Address.parse("10.0.0.2"),
                                1234, 443, b"deep")])[0]
        fast = lazy_decode(packet)
        assert isinstance(fast.ip, Ipv4Packet)
        assert fast.tcp.payload == b"deep"
        assert fast.eth.ethertype == ETHERTYPE_IPV4
        assert fast.udp is None

    @given(st.lists(st.tuples(addresses, addresses, ports, ports),
                    min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_flow_tables_identical_across_tiers(self, tuples):
        packets = _tcp_capture([(s, d, sp, dp, b"x")
                                for s, d, sp, dp in tuples])
        fast_table, full_table = FlowTable(), FlowTable()
        fast_table.add_all(lazy_decode_all(packets))
        full_table.add_all(decode_packet(p) for p in packets)
        fast = {f.key: (f.packets_ab, f.packets_ba, f.bytes_ab, f.bytes_ba)
                for f in fast_table.flows}
        full = {f.key: (f.packets_ab, f.packets_ba, f.bytes_ab, f.bytes_ba)
                for f in full_table.flows}
        assert fast == full


class TestFingerprintMemo:
    def test_cache_returns_equal_captures(self):
        from repro.acr.fingerprint import (capture_state,
                                           clear_fingerprint_cache)
        from repro.media.content import ContentItem, ContentKind, PlayState
        item = ContentItem("c1", "Title", ContentKind.SHOW, 600, "news")
        state = PlayState(item, 123.4)
        clear_fingerprint_cache()
        cold = capture_state(state, offset_ns=10)
        warm = capture_state(state, offset_ns=20)
        assert warm.video_hash == cold.video_hash
        assert warm.audio_hashes == cold.audio_hashes
        assert (cold.offset_ns, warm.offset_ns) == (10, 20)
        # Mutating one capture's landmarks must not poison the memo.
        warm.audio_hashes.append(0xDEAD)
        assert capture_state(state).audio_hashes == cold.audio_hashes
        clear_fingerprint_cache()
