"""Differential vendor-conformance suite.

For every registered vendor x country x phase, run one Linear capture
and evaluate the *registry-declared* contract — expected ACR endpoint
set, cadence (or burstiness), consent default, opt-out effect — against
what the analysis pipeline actually measures (the same machinery that
regenerates Tables 1-5).  The contract clauses live in
``repro.findings.conformance`` and come back as structured ``Finding``
objects; this suite asserts every one of them passes, so a vendor
plugin whose declared contract drifts from its simulated behaviour
fails here, not in production.

Also enforces the registry's core invariant by grepping the source tree:
no module outside ``repro/tv/vendors`` may compare against a vendor name
or key a dispatch table on one.
"""

import os
import re

import pytest

from repro.experiments import cache as experiment_cache
from repro.findings import FindingsLedger
from repro.findings.conformance import (cell_findings,
                                        conformance_reference_kb,
                                        optout_findings)
from repro.sim.clock import minutes
from repro.testbed.experiment import (Country, ExperimentSpec, Phase,
                                      Scenario, Vendor, paper_vendors,
                                      vendor_profile_of)
from repro.tv import vendors
from repro.tv.settings import PrivacySettings

SEED = 7
#: Long enough for ~11 Samsung batches / ~70 Vizio batches, short enough
#: that the 32-cell matrix stays a test, not a campaign.
CONFORMANCE_DURATION_NS = minutes(12)

ALL_CELLS = [(vendor, country, phase)
             for vendor in Vendor
             for country in Country
             for phase in Phase]


def _pipeline(vendor: Vendor, country: Country, phase: Phase):
    spec = ExperimentSpec(vendor, country, Scenario.LINEAR, phase,
                          duration_ns=CONFORMANCE_DURATION_NS)
    return experiment_cache.grid(SEED).pipeline(spec)


def _full_reference_kb(vendor: Vendor) -> float:
    """The vendor's richest opted-in Linear volume across countries.

    The reference for downsample/ads-only comparisons; cross-country
    because a consent default can leave one country with no FULL cell at
    any phase (the Vizio-style UK default).
    """
    return conformance_reference_kb(
        vendor_profile_of(vendor),
        {country: _pipeline(vendor, country, Phase.LIN_OIN)
         for country in Country})


def _assert_all_passed(findings) -> None:
    failed = [finding for finding in findings if not finding.passed]
    assert not failed, "\n".join(
        f"{finding.status_line()} -- {finding.evidence_text()}"
        for finding in failed)


# -- registry sanity -----------------------------------------------------------


class TestRegistry:
    def test_four_vendors_registered_in_order(self):
        assert vendors.vendor_names() == ["samsung", "lg", "roku", "vizio"]
        assert vendors.paper_vendor_names() == ["samsung", "lg"]
        assert [v.value for v in Vendor] == vendors.vendor_names()

    def test_catalog_order_is_total_and_paper_first(self):
        orders = [profile.catalog_order
                  for profile in vendors.catalog_profiles()]
        assert orders == sorted(orders) and len(set(orders)) == len(orders)
        # The paper pair allocated its IP blocks first; extension vendors
        # must never displace those allocations (cached captures pin
        # them byte for byte).
        extension_orders = [profile.catalog_order
                            for profile in vendors.profiles()
                            if not profile.audited_in_paper]
        paper_orders = [profile.catalog_order
                        for profile in vendors.profiles()
                        if profile.audited_in_paper]
        assert max(paper_orders) < min(extension_orders)

    def test_profiles_are_complete(self):
        for profile in vendors.profiles():
            for country in profile.countries:
                assert profile.acr_profiles[country].vendor == profile.name
                assert profile.services(country)
                records = profile.domains(country)
                assert any(record.role == "acr-fingerprint"
                           for record in records)
                # The declared fingerprint domain is in the catalog.
                fingerprint = profile.fingerprint_domain(country, 0, SEED)
                assert any(record.name == fingerprint
                           for record in records)

    def test_unknown_vendor_raises_with_catalog(self):
        with pytest.raises(KeyError, match="unknown vendor: 'philips'"):
            vendors.get("philips")

    def test_duplicate_registration_rejected(self):
        existing = vendors.get("samsung")
        clone = vendors.VendorProfile(
            name="samsung", display_name="imposter",
            device_class=existing.device_class, serial_prefix="XX",
            operator="x", fast_app_id="x",
            opt_out_options=existing.opt_out_options,
            ads_limiter_key=existing.ads_limiter_key,
            services=existing.services,
            acr_profiles=existing.acr_profiles,
            capture_decisions=existing.capture_decisions,
            domains=existing.domains, contract=existing.contract,
            catalog_order=99,
            fingerprint_domains=existing.fingerprint_domains)
        with pytest.raises(ValueError, match="already registered"):
            vendors.register(clone)

    def test_consent_defaults(self):
        assert vendor_profile_of(Vendor("vizio")).default_optin("uk") \
            is False
        assert vendor_profile_of(Vendor("vizio")).default_optin("us") \
            is True
        for vendor in paper_vendors():
            profile = vendor_profile_of(vendor)
            assert profile.default_optin("uk") and \
                profile.default_optin("us")

    def test_settings_follow_consent_default(self):
        assert PrivacySettings("vizio", "uk").acr_enabled is False
        assert PrivacySettings("vizio", "us").acr_enabled is True
        assert PrivacySettings("vizio").acr_enabled is True
        assert PrivacySettings("samsung", "uk").acr_enabled is True


# -- the grep-enforced plugin invariant ---------------------------------------

_VENDOR_NAMES = "samsung|lg|roku|vizio"
_ENUM_NAMES = "SAMSUNG|LG|ROKU|VIZIO"

#: Vendor-identity dispatch patterns banned outside the vendors package:
#: equality/identity comparisons against a vendor name and dict literals
#: keyed by one.  Domain strings ("samsungacr.com") and cell selections
#: (``_pipe(Vendor.LG, ...)``) are not dispatch and stay legal.
_BANNED_PATTERNS = [
    re.compile(rf"(==|!=)\s*[\"']({_VENDOR_NAMES})[\"']"),
    re.compile(rf"[\"']({_VENDOR_NAMES})[\"']\s*(==|!=)"),
    re.compile(rf"[\"']({_VENDOR_NAMES})[\"']\s*:"),
    re.compile(rf"(\bis\b|==|!=)\s+Vendor\.({_ENUM_NAMES})\b"),
    re.compile(rf"Vendor\.({_ENUM_NAMES})\s+(is|==|!=)\b"),
]


class TestNoVendorDispatchOutsideRegistry:
    def test_source_tree_is_clean(self):
        import repro
        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        allowed_prefix = os.path.join(package_root, "tv", "vendors")
        violations = []
        for directory, __, names in sorted(os.walk(package_root)):
            for name in sorted(names):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(directory, name)
                if path.startswith(allowed_prefix):
                    continue
                with open(path, "r", encoding="utf-8") as fileobj:
                    for number, line in enumerate(fileobj, 1):
                        for pattern in _BANNED_PATTERNS:
                            if pattern.search(line):
                                violations.append(
                                    f"{os.path.relpath(path, package_root)}"
                                    f":{number}: {line.strip()}")
        assert not violations, (
            "vendor-name dispatch outside repro.tv.vendors:\n"
            + "\n".join(violations))


# -- the differential conformance matrix --------------------------------------


@pytest.mark.slow
class TestConformanceMatrix:
    """Registry-declared contract vs measured capture, cell by cell.

    The contract clauses are evaluated by
    ``repro.findings.conformance`` into structured findings; each cell
    must come back non-empty with every finding passed.
    """

    @pytest.mark.parametrize(
        "vendor,country,phase",
        ALL_CELLS,
        ids=[f"{v.value}-{c.value}-{p.value}" for v, c, p in ALL_CELLS])
    def test_cell_matches_declared_activity(self, vendor, country, phase):
        profile = vendor_profile_of(vendor)
        findings = cell_findings(
            profile, country.value, phase,
            _pipeline(vendor, country, phase),
            reference_kb=_full_reference_kb(vendor), seed=SEED)
        assert findings, (f"{vendor.value}/{country.value}/"
                          f"{phase.value} produced no contract findings")
        assert all(finding.code.startswith("CONF-")
                   for finding in findings)
        # Every cell carries at least the activity-class verdict, with
        # the measured endpoint set pinned in its evidence pointers.
        assert findings[0].code == "CONF-ACTIVITY"
        assert findings[0].evidence[0].vendor == vendor.value
        assert findings[0].evidence[0].country == country.value
        assert findings[0].evidence[0].phase == phase.value
        _assert_all_passed(findings)

    def test_optout_differential_is_contractual(self):
        """Opt-out semantics: silence vendors vanish, downsample vendors
        shrink, shared-endpoint vendors leave ad residue — and the whole
        differential folds into one clean ledger."""
        ledger = FindingsLedger()
        for vendor in Vendor:
            profile = vendor_profile_of(vendor)
            for country in Country:
                findings = optout_findings(
                    profile, country.value,
                    _pipeline(vendor, country, Phase.LIN_OIN),
                    _pipeline(vendor, country, Phase.LOUT_OOUT))
                assert len(findings) == 2
                assert all(finding.code == "CONF-OPTOUT"
                           for finding in findings)
                _assert_all_passed(findings)
                ledger.extend(findings)
        assert not ledger.failed()
        # 4 vendors x 2 countries x 2 clauses, all distinct records.
        assert ledger.total() == 16


@pytest.mark.slow
class TestDeviceLevelContracts:
    """White-box checks the black-box pipeline cannot see."""

    def _result(self, vendor, country, phase):
        spec = ExperimentSpec(Vendor(vendor), country, Scenario.LINEAR,
                              phase, duration_ns=CONFORMANCE_DURATION_NS)
        return experiment_cache.grid(SEED).result(spec)

    def test_roku_bursts_and_gating_counters(self):
        stats = self._result("roku", Country.UK, Phase.LIN_OIN).acr_stats
        assert stats.burst_uploads > 0
        assert stats.content_gated_slots > 0
        assert stats.downsampled_batches == 0

    def test_roku_optout_downsample_counters(self):
        stats = self._result("roku", Country.UK, Phase.LIN_OOUT).acr_stats
        assert stats.downsampled_batches > 0
        assert stats.burst_uploads == 0
        assert stats.beacons == 0
        assert stats.disabled_slots > stats.downsampled_batches

    def test_vizio_uk_consent_default_silences_client(self):
        stats = self._result("vizio", Country.UK, Phase.LIN_OIN).acr_stats
        assert stats.full_batches == 0 and stats.beacons == 0

    def test_paper_vendors_unaffected_by_new_client_knobs(self):
        for vendor in paper_vendors():
            stats = self._result(vendor.value, Country.UK,
                                 Phase.LIN_OIN).acr_stats
            assert stats.burst_uploads == 0
            assert stats.content_gated_slots == 0
            assert stats.downsampled_batches == 0
