"""Tests for the ad-personalization substrate and the linkage study."""

import pytest

from repro.acr import SegmentProfiler
from repro.ads import (AdCreative, AdInventory, AdServer, HOUSE_SEGMENT,
                       run_linkage_study, run_multi_genre_study)
from repro.sim import RngRegistry, seconds
from repro.testbed import fresh_backend, media_library


@pytest.fixture()
def backend():
    return fresh_backend("lg", "uk")


@pytest.fixture(scope="module")
def library():
    return media_library("uk", 0)


class TestInventory:
    def test_covers_every_segment(self):
        inventory = AdInventory(seed=1)
        assert len(inventory.segments) == 10
        for segment in inventory.segments:
            assert len(inventory.creatives_for(segment)) == 4

    def test_house_ads_exist(self):
        inventory = AdInventory(seed=1)
        assert len(inventory.house_ads) == 6
        for ad in inventory.house_ads:
            assert not ad.is_targeted

    def test_deterministic(self):
        a = AdInventory(seed=1).all_creatives
        b = AdInventory(seed=1).all_creatives
        assert [c.cpm_millis for c in a] == [c.cpm_millis for c in b]

    def test_targeted_cpm_exceeds_house(self):
        inventory = AdInventory(seed=1)
        min_targeted = min(c.cpm_millis for c in inventory.all_creatives
                           if c.is_targeted)
        max_house = max(c.cpm_millis for c in inventory.house_ads)
        assert min_targeted > max_house

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdInventory(per_segment=0)
        with pytest.raises(ValueError):
            AdCreative("x", "X", "house", cpm_millis=0)


class TestAdServer:
    def _server(self, backend):
        profiler = SegmentProfiler(backend, backend.library)
        return AdServer(AdInventory(seed=1), profiler, RngRegistry(5))

    def test_unknown_device_gets_house_ads(self, backend):
        server = self._server(backend)
        impression = server.serve("ghost-tv", seconds(1))
        assert not impression.is_targeted
        assert impression.creative.segment == HOUSE_SEGMENT

    def test_consent_off_forces_house_ads(self, backend, library):
        from repro.ads.audit import _watch
        server = self._server(backend)
        _watch(backend, "tv-a", library.shows[0], 30)
        server.set_consent("tv-a", False)
        for i in range(10):
            assert not server.serve("tv-a", seconds(i)).is_targeted

    def test_profiled_device_gets_targeted_ads(self, backend, library):
        from repro.ads.audit import _watch
        server = self._server(backend)
        _watch(backend, "tv-a", library.shows[0], 30)
        for i in range(20):
            server.serve("tv-a", seconds(i))
        assert server.targeting_rate("tv-a") > 0.5

    def test_revenue_accounting(self, backend):
        server = self._server(backend)
        server.serve("ghost", seconds(1))
        assert server.revenue_millis("ghost") > 0
        assert server.revenue_millis("other") == 0


class TestLinkageStudy:
    def test_linkage_established(self, backend, library):
        result = run_linkage_study(backend, library.shows[0], seed=2)
        assert result.linkage_established
        assert result.optout_rate == 0.0
        assert result.optin_rate > 0.5
        assert result.optin_aligned_rate > 0.5

    def test_revenue_lift(self, backend, library):
        result = run_linkage_study(backend, library.shows[0], seed=2)
        assert result.revenue_lift > 3.0

    def test_expected_segment_matches_genre(self, backend, library):
        from repro.acr.segments import SEGMENT_LABELS
        item = library.shows[1]
        result = run_linkage_study(backend, item, seed=2)
        assert result.expected_segment == SEGMENT_LABELS[item.genre]

    def test_multi_genre(self, backend, library):
        results = run_multi_genre_study(backend, library.shows[:3],
                                        seed=2)
        assert len(results) >= 1  # shows may share genres
        for result in results.values():
            assert result.linkage_established

    def test_insufficient_viewing_no_segments(self, backend, library):
        """A couple of minutes is below the segment threshold."""
        result = run_linkage_study(backend, library.shows[4],
                                   minutes_watched=2, seed=2)
        assert result.optin_rate == 0.0
        assert not result.linkage_established
