"""Unit + property tests for the DNS wire-format codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import DnsMessage, DnsRecord, Ipv4Address
from repro.net.dns import (FLAG_QR_RESPONSE, RCODE_NXDOMAIN, TYPE_A,
                           TYPE_CNAME, TYPE_PTR, decode_name, encode_name)

ADDR = Ipv4Address.parse("203.0.113.10")

label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                min_size=1, max_size=20).filter(
                    lambda s: not s.startswith("-") and not s.endswith("-"))
hostnames = st.lists(label, min_size=1, max_size=4).map(".".join)


class TestNameEncoding:
    def test_simple_roundtrip(self):
        raw = encode_name("acr-eu-prd.samsungcloud.tv")
        name, offset = decode_name(raw, 0)
        assert name == "acr-eu-prd.samsungcloud.tv"
        assert offset == len(raw)

    def test_root(self):
        assert encode_name("") == b"\x00"
        assert encode_name(".") == b"\x00"

    def test_trailing_dot_stripped(self):
        assert encode_name("a.b.") == encode_name("a.b")

    def test_label_too_long(self):
        with pytest.raises(ValueError):
            encode_name("a" * 64 + ".tv")

    def test_compression_pointer(self):
        # name at offset 0, then a pointer to it at the end
        base = encode_name("alphonso.tv")
        raw = base + b"\xc0\x00"
        name, offset = decode_name(raw, len(base))
        assert name == "alphonso.tv"
        assert offset == len(raw)

    def test_compression_loop_detected(self):
        raw = b"\xc0\x00"
        with pytest.raises(ValueError):
            decode_name(raw, 0)

    def test_truncated_name(self):
        with pytest.raises(ValueError):
            decode_name(b"\x05ab", 0)

    @given(hostnames)
    def test_roundtrip_property(self, name):
        raw = encode_name(name)
        decoded, __ = decode_name(raw, 0)
        assert decoded == name


class TestRecords:
    def test_a_record(self):
        record = DnsRecord.a("eu-acr4.alphonso.tv", ADDR, ttl=60)
        assert record.address == ADDR
        assert record.rtype == TYPE_A

    def test_cname_record(self):
        record = DnsRecord.cname("www.lg.com", "lg.cdn.example")
        assert record.target_name == "lg.cdn.example"
        assert record.rtype == TYPE_CNAME

    def test_ptr_record(self):
        record = DnsRecord.ptr(ADDR.reverse_pointer,
                               "acr-ams-3.alphonso.tv")
        assert record.target_name == "acr-ams-3.alphonso.tv"
        assert record.rtype == TYPE_PTR

    def test_address_on_non_a_raises(self):
        with pytest.raises(ValueError):
            DnsRecord.cname("a.b", "c.d").address

    def test_names_lowercased(self):
        assert DnsRecord.a("ACR0.SamsungCloudSolution.com", ADDR).name == \
            "acr0.samsungcloudsolution.com"


class TestMessages:
    def test_query_roundtrip(self):
        query = DnsMessage.query(0x1234, "log-config.samsungacr.com")
        decoded = DnsMessage.decode(query.encode())
        assert decoded.txid == 0x1234
        assert not decoded.is_response
        assert decoded.questions[0].name == "log-config.samsungacr.com"

    def test_response_roundtrip(self):
        query = DnsMessage.query(7, "eu-acr1.alphonso.tv")
        response = DnsMessage.response(
            query, [DnsRecord.a("eu-acr1.alphonso.tv", ADDR, ttl=120)])
        decoded = DnsMessage.decode(response.encode())
        assert decoded.is_response
        assert decoded.txid == 7
        assert decoded.rcode == 0
        assert decoded.answers[0].address == ADDR
        assert decoded.answers[0].ttl == 120

    def test_nxdomain(self):
        query = DnsMessage.query(9, "no.such.domain")
        response = DnsMessage.response(query, [], rcode=RCODE_NXDOMAIN)
        decoded = DnsMessage.decode(response.encode())
        assert decoded.rcode == RCODE_NXDOMAIN
        assert decoded.answers == []

    def test_multiple_answers(self):
        query = DnsMessage.query(1, "acr0.samsungcloudsolution.com")
        answers = [
            DnsRecord.cname("acr0.samsungcloudsolution.com",
                            "acr-lb.samsungcloudsolution.com"),
            DnsRecord.a("acr-lb.samsungcloudsolution.com", ADDR),
        ]
        decoded = DnsMessage.decode(
            DnsMessage.response(query, answers).encode())
        assert len(decoded.answers) == 2
        assert decoded.answers[0].rtype == TYPE_CNAME
        assert decoded.answers[1].rtype == TYPE_A

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            DnsMessage.decode(b"\x00" * 11)

    def test_flags(self):
        query = DnsMessage.query(1, "x.y")
        assert not query.flags & FLAG_QR_RESPONSE

    @given(hostnames, st.integers(min_value=0, max_value=0xFFFF))
    def test_query_roundtrip_property(self, name, txid):
        decoded = DnsMessage.decode(DnsMessage.query(txid, name).encode())
        assert decoded.questions[0].name == name
        assert decoded.txid == txid
