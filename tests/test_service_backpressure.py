"""Backpressure and bounded-memory tests for the streaming service.

The claims under test: credit exhaustion pauses a household's ingestion
without ever deadlocking (the cursor segment is always admissible, so a
refused producer can always make progress after a drain); live memory
is bounded by the household window (peak open households and peak
tracked flows), never by the fleet; and draining resumes
deterministically — the same arrival schedule replays to the identical
delivery order and telemetry.

Everything here runs on synthetic captures (no simulation), so the
suite stays in the fast inner loop.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FleetAggregate, PopulationSpec
from repro.net import (CapturedPacket, Ipv4Address, MacAddress,
                       TcpSegment, dump_bytes)
from repro.net.packet import build_tcp_frame
from repro.service import (AuditService, SegmentBus, ServiceConfig,
                           segment_record)
from repro.service import daemon as daemon_mod

MAC_TV = MacAddress.parse("02:00:00:00:00:01")
MAC_GW = MacAddress.parse("02:00:00:00:00:02")
TV_IP = "192.168.1.23"

#: Distinct remote endpoints per synthetic capture — the exact number
#: of flows one open household pins in memory.
FLOWS_PER_HOUSEHOLD = 5
PACKETS_PER_FLOW = 4


def synthetic_pcap(salt: int = 0) -> bytes:
    """A small capture with exactly FLOWS_PER_HOUSEHOLD TCP flows."""
    tv = Ipv4Address.parse(TV_IP)
    packets = []
    for flow in range(FLOWS_PER_HOUSEHOLD):
        remote = Ipv4Address.parse(f"203.0.113.{10 + flow}")
        for i in range(PACKETS_PER_FLOW):
            segment = TcpSegment(40000 + flow, 443, i, 1, 0x18,
                                 payload=bytes([salt & 0xFF]) * 32)
            packets.append(CapturedPacket(
                len(packets) * 1_000_000,
                build_tcp_frame(MAC_TV, MAC_GW, tv, remote, segment,
                                identification=len(packets) & 0xFFFF)))
    return dump_bytes(packets)


class _FakeRecord:
    def __init__(self, tv_ip, pcap_bytes):
        self.tv_ip = tv_ip
        self.pcap_bytes = pcap_bytes


def fake_household_record(household, cache, validate_results=True):
    return _FakeRecord(TV_IP, synthetic_pcap(household.index)), True


@pytest.fixture
def fake_captures(monkeypatch):
    """Route the service's capture production to synthetic pcaps."""
    monkeypatch.setattr(daemon_mod, "household_record",
                        fake_household_record)


def service(households, **kwargs):
    config = ServiceConfig(
        window=kwargs.pop("window", 2),
        credits=kwargs.pop("credits", 2),
        segments=kwargs.pop("segments", 6),
        arrival_seed=kwargs.pop("arrival_seed", None),
        validate_results=False)
    spec = PopulationSpec(households, seed=kwargs.pop("seed", 5))
    return AuditService(spec, cache=None, config=config, **kwargs)


class TestSegmentBusAdmission:
    def segments(self, count, household=0):
        return segment_record(household, synthetic_pcap(), count)

    def test_in_order_offers_deliver_immediately(self):
        delivered = []
        bus = SegmentBus(delivered.append, credits=1)
        bus.open(0, 4)
        for segment in self.segments(4):
            assert bus.offer(segment)
        assert [s.seq for s in delivered] == [0, 1, 2, 3]
        assert bus.open_lanes == 0  # lane closed on completion

    def test_out_of_order_buffers_within_credit(self):
        delivered = []
        bus = SegmentBus(delivered.append, credits=3)
        bus.open(0, 3)
        s = self.segments(3)
        assert bus.offer(s[2])          # buffered, not delivered
        assert delivered == []
        assert bus.offer(s[0])          # drains 0 only
        assert [x.seq for x in delivered] == [0]
        assert bus.offer(s[1])          # drains 1 then buffered 2
        assert [x.seq for x in delivered] == [0, 1, 2]

    def test_beyond_credit_window_is_refused(self):
        bus = SegmentBus(lambda s: None, credits=2)
        bus.open(0, 6)
        s = self.segments(6)
        assert not bus.offer(s[2])      # cursor 0, window [0, 2)
        assert not bus.offer(s[5])
        assert bus.refused == 2
        assert bus.buffered_segments == 0

    def test_cursor_segment_is_always_admissible(self):
        # The no-deadlock invariant: whatever was refused, the one
        # segment the cursor needs is inside the window.
        bus = SegmentBus(lambda s: None, credits=1)
        bus.open(0, 6)
        s = self.segments(6)
        for seq in (5, 4, 3, 2, 1):
            assert not bus.offer(s[seq])
        for seq in range(6):
            assert bus.admissible(0, seq) == (seq == bus.cursor(0))
            assert bus.offer(s[seq])

    def test_duplicates_are_acknowledged_not_redelivered(self):
        delivered = []
        bus = SegmentBus(delivered.append, credits=4)
        bus.open(0, 4)
        s = self.segments(4)
        assert bus.offer(s[0])
        assert bus.offer(s[1])
        assert bus.offer(s[1])          # behind the cursor: replay
        assert bus.offer(s[2]) and bus.offer(s[2])
        assert bus.duplicates == 2
        assert [x.seq for x in delivered] == [0, 1, 2]

    def test_buffer_is_bounded_by_credits_per_lane(self):
        bus = SegmentBus(lambda s: None, credits=3)
        bus.open(0, 10)
        s = self.segments(10)
        for seq in range(9, 0, -1):     # hold back seq 0: nothing drains
            bus.offer(s[seq])
        assert bus.buffered_segments <= 3 - 1  # cursor slot unfillable
        assert bus.peak_buffered <= 3

    def test_completion_and_drain_callbacks_fire(self):
        events = []
        bus = SegmentBus(lambda s: None, credits=2,
                         on_complete=lambda i: events.append(("done", i)),
                         on_drain=lambda i: events.append(("drain", i)))
        bus.open(7, 3)
        s = self.segments(3, household=7)
        bus.offer(s[1])                 # buffered; no progress
        bus.offer(s[0])                 # drains 0,1 -> drain callback
        assert events == [("drain", 7)]
        bus.offer(s[2])                 # completes -> complete, no drain
        assert events == [("drain", 7), ("done", 7)]

    def test_mismatched_total_rejected(self):
        bus = SegmentBus(lambda s: None)
        bus.open(0, 3)
        (wrong,) = self.segments(1)
        with pytest.raises(ValueError, match="lane opened with 3"):
            bus.offer(wrong)

    def test_double_open_rejected(self):
        bus = SegmentBus(lambda s: None)
        bus.open(0, 3)
        with pytest.raises(ValueError, match="already open"):
            bus.open(0, 3)

    @given(order=st.permutations(list(range(8))),
           credits=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_any_arrival_order_drains_without_deadlock(self, order,
                                                       credits):
        # A producer that parks refusals and re-offers after each
        # drain terminates for every arrival order and credit window,
        # and the sink always sees seq order.
        delivered = []
        parked = []
        drained = []
        bus = SegmentBus(delivered.append, credits=credits,
                         on_drain=lambda i: drained.append(i))
        bus.open(0, 8)
        segments = {s.seq: s for s in self.segments(8)}
        for seq in order:
            if not bus.offer(segments[seq]):
                parked.append(seq)
            while drained:                  # retry parked after drains
                drained.clear()
                for held in sorted(parked):
                    if bus.offer(segments[held]):
                        parked.remove(held)
        assert parked == []
        assert [s.seq for s in delivered] == list(range(8))
        assert bus.delivered == 8
        assert bus.open_lanes == 0


@pytest.mark.usefixtures("fake_captures")
class TestServiceBackpressure:
    def test_credit_exhaustion_pauses_then_drains(self):
        # One credit + many segments forces refusals on nearly every
        # out-of-order arrival, yet the run completes and every
        # segment is delivered exactly once.
        result = service(4, credits=1, segments=8, window=2).run()
        assert result.refusals > 0
        assert result.segments_delivered == 4 * 8
        assert result.state.households == 4

    def test_memory_window_stays_bounded(self):
        # The bounded-memory claim, measured: open households never
        # exceed the window, and peak tracked flows never exceed
        # window * flows-per-capture even though the fleet is larger.
        result = service(9, window=2, credits=2, segments=4).run()
        assert result.peak_open_households <= 2
        assert result.peak_tracked_flows <= 2 * FLOWS_PER_HOUSEHOLD
        assert result.peak_buffered_segments <= 2 * 2
        assert result.state.households == 9

    def test_wider_window_admits_more(self):
        narrow = service(6, window=1, segments=4).run()
        wide = service(6, window=6, segments=4).run()
        assert narrow.peak_open_households == 1
        assert wide.peak_open_households > 1
        assert narrow.aggregate == wide.aggregate

    def test_draining_resumes_deterministically(self):
        # Same population + config: the whole schedule (deliveries,
        # refusals, peaks) replays identically, not just the aggregate.
        first = service(5, credits=1, segments=7, window=3).run()
        second = service(5, credits=1, segments=7, window=3).run()
        assert first.aggregate == second.aggregate
        assert first.segments_delivered == second.segments_delivered
        assert first.refusals == second.refusals
        assert first.peak_tracked_flows == second.peak_tracked_flows
        assert first.peak_buffered_segments == \
            second.peak_buffered_segments

    def test_aggregate_is_schedule_invariant(self):
        # Different credit/segment/arrival schedules change telemetry,
        # never the audit.
        baseline = service(5, credits=4, segments=2, window=5,
                           arrival_seed=1).run()
        for credits, segments, arrival in ((1, 9, 2), (2, 5, 3),
                                           (3, 3, 4)):
            other = service(5, credits=credits, segments=segments,
                            window=2, arrival_seed=arrival).run()
            assert other.aggregate == baseline.aggregate

    def test_deadlock_free_under_minimal_credit(self):
        # credits=1 + out-of-order arrivals is the worst case: every
        # non-cursor offer is refused and must wait for a drain.
        result = service(3, credits=1, segments=10, window=3).run()
        assert result.segments_delivered == 3 * 10
        assert result.state.households == 3

    def test_zero_acr_households_fold_cleanly(self):
        # Synthetic captures carry no ACR traffic: the streamed
        # aggregate must stay equal to a fresh fold (no zero-count
        # Counter residue from the by-vendor accumulators).
        result = service(4, segments=3).run()
        agg = result.aggregate
        assert agg.households == 4
        assert agg.acr_households == 0
        assert agg.acr_bytes_by_vendor == {}
        restored = FleetAggregate.from_dict(agg.to_dict())
        assert restored == agg
