"""Unit tests for the TLS record layer and SNI extraction."""

import pytest

from repro.net.tls import (AEAD_OVERHEAD, CONTENT_APPLICATION_DATA,
                           CONTENT_HANDSHAKE, MAX_RECORD_PAYLOAD, TlsRecord,
                           application_records, build_client_hello,
                           extract_sni, handshake_flights)

RANDOM = bytes(range(32))


class TestRecordCodec:
    def test_encode_decode_stream(self):
        records = [TlsRecord(CONTENT_APPLICATION_DATA, b"a" * 100),
                   TlsRecord(CONTENT_HANDSHAKE, b"b" * 50)]
        raw = b"".join(r.encode() for r in records)
        decoded, rest = TlsRecord.decode_stream(raw)
        assert rest == b""
        assert [r.content_type for r in decoded] == \
            [CONTENT_APPLICATION_DATA, CONTENT_HANDSHAKE]
        assert decoded[0].payload == b"a" * 100

    def test_partial_record_left_as_rest(self):
        raw = TlsRecord(23, b"x" * 10).encode()
        decoded, rest = TlsRecord.decode_stream(raw[:-3])
        assert decoded == []
        assert rest == raw[:-3]

    def test_record_too_large_rejected(self):
        with pytest.raises(ValueError):
            TlsRecord(23, b"x" * (MAX_RECORD_PAYLOAD + 300))

    def test_len_includes_header(self):
        assert len(TlsRecord(23, b"x" * 10)) == 15


class TestClientHello:
    def test_sni_roundtrip(self):
        record = build_client_hello("acr-eu-prd.samsungcloud.tv", RANDOM)
        assert extract_sni(record) == "acr-eu-prd.samsungcloud.tv"

    def test_bad_random_length(self):
        with pytest.raises(ValueError):
            build_client_hello("x.y", b"short")

    def test_sni_none_for_application_data(self):
        assert extract_sni(TlsRecord(23, b"\x00" * 64)) is None

    def test_sni_none_for_non_client_hello_handshake(self):
        record = TlsRecord(CONTENT_HANDSHAKE, b"\x02\x00\x00\x01\x00")
        assert extract_sni(record) is None

    def test_sni_tolerates_truncation(self):
        record = build_client_hello("eu-acr9.alphonso.tv", RANDOM)
        truncated = TlsRecord(CONTENT_HANDSHAKE, record.payload[:20])
        assert extract_sni(truncated) is None


class TestApplicationRecords:
    def _filler(self, n):
        return b"\xcc" * n

    def test_small_payload_single_record(self):
        records = application_records(100, self._filler(100 + AEAD_OVERHEAD))
        assert len(records) == 1
        assert len(records[0].payload) == 100 + AEAD_OVERHEAD

    def test_zero_length_payload_still_one_record(self):
        records = application_records(0, self._filler(AEAD_OVERHEAD))
        assert len(records) == 1
        assert len(records[0].payload) == AEAD_OVERHEAD

    def test_large_payload_splits(self):
        plaintext = 40000
        nrec = 3  # ceil(40000 / 16368)
        records = application_records(
            plaintext, self._filler(plaintext + nrec * AEAD_OVERHEAD))
        assert len(records) == nrec
        total_ciphertext = sum(len(r.payload) for r in records)
        assert total_ciphertext == plaintext + nrec * AEAD_OVERHEAD

    def test_filler_too_short(self):
        with pytest.raises(ValueError):
            application_records(100, self._filler(50))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            application_records(-1, b"")


class TestHandshakeFlights:
    def test_flight_structure(self):
        flight1, flight2, flight3 = handshake_flights(
            "tkacr3.alphonso.tv", RANDOM, b"\xaa" * 4000)
        assert extract_sni(flight1[0]) == "tkacr3.alphonso.tv"
        assert len(flight2) == 3  # hello, certificate, done
        assert len(flight3) == 3  # kex, ccs, finished
        cert = flight2[1]
        assert len(cert.payload) == 2800

    def test_custom_certificate_size(self):
        __, flight2, __ = handshake_flights(
            "x.y", RANDOM, b"\xaa" * 6000, certificate_size=4096)
        assert len(flight2[1].payload) == 4096

    def test_filler_too_short(self):
        with pytest.raises(ValueError):
            handshake_flights("x.y", RANDOM, b"\xaa" * 100)
