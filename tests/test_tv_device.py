"""Integration tests for the TV device models on the event loop."""

import pytest

from repro.dnsinfra import DomainRegistry, RecursiveResolver, Zone
from repro.media import OttApp, Tuner
from repro.net import HostStack, Ipv4Address, decode_all, mac_from_seed
from repro.net.link import LatencyModel
from repro.sim import EventLoop, RngRegistry, minutes, seconds
from repro.testbed import linear_channel, media_library
from repro.tv import LgTv, RemoteControl, SamsungTv, SmartPlug
from repro.tv.services import services_for

TV_IP = Ipv4Address.parse("192.168.1.50")
AP_IP = Ipv4Address.parse("192.168.1.1")


def _make_tv(tv_class, country="uk", seed=3):
    rng = RngRegistry(seed)
    loop = EventLoop()
    registry = DomainRegistry()
    zone = Zone(registry)
    resolver = RecursiveResolver(zone)
    latency = LatencyModel("uk" if country == "uk" else "us_west", rng)
    latency.register_server(AP_IP, "london" if country == "uk"
                            else "us_west")
    for record in registry.ipspace.all_servers():
        latency.register_server(record.address, record.city.region_key)
    captured = []
    stack = HostStack(mac_from_seed(1), TV_IP, mac_from_seed(2),
                      latency, rng, captured.append)
    tv = tv_class(country=country, loop=loop, rng=rng, stack=stack,
                  resolver=resolver, resolver_ip=AP_IP, registry=registry,
                  backend=None, seed=seed)
    return tv, loop, captured


class TestPowerCycle:
    def test_boot_defaults_to_home_screen(self):
        tv, loop, __ = _make_tv(LgTv)
        tv.power_on()
        assert tv.current_source is not None
        assert tv.current_source.source_type.value == "home"

    def test_double_power_on_rejected(self):
        tv, __, __ = _make_tv(LgTv)
        tv.power_on()
        with pytest.raises(RuntimeError):
            tv.power_on()

    def test_power_off_stops_traffic(self):
        tv, loop, captured = _make_tv(LgTv)
        tv.power_on()
        loop.run_until(minutes(2))
        tv.power_off()
        teardown_cutoff = len(captured)
        loop.run_until(minutes(10))
        # Nothing but (already-emitted) teardown after power off.
        assert len(captured) == teardown_cutoff

    def test_power_off_idempotent(self):
        tv, __, __ = _make_tv(LgTv)
        tv.power_on()
        tv.power_off()
        tv.power_off()  # no error

    def test_boot_dns_burst_early(self):
        tv, loop, captured = _make_tv(LgTv)
        tv.power_on()
        loop.run_until(minutes(2))
        dns = [p for p in decode_all(sorted(captured,
                                            key=lambda x: x.timestamp))
               if p.dns is not None]
        assert dns, "no DNS traffic at boot"
        assert dns[0].timestamp < seconds(10)


class TestLgBehaviour:
    def test_single_rotating_acr_domain(self):
        tv, loop, captured = _make_tv(LgTv)
        tv.select_source(Tuner(linear_channel("uk", 0)))
        tv.power_on()
        loop.run_until(minutes(3))
        dns_names = {q.name for p in decode_all(captured) if p.dns
                     for q in p.dns.questions}
        acr_names = {n for n in dns_names if "acr" in n}
        assert len(acr_names) == 1
        assert next(iter(acr_names)).startswith("eu-acr")

    def test_active_domain_matches_registry(self):
        tv, __, __ = _make_tv(LgTv)
        assert tv.active_acr_domain == tv.registry.rotating_acr_domain(
            "lg", "uk", 0, tv.seed)

    def test_batches_every_15s(self):
        tv, loop, __ = _make_tv(LgTv)
        tv.select_source(Tuner(linear_channel("uk", 0)))
        tv.power_on()
        loop.run_until(minutes(3))
        # 3 minutes = 12 batch ticks (none before power-on).
        total = tv.acr_client.stats.full_batches + \
            tv.acr_client.stats.beacons
        assert total == 12


class TestSamsungBehaviour:
    def test_uk_contacts_four_acr_domains(self):
        tv, loop, captured = _make_tv(SamsungTv)
        tv.select_source(Tuner(linear_channel("uk", 0)))
        tv.power_on()
        loop.run_until(minutes(7))
        dns_names = {q.name for p in decode_all(captured) if p.dns
                     for q in p.dns.questions}
        acr_names = {n for n in dns_names if "acr" in n}
        assert acr_names == {"acr-eu-prd.samsungcloud.tv",
                             "acr0.samsungcloudsolution.com",
                             "log-config.samsungacr.com",
                             "log-ingestion-eu.samsungacr.com"}

    def test_us_has_no_keepalive_channel(self):
        tv, loop, captured = _make_tv(SamsungTv, country="us")
        tv.power_on()
        loop.run_until(minutes(7))
        dns_names = {q.name for p in decode_all(captured) if p.dns
                     for q in p.dns.questions}
        assert not any("samsungcloudsolution" in n and "acr" in n
                       for n in dns_names)
        assert not tv.has_keepalive_channel

    def test_opted_out_no_acr_domains(self):
        tv, loop, captured = _make_tv(SamsungTv)
        tv.settings.opt_out_all()
        tv.select_source(Tuner(linear_channel("uk", 0)))
        tv.power_on()
        loop.run_until(minutes(7))
        dns_names = {q.name for p in decode_all(captured) if p.dns
                     for q in p.dns.questions}
        assert not any("acr" in n for n in dns_names)

    def test_ingestion_domain_by_country(self):
        uk, __, __ = _make_tv(SamsungTv, country="uk")
        us, __, __ = _make_tv(SamsungTv, country="us")
        assert uk.log_ingestion_domain == "log-ingestion-eu.samsungacr.com"
        assert us.log_ingestion_domain == "log-ingestion.samsungacr.com"


class TestSourceTraffic:
    def test_ott_streaming_traffic_present(self):
        tv, loop, captured = _make_tv(SamsungTv)
        library = media_library("uk", 0)
        tv.power_on()
        tv.select_source(OttApp("netflix", [library.movies[0]]))
        loop.run_until(minutes(2))
        dns_names = {q.name for p in decode_all(captured) if p.dns
                     for q in p.dns.questions}
        assert "api.netflix.com" in dns_names


class TestPeripherals:
    def test_smart_plug_schedule(self):
        tv, loop, __ = _make_tv(LgTv)
        plug = SmartPlug(loop, tv)
        plug.power_on_at(seconds(2))
        plug.power_off_at(minutes(1))
        loop.run_until(minutes(2))
        assert [kind for __, kind in plug.transitions] == ["on", "off"]
        assert not tv.powered

    def test_remote_actions_logged(self):
        tv, loop, __ = _make_tv(LgTv)
        remote = RemoteControl(loop, tv)
        tv.power_on()
        remote.select_source_at(seconds(5),
                                Tuner(linear_channel("uk", 0)))
        remote.opt_out_at(seconds(10))
        loop.run_until(seconds(30))
        assert remote.performed("select-source:tuner")
        assert remote.performed("opt-out")
        assert tv.settings.is_opted_out


class TestServicesCatalog:
    def test_vendor_services_exist(self):
        assert services_for("lg", "uk")
        assert services_for("samsung", "us")
        with pytest.raises(ValueError):
            services_for("philips", "uk")

    def test_ads_services_gated(self):
        specs = services_for("samsung", "uk")
        gates = {s.name: s.gate for s in specs}
        assert gates["ads"] == "ads"
        assert gates["time-sync"] is None

    def test_no_service_domain_contains_acr(self):
        """Background chatter must not pollute the 'acr' heuristic."""
        for vendor in ("lg", "samsung"):
            for country in ("uk", "us"):
                for spec in services_for(vendor, country):
                    assert "acr" not in spec.domain
