"""Unit tests for the deterministic event loop."""

import pytest

from repro.sim import EventLoop, seconds


class TestScheduling:
    def test_call_at_executes_in_order(self):
        loop = EventLoop()
        order = []
        loop.call_at(seconds(2), order.append, "b")
        loop.call_at(seconds(1), order.append, "a")
        loop.call_at(seconds(3), order.append, "c")
        loop.run_until(seconds(5))
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        loop = EventLoop()
        order = []
        for tag in ("first", "second", "third"):
            loop.call_at(seconds(1), order.append, tag)
        loop.run_until(seconds(1))
        assert order == ["first", "second", "third"]

    def test_call_after_is_relative(self):
        loop = EventLoop()
        seen = []
        loop.call_at(seconds(1), lambda: loop.call_after(
            seconds(2), lambda: seen.append(loop.now)))
        loop.run_until(seconds(10))
        assert seen == [seconds(3)]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.call_at(seconds(1), lambda: None)
        loop.run_until(seconds(2))
        with pytest.raises(ValueError):
            loop.call_at(seconds(1), lambda: None)

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.call_after(-1, lambda: None)


class TestRunUntil:
    def test_clock_lands_exactly_on_deadline(self):
        loop = EventLoop()
        loop.call_at(seconds(1), lambda: None)
        loop.run_until(seconds(7))
        assert loop.now == seconds(7)

    def test_events_after_deadline_stay_queued(self):
        loop = EventLoop()
        fired = []
        loop.call_at(seconds(10), fired.append, "late")
        loop.run_until(seconds(5))
        assert fired == []
        assert loop.pending == 1
        loop.run_until(seconds(10))
        assert fired == ["late"]

    def test_event_exactly_at_deadline_fires(self):
        loop = EventLoop()
        fired = []
        loop.call_at(seconds(5), fired.append, "edge")
        loop.run_until(seconds(5))
        assert fired == ["edge"]

    def test_deadline_in_past_rejected(self):
        loop = EventLoop()
        loop.run_until(seconds(2))
        with pytest.raises(ValueError):
            loop.run_until(seconds(1))

    def test_executed_counter(self):
        loop = EventLoop()
        for i in range(5):
            loop.call_at(seconds(i), lambda: None)
        loop.run_until(seconds(10))
        assert loop.executed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        fired = []
        event = loop.call_at(seconds(1), fired.append, "x")
        event.cancel()
        loop.run_until(seconds(2))
        assert fired == []
        assert loop.executed == 0

    def test_cancel_from_another_event(self):
        loop = EventLoop()
        fired = []
        victim = loop.call_at(seconds(2), fired.append, "victim")
        loop.call_at(seconds(1), victim.cancel)
        loop.run_until(seconds(3))
        assert fired == []


class TestReentrancy:
    def test_event_scheduling_at_current_time_runs_same_pass(self):
        loop = EventLoop()
        order = []

        def chain(n):
            order.append(n)
            if n < 3:
                loop.call_after(0, chain, n + 1)

        loop.call_at(seconds(1), chain, 0)
        loop.run_until(seconds(1))
        assert order == [0, 1, 2, 3]

    def test_run_to_completion_drains(self):
        loop = EventLoop()
        count = []
        for i in range(10):
            loop.call_at(i, count.append, i)
        loop.run_to_completion()
        assert len(count) == 10
        assert loop.pending == 0
