"""Tests for validation scripts and the EXPERIMENTS.md report generator
building blocks."""

import pytest

from repro.experiments.report import (cadence_section, cdf_section,
                                      scorecard_section)
from repro.experiments.tables_volumes import (PAPER_TABLE2, PAPER_TABLE4,
                                              paper_reference)
from repro.sim import minutes
from repro.testbed import (Country, ExperimentSpec, Phase, Scenario,
                           Vendor, run_experiment, validate)
from repro.testbed.validation import ValidationReport


class TestValidationReport:
    def test_ok_when_no_failures(self):
        report = ValidationReport("x")
        report.record("check-a", True)
        assert report.ok
        assert report.checks == ["check-a"]

    def test_failure_recorded_with_detail(self):
        report = ValidationReport("x")
        report.record("check-a", False, "broke")
        assert not report.ok
        assert report.failures == ["check-a: broke"]

    def test_repr_shows_state(self):
        report = ValidationReport("lg-uk")
        assert "OK" in repr(report)
        report.record("c", False)
        assert "FAILED" in repr(report)


class TestValidationOnRealRuns:
    def test_every_scenario_validates(self):
        for scenario in Scenario:
            spec = ExperimentSpec(Vendor.LG, Country.UK, scenario,
                                  Phase.LIN_OIN, duration_ns=minutes(6))
            result = run_experiment(spec, seed=1)
            report = validate(result)
            assert report.ok, (scenario, report.failures)

    def test_optout_validation_checks_client_silence(self):
        spec = ExperimentSpec(Vendor.SAMSUNG, Country.UK,
                              Scenario.LINEAR, Phase.LOUT_OOUT,
                              duration_ns=minutes(6))
        result = run_experiment(spec, seed=1)
        report = validate(result)
        assert "opted-out-client-silent" in report.checks
        assert report.ok


class TestPaperReferenceData:
    def test_reference_lookup(self):
        assert paper_reference(Country.UK, Phase.LIN_OIN) is PAPER_TABLE2
        assert paper_reference(Country.US, Phase.LIN_OIN) is PAPER_TABLE4

    def test_table2_values_from_paper(self):
        assert PAPER_TABLE2["eu-acrX.alphonso.tv"][1] == 4759.7
        assert PAPER_TABLE2["acr-eu-prd.samsungcloud.tv"][0] is None

    def test_every_row_has_six_scenarios(self):
        for table in (PAPER_TABLE2, PAPER_TABLE4):
            for domain, values in table.items():
                assert len(values) == 6, domain


class TestReportSections:
    """Sections render over the shared cache (cells already simulated by
    other tests in the session where possible)."""

    def test_scorecard_section_all_pass(self):
        lines = "\n".join(scorecard_section(7))
        assert "FAIL" not in lines
        assert "S1" in lines and "S12" in lines

    def test_cdf_section_shows_cadences(self):
        lines = "\n".join(cdf_section(7))
        assert "UK" in lines and "US" in lines

    def test_cadence_section_periods(self):
        lines = "\n".join(cadence_section(7))
        assert "15" in lines and "60" in lines
