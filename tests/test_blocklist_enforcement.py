"""Tests for DNS blocklist enforcement and the rotation-evasion study."""

import pytest

from repro.analysis import acr_volume_total, AuditPipeline
from repro.analysis.blocklists import (HostsFileBlocklist,
                                       stale_hosts_snapshot)
from repro.dnsinfra import DomainRegistry, RecursiveResolver, Zone
from repro.dnsinfra.resolver import FilteringResolver
from repro.experiments.blocklist_eval import (run_evaluation, run_trial,
                                              SWEEP_DURATION_NS)
from repro.testbed import (Country, ExperimentSpec, Phase, Scenario,
                           Vendor, run_experiment)


class TestHostsFileBlocklist:
    def test_exact_hostname_semantics(self):
        blocklist = HostsFileBlocklist(["eu-acr1.alphonso.tv"])
        assert blocklist.is_listed("eu-acr1.alphonso.tv")
        assert blocklist.is_listed("EU-ACR1.alphonso.tv.")
        assert not blocklist.is_listed("eu-acr2.alphonso.tv")
        assert not blocklist.is_listed("alphonso.tv")

    def test_stale_snapshot_coverage(self):
        snapshot = stale_hosts_snapshot(known_rotation_max=4)
        assert snapshot.is_listed("eu-acr4.alphonso.tv")
        assert not snapshot.is_listed("eu-acr5.alphonso.tv")
        assert snapshot.is_listed("acr-eu-prd.samsungcloud.tv")


class TestFilteringResolver:
    def test_blocked_name_nxdomain(self):
        registry = DomainRegistry()
        resolver = FilteringResolver(
            RecursiveResolver(Zone(registry)),
            HostsFileBlocklist(["eu-acr1.alphonso.tv"]))
        result = resolver.resolve("eu-acr1.alphonso.tv", 0)
        assert result.nxdomain
        assert resolver.blocked_queries == 1

    def test_unlisted_name_passes(self):
        registry = DomainRegistry()
        resolver = FilteringResolver(
            RecursiveResolver(Zone(registry)),
            HostsFileBlocklist(["eu-acr1.alphonso.tv"]))
        result = resolver.resolve("eu-acr2.alphonso.tv", 0)
        assert not result.nxdomain
        assert result.addresses

    def test_ptr_passthrough(self):
        registry = DomainRegistry()
        resolver = FilteringResolver(
            RecursiveResolver(Zone(registry)), HostsFileBlocklist([]))
        address = registry.server("eu-acr1.alphonso.tv").address
        assert resolver.resolve_ptr(address, 0) is not None


class TestEnforcementEndToEnd:
    def test_full_block_silences_acr(self):
        """When the active rotation target is listed, ACR goes silent."""
        spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.LINEAR,
                              Phase.LIN_OIN,
                              duration_ns=SWEEP_DURATION_NS)
        blocklist = HostsFileBlocklist(
            [f"eu-acr{i}.alphonso.tv" for i in range(1, 7)])
        result = run_experiment(spec, seed=0, dns_blocklist=blocklist)
        pipeline = AuditPipeline.from_result(result)
        assert acr_volume_total(pipeline) == 0.0

    def test_platform_traffic_survives_block(self):
        """Blocking ACR must not kill unrelated platform domains."""
        spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.LINEAR,
                              Phase.LIN_OIN,
                              duration_ns=SWEEP_DURATION_NS)
        result = run_experiment(spec, seed=0,
                                dns_blocklist=stale_hosts_snapshot())
        pipeline = AuditPipeline.from_result(result)
        assert any("lg" in d for d in pipeline.contacted_domains)

    def test_trial_detects_leak_or_block(self):
        trial = run_trial(seed=0)
        assert trial.baseline_kb > 100
        assert trial.leaked == (not trial.listed)

    def test_evaluation_finds_rotation_leak(self):
        """Across enough seeds, some rotation index escapes the stale
        snapshot (indices 5-6 are ~1/3 of the pool)."""
        evaluation = run_evaluation(list(range(8)))
        assert 0.0 < evaluation.leak_rate < 1.0
        for trial in evaluation.leaked_trials:
            index = int(trial.active_domain.split(".")[0][-1])
            assert index > 4  # precisely the unlisted rotation indices
