"""Tests for the reference library and the LSH-banded matcher."""

import pytest

from repro.acr import (Capture, FingerprintMatcher, ReferenceLibrary,
                       bands_of, capture_state)
from repro.media import PlayState, build_channel, standard_library
from repro.sim import seconds


@pytest.fixture(scope="module")
def library():
    return standard_library("uk", seed=3)


@pytest.fixture(scope="module")
def reference(library):
    ref = ReferenceLibrary()
    ref.ingest_all(library.reference_items)
    return ref


@pytest.fixture(scope="module")
def matcher(reference):
    return FingerprintMatcher(reference)


class TestReferenceLibrary:
    def test_ingest_counts_samples(self, library):
        ref = ReferenceLibrary(sample_interval_s=2, max_seconds=20)
        added = ref.ingest(library.shows[0])
        assert added == 10

    def test_ingest_idempotent(self, library):
        ref = ReferenceLibrary()
        ref.ingest(library.shows[0])
        assert ref.ingest(library.shows[0]) == 0

    def test_short_item_fully_sampled(self, library):
        ref = ReferenceLibrary(sample_interval_s=2)
        ad = library.ads[0]
        added = ref.ingest(ad)
        assert added == -(-ad.duration_s // 2)  # ceil

    def test_knows(self, reference, library):
        assert reference.knows(library.shows[0].content_id)
        assert not reference.knows("nope")

    def test_item_lookup(self, reference, library):
        item = library.shows[0]
        assert reference.item(item.content_id) is item
        with pytest.raises(KeyError):
            reference.item("missing")

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ReferenceLibrary(sample_interval_s=0)


class TestBands:
    def test_band_count_and_width(self):
        bands = bands_of(0x1111222233334444)
        assert bands == (0x1111, 0x2222, 0x3333, 0x4444)

    def test_nearby_hash_shares_band(self):
        """Pigeonhole: Hamming distance 3 over 4 bands shares one band."""
        original = 0xAAAABBBBCCCCDDDD
        corrupted = original ^ 0b111  # 3 bit flips in the last band
        shared = set(bands_of(original)) & set(bands_of(corrupted))
        assert shared


class TestMatcher:
    def test_exact_position_match(self, matcher, library):
        item = library.shows[0]
        capture = capture_state(PlayState(item, 50.0))
        match = matcher.match_capture(capture)
        assert match is not None
        assert match.content_id == item.content_id
        # Within the same 8 s scene of the true position.
        assert abs(match.position_s - 50) <= 8

    def test_drifted_frame_still_matches(self, matcher, library):
        """Off-grid positions (between reference samples) match too."""
        item = library.shows[1]
        capture = capture_state(PlayState(item, 51.0))  # refs at 50, 52
        match = matcher.match_capture(capture)
        assert match is not None
        assert match.content_id == item.content_id

    def test_unknown_content_no_match(self, matcher, library):
        capture = capture_state(PlayState(library.game(), 100.0))
        assert matcher.match_capture(capture) is None

    def test_batch_vote(self, matcher, library):
        channel = build_channel("C1", library)
        captures = [capture_state(channel.playing_at(seconds(100 + i)))
                    for i in range(8)]
        verdict = matcher.match_batch(captures)
        assert verdict.recognised
        assert verdict.content_id == channel.playing_at(
            seconds(104)).item.content_id
        assert verdict.confidence > 0.5

    def test_empty_batch(self, matcher):
        verdict = matcher.match_batch([])
        assert not verdict.recognised
        assert verdict.total == 0

    def test_batch_of_unknown_content(self, matcher, library):
        captures = [capture_state(PlayState(library.desktop(), float(i)))
                    for i in range(8)]
        verdict = matcher.match_batch(captures)
        assert not verdict.recognised

    def test_mixed_batch_majority_wins(self, matcher, library):
        item = library.shows[2]
        known = [capture_state(PlayState(item, 20.0 + i)) for i in range(6)]
        unknown = [capture_state(PlayState(library.game(), float(i)))
                   for i in range(2)]
        verdict = matcher.match_batch(known + unknown)
        assert verdict.recognised
        assert verdict.content_id == item.content_id

    def test_tolerance_zero_still_matches_on_grid(self, reference,
                                                  library):
        strict = FingerprintMatcher(reference, hamming_tolerance=0)
        item = library.shows[0]
        capture = capture_state(PlayState(item, 50.0))  # on the 2 s grid
        match = strict.match_capture(capture)
        assert match is not None and match.video_distance == 0

    def test_negative_tolerance_rejected(self, reference):
        with pytest.raises(ValueError):
            FingerprintMatcher(reference, hamming_tolerance=-1)

    def test_incremental_reindex(self, library):
        ref = ReferenceLibrary()
        ref.ingest(library.shows[0])
        matcher = FingerprintMatcher(ref)
        ref.ingest(library.shows[5])
        capture = capture_state(PlayState(library.shows[5], 10.0))
        match = matcher.match_capture(capture)  # triggers lazy reindex
        assert match is not None
        assert match.content_id == library.shows[5].content_id

    def test_recognition_rate_over_catalog(self, matcher, library):
        """>90% of on-grid captures across many items are recognised."""
        hits = 0
        trials = 0
        for item in library.shows[:10]:
            for position in (10.0, 60.0, 120.0):
                capture = capture_state(PlayState(item, position))
                match = matcher.match_capture(capture)
                trials += 1
                if match and match.content_id == item.content_id:
                    hits += 1
        assert hits / trials > 0.9
