"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.vendor == "lg"
        assert args.country == "uk"
        assert args.phase == "LIn-OIn"

    def test_invalid_vendor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--vendor", "philips"])

    def test_scorecard_vendors_selection_errors_exit_2(self, capsys):
        # Unknown names, paper-pair subsets (S checks need both) and
        # empty selections are usage errors, never silent no-ops.
        assert main(["scorecard", "--vendors", "philips"]) == 2
        assert "unknown vendors" in capsys.readouterr().err
        assert main(["scorecard", "--vendors", "samsung"]) == 2
        assert "need samsung and lg" in capsys.readouterr().err
        assert main(["report", "--vendors", " , "]) == 2
        assert "empty vendor selection" in capsys.readouterr().err

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_grid_defaults(self):
        args = build_parser().parse_args(["grid"])
        assert args.jobs == 1
        assert args.seed == 7
        assert args.filter == []
        assert args.minutes == 60
        assert not args.no_cache
        assert args.cache_dir is None

    def test_grid_filters_accumulate(self):
        args = build_parser().parse_args(
            ["grid", "--filter", "vendor=lg", "--filter", "country=uk"])
        assert args.filter == ["vendor=lg", "country=uk"]

    def test_scorecard_and_report_take_grid_options(self):
        assert build_parser().parse_args(
            ["scorecard", "--jobs", "4"]).jobs == 4
        assert build_parser().parse_args(
            ["report", "--seed", "9"]).seed == 9


class TestRunCommand:
    def test_run_and_audit_roundtrip(self, tmp_path, capsys):
        pcap = str(tmp_path / "cap.pcap")
        code = main(["run", "--vendor", "lg", "--minutes", "8",
                     "--seed", "3", "--out", pcap])
        assert code == 0
        out = capsys.readouterr().out
        assert "captured" in out and "OK" in out

        code = main(["audit", pcap])
        assert code == 0
        out = capsys.readouterr().out
        assert "eu-acr" in out
        assert "validated" in out

    def test_run_without_out_prints_audit(self, capsys):
        code = main(["run", "--vendor", "samsung", "--minutes", "8",
                     "--scenario", "idle"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ACR domain" in out or "no ACR candidate" in out

    def test_optout_run_shows_no_acr(self, capsys):
        code = main(["run", "--minutes", "8", "--phase", "LOut-OOut"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no ACR candidate domains" in out
