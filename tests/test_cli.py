"""Tests for the command-line interface."""

import json

import pytest

import repro.experiments
from repro.cli import build_parser, main
from repro.findings import (Evidence, Finding, FindingsLedger,
                            write_findings_jsonl)


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.vendor == "lg"
        assert args.country == "uk"
        assert args.phase == "LIn-OIn"

    def test_invalid_vendor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--vendor", "philips"])

    def test_scorecard_vendors_selection_errors_exit_2(self, capsys):
        # Unknown names, paper-pair subsets (S checks need both) and
        # empty selections are usage errors, never silent no-ops.
        assert main(["scorecard", "--vendors", "philips"]) == 2
        assert "unknown vendors" in capsys.readouterr().err
        assert main(["scorecard", "--vendors", "samsung"]) == 2
        assert "need samsung and lg" in capsys.readouterr().err
        assert main(["report", "--vendors", " , "]) == 2
        assert "empty vendor selection" in capsys.readouterr().err

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_grid_defaults(self):
        args = build_parser().parse_args(["grid"])
        assert args.jobs == 1
        assert args.seed == 7
        assert args.filter == []
        assert args.minutes == 60
        assert not args.no_cache
        assert args.cache_dir is None

    def test_grid_filters_accumulate(self):
        args = build_parser().parse_args(
            ["grid", "--filter", "vendor=lg", "--filter", "country=uk"])
        assert args.filter == ["vendor=lg", "country=uk"]

    def test_scorecard_and_report_take_grid_options(self):
        assert build_parser().parse_args(
            ["scorecard", "--jobs", "4"]).jobs == 4
        assert build_parser().parse_args(
            ["report", "--seed", "9"]).seed == 9


def _fabricated_checks(s2_passes):
    """A tiny scorecard stand-in so the exit-code matrix needs no grid."""
    return [
        Finding(code="S1", title="fabricated pass", severity="high",
                passed=True, evidence=(Evidence(text="ok"),)),
        Finding(code="S2", title="fabricated verdict", severity="medium",
                passed=s2_passes, evidence=(Evidence(text="measured"),)),
    ]


class TestScorecardExitCodes:
    """The documented matrix: 0 all-pass, 1 any-fail, 2 bad --vendors.

    (Exit 2 is covered by ``test_scorecard_vendors_selection_errors``
    above; these two pin the verdict-driven codes without running the
    simulation grid.)
    """

    def test_all_checks_passing_exits_0(self, monkeypatch, capsys):
        monkeypatch.setattr(repro.experiments, "run_all_checks",
                            lambda **kwargs: _fabricated_checks(True))
        assert main(["scorecard"]) == 0
        out = capsys.readouterr().out
        assert "[PASS] S1: fabricated pass" in out
        assert "[FAIL]" not in out

    def test_any_failed_finding_exits_1(self, monkeypatch, capsys):
        monkeypatch.setattr(repro.experiments, "run_all_checks",
                            lambda **kwargs: _fabricated_checks(False))
        assert main(["scorecard"]) == 1
        assert "[FAIL] S2: fabricated verdict" in \
            capsys.readouterr().out

    def test_findings_out_exports_the_ledger(self, monkeypatch,
                                             tmp_path, capsys):
        monkeypatch.setattr(repro.experiments, "run_all_checks",
                            lambda **kwargs: _fabricated_checks(False))
        path = str(tmp_path / "findings.jsonl")
        assert main(["scorecard", "--findings-out", path]) == 1
        capsys.readouterr()
        lines = [json.loads(line)
                 for line in open(path, encoding="utf-8")]
        assert lines[0]["record"] == "meta" and lines[0]["schema"] == 1
        assert lines[0]["vendors"] == "all" and "jobs" not in lines[0]
        assert [record["code"] for record in lines[1:]] == ["S1", "S2"]
        # A self-diff of the export reports zero changes and exits 0.
        assert main(["findings", "diff", path, path]) == 0
        assert "no changes" in capsys.readouterr().out


class TestFindingsDiffCommand:
    def _export(self, path, findings):
        write_findings_jsonl(str(path), FindingsLedger(findings))
        return str(path)

    def test_regression_exits_1(self, tmp_path, capsys):
        old = self._export(tmp_path / "old.jsonl",
                           _fabricated_checks(True))
        new = self._export(tmp_path / "new.jsonl",
                           _fabricated_checks(False))
        assert main(["findings", "diff", old, new]) == 1
        out = capsys.readouterr().out
        assert "regressions: 1" in out and "S2" in out
        # The reverse direction only resolves — exit 0.
        assert main(["findings", "diff", new, old]) == 0
        assert "resolved: 1" in capsys.readouterr().out

    def test_unreadable_file_exits_2(self, tmp_path, capsys):
        path = self._export(tmp_path / "ok.jsonl",
                            _fabricated_checks(True))
        missing = str(tmp_path / "missing.jsonl")
        assert main(["findings", "diff", missing, path]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_file_exits_2(self, tmp_path, capsys):
        good = self._export(tmp_path / "ok.jsonl",
                            _fabricated_checks(True))
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        assert main(["findings", "diff", good, str(bad)]) == 2
        assert "invalid findings file" in capsys.readouterr().err

    def test_diff_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["findings"])


class TestRunCommand:
    def test_run_and_audit_roundtrip(self, tmp_path, capsys):
        pcap = str(tmp_path / "cap.pcap")
        code = main(["run", "--vendor", "lg", "--minutes", "8",
                     "--seed", "3", "--out", pcap])
        assert code == 0
        out = capsys.readouterr().out
        assert "captured" in out and "OK" in out

        code = main(["audit", pcap])
        assert code == 0
        out = capsys.readouterr().out
        assert "eu-acr" in out
        assert "validated" in out

    def test_run_without_out_prints_audit(self, capsys):
        code = main(["run", "--vendor", "samsung", "--minutes", "8",
                     "--scenario", "idle"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ACR domain" in out or "no ACR candidate" in out

    def test_optout_run_shows_no_acr(self, capsys):
        code = main(["run", "--minutes", "8", "--phase", "LOut-OOut"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no ACR candidate domains" in out
