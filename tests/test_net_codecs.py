"""Unit + property tests for the Ethernet/IPv4/TCP/UDP codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (EthernetFrame, Ipv4Address, Ipv4Packet, MacAddress,
                       TcpSegment, UdpDatagram)
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.net.ip import PROTO_TCP, PROTO_UDP
from repro.net.tcp import (FLAG_ACK, FLAG_PSH, FLAG_SYN, flag_names)

MAC_A = MacAddress.parse("02:00:00:00:00:01")
MAC_B = MacAddress.parse("02:00:00:00:00:02")
IP_A = Ipv4Address.parse("192.168.1.50")
IP_B = Ipv4Address.parse("203.0.113.10")


class TestChecksum:
    def test_rfc1071_example(self):
        # Classic example from RFC 1071 section 3.
        data = bytes.fromhex("00010203040506070809")
        checksum = internet_checksum(data)
        buffer = bytearray(data) + checksum.to_bytes(2, "big")
        assert verify_checksum(bytes(buffer))

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF


class TestEthernet:
    def test_roundtrip(self):
        frame = EthernetFrame(MAC_B, MAC_A, ETHERTYPE_IPV4, b"payload")
        decoded = EthernetFrame.decode(frame.encode())
        assert decoded.dst == MAC_B
        assert decoded.src == MAC_A
        assert decoded.ethertype == ETHERTYPE_IPV4
        assert decoded.payload == b"payload"

    def test_too_short(self):
        with pytest.raises(ValueError):
            EthernetFrame.decode(b"\x00" * 13)

    def test_len(self):
        frame = EthernetFrame(MAC_B, MAC_A, ETHERTYPE_IPV4, b"xy")
        assert len(frame) == 16

    @given(st.binary(max_size=512))
    def test_roundtrip_property(self, payload):
        frame = EthernetFrame(MAC_A, MAC_B, 0x0800, payload)
        assert EthernetFrame.decode(frame.encode()).payload == payload


class TestIpv4:
    def test_roundtrip(self):
        packet = Ipv4Packet(IP_A, IP_B, PROTO_TCP, b"data", ttl=57,
                            identification=0x1234)
        decoded = Ipv4Packet.decode(packet.encode())
        assert decoded.src == IP_A
        assert decoded.dst == IP_B
        assert decoded.protocol == PROTO_TCP
        assert decoded.ttl == 57
        assert decoded.identification == 0x1234
        assert decoded.payload == b"data"

    def test_checksum_verified(self):
        raw = bytearray(Ipv4Packet(IP_A, IP_B, PROTO_UDP, b"x").encode())
        raw[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(ValueError):
            Ipv4Packet.decode(bytes(raw))

    def test_decode_without_verification_tolerates_corruption(self):
        raw = bytearray(Ipv4Packet(IP_A, IP_B, PROTO_UDP, b"x").encode())
        raw[8] ^= 0xFF
        decoded = Ipv4Packet.decode(bytes(raw), verify=False)
        assert decoded.ttl == 64 ^ 0xFF

    def test_not_ipv4(self):
        raw = bytearray(Ipv4Packet(IP_A, IP_B, 6, b"").encode())
        raw[0] = (6 << 4) | 5
        with pytest.raises(ValueError):
            Ipv4Packet.decode(bytes(raw))

    def test_truncated(self):
        with pytest.raises(ValueError):
            Ipv4Packet.decode(b"\x45\x00")

    def test_total_length_enforced(self):
        packet = Ipv4Packet(IP_A, IP_B, PROTO_TCP, b"hello")
        raw = packet.encode()
        assert int.from_bytes(raw[2:4], "big") == len(raw)

    @given(st.binary(max_size=1400))
    def test_roundtrip_property(self, payload):
        packet = Ipv4Packet(IP_A, IP_B, PROTO_TCP, payload)
        assert Ipv4Packet.decode(packet.encode()).payload == payload


class TestUdp:
    def test_roundtrip(self):
        datagram = UdpDatagram(40001, 53, b"query")
        decoded = UdpDatagram.decode(datagram.encode(IP_A, IP_B))
        assert decoded.src_port == 40001
        assert decoded.dst_port == 53
        assert decoded.payload == b"query"

    def test_invalid_port(self):
        with pytest.raises(ValueError):
            UdpDatagram(70000, 53, b"")

    def test_truncated(self):
        with pytest.raises(ValueError):
            UdpDatagram.decode(b"\x00" * 7)

    @given(st.binary(max_size=1200))
    def test_roundtrip_property(self, payload):
        datagram = UdpDatagram(1234, 5678, payload)
        decoded = UdpDatagram.decode(datagram.encode(IP_A, IP_B))
        assert decoded.payload == payload


class TestTcp:
    def test_roundtrip_with_mss(self):
        segment = TcpSegment(40001, 443, seq=1000, ack=2000,
                             flags=FLAG_SYN, mss_option=1460)
        decoded = TcpSegment.decode(segment.encode(IP_A, IP_B))
        assert decoded.src_port == 40001
        assert decoded.dst_port == 443
        assert decoded.seq == 1000
        assert decoded.ack == 2000
        assert decoded.flags == FLAG_SYN
        assert decoded.mss_option == 1460

    def test_roundtrip_payload(self):
        segment = TcpSegment(1, 2, 3, 4, FLAG_ACK | FLAG_PSH,
                             payload=b"tls bytes")
        decoded = TcpSegment.decode(segment.encode(IP_A, IP_B))
        assert decoded.payload == b"tls bytes"
        assert decoded.mss_option == 0

    def test_seq_wraps(self):
        segment = TcpSegment(1, 2, (1 << 32) + 5, 0, FLAG_ACK)
        assert segment.seq == 5

    def test_flag_names(self):
        assert flag_names(FLAG_SYN | FLAG_ACK) == "SYN|ACK"
        assert flag_names(0) == "none"

    def test_truncated(self):
        with pytest.raises(ValueError):
            TcpSegment.decode(b"\x00" * 19)

    @given(st.binary(max_size=1460),
           st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, payload, seq):
        segment = TcpSegment(40000, 443, seq, 77, FLAG_ACK, payload=payload)
        decoded = TcpSegment.decode(segment.encode(IP_A, IP_B))
        assert decoded.payload == payload
        assert decoded.seq == seq
