"""Cross-module property-based tests on core invariants.

These complement the per-module property tests: they exercise whole
sub-stacks (codec compositions, flow accounting, batch codec, timelines)
under hypothesis-generated inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acr import Capture, FingerprintBatch, bands_of, hamming_distance
from repro.analysis import Timeline, cumulative_bytes, packets_per_ms
from repro.net import (CapturedPacket, FlowTable, Ipv4Address, MacAddress,
                       TcpSegment, decode_all, decode_packet, dump_bytes,
                       load_bytes)
from repro.net.checksum import incremental_update, internet_checksum
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.ip import PROTO_TCP, PROTO_UDP, Ipv4Packet
from repro.net.packet import LazyPacket
from repro.net.tcp import FLAG_ACK
from repro.net.udp import UdpDatagram

MAC_A = MacAddress.parse("02:00:00:00:00:01")
MAC_B = MacAddress.parse("02:00:00:00:00:02")

addresses = st.integers(min_value=1, max_value=(1 << 32) - 2).map(
    Ipv4Address)
ports = st.integers(min_value=1, max_value=65535)


def _frame(src_ip, dst_ip, sport, dport, payload):
    segment = TcpSegment(sport, dport, 1, 2, FLAG_ACK, payload=payload)
    ip = Ipv4Packet(src_ip, dst_ip, PROTO_TCP,
                    segment.encode(src_ip, dst_ip))
    return EthernetFrame(MAC_B, MAC_A, ETHERTYPE_IPV4,
                         ip.encode()).encode()


class TestFullStackCodec:
    @given(addresses, addresses, ports, ports,
           st.binary(max_size=1200),
           st.integers(min_value=0, max_value=2 ** 50))
    @settings(max_examples=60)
    def test_compose_decode_roundtrip(self, src, dst, sport, dport,
                                      payload, ts):
        packet = CapturedPacket(ts, _frame(src, dst, sport, dport,
                                           payload))
        decoded = decode_packet(packet)
        assert decoded.src_ip == src
        assert decoded.dst_ip == dst
        assert decoded.src_port == sport
        assert decoded.dst_port == dport
        assert decoded.transport_payload == payload

    @given(st.lists(st.tuples(addresses, addresses, ports, ports,
                              st.binary(max_size=200)),
                    min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_pcap_never_loses_packets(self, items):
        packets = [CapturedPacket(i * 1000,
                                  _frame(src, dst, sport, dport, payload))
                   for i, (src, dst, sport, dport, payload)
                   in enumerate(items)]
        assert len(load_bytes(dump_bytes(packets))) == len(packets)

    @given(st.lists(st.tuples(addresses, addresses, ports, ports),
                    min_size=1, max_size=40))
    @settings(max_examples=30)
    def test_flow_bytes_conserved(self, tuples):
        """Sum of per-flow bytes equals total capture bytes."""
        packets = [CapturedPacket(i, _frame(src, dst, sport, dport, b"x"))
                   for i, (src, dst, sport, dport) in enumerate(tuples)]
        decoded = decode_all(packets)
        table = FlowTable()
        table.add_all(decoded)
        assert sum(f.total_bytes for f in table.flows) == \
            sum(p.length for p in decoded)

    @given(st.lists(st.tuples(addresses, addresses, ports, ports),
                    min_size=1, max_size=40))
    @settings(max_examples=20)
    def test_flow_direction_symmetry(self, tuples):
        """A->B and B->A land in the same flow."""
        tuples = [(src, dst, sport, dport)
                  for src, dst, sport, dport in tuples
                  if (src.value, sport) != (dst.value, dport)]
        if not tuples:
            return
        packets = []
        for i, (src, dst, sport, dport) in enumerate(tuples):
            packets.append(CapturedPacket(
                2 * i, _frame(src, dst, sport, dport, b"x")))
            packets.append(CapturedPacket(
                2 * i + 1, _frame(dst, src, dport, sport, b"y")))
        table = FlowTable()
        table.add_all(decode_all(packets))
        for flow in table.flows:
            assert flow.packets_ab > 0 and flow.packets_ba > 0


def _udp_frame(src_ip, dst_ip, sport, dport, payload):
    datagram = UdpDatagram(sport, dport, payload)
    ip = Ipv4Packet(src_ip, dst_ip, PROTO_UDP,
                    datagram.encode(src_ip, dst_ip))
    return EthernetFrame(MAC_B, MAC_A, ETHERTYPE_IPV4,
                         ip.encode()).encode()


def _outcome(tier, data):
    """(flow key tuple) on success, or the exception type on failure."""
    try:
        packet = tier(CapturedPacket(7, data))
    except ValueError:
        return ValueError
    return (packet.src_ip, packet.dst_ip, packet.src_port,
            packet.dst_port, packet.flow_proto, packet.length)


class TestLazyVsFullDecode:
    """The lazy tier must be observationally identical to the full
    decoder: same flow keys and lengths on well-formed frames, and the
    same raise-vs-tolerate behaviour on truncated or mutated bytes."""

    @given(addresses, addresses, ports, ports, st.binary(max_size=600),
           st.booleans())
    @settings(max_examples=60)
    def test_flow_keys_match_on_wellformed_frames(self, src, dst, sport,
                                                  dport, payload, use_udp):
        frame = (_udp_frame if use_udp else _frame)(
            src, dst, sport, dport, payload)
        assert _outcome(lambda p: LazyPacket(p.timestamp, p.data),
                        frame) == _outcome(decode_packet, frame)

    @given(addresses, addresses, ports, ports, st.binary(max_size=300),
           st.data())
    @settings(max_examples=80)
    def test_truncation_raises_identically(self, src, dst, sport, dport,
                                           payload, data):
        frame = _frame(src, dst, sport, dport, payload)
        cut = data.draw(st.integers(min_value=0,
                                    max_value=len(frame) - 1))
        truncated = frame[:cut]
        lazy = _outcome(lambda p: LazyPacket(p.timestamp, p.data),
                        truncated)
        full = _outcome(decode_packet, truncated)
        assert (lazy == ValueError) == (full == ValueError)
        if lazy != ValueError:
            assert lazy == full

    @given(addresses, addresses, ports, ports, st.binary(max_size=200),
           st.data())
    @settings(max_examples=80)
    def test_mutation_raises_identically(self, src, dst, sport, dport,
                                         payload, data):
        """Mutations in the layers the lazy tier parses (Ethernet + the
        IPv4 header) must raise identically; anywhere deeper the lazy
        tier may only be *more* tolerant (it defers transport decode),
        never stricter."""
        frame = bytearray(_frame(src, dst, sport, dport, payload))
        index = data.draw(st.integers(min_value=0,
                                      max_value=len(frame) - 1))
        value = data.draw(st.integers(min_value=0, max_value=255))
        frame[index] = value
        mutated = bytes(frame)
        lazy = _outcome(lambda p: LazyPacket(p.timestamp, p.data),
                        mutated)
        full = _outcome(decode_packet, mutated)
        if lazy == ValueError:
            assert full == ValueError
        elif full != ValueError:
            assert lazy == full

    @given(addresses, addresses, ports, st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1,
        max_size=20))
    @settings(max_examples=30)
    def test_dns_views_agree(self, src, dst, sport, label):
        from repro.net.dns import DnsMessage
        query = DnsMessage.query(7, f"{label}.example")
        frame = _udp_frame(src, dst, sport, 53, query.encode())
        lazy = LazyPacket(11, frame)
        full = decode_packet(CapturedPacket(11, frame))
        assert lazy.dns is not None and full.dns is not None
        assert [q.name for q in lazy.dns.questions] == \
            [q.name for q in full.dns.questions]


class TestIncrementalChecksum:
    """RFC 1624 incremental update vs recompute-from-scratch."""

    @given(st.binary(min_size=2, max_size=120).filter(
        lambda b: len(b) % 2 == 0), st.data())
    @settings(max_examples=120)
    def test_patch_equals_recompute(self, header, data):
        offset = data.draw(st.integers(
            min_value=0, max_value=len(header) // 2 - 1)) * 2
        width = data.draw(st.integers(
            min_value=1, max_value=(len(header) - offset) // 2)) * 2
        new_bytes = data.draw(st.binary(min_size=width, max_size=width))
        patched = header[:offset] + new_bytes + header[offset + width:]
        if not any(patched):
            return  # the all-zero buffer is the documented exclusion
        original = internet_checksum(header)
        updated = incremental_update(
            original, header[offset:offset + width], new_bytes)
        assert updated == internet_checksum(patched)

    @given(st.binary(min_size=20, max_size=60).filter(
        lambda b: len(b) % 2 == 0 and any(b)), st.data())
    @settings(max_examples=60)
    def test_patch_chain_equals_recompute(self, header, data):
        """Several successive patches accumulate correctly."""
        current = bytearray(header)
        checksum = internet_checksum(bytes(current))
        for __ in range(data.draw(st.integers(min_value=1, max_value=4))):
            offset = data.draw(st.integers(
                min_value=0, max_value=len(current) // 2 - 1)) * 2
            new_word = data.draw(st.binary(min_size=2, max_size=2))
            old_word = bytes(current[offset:offset + 2])
            current[offset:offset + 2] = new_word
            if not any(current):
                return
            checksum = incremental_update(checksum, old_word, new_word)
            assert checksum == internet_checksum(bytes(current))


class TestFingerprintProperties:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=63))
    @settings(max_examples=100)
    def test_banding_pigeonhole(self, base, bit):
        """Any 1-bit corruption still shares 3 of 4 bands."""
        corrupted = base ^ (1 << bit)
        shared = sum(1 for a, b in zip(bands_of(base), bands_of(corrupted))
                     if a == b)
        assert shared == 3
        assert hamming_distance(base, corrupted) == 1

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=2 ** 31),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.lists(st.integers(min_value=0, max_value=2 ** 32 - 1),
                 max_size=10)), max_size=20),
        st.text(alphabet="abcdef0123456789-", min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_batch_codec_roundtrip(self, captures_data, device_id):
        captures = [Capture(offset * 1_000_000, video, audio)
                    for offset, video, audio in captures_data]
        batch = FingerprintBatch(device_id, captures)
        decoded = FingerprintBatch.decode(batch.encode())
        assert decoded.device_id == device_id
        assert [c.video_hash for c in decoded.captures] == \
            [c.video_hash for c in captures]
        assert [c.audio_hashes for c in decoded.captures] == \
            [c.audio_hashes for c in captures]


class TestAnalysisProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 12),
                    min_size=1, max_size=200))
    @settings(max_examples=40)
    def test_timeline_total_equals_in_window_count(self, timestamps):
        packets = [CapturedPacket(ts, _frame(
            Ipv4Address.parse("10.0.0.1"), Ipv4Address.parse("10.0.0.2"),
            1000, 2000, b"")) for ts in timestamps]
        decoded = decode_all(packets)
        start, end = 0, 10 ** 12 + 1
        timeline = packets_per_ms(decoded, start, end)
        assert timeline.total_packets == len(decoded)

    @given(st.lists(st.integers(min_value=0, max_value=10 ** 11),
                    min_size=1, max_size=100),
           st.integers(min_value=2, max_value=50))
    @settings(max_examples=30)
    def test_rebin_preserves_mass(self, timestamps, factor):
        packets = decode_all([CapturedPacket(ts, _frame(
            Ipv4Address.parse("10.0.0.1"), Ipv4Address.parse("10.0.0.2"),
            1000, 2000, b"")) for ts in timestamps])
        timeline = packets_per_ms(packets, 0, 10 ** 11 + 1)
        # Rebinning can only drop packets in the truncated tail remainder.
        coarse = timeline.rebin(factor)
        tail = timeline.counts[len(coarse.counts) * factor:].sum()
        assert coarse.total_packets + tail == timeline.total_packets

    @given(st.lists(st.integers(min_value=0, max_value=10 ** 11),
                    min_size=1, max_size=100))
    @settings(max_examples=30)
    def test_cumulative_curve_invariants(self, timestamps):
        packets = decode_all([CapturedPacket(ts, _frame(
            Ipv4Address.parse("10.0.0.1"), Ipv4Address.parse("10.0.0.2"),
            1000, 2000, b"")) for ts in timestamps])
        curve = cumulative_bytes(packets, 0, 10 ** 11 + 1)
        assert curve.total_bytes == sum(p.length for p in packets)
        diffs = np.diff(curve.cumulative_bytes)
        assert (diffs >= 0).all()
        fractions = curve.fraction_curve()
        assert fractions[-1] == pytest.approx(1.0)
