"""Tests for the ACR client state machine, backend, and segmentation."""

import pytest

from repro.acr import (AcrBackend, AcrClient, AcrTransport, CaptureDecision,
                       FingerprintBatch, ReferenceLibrary, SegmentProfiler,
                       capture_decision, capture_state, profile_for)
from repro.media import (HdmiInput, HomeScreen, OttApp, PlayState,
                         ScreenCast, SourceType, Tuner, build_channel,
                         standard_library, ContentItem, ContentKind)
from repro.sim import minutes, seconds


@pytest.fixture(scope="module")
def library():
    return standard_library("uk", seed=3)


@pytest.fixture(scope="module")
def reference(library):
    ref = ReferenceLibrary()
    ref.ingest_all(library.reference_items)
    return ref


class RecordingTransport(AcrTransport):
    """Test double that records sends and feeds a backend."""

    def __init__(self, backend=None):
        self.backend = backend
        self.sends = []
        self.batches = []

    def send(self, at_ns, domain, request_bytes, response_bytes,
             request_plaintext=None, response_plaintext=None):
        self.sends.append((at_ns, domain, request_bytes, response_bytes))

    def deliver_batch(self, at_ns, domain, batch):
        self.batches.append((at_ns, domain, batch))
        if self.backend is None:
            return None
        return self.backend.ingest(batch, at_ns)


def _client(vendor, country, source, transport, enabled=True,
            domain="acr.test"):
    profile = profile_for(vendor, country)
    return AcrClient(
        device_id="tv-0001",
        profile=profile,
        enabled_fn=lambda: enabled,
        source_fn=lambda: source,
        transport=transport,
        domain_fn=lambda at: domain,
    )


def _run_ticks(client, count):
    interval = client.profile.batch_interval_ns
    for i in range(1, count + 1):
        client.batch_tick(i * interval)


class TestPolicyTable:
    @pytest.mark.parametrize("vendor", ["lg", "samsung"])
    @pytest.mark.parametrize("country", ["uk", "us"])
    def test_linear_and_hdmi_always_full(self, vendor, country):
        assert capture_decision(vendor, country, SourceType.TUNER) is \
            CaptureDecision.FULL
        assert capture_decision(vendor, country, SourceType.HDMI) is \
            CaptureDecision.FULL

    @pytest.mark.parametrize("vendor", ["lg", "samsung"])
    def test_fast_uk_vs_us(self, vendor):
        assert capture_decision(vendor, "uk", SourceType.FAST) is \
            CaptureDecision.BEACON
        assert capture_decision(vendor, "us", SourceType.FAST) is \
            CaptureDecision.FULL

    def test_ott_never_full(self):
        for vendor in ("lg", "samsung"):
            for country in ("uk", "us"):
                assert capture_decision(vendor, country, SourceType.OTT) \
                    is not CaptureDecision.FULL

    def test_samsung_us_silent_sources(self):
        assert capture_decision("samsung", "us", SourceType.OTT) is \
            CaptureDecision.SILENT
        assert capture_decision("samsung", "us", SourceType.CAST) is \
            CaptureDecision.SILENT

    def test_profiles_cadence(self):
        lg = profile_for("lg", "uk")
        samsung = profile_for("samsung", "uk")
        assert lg.batch_interval_ns == seconds(15)
        assert lg.captures_per_batch == 1500   # 10 ms captures
        assert samsung.batch_interval_ns == seconds(60)
        assert samsung.captures_per_batch == 120  # 500 ms captures

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            profile_for("philips", "uk")
        with pytest.raises(KeyError):
            profile_for("vizio", "de")  # registered vendor, bad country


class TestClientModes:
    def test_linear_sends_full_batches(self, library):
        channel = build_channel("C1", library)
        transport = RecordingTransport()
        client = _client("lg", "uk", Tuner(channel), transport)
        _run_ticks(client, 4)
        assert client.stats.full_batches == 4
        assert len(transport.sends) == 4
        # Full LG batch: 1500 captures x 12 B plus header.
        assert transport.sends[0][2] >= 1500 * 12

    def test_ott_sends_beacons_only(self, library):
        app = OttApp("netflix", [library.movies[0]])
        transport = RecordingTransport()
        client = _client("lg", "uk", app, transport)
        _run_ticks(client, 4)
        assert client.stats.beacons == 4
        assert client.stats.full_batches == 0
        assert transport.batches == []  # no fingerprints left the TV
        assert transport.sends[0][2] < 2000

    def test_beacon_peaks_every_minute(self, library):
        """LG: every 4th 15 s slot is a larger 'peak' beacon."""
        app = OttApp("netflix", [library.movies[0]])
        transport = RecordingTransport()
        client = _client("lg", "uk", app, transport)
        _run_ticks(client, 8)
        sizes = [send[2] for send in transport.sends]
        assert sizes[3] > sizes[0]
        assert sizes[7] > sizes[4]

    def test_opted_out_total_silence(self, library):
        channel = build_channel("C1", library)
        transport = RecordingTransport()
        client = _client("lg", "uk", Tuner(channel), transport,
                         enabled=False)
        _run_ticks(client, 8)
        assert transport.sends == []
        assert transport.batches == []
        assert client.stats.disabled_slots == 8

    def test_samsung_home_silent(self, library):
        ui = ContentItem("ui:home", "Home", ContentKind.UI, 86400, "news")
        transport = RecordingTransport()
        client = _client("samsung", "uk", HomeScreen(ui), transport)
        _run_ticks(client, 4)
        assert transport.sends == []
        assert client.stats.silent_slots == 4

    def test_cast_beacons_scaled_for_samsung(self, library):
        movie = library.movies[0]
        cast_transport = RecordingTransport()
        cast_client = _client("samsung", "uk", ScreenCast(movie),
                              cast_transport)
        ott_transport = RecordingTransport()
        ott_client = _client("samsung", "uk", OttApp("netflix", [movie]),
                             ott_transport)
        _run_ticks(cast_client, 2)
        _run_ticks(ott_client, 2)
        assert cast_transport.sends[0][2] > ott_transport.sends[0][2]


class TestBackoff:
    def test_samsung_backs_off_on_unrecognised_hdmi(self, library,
                                                    reference):
        backend = AcrBackend("samsung-ads", reference)
        transport = RecordingTransport(backend)
        hdmi = HdmiInput([library.game()], dwell_s=10000)
        client = _client("samsung", "uk", hdmi, transport)
        _run_ticks(client, 8)
        assert client.stats.skipped_backoff > 0
        assert client.stats.full_batches < 8

    def test_lg_does_not_back_off(self, library, reference):
        backend = AcrBackend("alphonso", reference)
        transport = RecordingTransport(backend)
        hdmi = HdmiInput([library.game()], dwell_s=10000)
        client = _client("lg", "uk", hdmi, transport)
        _run_ticks(client, 8)
        assert client.stats.skipped_backoff == 0
        assert client.stats.full_batches == 8

    def test_recognised_content_no_backoff(self, library, reference):
        backend = AcrBackend("samsung-ads", reference)
        transport = RecordingTransport(backend)
        channel = build_channel("C1", library)
        client = _client("samsung", "uk", Tuner(channel), transport)
        _run_ticks(client, 6)
        assert client.stats.skipped_backoff == 0
        assert client.stats.recognised > 0


class TestBackend:
    def test_viewing_events_accumulate(self, library, reference):
        backend = AcrBackend("alphonso", reference)
        transport = RecordingTransport(backend)
        channel = build_channel("C1", library)
        client = _client("lg", "uk", Tuner(channel), transport)
        _run_ticks(client, 8)
        events = backend.events_for("tv-0001")
        assert len(events) >= 6
        assert backend.recognition_rate > 0.7

    def test_sessions_merge_contiguous_content(self, library, reference):
        backend = AcrBackend("alphonso", reference)
        item = library.shows[0]
        for i in range(5):
            captures = [capture_state(PlayState(item, 30.0 + 15 * i + j))
                        for j in range(6)]
            backend.ingest(FingerprintBatch("tv-x", captures),
                           seconds(15) * i)
        sessions = backend.sessions_for("tv-x")
        assert len(sessions) == 1
        assert sessions[0].events == 5

    def test_session_gap_splits(self, library, reference):
        backend = AcrBackend("alphonso", reference)
        item = library.shows[0]
        captures = [capture_state(PlayState(item, 30.0 + j))
                    for j in range(6)]
        backend.ingest(FingerprintBatch("tv-x", captures), 0)
        backend.ingest(FingerprintBatch("tv-x", captures), minutes(10))
        assert len(backend.sessions_for("tv-x")) == 2

    def test_ingest_raw_roundtrip(self, library, reference):
        backend = AcrBackend("alphonso", reference)
        item = library.shows[3]
        captures = [capture_state(PlayState(item, 40.0 + j))
                    for j in range(6)]
        raw = FingerprintBatch("tv-y", captures).encode()
        verdict = backend.ingest_raw(raw, 0)
        assert verdict.recognised
        assert verdict.content_id == item.content_id

    def test_watch_seconds(self, library, reference):
        backend = AcrBackend("alphonso", reference)
        item = library.shows[0]
        for i in range(5):
            captures = [capture_state(PlayState(item, 30.0 + 15 * i + j))
                        for j in range(6)]
            backend.ingest(FingerprintBatch("tv-x", captures),
                           seconds(15) * i)
        assert backend.watch_seconds("tv-x") == pytest.approx(60.0)
        assert backend.watch_seconds("tv-x", item.content_id) == \
            pytest.approx(60.0)
        assert backend.watch_seconds("tv-x", "other") == 0.0


class TestSegments:
    def test_profile_from_viewing(self, library, reference):
        backend = AcrBackend("alphonso", reference)
        item = library.shows[0]
        # 40 recognised batches spanning > MIN_SEGMENT_SECONDS.
        for i in range(40):
            captures = [capture_state(PlayState(
                item, (30 + 15 * i + j) % item.duration_s))
                for j in range(6)]
            backend.ingest(FingerprintBatch("tv-x", captures),
                           seconds(15) * i)
        profiler = SegmentProfiler(backend, reference)
        profile = profiler.profile("tv-x")
        assert profile.genre_seconds  # some genre accumulated
        assert len(profile.segments) >= 1

    def test_empty_history_no_segments(self, reference):
        backend = AcrBackend("alphonso", reference)
        profiler = SegmentProfiler(backend, reference)
        profile = profiler.profile("ghost-tv")
        assert profile.segments == []
        assert profile.genre_seconds == {}
