"""Tests for experiment vocabulary, runner, validation and campaign."""

import os

import pytest

from repro.net import load_bytes
from repro.sim import hours, minutes
from repro.testbed import (AccessPoint, CampaignRunner, Country,
                           ExperimentSpec, Phase, Scenario, Vendor,
                           build_source, full_matrix, paper_vendors,
                           phase_pair, run_experiment, scenario_sweep,
                           validate)
from repro.dnsinfra import DomainRegistry, Zone
from repro.sim import RngRegistry

SHORT = minutes(6)


class TestVocabulary:
    def test_full_matrix_size(self):
        assert len(full_matrix()) == 6 * 4 * 2 * len(Vendor)
        assert len(paper_vendors()) == 2

    def test_phase_semantics(self):
        assert Phase.LIN_OIN.logged_in and Phase.LIN_OIN.opted_in
        assert not Phase.LOUT_OOUT.logged_in
        assert not Phase.LOUT_OOUT.opted_in
        assert Phase.LOUT_OIN.opted_in and not Phase.LOUT_OIN.logged_in

    def test_spec_label(self):
        spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.HDMI,
                              Phase.LIN_OOUT)
        assert spec.label == "lg-uk-hdmi-LIn-OOut"

    def test_spec_equality_and_hash(self):
        a = ExperimentSpec(Vendor.LG, Country.UK, Scenario.HDMI,
                           Phase.LIN_OIN)
        b = ExperimentSpec(Vendor.LG, Country.UK, Scenario.HDMI,
                           Phase.LIN_OIN)
        assert a == b and hash(a) == hash(b)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(Vendor.LG, Country.UK, Scenario.IDLE,
                           Phase.LIN_OIN, duration_ns=1000)

    def test_scenario_sweep(self):
        sweep = scenario_sweep(Vendor.SAMSUNG, Country.US, Phase.LIN_OIN)
        assert len(sweep) == 6
        assert {s.scenario for s in sweep} == set(Scenario)

    def test_phase_pair(self):
        pair = phase_pair(Vendor.LG, Country.UK, Scenario.LINEAR,
                          (Phase.LIN_OIN, Phase.LIN_OOUT))
        assert [s.phase for s in pair] == [Phase.LIN_OIN, Phase.LIN_OOUT]

    def test_country_vantage(self):
        assert Country.UK.vantage == "uk"
        assert Country.US.vantage == "us_west"


class TestBuildSource:
    @pytest.mark.parametrize("scenario,expected", [
        (Scenario.IDLE, "home"),
        (Scenario.LINEAR, "tuner"),
        (Scenario.FAST, "fast"),
        (Scenario.OTT, "ott"),
        (Scenario.HDMI, "hdmi"),
        (Scenario.SCREEN_CAST, "cast"),
    ])
    def test_source_per_scenario(self, scenario, expected):
        spec = ExperimentSpec(Vendor.LG, Country.UK, scenario,
                              Phase.LIN_OIN, duration_ns=SHORT)
        assert build_source(spec, 0).source_type.value == expected


class TestRunner:
    def test_short_run_produces_valid_capture(self):
        spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.LINEAR,
                              Phase.LIN_OIN, duration_ns=SHORT)
        result = run_experiment(spec, seed=3)
        report = validate(result)
        assert report.ok, report.failures
        assert result.packet_count > 100
        packets = load_bytes(result.pcap_bytes)
        assert len(packets) == result.packet_count

    def test_determinism(self):
        spec = ExperimentSpec(Vendor.SAMSUNG, Country.UK, Scenario.IDLE,
                              Phase.LIN_OIN, duration_ns=SHORT)
        a = run_experiment(spec, seed=3)
        b = run_experiment(spec, seed=3)
        assert a.pcap_bytes == b.pcap_bytes

    def test_different_seed_differs(self):
        spec = ExperimentSpec(Vendor.SAMSUNG, Country.UK, Scenario.IDLE,
                              Phase.LIN_OIN, duration_ns=SHORT)
        a = run_experiment(spec, seed=3)
        b = run_experiment(spec, seed=4)
        assert a.pcap_bytes != b.pcap_bytes

    def test_optout_run_is_quiet(self):
        spec = ExperimentSpec(Vendor.SAMSUNG, Country.UK, Scenario.LINEAR,
                              Phase.LOUT_OOUT, duration_ns=SHORT)
        result = run_experiment(spec, seed=3)
        assert result.acr_stats.full_batches == 0
        assert result.acr_stats.disabled_slots > 0

    def test_full_hour_duration_default(self):
        spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.IDLE,
                              Phase.LIN_OIN)
        assert spec.duration_ns == hours(1)


class TestAccessPoint:
    def test_capture_gating(self):
        registry = DomainRegistry()
        ap = AccessPoint("uk", Zone(registry), RngRegistry(1))
        from repro.net import CapturedPacket
        ap.capture(CapturedPacket(1, b"x" * 20))
        assert ap.packet_count == 0  # not capturing yet
        ap.start_capture()
        ap.capture(CapturedPacket(2, b"x" * 20))
        assert ap.packet_count == 1
        ap.stop_capture()
        ap.capture(CapturedPacket(3, b"x" * 20))
        assert ap.packet_count == 1

    def test_packets_sorted(self):
        registry = DomainRegistry()
        ap = AccessPoint("uk", Zone(registry), RngRegistry(1))
        from repro.net import CapturedPacket
        ap.start_capture()
        ap.capture(CapturedPacket(5, b"b" * 20))
        ap.capture(CapturedPacket(1, b"a" * 20))
        assert [p.timestamp for p in ap.packets] == [1, 5]


class TestCampaign:
    def test_memoization(self):
        runner = CampaignRunner(seed=3)
        spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.IDLE,
                              Phase.LIN_OIN, duration_ns=SHORT)
        first = runner.run(spec)
        second = runner.run(spec)
        assert first is second
        assert runner.runs == 1
        assert runner.cache_hits == 1

    def test_artifact_files_written(self, tmp_path):
        runner = CampaignRunner(seed=3, artifact_dir=str(tmp_path))
        spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.IDLE,
                              Phase.LIN_OIN, duration_ns=SHORT)
        runner.run(spec)
        files = os.listdir(str(tmp_path))
        assert any(name.endswith(".pcap") for name in files)
        assert any(name.endswith(".json") for name in files)

    def test_evict(self):
        runner = CampaignRunner(seed=3)
        spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.IDLE,
                              Phase.LIN_OIN, duration_ns=SHORT)
        runner.run(spec)
        runner.evict(spec)
        runner.run(spec)
        assert runner.runs == 2

    def test_run_all(self):
        runner = CampaignRunner(seed=3)
        specs = [ExperimentSpec(Vendor.LG, Country.UK, scenario,
                                Phase.LIN_OIN, duration_ns=SHORT)
                 for scenario in (Scenario.IDLE, Scenario.OTT)]
        seen = []
        results = runner.run_all(specs, progress=seen.append)
        assert len(results) == 2
        assert seen == specs
