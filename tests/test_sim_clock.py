"""Unit tests for the virtual clock and time conversions."""

import pytest

from repro.sim import clock as clock_mod
from repro.sim.clock import (Clock, hours, microseconds, milliseconds,
                             minutes, seconds, to_milliseconds, to_seconds)


class TestConversions:
    def test_seconds_roundtrip(self):
        assert to_seconds(seconds(12.5)) == pytest.approx(12.5)

    def test_milliseconds_roundtrip(self):
        assert to_milliseconds(milliseconds(3.25)) == pytest.approx(3.25)

    def test_units_are_consistent(self):
        assert seconds(1) == milliseconds(1000) == microseconds(10 ** 6)
        assert minutes(1) == seconds(60)
        assert hours(1) == minutes(60)

    def test_one_hour_in_ns(self):
        assert hours(1) == 3_600_000_000_000

    def test_fractional_values_round(self):
        assert milliseconds(0.0005) == 500
        assert seconds(0.5) == 500_000_000


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_custom_start(self):
        assert Clock(start=100).now == 100

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            Clock(start=-1)

    def test_advance_forward(self):
        c = Clock()
        c.advance_to(seconds(5))
        assert c.now == seconds(5)
        assert c.now_seconds == pytest.approx(5.0)

    def test_advance_to_same_time_allowed(self):
        c = Clock(start=10)
        c.advance_to(10)
        assert c.now == 10

    def test_backwards_rejected(self):
        c = Clock(start=100)
        with pytest.raises(ValueError):
            c.advance_to(99)

    def test_format_renders_hms(self):
        c = Clock()
        c.advance_to(hours(1) + minutes(2) + seconds(3) + milliseconds(45))
        assert c.format() == "01:02:03.045"

    def test_repr_contains_time(self):
        assert "00:00:00.000" in repr(Clock())

    def test_module_constants(self):
        assert clock_mod.NS_PER_SECOND == 10 ** 9
        assert clock_mod.NS_PER_HOUR == 3600 * 10 ** 9
