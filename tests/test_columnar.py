"""Equivalence and lifetime tests for the columnar decode tier.

The columnar tier (:mod:`repro.net.columnar`) is only allowed to change
*speed*: every query the audit pipeline answers — domains, byte totals,
flow tables, upload timestamps, CDF curves — must be identical to the
object and lazy reference tiers, under hypothesis-generated captures
including malformed/snaplen-clipped frames (same errors, same order)
and arbitrary segment cuts (incremental == batch).  The shared-memory
arena tests pin the publish/attach round trip and segment lifetime.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AuditPipeline
from repro.analysis.cdf import cumulative_bytes
from repro.analysis.pipeline import ColumnarAuditPipeline
from repro.net import (CapturedPacket, ColumnarCapture, ColumnarSlice,
                       DnsMessage, DnsRecord, EthernetFrame, Ipv4Address,
                       MacAddress, PcapError, TcpSegment, dump_bytes)
from repro.net.packet import build_tcp_frame, build_udp_frame
from repro.net.tiers import DECODE_TIERS

MAC_TV = MacAddress.parse("02:00:00:00:00:01")
MAC_GW = MacAddress.parse("02:00:00:00:00:02")

TV = Ipv4Address.parse("192.168.1.2")
GW = Ipv4Address.parse("192.168.1.1")
RESOLVER = Ipv4Address.parse("8.8.8.8")
REMOTES = [Ipv4Address.parse(f"203.0.113.{i}") for i in range(1, 6)]
NAMES = ["acr1.example.com", "tracker.example.net", "cdn.example.org"]

ports = st.integers(min_value=1024, max_value=65535)

#: One capture event: protocol, remote index, TV-originated?, port, payload.
events = st.lists(
    st.one_of(
        st.tuples(st.just("tcp"), st.integers(0, 4), st.booleans(),
                  ports, st.binary(max_size=120)),
        st.tuples(st.just("udp"), st.integers(0, 4), st.booleans(),
                  ports, st.binary(max_size=120)),
        st.tuples(st.just("dns"), st.integers(0, 2), st.integers(0, 4)),
        st.tuples(st.just("arp"), st.booleans()),
        st.tuples(st.just("noise"), st.integers(0, 4),
                  st.binary(max_size=40)),
    ),
    max_size=40)


def _frames(items):
    """Expand events into a well-formed mixed capture."""
    packets = []
    for i, event in enumerate(items):
        ts = (i + 1) * 1_000_000  # whole microseconds survive pcap
        kind = event[0]
        if kind == "tcp":
            __, remote, from_tv, port, payload = event
            src, dst = (TV, REMOTES[remote]) if from_tv \
                else (REMOTES[remote], TV)
            sport, dport = (port, 443) if from_tv else (443, port)
            packets.append(CapturedPacket(ts, build_tcp_frame(
                MAC_TV, MAC_GW, src, dst,
                TcpSegment(sport, dport, i, 2, 0x18, payload=payload),
                identification=i & 0xFFFF)))
        elif kind == "udp":
            __, remote, from_tv, port, payload = event
            src, dst = (TV, REMOTES[remote]) if from_tv \
                else (REMOTES[remote], TV)
            packets.append(CapturedPacket(ts, build_udp_frame(
                MAC_TV, MAC_GW, src, dst, port, 7777, payload)))
        elif kind == "dns":
            __, name, remote = event
            query = DnsMessage.query(i & 0xFFFF, NAMES[name])
            answer = DnsMessage.response(
                query, [DnsRecord.a(NAMES[name], REMOTES[remote])])
            packets.append(CapturedPacket(ts, build_udp_frame(
                MAC_GW, MAC_TV, RESOLVER, TV, 53, 40000,
                answer.encode())))
        elif kind == "arp":
            __, long = event
            # The long form takes the vectorized non-IP path; the short
            # one (< 38 bytes) must fall back to the reference decoder.
            payload = b"\x00" * (28 if long else 10)
            packets.append(CapturedPacket(ts, EthernetFrame(
                MAC_GW, MAC_TV, 0x0806, payload).encode()))
        else:  # noise: LAN traffic that never touches the TV
            __, remote, payload = event
            packets.append(CapturedPacket(ts, build_udp_frame(
                MAC_GW, MAC_GW, GW, REMOTES[remote], 5353, 5353,
                payload)))
    return packets


def _pipelines(raw):
    return {tier: AuditPipeline.from_pcap_bytes(raw, TV, tier=tier)
            for tier in DECODE_TIERS}


def _flow_stats(pipeline):
    return {flow.key: (flow.packets_ab, flow.packets_ba,
                       flow.bytes_ab, flow.bytes_ba)
            for flow in pipeline.flows.flows}


def _assert_queries_agree(reference, columnar):
    domains = sorted(set(
        list(reference._domain_index()) + ["ghost.example"]))
    assert columnar.contacted_domains == reference.contacted_domains
    assert columnar.byte_totals() == reference.byte_totals()
    for domain in domains:
        assert columnar.bytes_for(domain) == reference.bytes_for(domain)
        assert columnar.bytes_sent_to(domain) == \
            reference.bytes_sent_to(domain)
        assert columnar.packet_count_for(domain) == \
            reference.packet_count_for(domain)
        mine = columnar.packets_for(domain)
        theirs = reference.packets_for(domain)
        assert [p.timestamp for p in mine] == \
            [p.timestamp for p in theirs]
    assert columnar.upload_timestamps(domains) == \
        reference.upload_timestamps(domains)
    assert [p.timestamp for p in columnar.packets_for_all(domains)] == \
        [p.timestamp for p in reference.packets_for_all(domains)]
    assert _flow_stats(columnar) == _flow_stats(reference)


class TestRowEquivalence:
    """Every row field matches the lazy tier, byte for byte."""

    @given(events)
    @settings(max_examples=40, deadline=None)
    def test_fields_match_lazy_tier(self, items):
        packets = _frames(items)
        raw = dump_bytes(packets)
        capture = ColumnarCapture.from_pcap_bytes(raw)
        lazy = _pipelines(raw)["lazy"].packets
        assert len(capture) == len(lazy)
        for view, ref in zip(capture, lazy):
            assert view.timestamp == ref.timestamp
            assert view.length == ref.length
            assert bytes(view.data) == bytes(ref.data)
            assert view.src_ip == ref.src_ip
            assert view.dst_ip == ref.dst_ip
            assert view.src_port == ref.src_port
            assert view.dst_port == ref.dst_port
            assert view.proto == ref.proto
            assert view.flow_proto == ref.flow_proto
            assert bytes(view.transport_payload) == \
                bytes(ref.transport_payload)
            mine, theirs = view.dns, ref.dns
            assert (mine is None) == (theirs is None)
            if mine is not None:
                assert mine.encode() == theirs.encode()

    def test_ipv4_options_row_takes_the_reference_path(self):
        # IHL > 20 defeats the vectorized gather; the row must fall
        # back to the LazyPacket reference and still agree exactly.
        from repro.net.packet import LazyPacket
        plain = build_udp_frame(MAC_TV, MAC_GW, TV, REMOTES[0],
                                40000, 7777, b"options")
        framed = bytearray(plain)
        framed[14] = 0x46  # IHL = 24
        framed[16:18] = (int.from_bytes(plain[16:18], "big")
                         + 4).to_bytes(2, "big")
        framed[34:34] = b"\x00\x00\x00\x00"  # the option bytes
        raw = dump_bytes([CapturedPacket(1_000_000, bytes(framed))])
        view = ColumnarCapture.from_pcap_bytes(raw)[0]
        ref = LazyPacket(1_000_000, bytes(framed))
        assert view.src_ip == ref.src_ip
        assert view.dst_ip == ref.dst_ip
        assert (view.src_port, view.dst_port) == (ref.src_port,
                                                  ref.dst_port)
        assert bytes(view.transport_payload) == ref.transport_payload

    @given(events)
    @settings(max_examples=20, deadline=None)
    def test_infer_tv_ip_matches_object_tier(self, items):
        from repro.analysis.pipeline import infer_tv_ip
        packets = _frames(items)
        raw = dump_bytes(packets)
        capture = ColumnarCapture.from_pcap_bytes(raw)
        lazy = _pipelines(raw)["lazy"].packets
        try:
            expected = infer_tv_ip(lazy)
        except ValueError as exc:
            with pytest.raises(ValueError, match=str(exc)):
                capture.infer_tv_ip()
        else:
            assert capture.infer_tv_ip() == expected


class TestPipelineEquivalence:
    @given(events)
    @settings(max_examples=30, deadline=None)
    def test_queries_identical_across_all_tiers(self, items):
        raw = dump_bytes(_frames(items))
        tiers = _pipelines(raw)
        _assert_queries_agree(tiers["object"], tiers["columnar"])
        _assert_queries_agree(tiers["lazy"], tiers["columnar"])

    @given(events, st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_cdf_curves_identical(self, items, sent_only):
        raw = dump_bytes(_frames(items))
        tiers = _pipelines(raw)
        domains = sorted(tiers["object"]._domain_index())
        window = (0, 60 * 1_000_000_000)
        sender = TV if sent_only else None
        curves = [cumulative_bytes(tiers[tier].packets_for_all(domains),
                                   *window, sent_only_from=sender)
                  for tier in DECODE_TIERS]
        reference = curves[0]
        for curve in curves[1:]:
            assert np.array_equal(curve.times_s, reference.times_s)
            assert np.array_equal(curve.cumulative_bytes,
                                  reference.cumulative_bytes)
            assert curve.total_bytes == reference.total_bytes

    def test_unknown_domain_compares_equal_to_empty_list(self):
        raw = dump_bytes(_frames([("tcp", 0, True, 5000, b"x")]))
        pipeline = AuditPipeline.from_pcap_bytes(raw, TV,
                                                 tier="columnar")
        assert isinstance(pipeline, ColumnarAuditPipeline)
        assert pipeline.packets_for("ghost.example") == []


class TestIncrementalSegments:
    @given(events, st.lists(st.integers(0, 40), max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_segment_cuts_equal_batch(self, items, cuts):
        packets = _frames(items)
        bounds = sorted({min(cut, len(packets)) for cut in cuts}
                        | {0, len(packets)})
        segments = [dump_bytes(packets[lo:hi])
                    for lo, hi in zip(bounds[:-1], bounds[1:])] \
            or [dump_bytes([])]
        grown = AuditPipeline.incremental(TV, tier="columnar")
        assert isinstance(grown, ColumnarAuditPipeline)
        assert sum(grown.extend_pcap_bytes(segment)
                   for segment in segments) == len(packets)
        batch = AuditPipeline.from_pcap_bytes(dump_bytes(packets), TV,
                                              tier="columnar")
        lazy = AuditPipeline.incremental(TV, tier="lazy")
        for segment in segments:
            lazy.extend_pcap_bytes(segment)
        _assert_queries_agree(lazy, grown)
        _assert_queries_agree(batch, grown)

    def test_columnar_pipeline_rejects_object_extend(self):
        pipeline = AuditPipeline.incremental(TV, tier="columnar")
        with pytest.raises(TypeError, match="extend_pcap_bytes"):
            pipeline.extend([])

    def test_frozen_capture_rejects_growth(self):
        raw = dump_bytes(_frames([("tcp", 0, True, 5000, b"x")]))
        capture = ColumnarCapture.from_pcap_bytes(raw)
        frozen = ColumnarCapture.from_columns(capture.columns(),
                                              memoryview(raw))
        with pytest.raises(TypeError, match="read-only"):
            frozen.extend_pcap_bytes(raw)


class TestErrorSurface:
    def test_snaplen_clipped_frame_raises_lazy_message(self):
        import io
        from repro.net import PcapWriter
        frame = build_tcp_frame(MAC_TV, MAC_GW, TV, REMOTES[0],
                                TcpSegment(5000, 443, 1, 2, 0x18,
                                           payload=b"p" * 400))
        buffer = io.BytesIO()
        PcapWriter(buffer, snaplen=60).write(
            CapturedPacket(1_000_000, frame))
        raw = buffer.getvalue()
        with pytest.raises(ValueError) as lazy_err:
            AuditPipeline.from_pcap_bytes(raw, TV, tier="lazy")
        with pytest.raises(ValueError) as columnar_err:
            AuditPipeline.from_pcap_bytes(raw, TV, tier="columnar")
        assert str(columnar_err.value) == str(lazy_err.value)

    @pytest.mark.parametrize("clip", [20, 40, 64])
    def test_short_frames_raise_identical_messages(self, clip):
        frame = build_udp_frame(MAC_TV, MAC_GW, TV, REMOTES[1],
                                40000, 7777, b"y" * 100)
        raw = dump_bytes([CapturedPacket(1_000_000, frame[:clip])])
        errors = {}
        for tier in ("lazy", "columnar"):
            with pytest.raises(ValueError) as excinfo:
                AuditPipeline.from_pcap_bytes(raw, TV, tier=tier)
            errors[tier] = str(excinfo.value)
        assert errors["columnar"] == errors["lazy"]

    def test_first_bad_frame_wins(self):
        good = build_udp_frame(MAC_TV, MAC_GW, TV, REMOTES[0],
                               40000, 7777, b"ok")
        bad_ihl = bytearray(good)
        bad_ihl[14] = 0x41  # IHL = 4
        bad_version = bytearray(good)
        bad_version[14] = 0x65  # version 6
        raw = dump_bytes([
            CapturedPacket(1_000_000, good),
            CapturedPacket(2_000_000, bytes(bad_ihl)),
            CapturedPacket(3_000_000, bytes(bad_version))])
        for tier in ("lazy", "columnar"):
            with pytest.raises(ValueError, match="bad IHL: 4"):
                AuditPipeline.from_pcap_bytes(raw, TV, tier=tier)

    def test_pcap_error_precedes_frame_error(self):
        # The record walk finishes before any frame decodes in every
        # tier, so a truncated trailing record must mask an earlier
        # malformed frame.
        bad = bytearray(build_udp_frame(MAC_TV, MAC_GW, TV, REMOTES[0],
                                        40000, 7777, b"zz"))
        bad[14] = 0x65
        raw = dump_bytes([CapturedPacket(1_000_000, bytes(bad)),
                          CapturedPacket(2_000_000, bad_frame_tail())])
        truncated = raw[:-4]
        for tier in DECODE_TIERS:
            with pytest.raises(PcapError, match="truncated pcap record"):
                AuditPipeline.from_pcap_bytes(truncated, TV, tier=tier)

    def test_implausible_record_length_matches_reader(self):
        raw = bytearray(dump_bytes(
            [CapturedPacket(1_000_000, b"\x00" * 20)]))
        raw[24 + 8:24 + 12] = (2 ** 31).to_bytes(4, "little")
        for tier in DECODE_TIERS:
            with pytest.raises(PcapError,
                               match="implausible record length"):
                AuditPipeline.from_pcap_bytes(bytes(raw), TV, tier=tier)


def bad_frame_tail() -> bytes:
    return build_udp_frame(MAC_TV, MAC_GW, TV, REMOTES[1],
                           40001, 7777, b"tail")


class TestColumnarSlice:
    def _slice(self):
        raw = dump_bytes(_frames([
            ("dns", 0, 0),
            ("tcp", 0, True, 5000, b"a"),
            ("tcp", 0, False, 5000, b"bb"),
            ("tcp", 0, True, 5001, b"ccc")]))
        pipeline = AuditPipeline.from_pcap_bytes(raw, TV,
                                                 tier="columnar")
        return pipeline.packets_for(NAMES[0])

    def test_len_iter_getitem(self):
        result = self._slice()
        assert len(result) == 3
        assert [p.length for p in result] == \
            [result[i].length for i in range(3)]
        tail = result[1:]
        assert isinstance(tail, ColumnarSlice)
        assert len(tail) == 2
        assert tail[0].timestamp == result[1].timestamp

    def test_equality(self):
        result = self._slice()
        assert result == result[:]
        assert not result == result[1:]
        assert AuditPipeline.from_pcap_bytes(
            dump_bytes(_frames([])), TV,
            tier="columnar").packets_for("nothing") == []


class TestSharedMemoryArena:
    def _capture(self):
        raw = dump_bytes(_frames([
            ("dns", 0, 0), ("tcp", 0, True, 5000, b"hello"),
            ("udp", 1, False, 6000, b"world"), ("arp", True)]))
        return ColumnarCapture.from_pcap_bytes(raw), raw

    @staticmethod
    def _check_attached(key, capture, raw):
        # Scoped so every view over the shared mapping is released
        # before the segment is unlinked (no exported-pointer teardown).
        from repro.fleet.shm import ColumnArena
        attached, meta = ColumnArena().attach(key)
        assert meta == {"tv_ip": str(TV)}
        assert attached.frozen
        for name, mine in attached.columns().items():
            assert np.array_equal(mine, capture.columns()[name])
            assert not mine.flags.writeable
        assert bytes(attached.buffer) == raw
        view = ref = None
        for view, ref in zip(attached, capture):
            assert view.timestamp == ref.timestamp
            assert view.src_ip == ref.src_ip
        # Release every view over the mapping before the capture (and
        # with it the segment) goes away — teardown order in a dying
        # frame is otherwise arbitrary.
        del mine, view, ref

    def test_publish_attach_round_trip(self):
        from repro.fleet.shm import ColumnArena, shm_key
        capture, raw = self._capture()
        key = shm_key("hh-0001", 123, 7, "v-test")
        arena = ColumnArena()
        try:
            assert arena.publish(key, capture,
                                 {"tv_ip": str(TV)}) == key
            self._check_attached(key, capture, raw)
        finally:
            assert ColumnArena.unlink(key)
        assert ColumnArena().attach(key) is None
        assert not ColumnArena.unlink(key)

    def test_same_coordinates_same_key(self):
        from repro.fleet.shm import SHM_PREFIX, shm_key
        assert shm_key("a", 1, 2, "v") == shm_key("a", 1, 2, "v")
        assert shm_key("a", 1, 2, "v") != shm_key("a", 1, 2, "w")
        assert shm_key("a", 1, 2, None).startswith(SHM_PREFIX)

    def test_over_budget_publish_is_skipped(self):
        from repro.fleet.shm import ColumnArena, shm_key
        capture, __ = self._capture()
        arena = ColumnArena(budget_bytes=8)
        assert arena.publish(shm_key("hh-0002", 1, 2, None), capture,
                             {}) is None

    def test_multi_segment_capture_is_skipped(self):
        from repro.fleet.shm import ColumnArena, shm_key
        capture, raw = self._capture()
        capture.extend_pcap_bytes(raw)
        assert capture.segment_count == 2
        assert ColumnArena().publish(shm_key("hh-0003", 1, 2, None),
                                     capture, {}) is None

    def test_publish_race_loser_skips(self):
        from repro.fleet.shm import ColumnArena, shm_key
        capture, __ = self._capture()
        key = shm_key("hh-0004", 9, 9, None)
        first, second = ColumnArena(), ColumnArena()
        try:
            assert first.publish(key, capture, {"tv_ip": str(TV)}) == key
            assert second.publish(key, capture,
                                  {"tv_ip": str(TV)}) is None
        finally:
            assert ColumnArena.unlink(key)


def _shm_exists(key: str) -> bool:
    from multiprocessing import shared_memory
    from repro.fleet.shm import _untrack
    try:
        segment = shared_memory.SharedMemory(name=key)
    except FileNotFoundError:
        return False
    _untrack(segment)
    segment.close()
    return True


@pytest.mark.slow
class TestFleetSharedMemory:
    """--shm-columns must change only where columns come from: reports
    stay byte-identical, and segment lifetime follows --shm-keep."""

    MIXES = {"country": {"uk": 1.0}, "diary": {"second_screen": 1.0}}

    def test_keep_publish_attach_cleanup_cycle(self, tmp_path):
        from repro.experiments.grid import ResultCache
        from repro.fleet import (FleetRunner, PopulationSpec,
                                 render_population_report)
        from repro.fleet.shm import shm_key
        population = PopulationSpec(3, seed=21, mixes=self.MIXES)
        version = "shm-t1"

        def runner(**kwargs):
            return FleetRunner(
                cache=ResultCache(str(tmp_path), version=version),
                jobs=1, **kwargs)

        base = runner().run(population)
        keys = [shm_key(h.label, h.diary_obj.duration_ns, h.seed,
                        version) for h in population]

        keep = runner(shm_columns=True, shm_keep=True).run(population)
        assert all(_shm_exists(key) for key in keys)
        assert keep.aggregate == base.aggregate

        # The next run audits straight off the published segments (no
        # cache read, counted as cached) and, without --shm-keep,
        # unlinks everything it touched on the way out.
        attach = runner(shm_columns=True).run(population)
        assert (attach.executed, attach.cached) == (0, 3)
        assert not any(_shm_exists(key) for key in keys)
        assert render_population_report(attach.aggregate, population) \
            == render_population_report(base.aggregate, population)

    def test_parallel_shm_report_matches_serial_plain(self, tmp_path):
        from repro.experiments.grid import ResultCache
        from repro.fleet import (FleetRunner, PopulationSpec,
                                 render_population_report)
        population = PopulationSpec(4, seed=23, mixes=self.MIXES)
        cache = lambda: ResultCache(str(tmp_path), version="shm-t2")  # noqa: E731
        plain = FleetRunner(cache=cache(), jobs=1, shard_size=2).run(
            population)
        shm = FleetRunner(cache=cache(), jobs=2, shard_size=2,
                          shm_columns=True).run(population)
        assert shm.aggregate == plain.aggregate
        assert render_population_report(shm.aggregate, population) \
            == render_population_report(plain.aggregate, population)

    def test_non_columnar_tier_never_touches_shm(self, tmp_path):
        from repro.experiments.grid import ResultCache
        from repro.fleet import FleetRunner, PopulationSpec
        from repro.fleet.shm import shm_key
        population = PopulationSpec(2, seed=24, mixes=self.MIXES)
        version = "shm-t3"
        result = FleetRunner(
            cache=ResultCache(str(tmp_path), version=version),
            jobs=1, decode_tier="lazy", shm_columns=True,
            shm_keep=True).run(population)
        assert result.households == 2
        assert not any(
            _shm_exists(shm_key(h.label, h.diary_obj.duration_ns,
                                h.seed, version))
            for h in population)


@pytest.mark.slow
class TestRealCaptureTiers:
    """Tier equivalence on a genuine simulated experiment capture."""

    def test_experiment_capture_identical_across_tiers(
            self, lg_uk_linear_result):
        raw = lg_uk_linear_result.pcap_bytes
        tv = Ipv4Address.parse(lg_uk_linear_result.tv_ip)
        tiers = {tier: AuditPipeline.from_pcap_bytes(raw, tv, tier=tier)
                 for tier in DECODE_TIERS}
        assert isinstance(tiers["columnar"], ColumnarAuditPipeline)
        _assert_queries_agree(tiers["object"], tiers["columnar"])
        _assert_queries_agree(tiers["lazy"], tiers["columnar"])
        assert ColumnarCapture.from_pcap_bytes(raw).infer_tv_ip() == tv
