"""Unit + property tests for MAC/IPv4 address types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (BROADCAST_MAC, Ipv4Address, Ipv4Network, MacAddress,
                       mac_from_seed, parse_endpoint)


class TestMacAddress:
    def test_parse_and_str(self):
        mac = MacAddress.parse("aa:bb:cc:dd:ee:ff")
        assert str(mac) == "aa:bb:cc:dd:ee:ff"

    def test_parse_dash_separator(self):
        assert MacAddress.parse("aa-bb-cc-dd-ee-ff").value == \
            MacAddress.parse("aa:bb:cc:dd:ee:ff").value

    def test_parse_invalid(self):
        for bad in ("aa:bb:cc:dd:ee", "zz:bb:cc:dd:ee:ff", "nonsense", ""):
            with pytest.raises(ValueError):
                MacAddress.parse(bad)

    def test_bytes_roundtrip(self):
        mac = MacAddress.parse("02:00:5e:10:00:01")
        assert MacAddress.from_bytes(mac.to_bytes()) == mac

    def test_wrong_byte_count(self):
        with pytest.raises(ValueError):
            MacAddress.from_bytes(b"\x00" * 5)

    def test_broadcast(self):
        assert BROADCAST_MAC.is_broadcast
        assert BROADCAST_MAC.is_multicast

    def test_mac_from_seed_is_unicast(self):
        for seed in range(50):
            assert not mac_from_seed(seed).is_multicast

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_roundtrip_property(self, value):
        mac = MacAddress(value)
        assert MacAddress.parse(str(mac)).value == value


class TestIpv4Address:
    def test_parse_and_str(self):
        assert str(Ipv4Address.parse("192.168.1.50")) == "192.168.1.50"

    def test_parse_invalid(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d",
                    "01.2.3.4", ""):
            with pytest.raises(ValueError):
                Ipv4Address.parse(bad)

    def test_bytes_roundtrip(self):
        addr = Ipv4Address.parse("203.0.113.99")
        assert Ipv4Address.from_bytes(addr.to_bytes()) == addr

    def test_private_ranges(self):
        assert Ipv4Address.parse("10.0.0.1").is_private
        assert Ipv4Address.parse("192.168.255.1").is_private
        assert Ipv4Address.parse("172.16.0.1").is_private
        assert Ipv4Address.parse("172.31.255.255").is_private
        assert not Ipv4Address.parse("172.32.0.1").is_private
        assert not Ipv4Address.parse("8.8.8.8").is_private

    def test_reverse_pointer(self):
        addr = Ipv4Address.parse("203.0.113.7")
        assert addr.reverse_pointer == "7.113.0.203.in-addr.arpa"

    def test_addition(self):
        assert Ipv4Address.parse("10.0.0.1") + 5 == \
            Ipv4Address.parse("10.0.0.6")

    def test_ordering(self):
        assert Ipv4Address.parse("10.0.0.1") < Ipv4Address.parse("10.0.0.2")

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, value):
        addr = Ipv4Address(value)
        assert Ipv4Address.parse(str(addr)).value == value


class TestIpv4Network:
    def test_parse_and_contains(self):
        net = Ipv4Network.parse("203.0.113.0/24")
        assert Ipv4Address.parse("203.0.113.200") in net
        assert Ipv4Address.parse("203.0.114.1") not in net

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Network.parse("203.0.113.1/24")

    def test_missing_prefix_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Network.parse("203.0.113.0")

    def test_num_addresses(self):
        assert Ipv4Network.parse("10.0.0.0/30").num_addresses == 4
        assert Ipv4Network.parse("0.0.0.0/0").num_addresses == 1 << 32

    def test_host_indexing(self):
        net = Ipv4Network.parse("10.1.2.0/24")
        assert net.host(10) == Ipv4Address.parse("10.1.2.10")
        with pytest.raises(ValueError):
            net.host(256)

    def test_hosts_skips_network_and_broadcast(self):
        hosts = list(Ipv4Network.parse("10.0.0.0/29").hosts())
        assert len(hosts) == 6
        assert hosts[0] == Ipv4Address.parse("10.0.0.1")
        assert hosts[-1] == Ipv4Address.parse("10.0.0.6")


class TestParseEndpoint:
    def test_valid(self):
        addr, port = parse_endpoint("192.0.2.1:443")
        assert str(addr) == "192.0.2.1"
        assert port == 443

    def test_missing_port(self):
        with pytest.raises(ValueError):
            parse_endpoint("192.0.2.1")

    def test_port_out_of_range(self):
        with pytest.raises(ValueError):
            parse_endpoint("192.0.2.1:70000")
