"""Tests for the fleet layer: population sampling, diaries, streaming
aggregation and the sharded runner.

The acceptance points: the same fleet seed derives the same household
list in every process; aggregate ``merge()`` is associative and
commutative (so shards combine in any order); and a parallel fleet run
produces a byte-identical report to a serial one.
"""

import hashlib
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.experiments.grid import ResultCache
from repro.findings import (DEGRADATION_CODE, OPTOUT_VIOLATION_CODE,
                            Finding, FindingsLedger)
from repro.fleet import (DIARIES, FleetAggregate, FleetRunner,
                         HouseholdSpec, MixError, PopulationSpec,
                         diary_named, merge_all, parse_mix,
                         render_population_report, sample_population)
from repro.sim.clock import minutes, seconds
from repro.testbed.experiment import (Phase, SCENARIO_START_NS, Scenario,
                                      Vendor)
from repro.testbed.runner import SESSION_TAIL_NS, run_session
from repro.testbed.validation import validate_session

# A cheap population for tests that actually simulate: one country (one
# asset build), the shortest diary.
UK_QUICK = {"country": {"uk": 1.0}, "diary": {"second_screen": 1.0}}


class TestPopulationSampling:
    def test_same_seed_same_households(self):
        first = sample_population(20, seed=9)
        second = sample_population(20, seed=9)
        assert first == second

    def test_prefix_stable_when_population_grows(self):
        # Household i is derived from (seed, i) alone, so growing the
        # fleet re-derives the existing households identically — the
        # property that lets an enlarged fleet reuse its cache.
        small = sample_population(5, seed=9)
        large = sample_population(50, seed=9)
        assert large[:5] == small

    def test_different_fleet_seed_changes_households(self):
        assert sample_population(20, seed=9) != \
            sample_population(20, seed=10)

    def test_household_seeds_are_distinct(self):
        seeds = [h.seed for h in sample_population(200, seed=9)]
        assert len(set(seeds)) == len(seeds)

    def test_identical_across_processes(self):
        """The cache contract: another process derives the exact same
        population from the same fleet seed."""
        households = sample_population(25, seed=13)
        digest = hashlib.sha256(
            repr([h.as_tuple() for h in households]).encode()).hexdigest()

        code = (
            "import hashlib\n"
            "from repro.fleet import sample_population\n"
            "households = sample_population(25, seed=13)\n"
            "print(hashlib.sha256(repr([h.as_tuple() for h in "
            "households]).encode()).hexdigest())\n")
        import repro
        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p)
        # A different hash seed must not perturb the derivation.
        env["PYTHONHASHSEED"] = "271828"
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True, check=True)
        assert proc.stdout.strip() == digest

    def test_mix_restricts_draws(self):
        population = PopulationSpec(
            30, seed=9,
            mixes={"vendor": {"lg": 1.0}, "country": {"uk": 1.0},
                   "diary": {"binge": 1.0}})
        for household in population:
            assert household.vendor is Vendor.LG
            assert household.country.value == "uk"
            assert household.diary == "binge"

    def test_skewed_mix_skews_counts(self):
        population = PopulationSpec(
            300, seed=9, mixes={"vendor": {"lg": 9.0, "samsung": 1.0}})
        lg = sum(h.vendor is Vendor.LG for h in population)
        assert lg > 240  # expectation 270; far from 150

    def test_roundtrip_through_tuples(self):
        for household in sample_population(10, seed=3):
            assert HouseholdSpec.from_tuple(household.as_tuple()) == \
                household

    def test_countries_lists_only_weighted(self):
        population = PopulationSpec(5, seed=3,
                                    mixes={"country": {"uk": 1.0,
                                                       "us": 0.0}})
        assert population.countries() == ["uk"]

    def test_library_path_validates_mixes_too(self):
        # Not just the CLI: constructing a PopulationSpec directly with
        # a degenerate mix must fail loudly, not ZeroDivisionError later.
        with pytest.raises(MixError, match="zero total weight"):
            PopulationSpec(5, mixes={"vendor": {"lg": 0.0,
                                                "samsung": 0.0}})
        with pytest.raises(MixError, match="unknown vendor"):
            PopulationSpec(5, mixes={"vendor": {"philips": 1.0}})
        with pytest.raises(MixError, match="unknown mix axis"):
            PopulationSpec(5, mixes={"colour": {"red": 1.0}})


class TestMixParsing:
    def test_defaults_kept_for_unset_axes(self):
        mixes = parse_mix(["vendor=lg:1"])
        assert mixes["vendor"] == {"lg": 1.0}
        assert set(mixes["diary"]) == set(DIARIES)

    def test_weights_optional_and_relative(self):
        mixes = parse_mix(["vendor=lg,samsung:3"])
        assert mixes["vendor"] == {"lg": 1.0, "samsung": 3.0}

    def test_unknown_axis_rejected(self):
        with pytest.raises(MixError, match="unknown mix axis"):
            parse_mix(["colour=red:1"])

    def test_unknown_value_rejected(self):
        with pytest.raises(MixError, match="unknown vendor"):
            parse_mix(["vendor=philips:1"])

    def test_bad_weight_rejected(self):
        with pytest.raises(MixError, match="bad weight"):
            parse_mix(["vendor=lg:heavy"])

    def test_negative_weight_rejected(self):
        with pytest.raises(MixError, match="negative weight"):
            parse_mix(["vendor=lg:-1"])

    def test_zero_total_rejected(self):
        with pytest.raises(MixError, match="zero total weight"):
            parse_mix(["vendor=lg:0"])

    def test_malformed_expression_rejected(self):
        with pytest.raises(MixError, match="expected"):
            parse_mix(["vendor"])


class TestDiaries:
    def test_all_archetypes_have_positive_segments(self):
        for diary in DIARIES.values():
            assert diary.segments
            assert all(s.dwell_ns > 0 for s in diary.segments)

    def test_duration_is_lead_in_plus_dwells_plus_tail(self):
        diary = diary_named("binge")
        dwell = sum(s.dwell_ns for s in diary.segments)
        assert diary.duration_ns == \
            SCENARIO_START_NS + dwell + SESSION_TAIL_NS

    def test_unknown_diary_rejected(self):
        with pytest.raises(ValueError, match="unknown diary"):
            diary_named("doomscroll")


@pytest.mark.slow
class TestMultiSegmentSession:
    def test_session_switches_sources_in_order(self):
        segments = [(Scenario.IDLE, minutes(2)),
                    (Scenario.LINEAR, minutes(3)),
                    (Scenario.OTT, minutes(3))]
        result = run_session(Vendor.LG, _uk(), Phase.LIN_OIN, segments,
                             seed=5)
        report = validate_session(
            result, [scenario for scenario, __ in segments])
        assert report.ok, report.failures
        actions = [label for __, label in result.action_log
                   if label.startswith("select-source")]
        assert actions == ["select-source:home", "select-source:tuner",
                           "select-source:ott"]

    def test_session_is_deterministic(self):
        segments = diary_named("second_screen").as_runner_segments()
        first = run_session(Vendor.SAMSUNG, _uk(), Phase.LIN_OIN,
                            segments, seed=5, label="hh-test")
        second = run_session(Vendor.SAMSUNG, _uk(), Phase.LIN_OIN,
                             segments, seed=5, label="hh-test")
        assert first.pcap_bytes == second.pcap_bytes

    def test_empty_session_rejected(self):
        with pytest.raises(ValueError, match="at least one segment"):
            run_session(Vendor.LG, _uk(), Phase.LIN_OIN, [], seed=5)


def _uk():
    from repro.testbed.experiment import Country
    return Country.UK


def summary(vendor="lg", country="uk", phase="LIn-OIn", diary="binge",
            opted_in=True, packets=100, acr_bytes=5000, upload=3000,
            acr_packets=20, bursts=4, cadence_sum=seconds(45),
            intervals=3, domains=("eu-acr4.alphonso.tv",)):
    return {
        "vendor": vendor, "country": country, "phase": phase,
        "diary": diary, "opted_in": opted_in, "packets": packets,
        "pcap_len": packets * 80, "acr_domains": list(domains),
        "acr_bytes": acr_bytes, "acr_upload_bytes": upload,
        "acr_packets": acr_packets, "acr_bursts": bursts,
        "cadence_sum_ns": cadence_sum, "cadence_intervals": intervals,
    }


SUMMARIES = [
    summary(),
    summary(vendor="samsung", country="us", diary="ambient",
            acr_bytes=9000, cadence_sum=seconds(80), intervals=5),
    summary(phase="LIn-OOut", opted_in=False, acr_bytes=0, upload=0,
            acr_packets=0, bursts=0, cadence_sum=0, intervals=0,
            domains=()),
    summary(vendor="samsung", acr_bytes=700,
            domains=("acr0.samsungcloudsolution.com",)),
]


def folded(summaries):
    aggregate = FleetAggregate()
    for entry in summaries:
        aggregate.fold(entry)
    return aggregate


class TestAggregate:
    def test_fold_counts(self):
        aggregate = folded(SUMMARIES)
        assert aggregate.households == 4
        assert aggregate.acr_households == 3
        assert aggregate.vendors == {"lg": 2, "samsung": 2}
        assert aggregate.optout_households == 1
        assert aggregate.optout_acr_households == 0
        assert aggregate.optin_acr_households == 3
        assert aggregate.domain_households["eu-acr4.alphonso.tv"] == 2

    def test_merge_is_commutative(self):
        a = folded(SUMMARIES[:2])
        b = folded(SUMMARIES[2:])
        assert a.merge(b) == b.merge(a)

    def test_merge_is_associative(self):
        a, b, c = (folded([entry]) for entry in SUMMARIES[:3])
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_empty_aggregate_is_identity(self):
        a = folded(SUMMARIES)
        assert a.merge(FleetAggregate()) == a
        assert FleetAggregate().merge(a) == a

    def test_merge_identity_with_zero_valued_folds(self):
        # Regression: SUMMARIES[2] folds zero ACR volume.  The old
        # merge copied Counter entries verbatim, so a zero count picked
        # up along one fold path made `a.merge(empty)` compare unequal
        # to `a` (Counter({"lg": 0}) != Counter()).  Identity must hold
        # on both sides, including for aggregates with zero-heavy folds
        # — that is exactly what a fresh checkpoint merge looks like.
        zero_heavy = folded([SUMMARIES[2]])
        assert zero_heavy.merge(FleetAggregate()) == zero_heavy
        assert FleetAggregate().merge(zero_heavy) == zero_heavy
        # Dict equality is exact: an explicit {"lg": 0} entry would fail.
        assert zero_heavy.acr_bytes_by_vendor == {}

    def test_merge_never_materializes_zero_counts(self):
        merged = folded([SUMMARIES[2]]).merge(folded([SUMMARIES[2]]))
        for name in ("acr_bytes_by_vendor", "acr_upload_bytes_by_vendor",
                     "cadence_sum_ns_by_vendor",
                     "cadence_intervals_by_vendor"):
            counter = getattr(merged, name)
            assert all(counter.values()), f"zero count left in {name}"

    def test_merge_all_of_nothing_is_the_identity(self):
        assert merge_all([]) == FleetAggregate()
        a = folded(SUMMARIES)
        assert merge_all([]).merge(a) == a

    def test_checkpoint_roundtrip_preserves_equality(self):
        # The canonical (nonzero-only) serialization must restore an
        # aggregate that compares equal to the live one it snapshotted,
        # for zero-heavy and ordinary folds alike.
        for aggregate in (FleetAggregate(), folded([SUMMARIES[2]]),
                          folded(SUMMARIES)):
            restored = FleetAggregate.from_dict(aggregate.to_dict())
            assert restored == aggregate
            assert restored.merge(FleetAggregate()) == aggregate

    def test_sharded_fold_equals_serial_fold(self):
        serial = folded(SUMMARIES)
        shards = [folded(SUMMARIES[:1]), folded(SUMMARIES[1:3]),
                  folded(SUMMARIES[3:])]
        assert merge_all(shards) == serial

    def test_derived_views(self):
        aggregate = folded(SUMMARIES)
        assert aggregate.acr_fraction() == 0.75
        assert aggregate.optout_leak_fraction() == 0.0
        assert aggregate.mean_cadence_s("lg") == pytest.approx(15.0)

    def test_optout_leak_emits_a_critical_finding(self):
        leak = summary(phase="LIn-OOut", opted_in=False, acr_bytes=900,
                       upload=600, acr_packets=4, bursts=1,
                       cadence_sum=0, intervals=0)
        aggregate = folded([leak])
        violations = aggregate.findings.failed()
        assert len(violations) == 1
        finding = violations[0]
        assert finding.code == OPTOUT_VIOLATION_CODE
        assert finding.severity == "critical"
        entry = finding.evidence[0]
        assert entry.vendor == "lg" and entry.country == "uk"
        assert entry.phase == "LIn-OOut"
        assert entry.flow == "eu-acr4.alphonso.tv"
        assert "900 ACR bytes" in entry.text
        # Opted-out households that stay silent (and clean opted-in
        # runs) emit nothing — the baseline ledger is empty.
        assert not folded(SUMMARIES).findings

    def test_degradation_findings_feed_the_legacy_counter(self):
        finding = Finding.degradation("hh-0003", 3, None, 7, "bad magic")
        degraded = summary()
        degraded["findings"] = [finding, finding]
        aggregate = folded([degraded])
        assert aggregate.findings.total() == 2
        assert aggregate.findings.findings()[0].code == DEGRADATION_CODE
        # The report's ## Degradations table is derived from the same
        # fold, keyed by the finding's canonical evidence text.
        assert aggregate.degradations == {finding.evidence[0].text: 2}

    def test_merge_combines_findings_ledgers(self):
        degraded = summary()
        degraded["findings"] = [
            Finding.degradation("hh-0001", 1, None, 2, "torn header")]
        leak = summary(opted_in=False)
        a, b = folded([degraded]), folded([leak])
        merged = a.merge(b)
        assert merged.findings == a.findings + b.findings
        assert merged.findings.total() == 2
        assert a.merge(b).findings == b.merge(a).findings

    def test_checkpoint_roundtrip_preserves_findings(self):
        degraded = summary(opted_in=False)
        degraded["findings"] = [
            Finding.degradation("hh-0002", 2, 1, -1, "bad global magic")]
        aggregate = folded([degraded, summary()])
        restored = FleetAggregate.from_dict(aggregate.to_dict())
        assert restored == aggregate
        assert restored.findings == aggregate.findings
        assert restored.degradations == aggregate.degradations

    def test_old_checkpoint_without_findings_resumes_empty(self):
        state = folded(SUMMARIES).to_dict()
        del state["findings"]
        restored = FleetAggregate.from_dict(state)
        assert restored.findings == FindingsLedger()
        assert restored.households == 4


@pytest.mark.slow
class TestFleetRunner:
    POP = dict(households=4, seed=21, mixes=UK_QUICK)

    def test_parallel_report_matches_serial(self, tmp_path):
        population = PopulationSpec(**self.POP)
        cache = ResultCache(str(tmp_path), version="fleet-t1")
        serial = FleetRunner(cache=cache, jobs=1, shard_size=2).run(
            population)
        assert (serial.executed, serial.cached) == (4, 0)

        parallel = FleetRunner(
            cache=ResultCache(str(tmp_path), version="fleet-t1"),
            jobs=2, shard_size=2).run(population)
        assert (parallel.executed, parallel.cached) == (0, 4)

        assert parallel.aggregate == serial.aggregate
        assert render_population_report(parallel.aggregate, population) \
            == render_population_report(serial.aggregate, population)

    def test_cold_parallel_matches_serial(self):
        # No cache at all: parallel execution itself must be
        # deterministic, not just cache recall.
        population = PopulationSpec(households=3, seed=22,
                                    mixes=UK_QUICK)
        serial = FleetRunner(cache=None, jobs=1, shard_size=1).run(
            population)
        parallel = FleetRunner(cache=None, jobs=2, shard_size=1).run(
            population)
        assert parallel.aggregate == serial.aggregate

    def test_shard_size_does_not_change_aggregate(self, tmp_path):
        population = PopulationSpec(**self.POP)
        cache = ResultCache(str(tmp_path), version="fleet-t2")
        one = FleetRunner(cache=cache, jobs=1, shard_size=1).run(
            population)
        four = FleetRunner(cache=cache, jobs=1, shard_size=4).run(
            population)
        assert one.aggregate == four.aggregate

    def test_grown_fleet_only_runs_new_households(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="fleet-t3")
        FleetRunner(cache=cache, jobs=1).run(PopulationSpec(**self.POP))
        grown = FleetRunner(cache=cache, jobs=1).run(
            PopulationSpec(households=6, seed=21, mixes=UK_QUICK))
        assert (grown.executed, grown.cached) == (2, 4)

    def test_progress_reports_every_shard(self, tmp_path):
        population = PopulationSpec(**self.POP)
        cache = ResultCache(str(tmp_path), version="fleet-t4")
        seen = []
        FleetRunner(cache=cache, jobs=1, shard_size=2).run(
            population,
            progress=lambda done, total, ran, hit: seen.append(
                (done, total)))
        assert seen == [(1, 2), (2, 2)]


@pytest.mark.slow
class TestCliFleet:
    ARGS = ["fleet", "--households", "3", "--seed", "21",
            "--mix", "country=uk:1", "--mix", "diary=second_screen:1"]

    def test_fleet_report_stable_across_cache_states(self, tmp_path,
                                                     capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "# Fleet audit report" in cold
        assert "## Opt-out efficacy" in cold

        assert main(args + ["--jobs", "2"]) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_out_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "fleet.md"
        args = self.ARGS + ["--cache-dir", str(tmp_path / "cache"),
                            "--out", str(out_path)]
        assert main(args) == 0
        assert out_path.read_text() == capsys.readouterr().out

    def test_bad_mix_is_an_error(self, capsys):
        assert main(["fleet", "--mix", "vendor=philips:1"]) == 2
        assert "unknown vendor" in capsys.readouterr().err

    def test_bad_households_is_an_error(self, capsys):
        assert main(["fleet", "--households", "0"]) == 2
        assert "at least one household" in capsys.readouterr().err
