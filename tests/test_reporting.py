"""Tests for table rendering, ASCII plots and exports."""

import csv
import io
import json

import numpy as np
import pytest

from repro.analysis import CumulativeCurve, Timeline
from repro.reporting import (cdf_to_csv, findings_to_json, kb, plot_cdf,
                             plot_timeline, plot_timelines,
                             render_markdown, render_table, table_to_csv,
                             timeline_to_csv)
from repro.reporting.ascii_plot import (LABEL_WIDTH, fit_label, meter,
                                        sparkline)


def _timeline(counts):
    return Timeline(np.array(counts, dtype=np.int64), 0, 1_000_000)


def _curve():
    times = np.array([1.0, 2.0, 10.0])
    return CumulativeCurve(times, np.cumsum([100, 200, 700]))


class TestRenderTable:
    def test_contains_all_cells(self):
        out = render_table(["a", "b"], [["x", "1.5"], ["y", "-"]])
        assert "x" in out and "1.5" in out and "-" in out

    def test_title(self):
        out = render_table(["a"], [["1"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_column_widths_consistent(self):
        out = render_table(["col", "other"], [["longvalue", "1"]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len({len(line) for line in lines}) == 1

    def test_markdown_form(self):
        out = render_markdown(["a", "b"], [["1", "2"]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_kb_format(self):
        assert kb(4759.66) == "4759.7"
        assert kb(0) == "0.0"


class TestPlots:
    def test_timeline_plot_width(self):
        out = plot_timeline(_timeline([0, 5, 0, 0] * 100), width=40,
                            label="Linear")
        assert "Linear" in out
        assert "peak=5" in out

    def test_empty_timeline(self):
        out = plot_timeline(_timeline([]), label="none")
        assert "empty" in out

    def test_all_zero_timeline(self):
        out = plot_timeline(_timeline([0] * 50), label="quiet")
        assert "peak=0" in out

    def test_multiple_timelines(self):
        out = plot_timelines([_timeline([1, 2]), _timeline([3, 4])],
                             ["a", "b"])
        assert out.count("|") >= 4

    def test_cdf_plot_shape(self):
        out = plot_cdf(_curve(), width=30, height=5, label="curve")
        lines = out.splitlines()
        assert lines[0] == "curve"
        assert any("#" in line for line in lines)

    def test_cdf_plot_empty(self):
        empty = CumulativeCurve(np.array([]), np.array([]))
        assert "no traffic" in plot_cdf(empty)


class TestAsciiPrimitives:
    def test_fit_label_pads_short_labels(self):
        assert fit_label("Linear") == "Linear" + " " * 18
        assert len(fit_label("Linear")) == LABEL_WIDTH

    def test_fit_label_truncates_with_ellipsis(self):
        long = "log-ingestion-eu.samsungacr.com uploads"
        fitted = fit_label(long)
        assert len(fitted) == LABEL_WIDTH
        assert fitted.endswith("...")
        assert fitted == long[:LABEL_WIDTH - 3] + "..."

    def test_fit_label_tiny_width(self):
        assert fit_label("abcdef", width=2) == "ab"

    def test_long_label_no_longer_breaks_timeline_alignment(self):
        # Regression: `{label:24s}` let an overlong label push the plot
        # body out of column; the fitted label pins the `|` position.
        short = plot_timeline(_timeline([1, 2]), width=10, label="a")
        long = plot_timeline(_timeline([1, 2]), width=10,
                             label="x" * 60)
        assert short.index("|") == long.index("|") == LABEL_WIDTH + 1

    def test_meter_bounds(self):
        assert meter(0.0, 4) == "[----]"
        assert meter(1.0, 4) == "[####]"
        assert meter(2.5, 4) == "[####]"  # clamped
        assert meter(0.5, 4) == "[##--]"

    def test_sparkline_resamples_to_width(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7], width=4)
        assert len(line) == 4
        assert line[-1] == "@"

    def test_sparkline_all_zero_is_blank(self):
        assert sparkline([0, 0, 0]) == "   "


class TestExports:
    def test_table_to_csv_roundtrip(self):
        out = table_to_csv(["a", "b"], [["1", "2"], ["3", "4"]])
        rows = list(csv.reader(io.StringIO(out)))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_timeline_csv_skips_empty_bins(self):
        out = timeline_to_csv(_timeline([0, 3, 0, 7]))
        rows = list(csv.reader(io.StringIO(out)))
        assert rows[0] == ["bin_start_ns", "packets"]
        assert len(rows) == 3  # header + 2 non-empty bins

    def test_cdf_csv(self):
        out = cdf_to_csv(_curve())
        rows = list(csv.reader(io.StringIO(out)))
        assert rows[0] == ["time_s", "cumulative_bytes"]
        assert int(rows[-1][1]) == 1000

    def test_findings_json(self):
        class Dummy:
            __slots__ = ("name", "passed")

            def __init__(self):
                self.name = "s1"
                self.passed = True

        out = json.loads(findings_to_json([Dummy()]))
        assert out == [{"name": "s1", "passed": True}]
