"""Unit tests for generator-based processes and signals."""

import pytest

from repro.sim import EventLoop, Signal, Sleep, WaitFor, seconds, spawn


class TestSleep:
    def test_periodic_process(self):
        loop = EventLoop()
        ticks = []

        def body():
            while True:
                yield Sleep(seconds(15))
                ticks.append(loop.now)

        spawn(loop, body(), name="ticker")
        loop.run_until(seconds(60))
        assert ticks == [seconds(15), seconds(30), seconds(45), seconds(60)]

    def test_zero_sleep_resumes_at_same_time(self):
        loop = EventLoop()
        times = []

        def body():
            times.append(loop.now)
            yield Sleep(0)
            times.append(loop.now)

        spawn(loop, body())
        loop.run_until(seconds(1))
        assert times == [0, 0]

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-5)

    def test_process_finishes(self):
        loop = EventLoop()

        def body():
            yield Sleep(seconds(1))

        proc = spawn(loop, body())
        loop.run_until(seconds(2))
        assert proc.finished
        assert not proc.alive


class TestStop:
    def test_stopped_process_never_resumes(self):
        loop = EventLoop()
        ticks = []

        def body():
            while True:
                yield Sleep(seconds(1))
                ticks.append(loop.now)

        proc = spawn(loop, body())
        loop.run_until(seconds(3))
        proc.stop()
        loop.run_until(seconds(10))
        assert len(ticks) == 3
        assert proc.stopped and not proc.alive

    def test_stop_before_first_step(self):
        loop = EventLoop()
        ran = []

        def body():
            ran.append(True)
            yield Sleep(1)

        proc = spawn(loop, body())
        proc.stop()
        loop.run_until(seconds(1))
        assert ran == []


class TestSignal:
    def test_waitfor_receives_fired_value(self):
        loop = EventLoop()
        sig = Signal(loop)
        got = []

        def waiter():
            value = yield WaitFor(sig)
            got.append((loop.now, value))

        spawn(loop, waiter())
        loop.call_at(seconds(2), sig.fire, "payload")
        loop.run_until(seconds(3))
        assert got == [(seconds(2), "payload")]

    def test_fire_wakes_all_waiters(self):
        loop = EventLoop()
        sig = Signal(loop)
        woken = []

        def waiter(tag):
            yield WaitFor(sig)
            woken.append(tag)

        spawn(loop, waiter("a"))
        spawn(loop, waiter("b"))
        loop.call_at(seconds(1), sig.fire)
        loop.run_until(seconds(2))
        assert sorted(woken) == ["a", "b"]

    def test_fire_with_no_waiters_returns_zero(self):
        loop = EventLoop()
        sig = Signal(loop)
        assert sig.fire() == 0

    def test_waiter_not_rewoken_by_second_fire(self):
        loop = EventLoop()
        sig = Signal(loop)
        count = []

        def waiter():
            yield WaitFor(sig)
            count.append(1)

        spawn(loop, waiter())
        loop.call_at(seconds(1), sig.fire)
        loop.call_at(seconds(2), sig.fire)
        loop.run_until(seconds(3))
        assert count == [1]


class TestErrors:
    def test_unknown_yield_command_raises(self):
        loop = EventLoop()

        def body():
            yield "not-a-command"

        spawn(loop, body())
        with pytest.raises(TypeError):
            loop.run_until(seconds(1))
