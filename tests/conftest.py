"""Shared fixtures.

Expensive assets (media libraries, reference fingerprint databases,
experiment cells) are cached at session scope — and the testbed's own
``assets``/``experiments.cache`` layers memoize within the process — so
the suite builds each one exactly once.

The grid result cache is pointed at a tempdir location (unless the
caller already chose one) so ``make test`` stays incremental across
runs without writing into the user's ``~/.cache``.
"""

import os
import tempfile

import pytest

os.environ.setdefault("REPRO_CACHE_DIR", os.path.join(
    tempfile.gettempdir(), "repro-acr-test-cache"))

from repro.testbed import (Country, ExperimentSpec, Phase, Scenario,  # noqa: E402
                           Vendor)
from repro.experiments import cache as experiment_cache  # noqa: E402


@pytest.fixture(scope="session")
def uk_library():
    from repro.testbed import media_library
    return media_library("uk", 0)


@pytest.fixture(scope="session")
def uk_reference():
    from repro.testbed import reference_library
    return reference_library("uk", 0)


@pytest.fixture(scope="session")
def lg_uk_linear_result():
    spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.LINEAR,
                          Phase.LIN_OIN)
    return experiment_cache.result_for(spec)


@pytest.fixture(scope="session")
def lg_uk_linear_pipeline():
    spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.LINEAR,
                          Phase.LIN_OIN)
    return experiment_cache.pipeline_for(spec)


@pytest.fixture(scope="session")
def samsung_uk_linear_pipeline():
    spec = ExperimentSpec(Vendor.SAMSUNG, Country.UK, Scenario.LINEAR,
                          Phase.LIN_OIN)
    return experiment_cache.pipeline_for(spec)


@pytest.fixture(scope="session")
def lg_uk_linear_optout_pipeline():
    spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.LINEAR,
                          Phase.LIN_OOUT)
    return experiment_cache.pipeline_for(spec)


@pytest.fixture(scope="session")
def samsung_uk_linear_optout_pipeline():
    spec = ExperimentSpec(Vendor.SAMSUNG, Country.UK, Scenario.LINEAR,
                          Phase.LIN_OOUT)
    return experiment_cache.pipeline_for(spec)


@pytest.fixture(scope="session")
def lg_uk_idle_pipeline():
    spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.IDLE,
                          Phase.LIN_OIN)
    return experiment_cache.pipeline_for(spec)
