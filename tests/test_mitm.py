"""Tests for the MITM substrate: CA/pinning, proxy, payload inspection,
and the end-to-end payload audit."""

import json

import pytest

from repro.mitm import (KIND_ACR_BATCH, KIND_JSON_LOG, KIND_KEEPALIVE,
                        MitmProxy, OPERATOR_CA, PINNED_DOMAINS,
                        PayloadInspector, PlaintextRecord, TESTBED_CA,
                        TrustStore, inspect_record, shannon_entropy)
from repro.acr import FingerprintBatch, capture_state
from repro.media import PlayState


@pytest.fixture(scope="module")
def library():
    from repro.testbed import media_library
    return media_library("uk", 0)


def _trusting_store(vendor="lg"):
    store = TrustStore(vendor)
    store.install_root(TESTBED_CA)
    return store


class TestTrustStore:
    def test_operator_cert_accepted_by_default(self):
        store = TrustStore("lg")
        cert = OPERATOR_CA.issue("eu-acr1.alphonso.tv")
        assert store.accepts(cert, "eu-acr1.alphonso.tv")

    def test_forged_cert_rejected_without_installed_ca(self):
        store = TrustStore("lg")
        forged = TESTBED_CA.issue("eu-acr1.alphonso.tv")
        assert not store.accepts(forged, "eu-acr1.alphonso.tv")

    def test_forged_cert_accepted_after_ca_install(self):
        store = _trusting_store()
        forged = TESTBED_CA.issue("eu-acr1.alphonso.tv")
        assert store.accepts(forged, "eu-acr1.alphonso.tv")

    def test_pinned_domain_rejects_forged_even_with_ca(self):
        store = _trusting_store("samsung")
        forged = TESTBED_CA.issue("acr-eu-prd.samsungcloud.tv")
        assert not store.accepts(forged, "acr-eu-prd.samsungcloud.tv")
        # ...but accepts the genuine operator leaf.
        genuine = OPERATOR_CA.issue("acr-eu-prd.samsungcloud.tv")
        assert store.accepts(genuine, "acr-eu-prd.samsungcloud.tv")

    def test_subject_mismatch_rejected(self):
        store = _trusting_store()
        cert = TESTBED_CA.issue("other.example")
        assert not store.accepts(cert, "eu-acr1.alphonso.tv")

    def test_vendor_pin_sets(self):
        assert "acr-eu-prd.samsungcloud.tv" in PINNED_DOMAINS["samsung"]
        assert not PINNED_DOMAINS["lg"]


class TestProxy:
    def test_intercepts_unpinned(self):
        proxy = MitmProxy(_trusting_store("lg"))
        decrypted = proxy.observe(0, "eu-acr1.alphonso.tv",
                                  b"request", b"response")
        assert decrypted
        assert len(proxy.records) == 2
        assert proxy.intercepted_domains == ["eu-acr1.alphonso.tv"]

    def test_passthrough_for_pinned(self):
        proxy = MitmProxy(_trusting_store("samsung"))
        decrypted = proxy.observe(0, "acr-eu-prd.samsungcloud.tv",
                                  b"secret", None)
        assert not decrypted
        assert proxy.records == []
        assert proxy.opaque_domains == ["acr-eu-prd.samsungcloud.tv"]

    def test_none_plaintext_not_recorded(self):
        proxy = MitmProxy(_trusting_store("lg"))
        proxy.observe(0, "a.acr.example", b"x", None)
        assert len(proxy.records) == 1

    def test_records_for_filters_domain(self):
        proxy = MitmProxy(_trusting_store("lg"))
        proxy.observe(0, "a.acr.example", b"x", None)
        proxy.observe(1, "b.acr.example", b"y", None)
        assert len(proxy.records_for("a.acr.example")) == 1

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            PlaintextRecord(0, "x", "sideways", b"")


class TestInspection:
    def test_classifies_acr_batch(self, library):
        captures = [capture_state(PlayState(library.shows[0], 10.0 + i),
                                  offset_ns=i * 10_000_000)
                    for i in range(5)]
        raw = FingerprintBatch("lg-0000-dev", captures).encode()
        message = inspect_record(PlaintextRecord(0, "acr.example",
                                                 "request", raw))
        assert message.kind == KIND_ACR_BATCH
        assert message.batch is not None and len(message.batch) == 5

    def test_classifies_json(self):
        raw = json.dumps({
            "device": "lg-6c438a63-2963-4aab-91e0-f87be476b447",
        }).encode()
        message = inspect_record(PlaintextRecord(0, "x", "request", raw))
        assert message.kind == KIND_JSON_LOG
        assert message.identifiers == [
            "6c438a63-2963-4aab-91e0-f87be476b447"]

    def test_classifies_keepalive(self):
        message = inspect_record(PlaintextRecord(0, "x", "request",
                                                 b"ping"))
        assert message.kind == KIND_KEEPALIVE

    def test_entropy_bounds(self):
        assert shannon_entropy(b"") == 0.0
        assert shannon_entropy(b"aaaa") == 0.0
        assert shannon_entropy(bytes(range(256))) == pytest.approx(8.0)

    def test_inspector_aggregates(self, library):
        proxy = MitmProxy(_trusting_store("lg"))
        captures = [capture_state(PlayState(library.shows[0], 10.0 + i),
                                  offset_ns=i * 10_000_000)
                    for i in range(5)]
        proxy.observe(0, "eu-acr1.alphonso.tv",
                      FingerprintBatch("tv", captures).encode(),
                      b'{"ack":true}')
        reports = PayloadInspector(proxy).inspect_all()
        report = reports["eu-acr1.alphonso.tv"]
        assert report.carries_fingerprints
        assert report.total_captures == 5
        assert report.capture_cadence_ms == pytest.approx(10.0)


class TestEndToEndAudit:
    def test_lg_fully_visible(self):
        from repro.experiments.mitm_audit import run_mitm_audit
        from repro.testbed import Vendor
        audit = run_mitm_audit(Vendor.LG)
        assert audit.fingerprint_domains  # batches decoded
        assert audit.fingerprint_domains[0].startswith("eu-acr")
        assert not audit.opaque_domains
        assert audit.advertising_id_observed
        # Payload-level confirmation of LG's 10 ms capture claim.
        assert audit.capture_cadence_ms == pytest.approx(10.0)

    def test_samsung_fingerprint_channel_pinned(self):
        from repro.experiments.mitm_audit import run_mitm_audit
        from repro.testbed import Vendor
        audit = run_mitm_audit(Vendor.SAMSUNG)
        assert audit.opaque_domains == ["acr-eu-prd.samsungcloud.tv"]
        assert not audit.fingerprint_domains  # uploads stay opaque
        assert audit.advertising_id_observed  # telemetry leaks the adid
        telemetry = audit.reports["log-ingestion-eu.samsungacr.com"]
        assert telemetry.kinds.get("json-telemetry", 0) > 50
