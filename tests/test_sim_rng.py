"""Unit tests for named seeded RNG streams."""

import pytest

from repro.sim import RngRegistry


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RngRegistry(7).stream("boot").random()
        b = RngRegistry(7).stream("boot").random()
        assert a == b

    def test_different_seed_differs(self):
        a = RngRegistry(7).stream("boot").random()
        b = RngRegistry(8).stream("boot").random()
        assert a != b

    def test_streams_are_independent(self):
        """Draws from one stream must not perturb another."""
        reg1 = RngRegistry(7)
        reg1.stream("noise").random()  # extra draw
        value1 = reg1.stream("boot").random()

        reg2 = RngRegistry(7)
        value2 = reg2.stream("boot").random()
        assert value1 == value2

    def test_stream_is_cached(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")

    def test_fork_is_independent_of_parent(self):
        parent = RngRegistry(7)
        child = parent.fork("tv")
        assert (parent.stream("a").random()
                != child.stream("a").random())

    def test_fork_deterministic(self):
        a = RngRegistry(7).fork("tv").stream("a").random()
        b = RngRegistry(7).fork("tv").stream("a").random()
        assert a == b


class TestHelpers:
    def test_jitter_within_bounds(self):
        reg = RngRegistry(1)
        base = 1_000_000
        for __ in range(200):
            value = reg.jitter_ns("j", base, fraction=0.1)
            assert 900_000 <= value <= 1_100_000

    def test_jitter_zero_base(self):
        assert RngRegistry(1).jitter_ns("j", 0) == 0

    def test_jitter_never_negative(self):
        reg = RngRegistry(1)
        for __ in range(100):
            assert reg.jitter_ns("j", 10, fraction=0.99) >= 0

    def test_jitter_fraction_validated(self):
        with pytest.raises(ValueError):
            RngRegistry(1).jitter_ns("j", 100, fraction=1.5)

    def test_bounded_int_range(self):
        reg = RngRegistry(2)
        for __ in range(100):
            assert 3 <= reg.bounded_int("b", 3, 9) <= 9

    def test_bounded_int_empty_range(self):
        with pytest.raises(ValueError):
            RngRegistry(2).bounded_int("b", 5, 4)

    def test_chance_extremes(self):
        reg = RngRegistry(3)
        assert not reg.chance("c", 0.0)
        assert reg.chance("c", 1.0)

    def test_chance_validated(self):
        with pytest.raises(ValueError):
            RngRegistry(3).chance("c", 1.5)

    def test_token_bytes_length_and_determinism(self):
        a = RngRegistry(4).token_bytes("t", 64)
        b = RngRegistry(4).token_bytes("t", 64)
        assert len(a) == 64
        assert a == b
