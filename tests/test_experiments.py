"""End-to-end tests for the per-figure drivers and the findings scorecard.

These are the reproduction's acceptance tests: every shape target from
DESIGN.md (S1-S12) must hold on real one-hour captures.  The shared
experiment cache keeps the total number of simulated hours bounded.
"""

import pytest

from repro.experiments import (build_figure, comparison_rows, figure4,
                               figure5, run_geo_experiment, table2, table4,
                               transmitted_curve)
from repro.experiments import findings as findings_mod
from repro.experiments.fig_timelines import acr_timeline
from repro.experiments.tables_volumes import SCENARIO_NAMES
from repro.experiments import cache
from repro.testbed import (Country, ExperimentSpec, Phase, Scenario,
                           Vendor)


class TestTimelineFigures:
    def test_figure4_panels(self):
        lg, samsung = figure4()
        assert lg.vendor is Vendor.LG
        assert samsung.vendor is Vendor.SAMSUNG
        assert set(lg.timelines) == set(Scenario)

    def test_linear_and_hdmi_spike_hardest_lg_uk(self):
        figure = build_figure(Vendor.LG, Country.UK)
        active = {Scenario.LINEAR, Scenario.HDMI}
        restricted = set(Scenario) - active
        min_active = min(figure.timelines[s].total_packets
                         for s in active)
        max_restricted = max(figure.timelines[s].total_packets
                             for s in restricted)
        assert min_active > 3 * max_restricted

    def test_peak_reduction_several_fold(self):
        figure = build_figure(Vendor.LG, Country.UK)
        ratio = figure.peak_reduction(Scenario.LINEAR, Scenario.OTT)
        assert 3.0 <= ratio <= 20.0

    def test_us_fast_spikes_like_linear(self):
        figure = build_figure(Vendor.LG, Country.US)
        fast = figure.timelines[Scenario.FAST].total_packets
        linear = figure.timelines[Scenario.LINEAR].total_packets
        assert fast > 0.7 * linear

    def test_acr_timeline_window_is_10_minutes(self):
        spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.LINEAR,
                              Phase.LIN_OIN)
        timeline = acr_timeline(cache.pipeline_for(spec))
        assert timeline.duration_ns == 10 * 60 * 10 ** 9


class TestCdfFigures:
    def test_curves_nonempty_for_active_scenarios(self):
        spec = ExperimentSpec(Vendor.SAMSUNG, Country.UK,
                              Scenario.LINEAR, Phase.LIN_OIN)
        curve = transmitted_curve(spec)
        assert curve.total_bytes > 100_000

    def test_lg_transfers_every_15s_samsung_every_60s(self):
        """Cadence on the fingerprint channel (Samsung's aggregate CDF
        mixes four endpoints, so the batch cadence is measured on
        acr-eu-prd alone)."""
        from repro.analysis import median_step_interval_s
        lg_curve = transmitted_curve(ExperimentSpec(
            Vendor.LG, Country.UK, Scenario.LINEAR, Phase.LIN_OIN))
        samsung_curve = transmitted_curve(
            ExperimentSpec(Vendor.SAMSUNG, Country.UK, Scenario.LINEAR,
                           Phase.LIN_OIN),
            domains=["acr-eu-prd.samsungcloud.tv"])
        assert 13 <= median_step_interval_s(lg_curve) <= 17
        assert 50 <= median_step_interval_s(samsung_curve) <= 70

    def test_figure5_has_all_curves(self):
        figure = figure5()
        assert len(figure.curves) == 2 * 6 * 2  # vendor x scenario x phase

    def test_login_phases_similar_in_cdf(self):
        figure = figure5()
        lin = figure.total_kb(Vendor.LG, Scenario.LINEAR, Phase.LIN_OIN)
        lout = figure.total_kb(Vendor.LG, Scenario.LINEAR,
                               Phase.LOUT_OIN)
        assert lin == pytest.approx(lout, rel=0.25)


class TestVolumeTables:
    def test_table2_shape_matches_paper(self):
        table = table2()
        # Every paper row exists and Antenna dominates for LG.
        assert "eu-acrX.alphonso.tv" in table.domains
        antenna = table.kilobytes("eu-acrX.alphonso.tv", "Antenna")
        idle = table.kilobytes("eu-acrX.alphonso.tv", "Idle")
        assert antenna > 10 * idle

    def test_table2_within_2x_of_paper(self):
        """Every non-dash paper cell is reproduced within 2x."""
        table = table2()
        rows = comparison_rows(table, Country.UK, Phase.LIN_OIN)
        for domain, scenario, paper, measured in rows:
            if paper == "-" or measured == "-":
                continue
            ratio = float(measured) / float(paper)
            assert 0.5 <= ratio <= 2.0, \
                f"{domain}/{scenario}: paper={paper} measured={measured}"

    def test_table4_us_fast_like_antenna(self):
        table = table4()
        fast = table.kilobytes("tkacrX.alphonso.tv", "FAST")
        antenna = table.kilobytes("tkacrX.alphonso.tv", "Antenna")
        assert fast == pytest.approx(antenna, rel=0.2)

    def test_table4_samsung_silent_cells(self):
        table = table4()
        for scenario in ("Idle", "OTT", "Screen Cast"):
            cell = table.cell("acr-us-prd.samsungcloud.tv", scenario)
            assert cell is None or not cell.present


class TestGeoExperiment:
    def test_uk_findings(self):
        experiment = run_geo_experiment(Country.UK)
        lg_domains = [d for d in experiment.domains
                      if d.endswith("alphonso.tv")]
        assert lg_domains
        for domain in lg_domains:
            assert experiment.city_of(domain) == "Amsterdam"
        assert experiment.city_of("log-config.samsungacr.com") == \
            "New York"
        assert all(experiment.dpf_ok.values())

    def test_us_endpoints_all_in_us(self):
        experiment = run_geo_experiment(Country.US)
        for domain in experiment.domains:
            assert experiment.country_of(domain) == "US", domain


@pytest.mark.parametrize("check", findings_mod.ALL_CHECKS,
                         ids=lambda c: c.__name__)
def test_finding_check(check):
    """Every paper finding (S1-S12) holds on the simulated testbed."""
    result = check()
    assert result.passed, f"{result.finding_id}: {result.evidence_text()}"
