"""Tests for the privacy-settings model and device identifiers."""

import pytest

from repro.tv import (DeviceIdentifiers, LG_OPT_OUT_OPTIONS,
                      PrivacySettings, SAMSUNG_OPT_OUT_OPTIONS)


class TestDefaults:
    @pytest.mark.parametrize("vendor", ["lg", "samsung"])
    def test_fresh_tv_is_opted_in(self, vendor):
        """Opt-in is 'the default option when setting up the TV'."""
        settings = PrivacySettings(vendor)
        assert settings.acr_enabled
        assert settings.ads_personalization_enabled
        assert not settings.is_opted_out

    def test_tos_always_accepted(self):
        """The TV is unusable without ToS; experiments assume acceptance."""
        assert PrivacySettings("lg").tos_accepted

    def test_fresh_tv_logged_out(self):
        assert not PrivacySettings("samsung").logged_in

    def test_unknown_vendor(self):
        with pytest.raises(ValueError):
            PrivacySettings("philips")


class TestTable1Options:
    def test_lg_option_count(self):
        assert len(LG_OPT_OUT_OPTIONS) == 11

    def test_samsung_option_count(self):
        assert len(SAMSUNG_OPT_OUT_OPTIONS) == 6

    def test_lg_has_viewing_information(self):
        keys = [key for key, __, __ in LG_OPT_OUT_OPTIONS]
        assert "viewing_information" in keys
        assert "limit_ad_tracking" in keys
        assert "who_where_what" in keys

    def test_samsung_has_do_not_track(self):
        keys = [key for key, __, __ in SAMSUNG_OPT_OUT_OPTIONS]
        assert "do_not_track" in keys
        assert "viewing_information" in keys


class TestOptOut:
    @pytest.mark.parametrize("vendor", ["lg", "samsung"])
    def test_opt_out_disables_acr(self, vendor):
        """Appendix B: ACR is disabled via viewing information services."""
        settings = PrivacySettings(vendor)
        settings.opt_out_all()
        assert not settings.acr_enabled
        assert not settings.ads_personalization_enabled
        assert settings.is_opted_out

    @pytest.mark.parametrize("vendor", ["lg", "samsung"])
    def test_opt_back_in(self, vendor):
        settings = PrivacySettings(vendor)
        settings.opt_out_all()
        settings.opt_in_all()
        assert settings.acr_enabled
        assert not settings.is_opted_out

    def test_enable_style_options_inverted(self):
        """'Limit ad tracking' is *enabled* to opt out."""
        settings = PrivacySettings("lg")
        assert not settings.option("limit_ad_tracking")
        settings.opt_out_all()
        assert settings.option("limit_ad_tracking")

    def test_single_option_toggle(self):
        settings = PrivacySettings("samsung")
        settings.set_option("viewing_information", False)
        assert not settings.acr_enabled
        assert not settings.is_opted_out  # other options still opted in

    def test_unknown_option(self):
        settings = PrivacySettings("lg")
        with pytest.raises(KeyError):
            settings.set_option("nonexistent", True)
        with pytest.raises(KeyError):
            settings.option("nonexistent")

    def test_describe_matches_table1(self):
        settings = PrivacySettings("samsung")
        rows = settings.describe()
        assert len(rows) == len(SAMSUNG_OPT_OUT_OPTIONS)
        labels = [label for __, label, __ in rows]
        assert any("viewing information" in label.lower()
                   for label in labels)


class TestLoginState:
    def test_login_logout(self):
        settings = PrivacySettings("lg")
        settings.login()
        assert settings.logged_in
        settings.logout()
        assert not settings.logged_in

    def test_login_does_not_touch_consents(self):
        settings = PrivacySettings("lg")
        before = [settings.option(key)
                  for key, __, __ in LG_OPT_OUT_OPTIONS]
        settings.login()
        after = [settings.option(key)
                 for key, __, __ in LG_OPT_OUT_OPTIONS]
        assert before == after


class TestIdentifiers:
    def test_deterministic(self):
        a = DeviceIdentifiers("lg", 5)
        b = DeviceIdentifiers("lg", 5)
        assert a.advertising_id == b.advertising_id
        assert a.serial_number == b.serial_number

    def test_vendor_and_seed_vary(self):
        assert DeviceIdentifiers("lg", 5).advertising_id != \
            DeviceIdentifiers("samsung", 5).advertising_id
        assert DeviceIdentifiers("lg", 5).advertising_id != \
            DeviceIdentifiers("lg", 6).advertising_id

    def test_acr_device_id_ignores_account(self):
        """The conjecture in §4.2: ACR keys on the advertising ID."""
        identifiers = DeviceIdentifiers("samsung", 5)
        before = identifiers.acr_device_id
        identifiers.link_account(5)
        assert identifiers.acr_device_id == before
        identifiers.unlink_account()
        assert identifiers.account_id is None

    def test_account_linking(self):
        identifiers = DeviceIdentifiers("lg", 5)
        account = identifiers.link_account(5)
        assert account.startswith("acct-")
        assert identifiers.account_id == account
