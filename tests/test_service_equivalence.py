"""Streaming-vs-batch equivalence: the service tier's one invariant.

Property-tested claim: for ANY segment count, credit window, household
window, arrival interleaving, job count, and checkpoint/kill/resume
point, the streaming service renders a fleet report byte-identical
(sha256) to the batch ``fleet --jobs 1`` path over the same population.

The simulating tests share one module-scoped result cache, so only the
first run pays for capture simulation; every subsequent property
example replays cached captures through a different streaming schedule.
"""

import hashlib
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.grid import ResultCache
from repro.fleet import (FleetRunner, PopulationSpec,
                         render_population_report)
from repro.net import CapturedPacket, dump_bytes
from repro.service import (CheckpointError, LiveState, ServiceConfig,
                           ServiceStopped, load_checkpoint, serve_fleet,
                           split_pcap_bytes, write_checkpoint)
from repro.service.checkpoint import population_key
from repro.service.segments import PCAP_HEADER_LEN

# The cheap simulated fleet: one country (one asset build), the
# shortest diary.  Same shape the fleet runner tests use.
UK_QUICK = {"country": {"uk": 1.0}, "diary": {"second_screen": 1.0}}
POP = dict(households=4, seed=21, mixes=UK_QUICK)


def sha(report: str) -> str:
    return hashlib.sha256(report.encode()).hexdigest()


def serve_sha(population, cache, **kwargs) -> str:
    config = ServiceConfig(
        window=kwargs.pop("window", 3),
        credits=kwargs.pop("credits", 2),
        segments=kwargs.pop("segments", 5),
        arrival_seed=kwargs.pop("arrival_seed", None),
        checkpoint_every=kwargs.pop("checkpoint_every", 1))
    result = serve_fleet(population, cache=cache, config=config,
                         **kwargs)
    return sha(render_population_report(result.state,
                                        result.population))


@pytest.fixture(scope="module")
def cache():
    # Lives under the suite's persistent cache root (conftest points
    # REPRO_CACHE_DIR at a tempdir), so repeated `make test` runs stay
    # warm; the explicit version isolates it from other suites.
    root = os.path.join(os.environ["REPRO_CACHE_DIR"], "service-eq")
    return ResultCache(root, version="service-eq-1")


@pytest.fixture(scope="module")
def population():
    return PopulationSpec(**POP)


@pytest.fixture(scope="module")
def batch_sha(cache, population):
    result = FleetRunner(cache=cache, jobs=1).run(population)
    return sha(render_population_report(result.aggregate, population))


class TestSplitIsBytePreserving:
    """Fast, simulation-free: the segmentation layer's exact contract."""

    @given(payloads=st.lists(st.binary(min_size=1, max_size=90),
                             max_size=12),
           parts=st.integers(min_value=1, max_value=15))
    @settings(max_examples=120, deadline=None)
    def test_reassembly_reproduces_the_capture(self, payloads, parts):
        raw = dump_bytes([CapturedPacket(i * 1_000, data)
                          for i, data in enumerate(payloads)])
        chunks = split_pcap_bytes(raw, parts)
        header = raw[:PCAP_HEADER_LEN]
        assert all(chunk[:PCAP_HEADER_LEN] == header for chunk in chunks)
        body = b"".join(chunk[PCAP_HEADER_LEN:] for chunk in chunks)
        assert header + body == raw
        # The pcap_len accounting the fleet report depends on.
        assert sum(len(chunk) - PCAP_HEADER_LEN for chunk in chunks) \
            + PCAP_HEADER_LEN == len(raw)

    def test_empty_capture_yields_header_only_chunk(self):
        raw = dump_bytes([])
        assert split_pcap_bytes(raw, 4) == [raw]

    def test_more_parts_than_records_degrades_to_one_each(self):
        raw = dump_bytes([CapturedPacket(1, b"ab"),
                          CapturedPacket(2, b"cd")])
        assert len(split_pcap_bytes(raw, 9)) == 2


@pytest.mark.slow
class TestStreamingEqualsBatch:
    @given(window=st.integers(min_value=1, max_value=4),
           credits=st.integers(min_value=1, max_value=3),
           segments=st.integers(min_value=1, max_value=9),
           arrival_seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_any_schedule_matches_batch(self, cache, population,
                                        batch_sha, window, credits,
                                        segments, arrival_seed):
        assert serve_sha(population, cache, window=window,
                         credits=credits, segments=segments,
                         arrival_seed=arrival_seed) == batch_sha

    def test_parallel_production_matches_batch(self, cache, population,
                                               batch_sha):
        assert serve_sha(population, cache, jobs=2) == batch_sha

    def test_batch_jobs_invariance_still_holds(self, cache, population,
                                               batch_sha):
        parallel = FleetRunner(cache=cache, jobs=2).run(population)
        assert sha(render_population_report(parallel.aggregate,
                                            population)) == batch_sha

    def test_live_state_renders_like_its_aggregate(self, cache,
                                                   population,
                                                   batch_sha):
        result = serve_fleet(population, cache=cache,
                             config=ServiceConfig(segments=3))
        assert sha(render_population_report(
            result.state, population)) == batch_sha
        assert sha(render_population_report(
            result.state.aggregate, population)) == batch_sha


class TestLiveStateFindings:
    """The structured-findings surface over the live aggregate."""

    def _summary(self, index, opted_in, acr):
        return {
            "label": f"hh-{index:04d}", "index": index,
            "vendor": "roku", "country": "us",
            "phase": "LIn-OIn" if opted_in else "LIn-OOut",
            "diary": "binge", "opted_in": opted_in, "packets": 50,
            "pcap_len": 4000,
            "acr_domains": ["acr.roku.example"] if acr else [],
            "acr_bytes": 2048 if acr else 0,
            "acr_upload_bytes": 1024 if acr else 0,
            "acr_packets": 8 if acr else 0, "acr_bursts": 2 if acr else 0,
            "cadence_sum_ns": 0, "cadence_intervals": 0,
        }

    def test_optout_violations_surface_structured_findings(self):
        state = LiveState()
        state.fold(0, self._summary(0, opted_in=True, acr=True))
        state.fold(1, self._summary(1, opted_in=False, acr=True))
        state.fold(2, self._summary(2, opted_in=False, acr=False))
        assert state.optout_violations() == {
            "optout_households": 2, "violating_households": 1,
            "violation_rate": 0.5}
        violations = state.violation_findings()
        assert len(violations) == 1
        entry = violations[0].evidence[0]
        assert entry.household == 1 and entry.capture == "hh-0001"
        assert entry.flow == "acr.roku.example"
        # The ledger view and the per-code filter agree.
        assert state.findings.failed() == violations


@pytest.mark.slow
class TestKillResumeEqualsBatch:
    @given(stop_after=st.integers(min_value=1, max_value=60),
           segments=st.integers(min_value=2, max_value=7),
           resume_credits=st.integers(min_value=1, max_value=3),
           arrival_seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_kill_anywhere_then_resume_matches_batch(
            self, cache, population, batch_sha, stop_after, segments,
            resume_credits, arrival_seed):
        # Stop after an arbitrary number of events; the resumed run may
        # even use a different credit window and segmentation — the
        # checkpoint only carries folded aggregates, so none of the
        # streaming knobs are load-bearing.
        with tempfile.TemporaryDirectory() as ckdir:
            ticks = [0]

            def stop_check():
                ticks[0] += 1
                return ticks[0] > stop_after

            config = ServiceConfig(segments=segments,
                                   arrival_seed=arrival_seed,
                                   checkpoint_every=1)
            try:
                result = serve_fleet(population, cache=cache,
                                     config=config,
                                     checkpoint_dir=ckdir,
                                     stop_check=stop_check)
                report = render_population_report(result.state,
                                                  population)
            except ServiceStopped:
                snapshot = load_checkpoint(ckdir)
                assert len(snapshot.completed) < population.households
                resumed = serve_fleet(
                    population, cache=cache,
                    config=ServiceConfig(credits=resume_credits,
                                         segments=segments + 1),
                    checkpoint_dir=ckdir, resume=True)
                assert resumed.resumed_households == \
                    len(snapshot.completed)
                report = render_population_report(resumed.state,
                                                  population)
            assert sha(report) == batch_sha

    def test_growing_the_fleet_in_place(self, cache):
        # Checkpoint a 2-household stream, then resume asking for 4:
        # the first two households come from the checkpoint, and the
        # report matches a batch run over the full 4.
        small = PopulationSpec(households=2, seed=21, mixes=UK_QUICK)
        full = PopulationSpec(**POP)
        with tempfile.TemporaryDirectory() as ckdir:
            first = serve_fleet(small, cache=cache,
                                config=ServiceConfig(segments=4),
                                checkpoint_dir=ckdir)
            assert first.state.households == 2
            grown = serve_fleet(full, cache=cache,
                                config=ServiceConfig(segments=4),
                                checkpoint_dir=ckdir, resume=True)
            assert grown.resumed_households == 2
            batch = FleetRunner(cache=cache, jobs=1).run(full)
            assert grown.aggregate == batch.aggregate

    def test_resume_of_a_finished_run_is_idempotent(self, cache,
                                                    population,
                                                    batch_sha):
        with tempfile.TemporaryDirectory() as ckdir:
            serve_fleet(population, cache=cache,
                        config=ServiceConfig(segments=4),
                        checkpoint_dir=ckdir)
            again = serve_fleet(population, cache=cache,
                                config=ServiceConfig(segments=4),
                                checkpoint_dir=ckdir, resume=True)
            assert again.resumed_households == population.households
            assert again.segments_delivered == 0
            assert sha(render_population_report(
                again.state, population)) == batch_sha


@pytest.mark.slow
class TestCheckpointDurability:
    """Corrupted snapshots on disk degrade to the newest valid one."""

    def _stop_partway(self, cache, population, ckdir, stop_after=18):
        ticks = [0]

        def stop_check():
            ticks[0] += 1
            return ticks[0] > stop_after

        config = ServiceConfig(segments=5, checkpoint_every=1)
        with pytest.raises(ServiceStopped):
            serve_fleet(population, cache=cache, config=config,
                        checkpoint_dir=ckdir, stop_check=stop_check)

    def test_resume_falls_back_past_corrupt_snapshots(
            self, cache, population, batch_sha):
        from repro.service.checkpoint import (checkpoint_path,
                                              rotated_path,
                                              rotated_sequences)
        with tempfile.TemporaryDirectory() as ckdir:
            self._stop_partway(cache, population, ckdir)
            sequences = rotated_sequences(ckdir)
            assert len(sequences) >= 2
            # Tear the canonical snapshot and flip one byte inside the
            # newest rotated one (its digest no longer matches): resume
            # must fall back to an older snapshot, then re-converge.
            with open(checkpoint_path(ckdir), "r+",
                      encoding="utf-8") as fileobj:
                text = fileobj.read()
                fileobj.seek(0)
                fileobj.truncate()
                fileobj.write(text[:len(text) // 2])
            newest = rotated_path(ckdir, sequences[-1])
            with open(newest, encoding="utf-8") as fileobj:
                text = fileobj.read()
            with open(newest, "w", encoding="utf-8") as fileobj:
                fileobj.write(text.replace('"households":', '"hauseholds":', 1))
            resumed = serve_fleet(
                population, cache=cache,
                config=ServiceConfig(segments=5, checkpoint_every=1),
                checkpoint_dir=ckdir, resume=True)
            assert sha(render_population_report(
                resumed.state, population)) == batch_sha

    def test_rotated_snapshots_stay_bounded(self, cache, population):
        from repro.service.checkpoint import (CHECKPOINT_KEEP,
                                              rotated_sequences)
        with tempfile.TemporaryDirectory() as ckdir:
            serve_fleet(population, cache=cache,
                        config=ServiceConfig(segments=4,
                                             checkpoint_every=1),
                        checkpoint_dir=ckdir)
            assert 1 <= len(rotated_sequences(ckdir)) \
                <= CHECKPOINT_KEEP


class TestCheckpointGuards:
    """Simulation-free checkpoint validation behaviour."""

    def test_checkpoint_for_a_different_fleet_is_refused(self, tmp_path):
        key = population_key(1, {"vendor": {"lg": 1.0}})
        write_checkpoint(str(tmp_path), LiveState(), {}, key, 5)
        with pytest.raises(CheckpointError, match="different fleet"):
            load_checkpoint(str(tmp_path), expect_key=population_key(
                2, {"vendor": {"lg": 1.0}}))

    def test_population_key_ignores_size(self):
        mixes = {"vendor": {"lg": 2.0, "samsung": 1.0}}
        assert population_key(7, mixes) == population_key(7, dict(mixes))
        assert population_key(7, mixes) != population_key(8, mixes)

    def test_missing_checkpoint_is_a_clean_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(str(tmp_path / "nowhere"))

    def test_resume_without_checkpoint_dir_is_rejected(self):
        population = PopulationSpec(households=1, seed=3)
        with pytest.raises(ValueError, match="checkpoint dir"):
            serve_fleet(population, resume=True)
