"""Integration tests for the host stack: DNS exchanges and TLS sessions
produce well-formed, decodable, causally-ordered captures."""

import pytest

from repro.net import (DnsRecord, FlowTable, HostStack, Ipv4Address,
                       TlsSession, decode_all, dump_bytes, extract_sni,
                       load_bytes, mac_from_seed)
from repro.net.link import LatencyModel
from repro.net.tcp import FLAG_ACK, FLAG_FIN, FLAG_SYN
from repro.net.tls import TlsRecord
from repro.sim import RngRegistry, seconds

TV_IP = Ipv4Address.parse("192.168.1.50")
RESOLVER_IP = Ipv4Address.parse("192.168.1.1")
SERVER_IP = Ipv4Address.parse("203.0.113.10")
SERVER_NAME = "eu-acr4.alphonso.tv"


@pytest.fixture
def env():
    rng = RngRegistry(42)
    latency = LatencyModel("uk", rng)
    latency.register_server(SERVER_IP, "amsterdam")
    latency.register_server(RESOLVER_IP, "london")
    captured = []
    stack = HostStack(mac_from_seed(1), TV_IP, mac_from_seed(2),
                      latency, rng, captured.append)
    return stack, captured


class TestDnsExchange:
    def test_query_and_response_captured(self, env):
        stack, captured = env
        stack.dns_exchange(0, RESOLVER_IP, SERVER_NAME,
                           [DnsRecord.a(SERVER_NAME, SERVER_IP)])
        decoded = decode_all(captured)
        assert len(decoded) == 2
        query, response = decoded
        assert query.dns is not None and not query.dns.is_response
        assert response.dns is not None and response.dns.is_response
        assert response.dns.answers[0].address == SERVER_IP

    def test_response_after_query(self, env):
        stack, captured = env
        q_ts, r_ts = stack.dns_exchange(
            seconds(1), RESOLVER_IP, SERVER_NAME,
            [DnsRecord.a(SERVER_NAME, SERVER_IP)])
        assert r_ts > q_ts >= seconds(1)

    def test_txid_matches(self, env):
        stack, captured = env
        stack.dns_exchange(0, RESOLVER_IP, SERVER_NAME,
                           [DnsRecord.a(SERVER_NAME, SERVER_IP)])
        query, response = decode_all(captured)
        assert query.dns.txid == response.dns.txid


class TestTlsSession:
    def test_handshake_packets(self, env):
        stack, captured = env
        session = TlsSession.open(stack, 0, SERVER_IP, SERVER_NAME)
        assert session.established_at is not None
        decoded = decode_all(captured)
        flags = [p.tcp.flags for p in decoded if p.tcp]
        assert flags[0] == FLAG_SYN
        assert flags[1] == FLAG_SYN | FLAG_ACK
        assert flags[2] == FLAG_ACK

    def test_sni_visible_in_capture(self, env):
        stack, captured = env
        TlsSession.open(stack, 0, SERVER_IP, SERVER_NAME)
        snis = []
        for packet in decode_all(captured):
            if packet.tcp and packet.tcp.payload:
                records, __ = TlsRecord.decode_stream(packet.tcp.payload)
                snis.extend(extract_sni(r) for r in records)
        assert SERVER_NAME in [s for s in snis if s]

    def test_exchange_volume_scales_with_payload(self, env):
        stack, captured = env
        session = TlsSession.open(stack, 0, SERVER_IP, SERVER_NAME)
        before = sum(len(p.data) for p in captured)
        session.exchange(session.established_at + 1, 20000, 500)
        after = sum(len(p.data) for p in captured)
        wire = after - before
        assert 20500 < wire < 20500 * 1.2  # payload plus bounded overhead

    def test_timestamps_monotonic_per_direction(self, env):
        stack, captured = env
        session = TlsSession.open(stack, 0, SERVER_IP, SERVER_NAME)
        session.exchange(session.established_at + 1, 5000, 400)
        session.close(session.established_at + seconds(1))
        decoded = decode_all(captured)
        outbound = [p.timestamp for p in decoded if p.src_ip == TV_IP]
        inbound = [p.timestamp for p in decoded if p.dst_ip == TV_IP]
        assert outbound == sorted(outbound)
        assert inbound == sorted(inbound)

    def test_close_emits_fin_handshake(self, env):
        stack, captured = env
        session = TlsSession.open(stack, 0, SERVER_IP, SERVER_NAME)
        session.close(session.established_at + 10)
        fins = [p for p in decode_all(captured)
                if p.tcp and p.tcp.flags & FLAG_FIN]
        assert len(fins) == 2  # one each direction
        assert session.closed

    def test_exchange_after_close_rejected(self, env):
        stack, captured = env
        session = TlsSession.open(stack, 0, SERVER_IP, SERVER_NAME)
        session.close(session.established_at + 10)
        with pytest.raises(RuntimeError):
            session.exchange(seconds(10), 100, 100)

    def test_exchange_before_establishment_rejected(self, env):
        stack, __ = env
        session = TlsSession(stack, SERVER_IP, SERVER_NAME, 40000, 443)
        with pytest.raises(RuntimeError):
            session.exchange(0, 10, 10)

    def test_seq_numbers_consistent(self, env):
        """Client seq advances by exactly the bytes carried."""
        stack, captured = env
        session = TlsSession.open(stack, 0, SERVER_IP, SERVER_NAME)
        session.exchange(session.established_at + 1, 3000, 100)
        decoded = decode_all(captured)
        client_data = [p.tcp for p in decoded
                       if p.tcp and p.src_ip == TV_IP and p.tcp.payload]
        for first, second in zip(client_data, client_data[1:]):
            assert second.seq == (first.seq + len(first.payload)) \
                & 0xFFFFFFFF


class TestCaptureRealism:
    def test_full_session_survives_pcap_roundtrip(self, env):
        stack, captured = env
        stack.dns_exchange(0, RESOLVER_IP, SERVER_NAME,
                           [DnsRecord.a(SERVER_NAME, SERVER_IP)])
        session = TlsSession.open(stack, seconds(1), SERVER_IP, SERVER_NAME)
        session.exchange(session.established_at + 1, 18000, 600)
        session.close(session.established_at + seconds(2))
        packets = sorted(captured, key=lambda p: p.timestamp)
        reloaded = load_bytes(dump_bytes(packets))
        assert len(reloaded) == len(packets)
        table = FlowTable()
        table.add_all(decode_all(reloaded))
        # one DNS flow + one TLS flow
        assert len(table) == 2

    def test_flow_accounting_sums_to_capture(self, env):
        stack, captured = env
        session = TlsSession.open(stack, 0, SERVER_IP, SERVER_NAME)
        session.exchange(session.established_at + 1, 4000, 4000)
        table = FlowTable()
        table.add_all(decode_all(captured))
        assert sum(f.total_bytes for f in table.flows) == \
            sum(len(p.data) for p in captured)
