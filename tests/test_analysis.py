"""Tests for the audit pipeline: DNS mapping, domain indexing, timelines,
volumes, CDFs, periodicity, the heuristic, and comparisons.

Session-scoped fixtures in conftest.py provide real one-hour captures.
"""

import numpy as np
import pytest

from repro.analysis import (AcrDomainAuditor, AuditPipeline, Blocklist,
                            CumulativeCurve, DnsMap, NetifyDirectory,
                            PhaseComparison, acr_volume_total,
                            analyze_periodicity, burst_times_ns,
                            cumulative_bytes, dominant_period_s,
                            infer_tv_ip, median_step_interval_s,
                            no_new_acr_domains, normalize_rotating,
                            packets_per_ms, packets_per_second,
                            peak_ratio)
from repro.net import Ipv4Address, load_bytes, decode_all
from repro.sim import minutes, seconds


class TestPipeline:
    def test_from_result_roundtrip(self, lg_uk_linear_result,
                                   lg_uk_linear_pipeline):
        assert lg_uk_linear_pipeline.tv_ip == Ipv4Address.parse(
            lg_uk_linear_result.tv_ip)
        assert len(lg_uk_linear_pipeline.packets) == \
            lg_uk_linear_result.packet_count

    def test_tv_ip_inference(self, lg_uk_linear_result):
        packets = decode_all(load_bytes(lg_uk_linear_result.pcap_bytes))
        assert infer_tv_ip(packets) == Ipv4Address.parse(
            lg_uk_linear_result.tv_ip)

    def test_contacted_domains_no_lan(self, lg_uk_linear_pipeline):
        for domain in lg_uk_linear_pipeline.contacted_domains:
            assert not domain.startswith("lan:")
            assert not domain.startswith("unresolved:")

    def test_acr_candidates_substring(self, lg_uk_linear_pipeline):
        for domain in lg_uk_linear_pipeline.acr_candidate_domains():
            assert "acr" in domain

    def test_bytes_accounting_positive(self, lg_uk_linear_pipeline):
        domain = lg_uk_linear_pipeline.acr_candidate_domains()[0]
        assert lg_uk_linear_pipeline.bytes_for(domain) > 0
        assert lg_uk_linear_pipeline.bytes_sent_to(domain) < \
            lg_uk_linear_pipeline.bytes_for(domain)

    def test_unknown_domain_zero(self, lg_uk_linear_pipeline):
        assert lg_uk_linear_pipeline.bytes_for("ghost.example") == 0
        assert lg_uk_linear_pipeline.packets_for("ghost.example") == []


class TestDnsMap:
    def test_observes_answers(self, lg_uk_linear_pipeline):
        dns_map = lg_uk_linear_pipeline.dns_map
        assert dns_map.answers_seen > 0
        assert len(dns_map.all_domains) >= 4

    def test_bidirectional_mapping(self, lg_uk_linear_pipeline):
        dns_map = lg_uk_linear_pipeline.dns_map
        domain = dns_map.all_domains[0]
        addresses = dns_map.addresses_for(domain)
        assert addresses
        assert domain in dns_map.domains_for(addresses[0])

    def test_unknown_address_label(self):
        dns_map = DnsMap()
        assert dns_map.label(Ipv4Address.parse("9.9.9.9")) == \
            "unresolved:9.9.9.9"


class TestTimelines:
    def test_packets_per_ms_counts_everything_in_window(
            self, lg_uk_linear_pipeline):
        pipeline = lg_uk_linear_pipeline
        packets = pipeline.packets_for_all(
            pipeline.acr_candidate_domains())
        start, end = minutes(10), minutes(20)
        timeline = packets_per_ms(packets, start, end)
        expected = sum(1 for p in packets if start <= p.timestamp < end)
        assert timeline.total_packets == expected
        assert len(timeline) == 10 * 60 * 1000

    def test_rebin_preserves_total(self, lg_uk_linear_pipeline):
        pipeline = lg_uk_linear_pipeline
        packets = pipeline.packets_for_all(
            pipeline.acr_candidate_domains())
        timeline = packets_per_ms(packets, minutes(10), minutes(20))
        coarse = timeline.rebin(1000)
        assert coarse.total_packets == timeline.total_packets
        assert coarse.bin_ns == seconds(1)

    def test_per_second_equals_rebinned_ms(self, lg_uk_linear_pipeline):
        pipeline = lg_uk_linear_pipeline
        packets = pipeline.packets_for_all(
            pipeline.acr_candidate_domains())
        per_s = packets_per_second(packets, minutes(10), minutes(20))
        per_ms = packets_per_ms(packets, minutes(10), minutes(20))
        assert per_s.total_packets == per_ms.total_packets

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            packets_per_ms([], 100, 100)

    def test_burst_times(self, lg_uk_linear_pipeline):
        pipeline = lg_uk_linear_pipeline
        domain = pipeline.acr_candidate_domains()[0]
        bursts = burst_times_ns(pipeline.packets_for(domain))
        assert len(bursts) > 200  # ~240 batches in an hour

    def test_peak_ratio(self, lg_uk_linear_pipeline, lg_uk_idle_pipeline):
        linear_packets = lg_uk_linear_pipeline.packets_for_all(
            lg_uk_linear_pipeline.acr_candidate_domains())
        idle_packets = lg_uk_idle_pipeline.packets_for_all(
            lg_uk_idle_pipeline.acr_candidate_domains())
        active = packets_per_ms(linear_packets, minutes(10), minutes(20))
        restricted = packets_per_ms(idle_packets, minutes(10),
                                    minutes(20))
        assert peak_ratio(active, restricted) > 1.0


class TestVolumesAndCdf:
    def test_normalize_rotating(self):
        assert normalize_rotating("eu-acr4.alphonso.tv") == \
            "eu-acrX.alphonso.tv"
        assert normalize_rotating("tkacr2.alphonso.tv") == \
            "tkacrX.alphonso.tv"
        assert normalize_rotating("acr0.samsungcloudsolution.com") == \
            "acr0.samsungcloudsolution.com"
        assert normalize_rotating("log-config.samsungacr.com") == \
            "log-config.samsungacr.com"

    def test_cumulative_curve_monotonic(self, lg_uk_linear_pipeline):
        pipeline = lg_uk_linear_pipeline
        packets = pipeline.packets_for_all(
            pipeline.acr_candidate_domains())
        curve = cumulative_bytes(packets, minutes(5), minutes(55))
        diffs = np.diff(curve.cumulative_bytes)
        assert (diffs >= 0).all()
        assert curve.total_bytes > 0

    def test_sent_only_filter(self, lg_uk_linear_pipeline):
        pipeline = lg_uk_linear_pipeline
        packets = pipeline.packets_for_all(
            pipeline.acr_candidate_domains())
        both = cumulative_bytes(packets, minutes(5), minutes(55))
        sent = cumulative_bytes(packets, minutes(5), minutes(55),
                                sent_only_from=pipeline.tv_ip)
        assert 0 < sent.total_bytes < both.total_bytes

    def test_time_to_fraction_monotone(self, lg_uk_linear_pipeline):
        pipeline = lg_uk_linear_pipeline
        packets = pipeline.packets_for_all(
            pipeline.acr_candidate_domains())
        curve = cumulative_bytes(packets, minutes(5), minutes(55))
        assert curve.time_to_fraction(0.25) <= \
            curve.time_to_fraction(0.75)

    def test_median_step_interval_is_batch_cadence(
            self, lg_uk_linear_pipeline):
        pipeline = lg_uk_linear_pipeline
        packets = pipeline.packets_for_all(
            pipeline.acr_candidate_domains())
        curve = cumulative_bytes(packets, minutes(5), minutes(55),
                                 sent_only_from=pipeline.tv_ip)
        assert 13 <= median_step_interval_s(curve) <= 17

    def test_empty_curve(self):
        curve = cumulative_bytes([], 0, 100)
        assert curve.total_bytes == 0
        assert curve.time_to_fraction(0.5) == float("inf")


class TestPeriodicity:
    def test_lg_15s_cadence(self, lg_uk_linear_pipeline):
        pipeline = lg_uk_linear_pipeline
        domain = pipeline.acr_candidate_domains()[0]
        report = analyze_periodicity(domain, pipeline.packets_for(domain))
        assert report.period_s == pytest.approx(15.0, abs=1.0)
        assert report.regular

    def test_samsung_60s_fingerprint_cadence(
            self, samsung_uk_linear_pipeline):
        pipeline = samsung_uk_linear_pipeline
        report = analyze_periodicity(
            "acr-eu-prd.samsungcloud.tv",
            pipeline.packets_for("acr-eu-prd.samsungcloud.tv"))
        assert report.period_s == pytest.approx(60.0, abs=4.0)
        assert report.regular

    def test_dominant_period_autocorrelation(self,
                                             lg_uk_linear_pipeline):
        pipeline = lg_uk_linear_pipeline
        domain = pipeline.acr_candidate_domains()[0]
        period = dominant_period_s(pipeline.packets_for(domain))
        assert period is not None
        assert period == pytest.approx(15.0, abs=2.0)

    def test_no_packets_no_period(self):
        report = analyze_periodicity("ghost", [])
        assert report.period_s is None
        assert not report.regular
        assert dominant_period_s([]) is None


class TestBlocklists:
    def test_blokada_suffix_matching(self):
        blocklist = Blocklist()
        assert blocklist.is_listed("eu-acr3.alphonso.tv")
        assert blocklist.is_listed("log-config.samsungacr.com")
        assert not blocklist.is_listed("bbc.co.uk")
        assert not blocklist.is_listed("alphonso.tv.evil.example")

    def test_netify_classification(self):
        netify = NetifyDirectory()
        info = netify.classify("log-ingestion-eu.samsungacr.com")
        assert info is not None and info["category"] == "advertiser"
        assert netify.is_tracking_related("eu-acr1.alphonso.tv")
        assert not netify.is_tracking_related("time.example.org")
        assert not netify.is_tracking_related("api.netflix.com")


class TestHeuristic:
    def test_validated_domains(self, lg_uk_linear_pipeline,
                               lg_uk_linear_optout_pipeline):
        auditor = AcrDomainAuditor()
        validated = auditor.validated_domains(
            lg_uk_linear_pipeline, lg_uk_linear_optout_pipeline)
        assert len(validated) == 1
        assert validated[0].startswith("eu-acr")

    def test_findings_fields(self, samsung_uk_linear_pipeline,
                             samsung_uk_linear_optout_pipeline):
        auditor = AcrDomainAuditor()
        findings = auditor.audit(samsung_uk_linear_pipeline,
                                 samsung_uk_linear_optout_pipeline)
        by_domain = {f.domain: f for f in findings}
        assert len(findings) == 4
        for finding in findings:
            assert finding.contains_acr
            assert finding.blocklist_listed
            assert finding.disappears_on_optout
        assert by_domain["acr0.samsungcloudsolution.com"].numbered_scheme

    def test_no_new_acr_domains_on_optout(
            self, samsung_uk_linear_pipeline,
            samsung_uk_linear_optout_pipeline):
        assert no_new_acr_domains(samsung_uk_linear_pipeline,
                                  samsung_uk_linear_optout_pipeline)

    def test_ads_counterexample_irregular(self,
                                          samsung_uk_linear_pipeline):
        auditor = AcrDomainAuditor()
        reports = auditor.counterexample_regularity(
            samsung_uk_linear_pipeline)
        assert reports, "expected ad-platform domains in the capture"
        assert any(not report.regular for report in reports.values())


class TestComparisons:
    def test_optout_comparison_silent(self, lg_uk_linear_pipeline,
                                      lg_uk_linear_optout_pipeline):
        comparison = PhaseComparison(
            "LIn-OIn", lg_uk_linear_pipeline,
            "LIn-OOut", lg_uk_linear_optout_pipeline)
        assert comparison.b_is_silent
        assert not comparison.same_domain_set

    def test_acr_volume_total(self, lg_uk_linear_pipeline,
                              lg_uk_idle_pipeline):
        linear = acr_volume_total(lg_uk_linear_pipeline)
        idle = acr_volume_total(lg_uk_idle_pipeline)
        assert linear > 10 * idle
