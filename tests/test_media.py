"""Tests for content items, synthetic frames, schedules and input sources."""

import numpy as np
import pytest

from repro.media import (AD_BREAK_EVERY_S, Channel, ContentItem, ContentKind,
                         FastApp, HdmiInput, HomeScreen, MediaLibrary,
                         OttApp, PlayState, ScheduleSlot, ScreenCast,
                         SourceType, Tuner, build_channel, build_lineup,
                         frame_similarity, render_audio, render_frame,
                         standard_library)
from repro.sim import seconds


@pytest.fixture(scope="module")
def library():
    return standard_library("uk", seed=3)


def _ui_item():
    return ContentItem("ui:home", "Home", ContentKind.UI, 86400, "news")


class TestContent:
    def test_visual_seed_stable(self, library):
        item = library.shows[0]
        assert item.visual_seed == item.visual_seed

    def test_visual_seeds_distinct(self, library):
        seeds = {item.visual_seed for item in library.all_items}
        assert len(seeds) == len(library.all_items)

    def test_reference_library_membership(self, library):
        assert library.shows[0].in_reference_library
        assert not library.game().in_reference_library
        assert not library.desktop().in_reference_library

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            ContentItem("x", "X", ContentKind.SHOW, 0, "news")

    def test_invalid_genre(self):
        with pytest.raises(ValueError):
            ContentItem("x", "X", ContentKind.SHOW, 10, "horror")

    def test_play_state_validation(self, library):
        with pytest.raises(ValueError):
            PlayState(library.shows[0], -1.0)


class TestLibrary:
    def test_population_counts(self, library):
        assert len(library.shows) == 40
        assert len(library.ads) == 30
        assert len(library.reference_items) == 40 + 30 + 15 + 6 + 25

    def test_determinism(self):
        a = standard_library("uk", seed=3)
        b = standard_library("uk", seed=3)
        assert [i.content_id for i in a.all_items] == \
            [i.content_id for i in b.all_items]

    def test_different_seeds_differ(self):
        a = MediaLibrary("x", seed=1).populate()
        b = MediaLibrary("x", seed=2).populate()
        assert [i.duration_s for i in a.shows] != \
            [i.duration_s for i in b.shows]

    def test_find(self, library):
        item = library.shows[5]
        assert library.find(item.content_id) is item
        assert library.find("nope") is None


class TestFrames:
    def test_determinism(self, library):
        state = PlayState(library.shows[0], 42.0)
        assert np.array_equal(render_frame(state), render_frame(state))

    def test_same_scene_similar(self, library):
        item = library.shows[0]
        a = render_frame(PlayState(item, 40.0))
        b = render_frame(PlayState(item, 41.0))  # same 8 s scene
        assert frame_similarity(a, b) > 0.9

    def test_different_content_dissimilar(self, library):
        a = render_frame(PlayState(library.shows[0], 40.0))
        b = render_frame(PlayState(library.shows[1], 40.0))
        assert frame_similarity(a, b) < 0.5

    def test_scene_cut_changes_frame(self, library):
        item = library.shows[0]
        a = render_frame(PlayState(item, 7.0))
        b = render_frame(PlayState(item, 9.0))  # across a scene boundary
        assert frame_similarity(a, b) < 0.5

    def test_frame_range(self, library):
        frame = render_frame(PlayState(library.shows[0], 1.0))
        assert frame.min() >= 0.0 and frame.max() <= 1.0

    def test_audio_normalised(self, library):
        audio = render_audio(PlayState(library.shows[0], 1.0))
        assert np.max(np.abs(audio)) <= 1.0 + 1e-6
        assert len(audio) == 512


class TestSchedule:
    def test_slots_consecutive(self, library):
        channel = build_channel("C1", library)
        for earlier, later in zip(channel.slots, channel.slots[1:]):
            assert later.start_s == earlier.end_s

    def test_playing_at_start(self, library):
        channel = build_channel("C1", library)
        state = channel.playing_at(0)
        assert state.item == channel.slots[0].item
        assert state.position_s == 0

    def test_ad_break_after_segment(self, library):
        channel = build_channel("C1", library)
        state = channel.playing_at(seconds(AD_BREAK_EVERY_S + 1))
        assert state.item.kind == ContentKind.AD

    def test_wraps_after_cycle(self, library):
        channel = build_channel("C1", library)
        begin = channel.playing_at(0)
        again = channel.playing_at(seconds(channel.cycle_s))
        assert begin.item == again.item

    def test_offset_position_within_show(self, library):
        channel = build_channel("C1", library)
        # Second segment of the first show resumes where slot 1 left off.
        later_slots = [s for s in channel.slots
                       if s.item == channel.slots[0].item]
        assert later_slots[1].item_offset_s == AD_BREAK_EVERY_S

    def test_items_between(self, library):
        channel = build_channel("C1", library)
        items = channel.items_between(0, seconds(AD_BREAK_EVERY_S + 70))
        kinds = [item.kind for item in items]
        assert kinds[0] == ContentKind.SHOW
        assert ContentKind.AD in kinds

    def test_lineup_channels_differ(self, library):
        lineup = build_lineup(library, "fast", ["F1", "F2"])
        assert lineup[0].playing_at(0).item != lineup[1].playing_at(0).item

    def test_invalid_slots_rejected(self, library):
        show = library.shows[0]
        with pytest.raises(ValueError):
            Channel("bad", [ScheduleSlot(0, 10, show),
                            ScheduleSlot(11, 10, show)])

    def test_empty_channel_rejected(self):
        with pytest.raises(ValueError):
            Channel("empty", [])


class TestSources:
    def test_source_types(self, library):
        channel = build_channel("C1", library)
        fast = build_channel("F1", library, kind="fast")
        assert Tuner(channel).source_type == SourceType.TUNER
        assert FastApp("tvplus", fast).source_type == SourceType.FAST
        assert HomeScreen(_ui_item()).source_type == SourceType.HOME

    def test_tuner_requires_linear(self, library):
        fast = build_channel("F1", library, kind="fast")
        with pytest.raises(ValueError):
            Tuner(fast)

    def test_fast_requires_fast(self, library):
        linear = build_channel("C1", library)
        with pytest.raises(ValueError):
            FastApp("tvplus", linear)

    def test_ott_playlist_advances(self, library):
        app = OttApp("netflix", [library.movies[0], library.movies[1]])
        first = app.screen_state(0)
        later = app.screen_state(seconds(library.movies[0].duration_s + 5))
        assert first.item == library.movies[0]
        assert later.item == library.movies[1]

    def test_ott_app_id(self, library):
        app = OttApp("netflix", [library.movies[0]])
        assert app.app_id == "netflix"

    def test_hdmi_alternates_external_items(self, library):
        hdmi = HdmiInput([library.desktop(), library.game()], dwell_s=300)
        assert hdmi.screen_state(0).item == library.desktop()
        assert hdmi.screen_state(seconds(301)).item == library.game()

    def test_cast_loops(self, library):
        movie = library.movies[0]
        cast = ScreenCast(movie)
        state = cast.screen_state(seconds(movie.duration_s + 10))
        assert state.item == movie
        assert state.position_s == 10

    def test_home_screen_requires_ui(self, library):
        with pytest.raises(ValueError):
            HomeScreen(library.shows[0])

    def test_home_screen_cycles(self):
        home = HomeScreen(_ui_item())
        assert home.screen_state(seconds(31)).position_s == 1
