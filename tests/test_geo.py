"""Tests for the geolocation substrate: IP space, GeoIP, probes,
traceroute, IPmap arbitration, DPF list, and the full audit workflow."""

import pytest

from repro.dnsinfra import DomainRegistry, RecursiveResolver, Zone
from repro.geo import (CITIES, DpfList, GeolocationAudit, IpSpace, ProbeMesh,
                       ReverseDnsEngine, TracerouteEngine, build_ip2location,
                       build_maxmind, city_for_airport, haversine_km,
                       min_rtt_ms)
from repro.sim import RngRegistry


@pytest.fixture(scope="module")
def registry():
    return DomainRegistry()


@pytest.fixture(scope="module")
def audit(registry):
    zone = Zone(registry)
    resolver = RecursiveResolver(zone)
    return GeolocationAudit(registry.ipspace, RngRegistry(11),
                            ptr_lookup=lambda a: resolver.resolve_ptr(a, 0))


class TestLocations:
    def test_haversine_london_amsterdam(self):
        km = haversine_km(CITIES["london"], CITIES["amsterdam"])
        assert 330 < km < 380

    def test_haversine_symmetry(self):
        a, b = CITIES["london"], CITIES["new_york"]
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))

    def test_min_rtt_transatlantic(self):
        rtt = min_rtt_ms(CITIES["london"], CITIES["new_york"])
        assert 60 < rtt < 100  # physically-grounded bound

    def test_airport_mapping(self):
        assert city_for_airport("AMS").name == "Amsterdam"
        assert city_for_airport("lhr").name == "London"
        with pytest.raises(KeyError):
            city_for_airport("xxx")


class TestIpSpace:
    def test_allocation_is_stable_and_unique(self):
        space = IpSpace()
        a = space.allocate("alphonso", "amsterdam")
        b = space.allocate("alphonso", "amsterdam")
        assert a.address != b.address
        assert space.lookup(a.address) is a

    def test_ptr_contains_geo_hint(self):
        space = IpSpace()
        record = space.allocate("samsung", "new_york", "acr")
        assert "nyc" in record.ptr_name

    def test_unknown_block(self):
        with pytest.raises(KeyError):
            IpSpace().allocate("nosuch", "london")

    def test_true_city(self):
        space = IpSpace()
        record = space.allocate("samsung", "london")
        assert space.true_city(record.address).name == "London"
        with pytest.raises(KeyError):
            space.true_city(record.address + 100)


class TestGeoIpDatabases:
    def test_maxmind_mostly_correct(self, registry):
        db = build_maxmind(registry.ipspace)
        server = registry.server("acr-eu-prd.samsungcloud.tv")
        assert db.lookup(server.address).name == "London"

    def test_maxmind_injected_error(self, registry):
        """MaxMind mislocates Samsung's New York block to Amsterdam."""
        db = build_maxmind(registry.ipspace)
        server = registry.server("log-config.samsungacr.com")
        assert db.lookup(server.address).name == "Amsterdam"

    def test_ip2location_injected_error(self, registry):
        """IP2Location mislocates Alphonso Amsterdam to Frankfurt."""
        db = build_ip2location(registry.ipspace)
        server = registry.server("eu-acr1.alphonso.tv")
        assert db.lookup(server.address).name == "Frankfurt"

    def test_databases_disagree_on_log_config(self, registry):
        mm = build_maxmind(registry.ipspace)
        ip2 = build_ip2location(registry.ipspace)
        address = registry.server("log-config.samsungacr.com").address
        assert mm.lookup(address) != ip2.lookup(address)

    def test_unmapped_address_returns_none(self, registry):
        from repro.net import Ipv4Address
        db = build_maxmind(registry.ipspace)
        assert db.lookup(Ipv4Address.parse("9.9.9.9")) is None


class TestProbesAndTraceroute:
    def test_rtt_respects_physics(self):
        mesh = ProbeMesh(RngRegistry(5))
        london_probe = next(p for p in mesh.probes
                            if p.city.name == "London")
        rtt = mesh.measure_rtt_ms(london_probe, CITIES["new_york"])
        assert rtt >= min_rtt_ms(CITIES["london"], CITIES["new_york"])

    def test_nearest_probe_has_lowest_rtt(self):
        mesh = ProbeMesh(RngRegistry(5))
        measurements = mesh.measurements_to(CITIES["amsterdam"])
        best = min(measurements, key=measurements.get)
        assert mesh.probe(best).city.name in ("Amsterdam", "London",
                                              "Frankfurt")

    def test_traceroute_reaches_target(self, registry):
        engine = TracerouteEngine(registry.ipspace, RngRegistry(5))
        target = registry.server("log-config.samsungacr.com").address
        result = engine.trace("uk", target)
        assert result.hops[-1].address == target
        rtts = [hop.rtt_ms for hop in result.hops]
        assert rtts == sorted(rtts)  # cumulative RTTs increase

    def test_traceroute_transit_hints(self, registry):
        engine = TracerouteEngine(registry.ipspace, RngRegistry(5))
        target = registry.server("log-config.samsungacr.com").address
        result = engine.trace("uk", target)
        joined = " ".join(result.transit_ptr_names)
        assert "lhr" in joined and "nyc" in joined

    def test_unknown_vantage_rejected(self, registry):
        engine = TracerouteEngine(registry.ipspace, RngRegistry(5))
        target = registry.server("eu-acr1.alphonso.tv").address
        with pytest.raises(ValueError):
            engine.trace("fr", target)


class TestIpMapArbitration:
    def test_rdns_engine_reads_hint(self, registry, audit):
        address = registry.server("log-config.samsungacr.com").address
        verdict = audit.ipmap.rdns_engine.locate(address)
        assert verdict.city.name == "New York"

    def test_rdns_engine_no_ptr(self, audit):
        from repro.net import Ipv4Address
        engine = ReverseDnsEngine(lambda a: None)
        assert engine.locate(Ipv4Address.parse("9.9.9.9")).city is None

    def test_latency_engine_close_to_truth(self, registry, audit):
        address = registry.server("eu-acr1.alphonso.tv").address
        verdict = audit.ipmap.latency_engine.locate(address)
        # Latency pins to the right metro area (AMS or a near neighbour).
        assert verdict.city.name in ("Amsterdam", "London", "Frankfurt")

    def test_consolidated_verdict(self, registry, audit):
        address = registry.server("log-config.samsungacr.com").address
        verdict = audit.ipmap.locate(address)
        assert verdict.city.name == "New York"


class TestFullAuditWorkflow:
    @pytest.mark.parametrize("domain,expected_city", [
        ("eu-acr1.alphonso.tv", "Amsterdam"),
        ("acr-eu-prd.samsungcloud.tv", "London"),
        ("log-ingestion-eu.samsungacr.com", "London"),
        ("acr0.samsungcloudsolution.com", "Amsterdam"),
        ("log-config.samsungacr.com", "New York"),
    ])
    def test_uk_findings_match_paper(self, registry, audit, domain,
                                     expected_city):
        """§4.1: the UK endpoint locations, including the US-located
        log-config endpoint that raises the cross-border concern."""
        address = registry.server(domain).address
        finding = audit.locate(address, "uk", domain)
        assert finding.city.name == expected_city

    @pytest.mark.parametrize("domain", [
        "tkacr1.alphonso.tv",
        "acr-us-prd.samsungcloud.tv",
        "log-ingestion.samsungacr.com",
        "log-config.samsungacr.com",
    ])
    def test_us_endpoints_in_us(self, registry, audit, domain):
        """§4.3: every US ACR endpoint is physically in the US."""
        address = registry.server(domain).address
        finding = audit.locate(address, "us_west", domain)
        assert finding.country == "US"

    def test_disagreement_triggers_ipmap(self, registry, audit):
        address = registry.server("log-config.samsungacr.com").address
        finding = audit.locate(address, "uk")
        assert not finding.databases_agree
        assert finding.ipmap_used
        assert finding.traceroute is not None

    def test_agreement_skips_ipmap(self, registry, audit):
        address = registry.server("acr-eu-prd.samsungcloud.tv").address
        finding = audit.locate(address, "uk")
        assert finding.databases_agree
        assert not finding.ipmap_used


class TestDpf:
    def test_both_vendors_on_bridge(self):
        dpf = DpfList()
        assert dpf.allows_uk_us_transfer("samsung")
        assert dpf.allows_uk_us_transfer("alphonso")

    def test_non_participant(self):
        dpf = DpfList()
        assert not dpf.allows_uk_us_transfer("exampletrack")
        assert not dpf.allows_uk_us_transfer("unknown-co")

    def test_participant_lookup(self):
        dpf = DpfList()
        participant = dpf.participant_for("alphonso")
        assert participant is not None
        assert "Alphonso" in participant.organisation
