"""Tests for the first-class findings layer: model, ledger, export,
diff.

The ledger suite mirrors ``tests/test_obs.py``'s snapshot discipline:
ledgers must combine associatively and commutatively with
``FindingsLedger()`` as the identity, which is what makes a
``--findings-out`` export byte-identical across ``--jobs`` counts.
"""

import json
import os
import pickle
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.findings import (FindingCheck, ledger_from_checks,
                                        render_checks, scorecard)
from repro.faults import degradation_evidence
from repro.findings import (DEGRADATION_CODE, FINDINGS_SCHEMA_VERSION,
                            OPTOUT_VIOLATION_CODE, SEVERITIES, Evidence,
                            Finding, FindingsLedger, diff_records,
                            ledger_from_file, ledger_to_jsonl, merge_all,
                            read_findings_jsonl, record_identity,
                            severity_rank, write_findings_jsonl)

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "scripts"))
from check_findings import check_lines  # noqa: E402


def _finding(code="S1", severity="medium", passed=True, text="ok",
             **pointers):
    return Finding(code=code, title=f"check {code}", severity=severity,
                   confidence=0.9, passed=passed,
                   evidence=(Evidence(text=text, **pointers),))


# -- the model ----------------------------------------------------------------


class TestModel:
    def test_severity_scale_is_total(self):
        ranks = [severity_rank(name) for name in SEVERITIES]
        assert ranks == sorted(ranks) and len(set(ranks)) == len(ranks)
        with pytest.raises(KeyError):
            severity_rank("catastrophic")

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty code"):
            Finding(code="", title="x")
        with pytest.raises(ValueError, match="unknown severity"):
            Finding(code="X", title="x", severity="urgent")
        with pytest.raises(ValueError, match="confidence"):
            Finding(code="X", title="x", confidence=1.5)
        with pytest.raises(ValueError, match="confidence"):
            Finding(code="X", title="x", confidence=-0.1)

    def test_evidence_list_coerced_to_tuple(self):
        finding = Finding(code="X", title="x",
                          evidence=[Evidence(text="a")])
        assert isinstance(finding.evidence, tuple)
        assert hash(finding) == hash(finding)

    def test_findings_are_hashable_and_picklable(self):
        finding = _finding(household=3, segment=1)
        assert {finding: 2}[pickle.loads(pickle.dumps(finding))] == 2

    def test_status_line_is_the_repr(self):
        passed = _finding(code="S1", passed=True)
        failed = _finding(code="S2", passed=False)
        assert repr(passed) == passed.status_line() \
            == "[PASS] S1: check S1"
        assert repr(failed) == failed.status_line() \
            == "[FAIL] S2: check S2"

    def test_compat_aliases(self):
        finding = _finding(code="S3")
        assert finding.finding_id == "S3"
        assert finding.description == "check S3"
        assert isinstance(finding, FindingCheck)

    def test_evidence_text_joins_non_empty_texts(self):
        finding = Finding(code="X", title="x", evidence=(
            Evidence(text="first"), Evidence(text="", household=1),
            Evidence(text="second")))
        assert finding.evidence_text() == "first; second"

    def test_evidence_roundtrip_and_unknown_field_rejection(self):
        entry = Evidence(text="t", capture="cell", household=4,
                         segment=2, record_start=0, record_end=7)
        assert Evidence.from_dict(entry.to_dict()) == entry
        assert "vendor" not in entry.to_dict()  # None pointers elided
        with pytest.raises(ValueError, match="unknown evidence"):
            Evidence.from_dict({"text": "t", "severity": "high"})

    def test_locus_excludes_text(self):
        a = Evidence(text="measured 3", household=1, segment=2)
        b = Evidence(text="measured 99", household=1, segment=2)
        assert a.locus() == b.locus()
        assert a != b

    def test_finding_dict_roundtrip(self):
        finding = _finding(code="X2", severity="critical", passed=False,
                           vendor="lg", country="uk")
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_degradation_constructor_matches_legacy_evidence(self):
        finding = Finding.degradation("hh-0007", 7, 3, 12, "bad magic")
        assert finding.code == DEGRADATION_CODE
        assert finding.severity == "medium" and not finding.passed
        entry = finding.evidence[0]
        assert entry.text == degradation_evidence(
            "hh-0007", 7, 3, 12, "bad magic")
        assert entry.text == ("household 7 [hh-0007] segment 3 "
                              "record 12: bad magic")
        assert (entry.household, entry.segment, entry.record_start,
                entry.record_end) == (7, 3, 12, 12)

    def test_degradation_global_header_has_no_record_range(self):
        finding = Finding.degradation("hh-0001", 1, None, -1, "torn")
        assert finding.evidence[0].text \
            == "household 1 [hh-0001] global header: torn"
        assert finding.evidence[0].record_start is None

    def test_optout_violation_constructor(self):
        finding = Finding.optout_violation(
            "hh-0003", 3, "roku", "us", "LOut-OOut", 4096,
            ["b.roku.example", "a.roku.example"])
        assert finding.code == OPTOUT_VIOLATION_CODE
        assert finding.severity == "critical" and not finding.passed
        entry = finding.evidence[0]
        assert entry.text == ("4096 ACR bytes to a.roku.example, "
                              "b.roku.example while opted out")
        assert entry.flow == "a.roku.example"  # sorted first


# -- the ledger algebra -------------------------------------------------------


_FINDING_POOL = st.builds(
    _finding,
    code=st.sampled_from(["S1", "S2", "DEG", "OPTOUT"]),
    severity=st.sampled_from(SEVERITIES),
    passed=st.booleans(),
    text=st.sampled_from(["ok", "violated"]),
    household=st.sampled_from([None, 0, 1]))

_LEDGER_POOL = st.lists(_FINDING_POOL, max_size=8).map(FindingsLedger)


class TestLedger:
    def test_fold_rejects_non_findings_and_negative_counts(self):
        ledger = FindingsLedger()
        with pytest.raises(TypeError, match="folds Finding"):
            ledger.fold("S1")
        with pytest.raises(ValueError, match="negative"):
            ledger.fold(_finding(), count=-1)

    def test_zero_count_is_dropped_not_materialized(self):
        ledger = FindingsLedger()
        ledger.fold(_finding(), count=0)
        assert ledger == FindingsLedger() and not ledger

    def test_duplicates_dedupe_into_counts(self):
        finding = _finding(code="DEG", passed=False)
        ledger = FindingsLedger([finding, finding, finding])
        assert len(ledger) == 1 and ledger.total() == 3
        assert list(ledger) == [(finding, 3)]
        assert ledger.failed() == [finding]

    def test_iteration_is_canonically_sorted(self):
        low = _finding(code="Z9", severity="low", passed=False)
        high = _finding(code="Z9", severity="critical", passed=False)
        other = _finding(code="A1")
        ledger = FindingsLedger([low, other, high])
        assert ledger.findings() == [other, high, low]

    @settings(max_examples=50, deadline=None)
    @given(a=_LEDGER_POOL, b=_LEDGER_POOL, c=_LEDGER_POOL)
    def test_merge_is_associative_and_commutative(self, a, b, c):
        assert a.merge(b) == b.merge(a)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))
        assert a.merge(FindingsLedger()) == a
        assert merge_all([a, b, c]) == (a + b) + c

    def test_merge_leaves_operands_untouched(self):
        a = FindingsLedger([_finding(code="A")])
        b = FindingsLedger([_finding(code="B")])
        merged = a + b
        assert len(merged) == 2 and len(a) == 1 and len(b) == 1

    @settings(max_examples=50, deadline=None)
    @given(ledger=_LEDGER_POOL)
    def test_jsonable_roundtrip(self, ledger):
        records = ledger.to_jsonable()
        assert records == json.loads(json.dumps(records))
        assert FindingsLedger.from_jsonable(records) == ledger

    def test_ledger_pickles_across_process_boundaries(self):
        ledger = FindingsLedger([_finding(code="DEG", passed=False),
                                 _finding(code="S1")])
        assert pickle.loads(pickle.dumps(ledger)) == ledger

    def test_repr_summarizes(self):
        ledger = FindingsLedger([_finding(passed=False),
                                 _finding(passed=False)])
        assert repr(ledger) == \
            "FindingsLedger(1 distinct, 2 total, 2 failing)"


# -- export + schema checker --------------------------------------------------


class TestExport:
    def _ledger(self):
        return FindingsLedger([
            _finding(code="S1", passed=True),
            _finding(code="DEG", severity="medium", passed=False,
                     text="household 0 [hh-0000] record 3: torn",
                     capture="hh-0000", household=0, record_start=3,
                     record_end=3),
            _finding(code="DEG", severity="medium", passed=False,
                     text="household 0 [hh-0000] record 3: torn",
                     capture="hh-0000", household=0, record_start=3,
                     record_end=3),
        ])

    def test_meta_first_then_sorted_findings(self):
        body = ledger_to_jsonl(self._ledger(), {"command": "fleet"})
        lines = body.splitlines()
        meta = json.loads(lines[0])
        assert meta == {"record": "meta",
                        "schema": FINDINGS_SCHEMA_VERSION,
                        "command": "fleet"}
        codes = [json.loads(line)["code"] for line in lines[1:]]
        assert codes == sorted(codes) == ["DEG", "S1"]
        assert json.loads(lines[1])["count"] == 2
        assert body.endswith("\n")

    def test_export_passes_the_schema_checker(self):
        body = ledger_to_jsonl(self._ledger(), {"seed": 7})
        assert check_lines(body.splitlines()) == 2

    def test_checker_rejects_jobs_in_meta(self):
        body = ledger_to_jsonl(self._ledger(), {"jobs": 8})
        with pytest.raises(ValueError, match="jobs-invariant"):
            check_lines(body.splitlines())

    def test_checker_rejects_out_of_order_records(self):
        lines = ledger_to_jsonl(self._ledger()).splitlines()
        lines[1], lines[2] = lines[2], lines[1]
        with pytest.raises(ValueError, match="canonical order"):
            check_lines(lines)

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "findings.jsonl")
        ledger = self._ledger()
        write_findings_jsonl(path, ledger, {"command": "fleet",
                                            "seed": 7})
        meta, records = read_findings_jsonl(path)
        assert meta["command"] == "fleet" and meta["seed"] == 7
        assert len(records) == 2
        assert ledger_from_file(path) == ledger

    def test_reader_rejects_malformed_files(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as fileobj:
            fileobj.write("")
        with pytest.raises(ValueError, match="line 1: empty file"):
            read_findings_jsonl(path)
        with open(path, "w", encoding="utf-8") as fileobj:
            fileobj.write('{"record": "finding"}\n')
        with pytest.raises(ValueError, match="must be 'meta'"):
            read_findings_jsonl(path)
        with open(path, "w", encoding="utf-8") as fileobj:
            fileobj.write('{"record": "meta", "schema": 99}\n')
        with pytest.raises(ValueError, match="unsupported schema"):
            read_findings_jsonl(path)
        with open(path, "w", encoding="utf-8") as fileobj:
            fileobj.write('{"record": "meta", "schema": 1}\nnot json\n')
        with pytest.raises(ValueError, match="line 2: not JSON"):
            read_findings_jsonl(path)


# -- the diff -----------------------------------------------------------------


def _records(*findings):
    return FindingsLedger(findings).to_jsonable()


class TestDiff:
    def test_identity_excludes_text_and_confidence(self):
        old = _records(_finding(code="X", passed=False,
                                text="measured 3KB", household=1))
        new = _records(Finding(
            code="X", title="check X", severity="medium",
            confidence=0.5, passed=False,
            evidence=(Evidence(text="measured 9KB", household=1),)))
        assert record_identity(old[0]) == record_identity(new[0])
        diff = diff_records(old, new)
        assert not diff.has_changes and not diff.is_regression

    def test_self_diff_is_empty(self):
        records = _records(_finding(code="A", passed=False),
                           _finding(code="B", passed=True))
        diff = diff_records(records, records)
        assert not diff.has_changes
        assert diff.render("old", "new") \
            == "findings diff: no changes between old and new\n"

    def test_new_failure_is_a_regression(self):
        old = _records(_finding(code="A", passed=True))
        new = _records(_finding(code="A", passed=True),
                       _finding(code="B", passed=False, household=2))
        diff = diff_records(old, new)
        assert diff.is_regression
        assert [r["code"] for r in diff.regressions] == ["B"]
        rendered = diff.render("old.jsonl", "new.jsonl")
        assert "regressions: 1" in rendered
        assert "+ [medium] B: check B (household=2)" in rendered

    def test_resolved_only_is_not_a_regression(self):
        old = _records(_finding(code="A", passed=False))
        new = _records(_finding(code="A", passed=True))
        diff = diff_records(old, new)
        assert diff.has_changes and not diff.is_regression
        assert [r["code"] for r in diff.resolved] == ["A"]

    def test_severity_escalation_is_a_regression(self):
        old = _records(_finding(code="A", severity="low", passed=False))
        new = _records(_finding(code="A", severity="high",
                                passed=False))
        diff = diff_records(old, new)
        assert diff.severity_changes and diff.is_regression
        assert "~ A: low -> high" in diff.render("o", "n")
        # The opposite direction is a change but not a regression.
        assert not diff_records(new, old).is_regression

    def test_passing_findings_never_enter_the_diff(self):
        old = _records(_finding(code="A", passed=True))
        new = _records(_finding(code="B", passed=True))
        assert not diff_records(old, new).has_changes


# -- the scorecard surface (satellites) ---------------------------------------


class TestRenderChecks:
    def test_empty_list_renders_empty_string(self):
        assert render_checks([]) == ""

    def test_single_check_renders_status_and_evidence(self):
        check = _finding(code="S1", passed=True, text="11 batches")
        assert render_checks([check]) == \
            "[PASS] S1: check S1\n       11 batches\n"

    def test_failed_check_uses_the_same_formatter(self):
        check = _finding(code="S5", passed=False, text="leak")
        rendered = render_checks([check])
        assert rendered.splitlines()[0] == check.status_line()

    def test_ledger_from_checks(self):
        checks = [_finding(code="S1"), _finding(code="S2", passed=False)]
        ledger = ledger_from_checks(checks)
        assert isinstance(ledger, FindingsLedger)
        assert ledger.findings() == checks
        assert ledger.failed() == [checks[1]]


@pytest.mark.slow
class TestScorecardJobsForwarding:
    def test_parallel_verdicts_match_serial(self):
        """``scorecard(jobs=N)`` must forward jobs to the check runner
        and produce verdicts identical to a serial run (the second call
        rides the grid cache the first one warmed)."""
        serial = scorecard()
        parallel = scorecard(jobs=2)
        assert parallel == serial
        assert {"S1", "S12", "X1", "X6"} <= set(serial)
