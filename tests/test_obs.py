"""Tests for the observability layer: metrics registry, snapshot
algebra, the ANSI dashboard, and the JSONL export surface.

The merge suite mirrors ``tests/test_fleet.py``'s FleetAggregate
discipline: snapshots must combine associatively and commutatively with
``empty_snapshot()`` as the identity, which is what makes the exported
totals independent of ``--jobs``.
"""

import io
import json
import os
import sys

import pytest

from repro.fleet import FleetAggregate, FleetRunner, PopulationSpec
from repro.obs import (Dashboard, DashboardView, detect_plain,
                       render_frame, render_plain_line)
from repro.obs.metrics import (DEFAULT_BUCKETS_MS, NULL, MetricsRegistry,
                               disable, empty_snapshot, enable,
                               get_registry, merge_all_snapshots,
                               merge_snapshots, metrics_enabled, scoped,
                               snapshot_to_jsonl, write_metrics_jsonl)

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "scripts"))
from check_metrics import check_lines  # noqa: E402


def _summary(vendor, country, acr):
    return {
        "vendor": vendor, "country": country, "phase": "LIn-OIn",
        "diary": "binge", "opted_in": True, "packets": 100,
        "pcap_len": 8000,
        "acr_domains": ["eu-acr4.alphonso.tv"] if acr else [],
        "acr_bytes": 5000 if acr else 0,
        "acr_upload_bytes": 3000 if acr else 0,
        "acr_packets": 20 if acr else 0,
        "acr_bursts": 4 if acr else 0,
        "cadence_sum_ns": 0, "cadence_intervals": 0,
    }


def _aggregate():
    aggregate = FleetAggregate()
    for entry in (_summary("lg", "uk", True),
                  _summary("samsung", "us", False),
                  _summary("lg", "uk", False)):
        aggregate.fold(entry)
    return aggregate


def _registry(hits=6, misses=2, stored=2):
    registry = MetricsRegistry()
    registry.inc("cache.hit", hits)
    registry.inc("cache.miss", misses)
    registry.inc("cache.store", stored)
    return registry


class _FakeClock:
    def __init__(self, now_ns=0):
        self.now = now_ns


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.snapshot()["counters"] == {"a": 5}

    def test_gauge_set_overwrites_gauge_max_keeps_peak(self):
        registry = MetricsRegistry()
        registry.gauge_set("g", 9.0)
        registry.gauge_set("g", 3.0)
        registry.gauge_max("peak", 3.0)
        registry.gauge_max("peak", 9.0)
        registry.gauge_max("peak", 5.0)
        assert registry.snapshot()["gauges"] == {"g": 3.0, "peak": 9.0}

    def test_histogram_buckets_fixed_bounds(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.0, 1.5, 1e9):
            registry.observe("h", value)
        entry = registry.snapshot()["histograms"]["h"]
        assert entry["le"] == list(DEFAULT_BUCKETS_MS)
        # 0.5 and 1.0 land in (<=1], 1.5 in (<=2], 1e9 in the +inf tail.
        assert entry["counts"][0] == 2
        assert entry["counts"][1] == 1
        assert entry["counts"][-1] == 1
        assert entry["count"] == 4
        assert entry["min"] == 0.5 and entry["max"] == 1e9

    def test_span_records_wall_ms(self):
        registry = MetricsRegistry()
        with registry.span("work"):
            pass
        entry = registry.snapshot()["histograms"]["work.wall_ms"]
        assert entry["count"] == 1
        assert entry["sum"] >= 0.0

    def test_span_records_virtual_time_from_clock(self):
        registry = MetricsRegistry()
        clock = _FakeClock(0)
        with registry.span("work", clock=clock):
            clock.now += 250_000_000  # 250 simulated ms
        entry = registry.snapshot()["histograms"]["work.sim_ms"]
        assert entry["count"] == 1
        assert entry["sum"] == pytest.approx(250.0)


class TestSnapshotAlgebra:
    def _snapshots(self):
        a = MetricsRegistry()
        a.inc("n", 2)
        a.gauge_max("peak", 5)
        a.observe("h", 1.5)
        b = MetricsRegistry()
        b.inc("n", 3)
        b.inc("other")
        b.gauge_max("peak", 9)
        b.observe("h", 90.0)
        c = MetricsRegistry()
        c.observe("h", 0.2)
        c.inc("n")
        return a.snapshot(), b.snapshot(), c.snapshot()

    def test_merge_is_commutative(self):
        a, b, __ = self._snapshots()
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    def test_merge_is_associative(self):
        a, b, c = self._snapshots()
        assert merge_snapshots(merge_snapshots(a, b), c) \
            == merge_snapshots(a, merge_snapshots(b, c))

    def test_empty_snapshot_is_identity(self):
        a, __, __ = self._snapshots()
        assert merge_snapshots(a, empty_snapshot()) == a
        assert merge_snapshots(empty_snapshot(), a) == a

    def test_merge_rules(self):
        a, b, __ = self._snapshots()
        merged = merge_snapshots(a, b)
        assert merged["counters"] == {"n": 5, "other": 1}
        assert merged["gauges"] == {"peak": 9}
        entry = merged["histograms"]["h"]
        assert entry["count"] == 2
        assert entry["sum"] == pytest.approx(91.5)
        assert entry["min"] == 1.5 and entry["max"] == 90.0
        assert sum(entry["counts"]) == 2

    def test_merge_all_skips_none(self):
        a, b, __ = self._snapshots()
        assert merge_all_snapshots([None, a, None, b]) \
            == merge_snapshots(a, b)

    def test_mismatched_bucket_bounds_refused(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0, bounds=(1.0, 2.0))
        other = MetricsRegistry()
        other.observe("h", 1.0, bounds=(5.0, 6.0))
        with pytest.raises(ValueError, match="bucket bounds differ"):
            registry.absorb(other.snapshot())

    def test_absorb_none_is_a_noop(self):
        registry = MetricsRegistry()
        registry.inc("n")
        before = registry.snapshot()
        registry.absorb(None)
        assert registry.snapshot() == before


class TestActiveRegistry:
    def test_null_is_the_default_and_free(self):
        assert get_registry() is NULL
        assert not metrics_enabled()
        NULL.inc("anything")
        NULL.gauge_max("g", 1)
        NULL.observe("h", 1.0)
        with NULL.span("work"):
            pass
        assert NULL.snapshot() is None

    def test_enable_disable_roundtrip(self):
        registry = enable()
        try:
            assert get_registry() is registry
            assert metrics_enabled()
            get_registry().inc("n")
            assert registry.snapshot()["counters"] == {"n": 1}
        finally:
            disable()
        assert get_registry() is NULL

    def test_scoped_isolates_and_restores(self):
        outer = enable()
        try:
            outer.inc("outer")
            with scoped() as inner:
                get_registry().inc("inner")
                assert get_registry() is inner
            assert get_registry() is outer
            assert "inner" not in outer.snapshot()["counters"]
            assert inner.snapshot()["counters"] == {"inner": 1}
        finally:
            disable()

    def test_scoped_collect_false_yields_none(self):
        with scoped(False) as registry:
            assert registry is None
            assert get_registry() is NULL


class TestDetectPlain:
    def test_explicit_plain_wins(self):
        assert detect_plain(io.StringIO(), plain=True, environ={})

    def test_no_color(self):
        tty = _Tty()
        assert detect_plain(tty, environ={"NO_COLOR": "1"})
        assert not detect_plain(tty, environ={})

    def test_dumb_terminal(self):
        assert detect_plain(_Tty(), environ={"TERM": "dumb"})

    def test_non_tty_stream(self):
        assert detect_plain(io.StringIO(), environ={})


class _Tty(io.StringIO):
    def isatty(self):
        return True


GOLDEN_FRAME = "\n".join([
    "┌─ fleet ──────────────────────────────────────────────────────────────────────┐",
    "│ progress [################################----------] 3/4 households  75.0%  │",
    "│ executed 2   cached 1   elapsed    2.0s   rate   1.50/s                      │",
    "│ cache    [###############-----]  75.0% hit   (6 hit / 2 miss / 2 stored)     │",
    "│                                                                              │",
    "│ acr heat   uk   us                                                           │",
    "│ lg         ==                                                                │",
    "│ samsung         ..                                                           │",
    "│                                                                              │",
    "│ uploads  | +-@                                                             | │",
    "│                                                                              │",
    "│ checkpoint ck/0003                                                           │",
    "└──────────────────────────────────────────────────────────────────────────────┘",
])


def _view(**overrides):
    values = dict(title="fleet", unit="households", done=3, total=4,
                  executed=2, cached=1, elapsed_s=2.0,
                  snapshot=_registry().snapshot(),
                  aggregate=_aggregate(),
                  spark=[0.0, 10.0, 5.0, 20.0],
                  note="checkpoint ck/0003")
    values.update(overrides)
    return DashboardView(**values)


class TestRenderFrame:
    def test_golden_frame_bytes(self):
        assert render_frame(_view(), width=80, color=False) \
            == GOLDEN_FRAME

    def test_color_differs_only_by_escapes(self):
        colored = render_frame(_view(), width=80, color=True)
        stripped = colored.replace("\x1b[1m", "").replace("\x1b[0m", "")
        assert stripped == GOLDEN_FRAME

    def test_every_line_same_width(self):
        for line in render_frame(_view(), width=72).split("\n"):
            assert len(line) == 72

    def test_degenerate_view_renders(self):
        frame = render_frame(DashboardView("grid", "cells", 0, 0))
        assert "0/0 cells" in frame

    def test_columns_row_absent_without_decode_counters(self):
        # The golden frame above predates the columnar tier; frames
        # from runs that never touch it must not change.
        assert "columns" not in render_frame(_view(), width=80)

    def test_columns_row_shm_meter(self):
        registry = _registry()
        registry.inc("decode.columnar.packets", 5556)
        registry.inc("decode.columnar.shm.attach", 3)
        registry.inc("decode.columnar.shm.publish", 1)
        frame = render_frame(_view(snapshot=registry.snapshot()),
                             width=80, color=False)
        assert ("│ columns  [###############-----]  75.0% shm   "
                "(3 attach / 1 publish / 0 skip) │") in frame

    def test_columns_row_without_arena_reports_decodes(self):
        registry = _registry()
        registry.inc("decode.columnar.packets", 5556)
        frame = render_frame(_view(snapshot=registry.snapshot()),
                             width=80, color=False)
        assert "columns  5556 pkts decoded (no shared-memory arena)" \
            in frame

    def test_faults_row_absent_without_fault_counters(self):
        # Clean runs never show the faults meter, so every pre-existing
        # golden frame stays byte-identical.
        assert "faults" not in render_frame(_view(), width=80)

    def test_faults_row_renders_recovery_meter(self):
        registry = _registry()
        registry.inc("faults.injected.worker.crash", 4)
        registry.inc("faults.recovered.worker.crash", 3)
        registry.inc("faults.degraded.records", 2)
        frame = render_frame(_view(snapshot=registry.snapshot()),
                             width=80, color=False)
        assert ("│ faults   [###############-----] 3/4 recovered   "
                "2 degraded") in frame

    def test_plain_line_is_byte_stable(self):
        line = render_plain_line(_view())
        assert line == ("[fleet] 3/4 households (2 executed, 1 cached)"
                        " -- checkpoint ck/0003")
        assert line == render_plain_line(_view())

    def test_plain_line_has_no_timing(self):
        # Wall-clock data would make CI logs differ run to run.
        assert "2.0" not in render_plain_line(_view(note=None))
        assert "elapsed" not in render_plain_line(_view(note=None))


class TestDashboardWidget:
    def test_plain_mode_prints_each_changed_update(self):
        stream = io.StringIO()
        dashboard = Dashboard("fleet", 4, unit="households",
                              stream=stream, plain=True)
        dashboard.update(1, executed=1)
        dashboard.update(1, executed=1)  # unchanged -> deduped
        dashboard.update(2, executed=2)
        dashboard.finish()
        assert stream.getvalue().splitlines() == [
            "[fleet] 1/4 households (1 executed, 0 cached)",
            "[fleet] 2/4 households (2 executed, 0 cached)",
        ]

    def test_plain_output_is_deterministic(self):
        outputs = []
        for __ in range(2):
            stream = io.StringIO()
            dashboard = Dashboard("fleet", 2, unit="households",
                                  stream=stream, plain=True)
            dashboard.update(1)
            dashboard.update(2)
            dashboard.finish(note="done")
            outputs.append(stream.getvalue())
        assert outputs[0] == outputs[1]

    def test_non_tty_stream_degrades_to_plain(self):
        stream = io.StringIO()
        dashboard = Dashboard("grid", 2, unit="cells", stream=stream)
        assert dashboard.plain

    def test_live_mode_redraws_in_place(self, monkeypatch):
        monkeypatch.delenv("NO_COLOR", raising=False)
        monkeypatch.setenv("TERM", "xterm")
        stream = _Tty()
        dashboard = Dashboard("fleet", 4, unit="households",
                              stream=stream, refresh_s=0.0)
        assert not dashboard.plain
        dashboard.update(1, aggregate=_aggregate())
        dashboard.update(2, aggregate=_aggregate())
        out = stream.getvalue()
        assert "┌" in out and "└" in out
        # The second frame moves the cursor up over the first.
        assert "\x1b[" in out and "F┌" in out.replace("\x1b[1m", "")

    def test_aggregate_drives_upload_sparkline(self):
        stream = io.StringIO()
        dashboard = Dashboard("fleet", 4, unit="households",
                              stream=stream, plain=True)
        dashboard.update(1, aggregate=_aggregate())
        assert list(dashboard._spark.values()) == [3000]
        dashboard.update(2, aggregate=_aggregate())
        # Sparkline samples are per-update deltas of the running total.
        assert list(dashboard._spark.values()) == [3000, 0]


class TestAcrMemoCounters:
    def test_capture_state_counts_memo_hit_and_miss(self):
        from repro.acr.fingerprint import (capture_state,
                                           clear_fingerprint_cache)
        from repro.media.content import PlayState, launcher_item
        clear_fingerprint_cache()
        registry = enable()
        try:
            state = PlayState(launcher_item(), 1.0)
            capture_state(state)
            capture_state(state)
            counters = registry.snapshot()["counters"]
            assert counters["acr.memo.miss"] == 1
            assert counters["acr.memo.hit"] == 1
        finally:
            disable()
            clear_fingerprint_cache()


class TestJsonlExport:
    def _snapshot(self):
        registry = _registry()
        registry.gauge_max("peak", 3.5)
        registry.observe("work.wall_ms", 12.0)
        return registry.snapshot()

    def test_meta_first_then_sorted_records(self):
        text = snapshot_to_jsonl(self._snapshot(), {"command": "fleet"})
        records = [json.loads(line) for line in text.splitlines()]
        assert records[0]["record"] == "meta"
        assert records[0]["schema"] == 1
        assert records[0]["command"] == "fleet"
        kinds = [record["record"] for record in records[1:]]
        assert kinds == sorted(kinds, key=("counter", "gauge",
                                           "histogram").index)
        names = [record["name"] for record in records[1:4]]
        assert names == sorted(names)

    def test_export_is_deterministic(self):
        assert snapshot_to_jsonl(self._snapshot()) \
            == snapshot_to_jsonl(self._snapshot())

    def test_checker_accepts_real_export(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        write_metrics_jsonl(path, self._snapshot(), {"command": "test"})
        with open(path, encoding="utf-8") as fileobj:
            assert check_lines(fileobj.read().splitlines()) == 5

    def test_checker_rejects_tampering(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        write_metrics_jsonl(path, self._snapshot())
        with open(path, encoding="utf-8") as fileobj:
            lines = fileobj.read().splitlines()
        bad = [line.replace('"value": 6', '"value": -6')
               for line in lines]
        with pytest.raises(ValueError, match="non-negative"):
            check_lines(bad)
        with pytest.raises(ValueError, match="first record"):
            check_lines(lines[1:])


@pytest.mark.slow
class TestFleetMetricsJobsInvariance:
    """The acceptance property: a sharded fleet's merged metrics totals
    are independent of ``--jobs`` (modulo wall-clock and per-process
    memo splits, which are documented as non-deterministic)."""

    #: Counters whose totals must match exactly across job counts.
    #: (The fleet decodes through the columnar tier by default, so the
    #: per-packet decode count is ``decode.columnar.packets``.)
    DETERMINISTIC = ("fleet.households", "fleet.shards.completed",
                     "pipeline.extends", "decode.columnar.packets",
                     "pipeline.domain_view.build",
                     "pipeline.domain_view.memo_hit")

    def _run(self, jobs):
        population = PopulationSpec(
            households=3, seed=22,
            mixes={"country": {"uk": 1.0},
                   "diary": {"second_screen": 1.0}})
        registry = enable()
        try:
            FleetRunner(cache=None, jobs=jobs, shard_size=1).run(
                population)
            return registry.snapshot()
        finally:
            disable()

    def test_totals_independent_of_jobs(self):
        serial = self._run(1)
        parallel = self._run(2)
        for name in self.DETERMINISTIC:
            assert serial["counters"][name] \
                == parallel["counters"][name], name
        # acr.memo.* are deliberately absent here: the fingerprint memo
        # and the reference libraries are process-wide, so those counts
        # depend on what already ran in this process, not on --jobs.
        # Span histogram *counts* are deterministic (sums are wall time).
        for name in ("fleet.simulate.wall_ms", "fleet.decode.wall_ms",
                     "fleet.shard.wall_ms"):
            assert serial["histograms"][name]["count"] \
                == parallel["histograms"][name]["count"], name


@pytest.mark.slow
class TestFaultMetricsJobsInvariance:
    """Injection decisions key on stable identities (household index,
    attempt), never execution order — so every ``faults.*`` and
    ``retry.*`` total is identical at any job count."""

    def _run(self, jobs):
        from repro.faults import FaultPlan
        population = PopulationSpec(
            households=3, seed=22,
            mixes={"country": {"uk": 1.0},
                   "diary": {"second_screen": 1.0}})
        plan = FaultPlan.parse("pcap.corrupt:0.9,worker.crash:0.9",
                               seed=9)
        registry = enable()
        try:
            FleetRunner(cache=None, jobs=jobs, shard_size=1,
                        faults=plan).run(population)
            return registry.snapshot()["counters"]
        finally:
            disable()

    def test_fault_totals_independent_of_jobs(self):
        serial = self._run(1)
        parallel = self._run(8)
        names = {name for name in list(serial) + list(parallel)
                 if name.startswith(("faults.", "retry."))}
        # The plan must actually inject (a vacuous pass would hide a
        # plumbing regression), and must exercise both kinds of site.
        assert any(name.startswith("faults.injected.pcap")
                   for name in names)
        assert any(name.startswith("faults.recovered.worker")
                   for name in names)
        for name in sorted(names):
            assert serial.get(name, 0) == parallel.get(name, 0), name
