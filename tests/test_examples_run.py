"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; a refactor that breaks one
should fail the suite, not a user.
"""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/acr_pipeline_demo.py",
    "examples/audit_privacy_controls.py",
    "examples/cross_country_audit.py",
    "examples/mitm_payload_audit.py",
    "examples/ad_personalization_linkage.py",
    "examples/fleet_audit.py",
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 200  # produced a real report, not a stub
