"""Tests for the latency/serialization model."""

import pytest

from repro.net import Ipv4Address
from repro.net.link import (LatencyModel, ONE_WAY_MS,
                            SERIALIZATION_NS_PER_BYTE)
from repro.sim import RngRegistry, milliseconds

SERVER = Ipv4Address.parse("203.0.113.10")


class TestLatencyModel:
    def test_unknown_vantage_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel("fr", RngRegistry(1))

    def test_unknown_region_rejected(self):
        model = LatencyModel("uk", RngRegistry(1))
        with pytest.raises(ValueError):
            model.register_server(SERVER, "atlantis")

    def test_unregistered_server_raises(self):
        model = LatencyModel("uk", RngRegistry(1))
        with pytest.raises(KeyError):
            model.one_way_ns(SERVER)

    def test_one_way_close_to_base(self):
        model = LatencyModel("uk", RngRegistry(1))
        model.register_server(SERVER, "amsterdam")
        base = milliseconds(ONE_WAY_MS["uk"]["amsterdam"])
        for __ in range(50):
            value = model.one_way_ns(SERVER)
            assert 0.9 * base <= value <= 1.1 * base

    def test_rtt_is_two_one_ways(self):
        model = LatencyModel("uk", RngRegistry(1), jitter_fraction=0.0)
        model.register_server(SERVER, "new_york")
        assert model.rtt_ns(SERVER) == 2 * model.one_way_ns(SERVER)

    def test_transatlantic_longer_than_regional(self):
        model = LatencyModel("uk", RngRegistry(1))
        near = Ipv4Address.parse("203.0.113.1")
        far = Ipv4Address.parse("203.0.113.2")
        model.register_server(near, "london")
        model.register_server(far, "new_york")
        assert model.one_way_ns(far) > 5 * model.one_way_ns(near)

    def test_us_vantage_reverses_distances(self):
        model = LatencyModel("us_west", RngRegistry(1))
        local = Ipv4Address.parse("203.0.113.1")
        remote = Ipv4Address.parse("203.0.113.2")
        model.register_server(local, "us_west")
        model.register_server(remote, "london")
        assert model.one_way_ns(remote) > 10 * model.one_way_ns(local)

    def test_serialization_linear(self):
        model = LatencyModel("uk", RngRegistry(1))
        assert model.serialization_ns(1460) == \
            1460 * SERIALIZATION_NS_PER_BYTE
        assert model.serialization_ns(0) == 0

    def test_wifi_hop_sub_millisecond(self):
        model = LatencyModel("uk", RngRegistry(1))
        for __ in range(20):
            assert 0 < model.wifi_hop_ns() < milliseconds(2)

    def test_region_of(self):
        model = LatencyModel("uk", RngRegistry(1))
        model.register_server(SERVER, "seoul")
        assert model.region_of(SERVER) == "seoul"

    def test_one_way_matrix_complete(self):
        """Every vantage can reach every region the other knows."""
        regions_uk = set(ONE_WAY_MS["uk"])
        regions_us = set(ONE_WAY_MS["us_west"])
        assert regions_uk == regions_us
