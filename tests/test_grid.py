"""Tests for the parallel grid runner and its content-addressed cache.

Covers the acceptance points of the grid subsystem: cell enumeration
with filters, cache hit/miss/invalidation (seed and code-version), and
that a 2-job parallel run is byte-identical to a serial run.
"""

import pytest

from repro.cli import main
from repro.experiments.grid import (CellRecord, GridFilterError,
                                    GridResults, GridRunner, ResultCache,
                                    enumerate_cells, parse_filters)
from repro.sim.clock import minutes
from repro.testbed import Country, ExperimentSpec, Phase, Scenario, Vendor

SHORT = minutes(6)


def short_cells(*expressions):
    return enumerate_cells(list(expressions), duration_ns=SHORT)


class TestEnumeration:
    def test_full_matrix_is_vendor_count_wide(self):
        cells = enumerate_cells()
        assert len(cells) == len(Vendor) * 2 * 6 * 4
        assert len({spec.label for spec in cells}) == len(cells)
        # The paper's own sub-matrix stays 96 cells.
        assert len(enumerate_cells(["vendor=samsung,lg"])) == 2 * 2 * 6 * 4

    def test_order_is_deterministic(self):
        assert [s.label for s in enumerate_cells()] == \
            [s.label for s in enumerate_cells()]

    def test_single_axis_filter(self):
        cells = enumerate_cells(["vendor=lg"])
        assert len(cells) == 48
        assert all(spec.vendor is Vendor.LG for spec in cells)

    def test_multi_value_and_multi_axis_filters(self):
        cells = enumerate_cells(["vendor=lg", "country=uk",
                                 "scenario=linear,hdmi",
                                 "phase=LIn-OIn"])
        assert [spec.label for spec in cells] == \
            ["lg-uk-linear-LIn-OIn", "lg-uk-hdmi-LIn-OIn"]

    def test_dict_filters_accepted(self):
        cells = enumerate_cells({"scenario": {Scenario.IDLE},
                                 "phase": {Phase.LOUT_OOUT}})
        assert len(cells) == len(Vendor) * 2

    def test_duration_applies_to_every_cell(self):
        assert all(spec.duration_ns == SHORT
                   for spec in short_cells("vendor=lg"))

    def test_unknown_axis_rejected(self):
        with pytest.raises(GridFilterError, match="unknown filter axis"):
            parse_filters(["color=red"])

    def test_unknown_value_rejected(self):
        with pytest.raises(GridFilterError, match="unknown vendor"):
            parse_filters(["vendor=philips"])

    def test_malformed_expression_rejected(self):
        with pytest.raises(GridFilterError, match="expected axis=value"):
            parse_filters(["vendor"])

    def test_repeated_axis_unions_values(self):
        filters = parse_filters(["vendor=lg", "vendor=samsung"])
        assert filters["vendor"] == {Vendor.LG, Vendor.SAMSUNG}


def fake_record(spec, seed=5, payload=b"\xd4\xc3\xb2\xa1-fake-pcap"):
    return CellRecord(
        label=spec.label, seed=seed, duration_ns=spec.duration_ns,
        packet_count=3, pcap_len=len(payload), tv_mac="02:00:00:00:00:01",
        tv_ip="192.168.4.2", device_id="lg-0000", elapsed_s=0.25,
        pcap_bytes=payload)


class TestResultCache:
    SPEC = ExperimentSpec(Vendor.LG, Country.UK, Scenario.IDLE,
                          Phase.LIN_OIN, SHORT)

    def test_miss_then_store_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v1")
        assert cache.load(self.SPEC, 5) is None
        cache.store(fake_record(self.SPEC))
        loaded = cache.load(self.SPEC, 5)
        assert loaded is not None
        assert loaded.from_cache
        assert loaded.packet_count == 3
        assert loaded.pcap_bytes == b"\xd4\xc3\xb2\xa1-fake-pcap"
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_seed_change_invalidates(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v1")
        cache.store(fake_record(self.SPEC, seed=5))
        assert cache.load(self.SPEC, 6) is None
        assert cache.load(self.SPEC, 5) is not None

    def test_code_version_change_invalidates(self, tmp_path):
        ResultCache(str(tmp_path), version="v1").store(
            fake_record(self.SPEC))
        assert ResultCache(str(tmp_path),
                           version="v2").load(self.SPEC, 5) is None
        assert ResultCache(str(tmp_path),
                           version="v1").load(self.SPEC, 5) is not None

    def test_duration_is_part_of_the_key(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v1")
        cache.store(fake_record(self.SPEC))
        longer = ExperimentSpec(Vendor.LG, Country.UK, Scenario.IDLE,
                                Phase.LIN_OIN, minutes(7))
        assert cache.load(longer, 5) is None

    def test_corrupt_meta_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v1")
        cache.store(fake_record(self.SPEC))
        meta_path, __ = cache._paths(cache.key(self.SPEC, 5))
        with open(meta_path, "w", encoding="utf-8") as fileobj:
            fileobj.write("{not json")
        assert cache.load(self.SPEC, 5) is None

    def test_entry_count(self, tmp_path):
        cache = ResultCache(str(tmp_path), version="v1")
        assert cache.entry_count() == 0
        cache.store(fake_record(self.SPEC))
        assert cache.entry_count() == 1


CELLS = ["vendor=lg", "country=uk", "scenario=idle,linear",
         "phase=LIn-OIn"]


@pytest.mark.slow
class TestGridRunner:
    def test_serial_run_populates_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        specs = short_cells(*CELLS)
        records = GridRunner(seed=3, cache=cache).run(specs)
        assert [r.label for r in records] == [s.label for s in specs]
        assert all(not r.from_cache for r in records)
        assert cache.entry_count() == len(specs)

        rerun = GridRunner(seed=3, cache=cache).run(specs)
        assert all(r.from_cache for r in rerun)
        for fresh, cached in zip(records, rerun):
            assert fresh.pcap_bytes == cached.pcap_bytes

    def test_seed_change_reruns(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        specs = short_cells(*CELLS)[:1]
        GridRunner(seed=3, cache=cache).run(specs)
        other = GridRunner(seed=4, cache=cache).run(specs)
        assert all(not r.from_cache for r in other)
        assert cache.entry_count() == 2

    def test_parallel_matches_serial_byte_for_byte(self):
        specs = short_cells(*CELLS)
        serial = GridRunner(seed=3, cache=None, jobs=1).run(specs)
        parallel = GridRunner(seed=3, cache=None, jobs=2).run(specs)
        assert [r.label for r in parallel] == [r.label for r in serial]
        for a, b in zip(serial, parallel):
            assert a.packet_count == b.packet_count
            assert a.pcap_bytes == b.pcap_bytes

    def test_progress_callback_sees_every_cell(self, tmp_path):
        specs = short_cells(*CELLS)
        seen = []
        GridRunner(seed=3, cache=ResultCache(str(tmp_path))).run(
            specs, progress=lambda spec, record: seen.append(spec.label))
        assert sorted(seen) == sorted(spec.label for spec in specs)


@pytest.mark.slow
class TestGridResults:
    SPEC = ExperimentSpec(Vendor.LG, Country.UK, Scenario.LINEAR,
                          Phase.LIN_OIN, SHORT)

    def test_pipeline_from_warm_cache_matches_fresh(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        GridRunner(seed=3, cache=cache).run([self.SPEC])

        warm = GridResults(seed=3, cache=cache)
        pipeline = warm.pipeline(self.SPEC)
        assert warm.campaign.runs == 0  # served from disk, no simulation

        fresh = GridResults(seed=3, cache=None).pipeline(self.SPEC)
        assert pipeline.acr_candidate_domains() == \
            fresh.acr_candidate_domains()
        assert pipeline.byte_totals() == fresh.byte_totals()

    def test_ensure_prefetches(self, tmp_path):
        results = GridResults(seed=3, cache=ResultCache(str(tmp_path)))
        specs = short_cells(*CELLS)
        results.ensure(specs, jobs=2)
        for spec in specs:
            results.pipeline(spec)
        assert results.campaign.runs == 0

    def test_corrupt_pcap_self_heals(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        GridRunner(seed=3, cache=cache).run([self.SPEC])
        __, pcap_path = cache._paths(cache.key(self.SPEC, 3))
        with open(pcap_path, "wb") as fileobj:
            fileobj.write(b"garbage, not zlib")

        healed = GridResults(seed=3, cache=cache)
        pipeline = healed.pipeline(self.SPEC)  # re-runs and re-stores
        assert healed.campaign.runs == 1
        assert pipeline.acr_candidate_domains()

        again = GridResults(seed=3, cache=cache)
        assert again.pipeline(self.SPEC).byte_totals() == \
            pipeline.byte_totals()
        assert again.campaign.runs == 0  # repaired entry serves from disk

    def test_capture_identical_across_processes(self, tmp_path):
        """The cache's core guarantee: a fresh process reproduces the
        exact capture bytes another process stored (no PYTHONHASHSEED
        dependence)."""
        import hashlib
        import os
        import subprocess
        import sys

        spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.IDLE,
                              Phase.LIN_OIN, SHORT)
        record = GridRunner(seed=3, cache=None).run([spec])[0]
        local_digest = hashlib.sha256(record.pcap_bytes).hexdigest()

        code = (
            "import hashlib\n"
            "from repro.experiments.grid import GridRunner, "
            "enumerate_cells\n"
            "from repro.sim.clock import minutes\n"
            "specs = enumerate_cells(['vendor=lg', 'country=uk', "
            "'scenario=idle', 'phase=LIn-OIn'], "
            "duration_ns=minutes(6))\n"
            "record = GridRunner(seed=3, cache=None).run(specs)[0]\n"
            "print(hashlib.sha256(record.pcap_bytes).hexdigest())\n")
        import repro
        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p)
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True, check=True)
        assert proc.stdout.strip() == local_digest

    def test_result_returns_ground_truth_handles(self, tmp_path):
        results = GridResults(seed=3, cache=ResultCache(str(tmp_path)))
        result = results.result(self.SPEC)
        assert result.registry is not None
        assert result.zone is not None
        # The capture landed in the disk cache as a side effect.
        assert results.cache.entry_count() == 1


@pytest.mark.slow
class TestCliGrid:
    ARGS = ["grid", "--minutes", "6", "--seed", "3",
            "--filter", "vendor=lg", "--filter", "country=uk",
            "--filter", "scenario=idle,linear", "--filter",
            "phase=LIn-OIn"]

    def test_cold_then_warm(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "grid summary" in out
        assert out.count("[ran") == 2

        assert main(args + ["--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("cached") >= 2
        assert "[ran" not in out

    def test_no_cache_always_executes(self, capsys):
        args = ["grid", "--minutes", "6", "--seed", "3",
                "--filter", "vendor=lg", "--filter", "country=uk",
                "--filter", "scenario=idle", "--filter",
                "phase=LIn-OIn", "--no-cache"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("[ran") == 1
        assert "cache off" in out

    def test_bad_filter_is_an_error(self, capsys):
        assert main(["grid", "--filter", "vendor=philips"]) == 2
        assert "unknown vendor" in capsys.readouterr().err

    def test_too_short_duration_is_an_error(self, capsys):
        assert main(["grid", "--minutes", "0"]) == 2
        assert "error:" in capsys.readouterr().err
