# Developer entry points.  Everything runs from the repo root with the
# sources on PYTHONPATH; no installation step is required.

PY := PYTHONPATH=src python

.PHONY: test bench bench-grid bench-fleet bench-json docs-check report

test:
	$(PY) -m pytest -x -q

bench:
	$(PY) -m pytest benchmarks -q

bench-grid:
	$(PY) -m pytest benchmarks/bench_grid_runner.py -q

bench-fleet:
	$(PY) -m pytest benchmarks/bench_fleet.py -q

# Codec hot-path trajectory: microbenches + a reduced-grid end-to-end
# cell, written to BENCH_4.json so future PRs can regress-check.
bench-json:
	$(PY) scripts/bench_report.py --out BENCH_4.json

docs-check:
	$(PY) scripts/docs_check.py

report:
	$(PY) -m repro.cli report --jobs 4 > EXPERIMENTS.md
