# Developer entry points.  Everything runs from the repo root with the
# sources on PYTHONPATH; no installation step is required.

PY := PYTHONPATH=src python

# Coverage floor for `make coverage` / CI: conservatively below the
# currently measured line coverage so real regressions trip it while
# routine refactors do not.
COV_FLOOR := 75

.PHONY: test test-fast bench bench-grid bench-fleet bench-json \
	coverage docs-check golden-update report resume-smoke \
	metrics-smoke tier-smoke chaos-smoke findings-smoke

test:
	$(PY) -m pytest -x -q

# Fast inner loop: skips the multi-cell fleet/grid/conformance/golden
# suites (marker registered in pytest.ini). Tier-1 stays `make test`.
test-fast:
	$(PY) -m pytest -x -q -m "not slow"

bench:
	$(PY) -m pytest benchmarks -q

bench-grid:
	$(PY) -m pytest benchmarks/bench_grid_runner.py -q

bench-fleet:
	$(PY) -m pytest benchmarks/bench_fleet.py -q

# Codec hot-path trajectory: microbenches + a reduced-grid end-to-end
# cell, written to BENCH_5.json so future PRs can regress-check.
bench-json:
	$(PY) scripts/bench_report.py --out BENCH_5.json

# Full suite under coverage with the floor enforced (requires
# pytest-cov, which CI installs; locally: pip install pytest-cov).
coverage:
	$(PY) -m pytest -q --cov=repro --cov-report=term \
		--cov-report=xml --cov-fail-under=$(COV_FLOOR)

# Regenerate the byte-identical output pins under tests/golden/ after an
# intentional simulation change, then commit the updated artifacts.
golden-update:
	$(PY) scripts/update_golden.py

docs-check:
	$(PY) scripts/docs_check.py

# Streaming-service kill/resume smoke: batch fleet, uninterrupted
# stream, and a SIGTERMed-then-resumed stream must all render the same
# report (sha256).  CI runs it at 200 households; the knobs exist for a
# quicker local loop.
resume-smoke:
	$(PY) scripts/resume_smoke.py --households $(or $(SMOKE_N),200) \
		--jobs $(or $(SMOKE_JOBS),8)

# Observability smoke: a small fleet in plain-dashboard mode with a
# JSONL metrics export, validated against schema v1 by the checker.
metrics-smoke:
	$(PY) -m repro.cli fleet --households $(or $(SMOKE_N),16) \
		--jobs $(or $(SMOKE_JOBS),2) --no-cache --dashboard --plain \
		--metrics-out metrics.jsonl
	$(PY) scripts/check_metrics.py metrics.jsonl

# Fault-injection chaos smoke: serve under an aggressive lossless
# fault plan (drops/dups/reorders/starvation/crashes/torn checkpoints,
# including a SIGTERM + resume) must render a report byte-identical to
# the fault-free batch fleet; a lossy (pcap-corruption) plan must
# complete with a jobs-invariant degradation-evidence section.
chaos-smoke:
	$(PY) scripts/chaos_smoke.py --households $(or $(SMOKE_N),96) \
		--jobs $(or $(SMOKE_JOBS),8)

# Findings-export invariance smoke: fleet --jobs 1 vs --jobs 8 under a
# lossy fault plan with roku in the mix must write sha256-identical
# --findings-out JSONL (carrying real DEG and OPTOUT findings), pass
# the schema checker, and self-diff to zero changes.
findings-smoke:
	$(PY) scripts/findings_smoke.py --households $(or $(SMOKE_N),24) \
		--jobs $(or $(SMOKE_JOBS),8)

# Decode-tier identity smoke: lazy --jobs 1 vs columnar --jobs 8 with
# shared-memory columns (publish, keep, attach across runs, clean up)
# must render sha256-identical fleet reports.
tier-smoke:
	$(PY) scripts/tier_smoke.py --households $(or $(SMOKE_N),32) \
		--jobs $(or $(SMOKE_JOBS),8)

report:
	$(PY) -m repro.cli report --jobs 4 > EXPERIMENTS.md
