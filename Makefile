# Developer entry points.  Everything runs from the repo root with the
# sources on PYTHONPATH; no installation step is required.

PY := PYTHONPATH=src python

.PHONY: test bench bench-grid bench-fleet docs-check report

test:
	$(PY) -m pytest -x -q

bench:
	$(PY) -m pytest benchmarks -q

bench-grid:
	$(PY) -m pytest benchmarks/bench_grid_runner.py -q

bench-fleet:
	$(PY) -m pytest benchmarks/bench_fleet.py -q

docs-check:
	$(PY) scripts/docs_check.py

report:
	$(PY) -m repro.cli report --jobs 4 > EXPERIMENTS.md
