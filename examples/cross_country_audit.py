#!/usr/bin/env python3
"""UK vs US ACR behaviour, server locations and legal basis (paper §4.1/4.3).

For both vendors:
* compares the ACR domain sets contacted in the UK and the US,
* compares FAST-platform tracking (restricted in the UK, active in the US),
* geolocates every observed ACR endpoint via the MaxMind/IP2Location ->
  RIPE IPmap workflow,
* checks each operator against the UK-US Data Bridge (DPF list).

Usage::

    python examples/cross_country_audit.py
"""

from repro.analysis import CountryComparison, acr_volume_total
from repro.experiments import cache, run_geo_experiment
from repro.reporting import render_table
from repro.testbed import (Country, ExperimentSpec, Phase, Scenario,
                           paper_vendors)


def main() -> None:
    print("=== Domain sets (Linear, LIn-OIn) ===")
    for vendor in paper_vendors():
        uk = cache.pipeline_for(ExperimentSpec(
            vendor, Country.UK, Scenario.LINEAR, Phase.LIN_OIN))
        us = cache.pipeline_for(ExperimentSpec(
            vendor, Country.US, Scenario.LINEAR, Phase.LIN_OIN))
        comparison = CountryComparison(uk, us)
        print(f"\n{vendor.value}:")
        print(f"  UK only: {comparison.uk_only}")
        print(f"  US only: {comparison.us_only}")
        print(f"  distinct: {comparison.distinct_domain_names}")

    print("\n=== FAST platform divergence ===")
    rows = []
    for vendor in paper_vendors():
        for country in Country:
            fast = acr_volume_total(cache.pipeline_for(ExperimentSpec(
                vendor, country, Scenario.FAST, Phase.LIN_OIN)))
            linear = acr_volume_total(cache.pipeline_for(ExperimentSpec(
                vendor, country, Scenario.LINEAR, Phase.LIN_OIN)))
            rows.append([vendor.value, country.value.upper(),
                         f"{fast:.1f}", f"{linear:.1f}",
                         f"{fast / linear:.2f}"])
    print(render_table(
        ["vendor", "country", "FAST KB", "Linear KB", "ratio"], rows))
    print("(paper: US FAST tracked like Linear; UK FAST restricted)")

    print("\n=== Geolocation of ACR endpoints ===")
    for country in Country:
        experiment = run_geo_experiment(country)
        rows = []
        for domain in experiment.domains:
            finding = experiment.findings[domain]
            via = "RIPE IPmap" if finding.ipmap_used else "GeoIP (agree)"
            rows.append([domain, experiment.city_of(domain),
                         experiment.country_of(domain), via,
                         "yes" if experiment.dpf_ok[domain] else "NO"])
        print(render_table(
            ["domain", "city", "country", "resolved via", "DPF/Bridge"],
            rows, title=f"\n{country.value.upper()} vantage"))

    print("\nKey paper findings reproduced:")
    print("  - LG UK endpoints resolve to Amsterdam (NL)")
    print("  - Samsung's log-config.samsungacr.com sits in New York: UK")
    print("    viewership telemetry crosses into the US...")
    print("  - ...but both operators are on the DPF list, so the UK-US")
    print("    Data Bridge permits the transfer.")


if __name__ == "__main__":
    main()
