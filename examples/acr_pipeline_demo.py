#!/usr/bin/env python3
"""Inside the black box: the ACR pipeline end to end (paper Figure 1).

The paper audits ACR from outside; this reproduction also implements the
system itself.  This example walks the whole loop on one device:

  captured frames -> content fingerprint -> ACR server match ->
  viewing sessions -> audience segments

and demonstrates the "dumb display" privacy problem: a console game over
HDMI still gets fingerprinted and uploaded, even though the operator
cannot match it.

Usage::

    python examples/acr_pipeline_demo.py
"""

from repro.acr import (AcrBackend, FingerprintBatch, ReferenceLibrary,
                       SegmentProfiler, capture_state, hamming_distance,
                       video_fingerprint)
from repro.media import PlayState, render_frame, standard_library
from repro.reporting import render_table
from repro.sim import seconds


def main() -> None:
    library = standard_library("uk", seed=3)
    show = library.shows[0]

    print("=== 1. Frames to fingerprints ===")
    state = PlayState(show, 100.0)
    frame = render_frame(state)
    print(f"content: {show.title!r} at t=100s, frame {frame.shape}")
    fingerprint = video_fingerprint(frame)
    print(f"64-bit dHash: {fingerprint:#018x}")
    drifted = video_fingerprint(render_frame(PlayState(show, 101.0)))
    other = video_fingerprint(render_frame(PlayState(library.shows[1],
                                                     100.0)))
    print(f"hamming to next second of same scene: "
          f"{hamming_distance(fingerprint, drifted)} bits")
    print(f"hamming to different content:         "
          f"{hamming_distance(fingerprint, other)} bits")

    print("\n=== 2. The operator's reference library ===")
    reference = ReferenceLibrary()
    reference.ingest_all(library.shows)
    reference.ingest_all(library.ads)
    print(f"{reference.content_count} items, "
          f"{len(reference)} reference samples")

    print("\n=== 3. Matching uploaded batches ===")
    backend = AcrBackend("alphonso", reference)
    for minute in range(5):
        captures = [capture_state(
            PlayState(show, 100.0 + 15 * minute + i)) for i in range(8)]
        batch = FingerprintBatch("demo-tv", captures)
        verdict = backend.ingest_raw(batch.encode(), seconds(15 * minute))
        print(f"  batch {minute}: {batch.encoded_size}B on the wire -> "
              f"{verdict.content_id or '<no match>'} "
              f"({verdict.confidence:.0%} confidence)")

    print("\n=== 4. The 'dumb display' problem ===")
    game = library.game()
    captures = [capture_state(PlayState(game, float(i))) for i in range(8)]
    verdict = backend.ingest(FingerprintBatch("demo-tv", captures),
                             seconds(600))
    print(f"  console game over HDMI: fingerprints still uploaded "
          f"({FingerprintBatch('demo-tv', captures).encoded_size}B), "
          f"match={verdict.content_id or '<no match>'}")
    print("  (the TV tracked a 'dumb display' input — the paper's most")
    print("   privacy-sensitive finding)")

    print("\n=== 5. Viewing history -> audience segments ===")
    # Accumulate enough recognised minutes to cross the segment threshold.
    for minute in range(5, 45):
        captures = [capture_state(PlayState(
            show, (100.0 + 15 * minute + i) % show.duration_s))
            for i in range(8)]
        backend.ingest(FingerprintBatch("demo-tv", captures),
                       seconds(15 * minute))
    sessions = backend.sessions_for("demo-tv")
    profiler = SegmentProfiler(backend, reference)
    profile = profiler.profile("demo-tv")
    rows = [[s.content_id, f"{s.duration_s:.0f}s", str(s.events)]
            for s in sessions]
    print(render_table(["content", "duration", "events"], rows,
                       title="Reconstructed viewing sessions"))
    print(f"\ngenre watch-time: "
          f"{ {g: round(s) for g, s in profile.genre_seconds.items()} }")
    print(f"assigned audience segments: {profile.segments}")
    print("(Figure 1's final stage: segments feed personalised ads)")


if __name__ == "__main__":
    main()
