#!/usr/bin/env python3
"""What's inside ACR payloads? (the paper's future-work MITM study)

Re-runs the Linear experiment with a TLS-terminating proxy in path and
inspects every payload the proxy can decrypt: which domains carry real
fingerprint batches, what identifier keys the tracking, what capture
cadence the batches reveal — and which channels certificate pinning keeps
opaque.

Usage::

    python examples/mitm_payload_audit.py
"""

from repro.experiments.mitm_audit import run_mitm_audit
from repro.reporting import render_table
from repro.acr import profile_for
from repro.testbed import paper_vendors


def main() -> None:
    for vendor in paper_vendors():
        audit = run_mitm_audit(vendor)
        print(f"\n=== {vendor.value} (UK, Linear, MITM proxy in path) ===")
        rows = []
        for domain, report in sorted(audit.reports.items()):
            kinds = ", ".join(f"{kind} x{count}"
                              for kind, count in report.kinds.items())
            rows.append([domain, kinds,
                         str(report.total_captures),
                         str(len(report.identifiers))])
        for domain in audit.opaque_domains:
            rows.append([domain, "OPAQUE (certificate pinned)", "-", "-"])
        print(render_table(
            ["domain", "decrypted payload kinds", "captures", "ids"],
            rows))
        print(f"identifiers seen in payloads: {audit.identifiers}")
        print(f"advertising ID observed:      "
              f"{audit.advertising_id_observed} "
              f"(confirms the §4.2 conjecture at payload level)")
        if audit.capture_cadence_ms is not None:
            print(f"capture cadence from batch offsets: "
                  f"{audit.capture_cadence_ms:.0f} ms "
                  f"(vendor documentation: "
                  f"{profile_for(vendor.value, 'uk').capture_interval_ns // 10**6} ms)")
        else:
            print("capture cadence: unknown — the fingerprint channel "
                  "never decrypted")

    print("\nTakeaway: a user-installed CA opens LG's entire ACR channel "
          "(batches, device IDs,\ncapture clock), while Samsung's pinned "
          "fingerprint endpoint stays a black box —\nonly its telemetry "
          "side-channels leak the advertising ID.")


if __name__ == "__main__":
    main()
