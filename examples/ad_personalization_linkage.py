#!/usr/bin/env python3
"""Does ACR viewing actually drive the ads you see? (paper future work)

Two identical TVs watch the same show for half an hour; one is opted in
to ACR + personalized ads, the other fully opted out.  Both then request
the same home-screen ad slots from the operator's ad server.

Usage::

    python examples/ad_personalization_linkage.py
"""

from repro.ads import run_multi_genre_study
from repro.reporting import render_table
from repro.testbed import fresh_backend, media_library


def main() -> None:
    library = media_library("uk", 0)
    backend = fresh_backend("lg", "uk")
    items = [library.shows[0], library.shows[1], library.shows[2]]
    print(f"Running the two-device linkage protocol over "
          f"{len(items)} shows...\n")
    results = run_multi_genre_study(backend, items, seed=2)

    rows = []
    for genre, result in sorted(results.items()):
        rows.append([
            genre,
            result.expected_segment,
            f"{result.optin_rate:.0%}",
            f"{result.optin_aligned_rate:.0%}",
            f"{result.optout_rate:.0%}",
            f"{result.revenue_lift:.1f}x",
            "YES" if result.linkage_established else "no",
        ])
    print(render_table(
        ["watched genre", "expected segment", "opt-in targeted",
         "aligned with genre", "opt-out targeted", "revenue lift",
         "linkage"], rows))

    print("\nReading:")
    print("  - the opted-in device's ad slots are mostly filled with")
    print("    creatives targeting exactly the segment its viewing built;")
    print("  - the opted-out device receives house ads only (0% targeted),")
    print("    because no fingerprints ever reached the operator (§4.2);")
    print("  - targeted slots clear at a multiple of house-ad prices —")
    print("    the economic engine behind ACR.")


if __name__ == "__main__":
    main()
