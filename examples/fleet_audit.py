"""Population-scale ACR audit: simulate a small fleet of households.

The paper audits one TV at a time; the fleet layer asks population
questions.  This example samples a dozen UK households from a mixed
vendor/phase/diary population, plays each household's viewing diary as
one multi-segment capture, and folds every audit into a streaming
aggregate — then prints the population report.

Run with ``PYTHONPATH=src python examples/fleet_audit.py``.
"""

from repro.fleet import (FleetRunner, PopulationSpec,
                         render_population_report)

# A small, quick population: UK only (one asset build), every vendor,
# opt-out present so the efficacy section has both groups.
population = PopulationSpec(
    households=12,
    seed=42,
    mixes={
        "country": {"uk": 1.0},
        "phase": {"LIn-OIn": 0.5, "LOut-OIn": 0.2,
                  "LIn-OOut": 0.2, "LOut-OOut": 0.1},
    },
)

print(f"sampling {population.households} households "
      f"(fleet seed {population.seed})...")
for household in population:
    print(f"  #{household.index}: {household.label} "
          f"(seed {household.seed})")

# cache=None keeps the example self-contained; the CLI (`repro.cli
# fleet`) wires the same runner to the on-disk result cache so repeated
# fleets only pay for new households.
result = FleetRunner(cache=None, jobs=1).run(population)
print(f"\naudited {result.households} households "
      f"({result.executed} simulated)\n")

print(render_population_report(result.aggregate, population))
