#!/usr/bin/env python3
"""Do the privacy controls actually work? (paper §4.2)

Reproduces the four-phase comparison for one vendor/scenario cell:

* LIn-OIn vs LOut-OIn — does login status change ACR traffic?  (No.)
* opted-in vs opted-out — does the Table 1 opt-out stop ACR?   (Yes.)

Usage::

    python examples/audit_privacy_controls.py [samsung|lg]
"""

import sys

from repro.analysis import (AuditPipeline, PhaseComparison,
                            no_new_acr_domains)
from repro.reporting import render_table
from repro.testbed import (Country, ExperimentSpec, Phase, Scenario,
                           Vendor, run_experiment)
from repro.tv import PrivacySettings


def main() -> None:
    vendor = Vendor.SAMSUNG if (len(sys.argv) > 1
                                and sys.argv[1] == "samsung") \
        else Vendor.LG
    print(f"Auditing privacy controls on {vendor.value} (UK, Linear)\n")

    settings = PrivacySettings(vendor.value)
    settings.opt_out_all()
    rows = [[key, label, "on" if value else "off"]
            for key, label, value in settings.describe()]
    print(render_table(["key", "Table 1 option", "state after opt-out"],
                       rows))

    pipelines = {}
    for phase in Phase:
        spec = ExperimentSpec(vendor, Country.UK, Scenario.LINEAR, phase)
        print(f"\nRunning {spec.label}...")
        pipelines[phase] = AuditPipeline.from_result(
            run_experiment(spec, seed=7))

    print("\n--- Login status (LIn-OIn vs LOut-OIn) ---")
    login = PhaseComparison("LIn-OIn", pipelines[Phase.LIN_OIN],
                            "LOut-OIn", pipelines[Phase.LOUT_OIN])
    print(f"same ACR domain set: {login.same_domain_set}")
    print(f"volumes similar:     {login.volumes_similar()}")
    for domain in sorted(login.domains_a):
        ratio = login.volume_ratio(domain)
        print(f"  {domain}: LIn={login.volumes_a.get(domain, 0):.1f} KB, "
              f"LOut={login.volumes_b.get(domain, 0):.1f} KB "
              f"(ratio {ratio:.2f})")

    print("\n--- Opt-out (LIn-OIn vs LIn-OOut) ---")
    optout = PhaseComparison("LIn-OIn", pipelines[Phase.LIN_OIN],
                             "LIn-OOut", pipelines[Phase.LIN_OOUT])
    print(f"ACR domains silent after opt-out: {optout.b_is_silent}")
    print(f"no new ACR domains appeared:      "
          f"{no_new_acr_domains(pipelines[Phase.LIN_OIN], pipelines[Phase.LIN_OOUT])}")

    verdict = (login.same_domain_set and login.volumes_similar()
               and optout.b_is_silent)
    print(f"\nConclusion: login status has no material impact and the "
          f"opt-out mechanism works: {verdict}")
    print("(matches the paper's §4.2 findings)")


if __name__ == "__main__":
    main()
