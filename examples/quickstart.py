#!/usr/bin/env python3
"""Quickstart: audit one smart TV for ACR tracking.

Runs a single one-hour experiment (LG, UK, watching linear TV via antenna,
logged in and opted in), captures its traffic at the access point, and
runs the black-box audit pipeline over the resulting pcap — the core loop
of the paper.

Usage::

    python examples/quickstart.py
"""

from repro.analysis import (AcrDomainAuditor, AuditPipeline,
                            analyze_periodicity)
from repro.reporting import render_table
from repro.testbed import (Country, ExperimentSpec, Phase, Scenario,
                           Vendor, run_experiment, validate)


def main() -> None:
    spec = ExperimentSpec(Vendor.LG, Country.UK, Scenario.LINEAR,
                          Phase.LIN_OIN)
    print(f"Running experiment {spec.label} (one simulated hour)...")
    result = run_experiment(spec, seed=7)
    report = validate(result)
    print(f"  capture: {result.packet_count} packets, "
          f"{len(result.pcap_bytes) / 1e6:.1f} MB pcap, "
          f"validation={'OK' if report.ok else report.failures}")

    # The audit sees only the pcap — exactly the paper's vantage.
    pipeline = AuditPipeline.from_result(result)
    print(f"\nContacted domains: {', '.join(pipeline.contacted_domains)}")

    auditor = AcrDomainAuditor()
    findings = auditor.audit(pipeline)
    rows = []
    for finding in findings:
        cadence = finding.periodicity
        rows.append([
            finding.domain,
            f"{pipeline.kilobytes_for(finding.domain):.1f}",
            f"{cadence.period_s:.1f}s" if cadence.period_s else "-",
            "yes" if finding.blocklist_listed else "no",
            "yes" if finding.validated else "no",
        ])
    print()
    print(render_table(
        ["ACR domain", "KB/hour", "cadence", "blocklisted", "validated"],
        rows, title="ACR candidates ('acr' substring heuristic)"))

    # What the operator's backend learned (white-box bonus of the
    # reproduction: the paper could only hypothesise about this side).
    backend = result.backend
    sessions = backend.sessions_for(result.device_id)
    print(f"\nOperator backend recognised "
          f"{backend.recognition_rate:.0%} of uploaded batches; "
          f"{len(sessions)} viewing sessions reconstructed:")
    for session in sessions[:5]:
        print(f"  {session.content_id}: {session.duration_s:.0f}s")
    domain = pipeline.acr_candidate_domains()[0]
    cadence = analyze_periodicity(domain, pipeline.packets_for(domain))
    print(f"\nFingerprint upload cadence: every {cadence.period_s:.1f}s "
          f"(paper: LG batches every ~15s)")


if __name__ == "__main__":
    main()
