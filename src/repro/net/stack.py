"""Host network stack: synthesizes complete, timestamped packet exchanges.

Device models call high-level operations (resolve a name, open a TLS
session, exchange payloads, keep a connection alive); the stack emits every
packet of both directions — handshakes, segmentation, ACKs, teardown — with
capture timestamps as seen at the access point tap.  The resulting capture
is indistinguishable, for the paper's analysis pipeline, from a tcpdump of a
physical TV.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..sim.clock import microseconds
from ..sim.rng import RngRegistry
from .addresses import Ipv4Address, MacAddress
from .dns import DnsMessage, DnsRecord
from .link import LatencyModel
from .packet import CapturedPacket, build_tcp_frame, build_udp_frame
from .tcp import (FLAG_ACK, FLAG_FIN, FLAG_PSH, FLAG_SYN, TcpSegment)
from .template import TcpFrameTemplate
from .tls import (AEAD_OVERHEAD, TlsRecord, application_records,
                  handshake_flights)

MSS = 1460
EPHEMERAL_BASE = 40000
PROCESSING_NS = microseconds(150)

CaptureFn = Callable[[CapturedPacket], None]


class HostStack:
    """The TV-side network stack attached to the AP's capture tap."""

    def __init__(self, mac: MacAddress, ip: Ipv4Address,
                 gateway_mac: MacAddress, latency: LatencyModel,
                 rng: RngRegistry, capture: CaptureFn) -> None:
        self.mac = mac
        self.ip = ip
        self.gateway_mac = gateway_mac
        self.latency = latency
        self.rng = rng
        self.capture = capture
        self._next_port = EPHEMERAL_BASE
        self._ip_id = rng.bounded_int("stack:ipid", 0, 0xFFFF)
        self._remote_ip_id = rng.bounded_int("stack:remote-ipid", 0, 0xFFFF)
        self._dns_txid = rng.bounded_int("stack:dns-txid", 0, 0xFFFF)
        # Header templates per flow direction: a TLS session re-emits
        # hundreds of segments that differ only in the patchable fields.
        self._templates: Dict[Tuple, TcpFrameTemplate] = {}
        # The TV's radio and the AP's delivery queue each serialize frames,
        # so capture timestamps are monotonic per direction even when
        # latency jitter would say otherwise.
        self._last_out_ts = -1
        self._last_in_ts = -1

    def _serialize_out(self, ts: int) -> int:
        ts = max(ts, self._last_out_ts + 1_000)
        self._last_out_ts = ts
        return ts

    def _serialize_in(self, ts: int) -> int:
        ts = max(ts, self._last_in_ts + 1_000)
        self._last_in_ts = ts
        return ts

    # -- low-level helpers ------------------------------------------------

    def allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if self._next_port > 65000:
            self._next_port = EPHEMERAL_BASE
        return port

    def _next_ip_id(self) -> int:
        self._ip_id = (self._ip_id + 1) & 0xFFFF
        return self._ip_id

    def _next_remote_ip_id(self) -> int:
        self._remote_ip_id = (self._remote_ip_id + 1) & 0xFFFF
        return self._remote_ip_id

    def emit_outbound_udp(self, at: int, dst_ip: Ipv4Address,
                          src_port: int, dst_port: int,
                          payload: bytes) -> int:
        """TV -> Internet UDP datagram; returns capture timestamp."""
        frame = build_udp_frame(self.mac, self.gateway_mac, self.ip, dst_ip,
                                src_port, dst_port, payload,
                                identification=self._next_ip_id())
        ts = self._serialize_out(at + self.latency.wifi_hop_ns())
        self.capture(CapturedPacket(ts, frame))
        return ts

    def emit_inbound_udp(self, at: int, src_ip: Ipv4Address,
                         src_port: int, dst_port: int,
                         payload: bytes, ttl: int = 57) -> int:
        """Internet -> TV UDP datagram; returns capture timestamp."""
        frame = build_udp_frame(self.gateway_mac, self.mac, src_ip, self.ip,
                                src_port, dst_port, payload,
                                identification=self._next_remote_ip_id(),
                                ttl=ttl)
        ts = self._serialize_in(at)
        self.capture(CapturedPacket(ts, frame))
        return ts

    def _tcp_frame(self, src_mac: MacAddress, dst_mac: MacAddress,
                   src_ip: Ipv4Address, dst_ip: Ipv4Address, ttl: int,
                   identification: int, segment: TcpSegment) -> bytes:
        """Encode via a cached header template when the segment has the
        fast-path shape (no options, default window) — the overwhelming
        majority; SYN segments carry an MSS option and fall back to the
        full object codec."""
        if segment.mss_option or segment.window != 0xFFFF:
            return build_tcp_frame(src_mac, dst_mac, src_ip, dst_ip,
                                   segment, identification=identification,
                                   ttl=ttl)
        key = (src_mac.value, dst_mac.value, src_ip.value, dst_ip.value,
               segment.src_port, segment.dst_port, ttl)
        template = self._templates.get(key)
        if template is None:
            template = TcpFrameTemplate(src_mac, dst_mac, src_ip, dst_ip,
                                        segment.src_port, segment.dst_port,
                                        ttl=ttl)
            self._templates[key] = template
        return template.frame(identification, segment.seq, segment.ack,
                              segment.flags, segment.payload)

    def emit_outbound_tcp(self, at: int, dst_ip: Ipv4Address,
                          segment: TcpSegment) -> int:
        frame = self._tcp_frame(self.mac, self.gateway_mac, self.ip,
                                dst_ip, 64, self._next_ip_id(), segment)
        ts = self._serialize_out(at + self.latency.wifi_hop_ns())
        self.capture(CapturedPacket(ts, frame))
        return ts

    def emit_inbound_tcp(self, at: int, src_ip: Ipv4Address,
                         segment: TcpSegment, ttl: int = 57) -> int:
        frame = self._tcp_frame(self.gateway_mac, self.mac, src_ip,
                                self.ip, ttl, self._next_remote_ip_id(),
                                segment)
        ts = self._serialize_in(at)
        self.capture(CapturedPacket(ts, frame))
        return ts

    # -- DNS ---------------------------------------------------------------

    def dns_exchange(self, at: int, resolver_ip: Ipv4Address, name: str,
                     answers: List[DnsRecord],
                     rcode: int = 0) -> Tuple[int, int]:
        """One DNS query/response round trip.

        Returns (query_ts, response_ts).  ``answers`` comes from the
        simulated DNS infrastructure (:mod:`repro.dnsinfra`).
        """
        self._dns_txid = (self._dns_txid + 1) & 0xFFFF
        query = DnsMessage.query(self._dns_txid, name)
        src_port = self.allocate_port()
        query_ts = self.emit_outbound_udp(
            at, resolver_ip, src_port, 53, query.encode())
        response = DnsMessage.response(query, answers, rcode)
        response_ts = query_ts + self.latency.rtt_ns(resolver_ip) \
            + PROCESSING_NS
        self.emit_inbound_udp(response_ts, resolver_ip, 53, src_port,
                              response.encode())
        return query_ts, response_ts


class TlsSession:
    """An established TLS-over-TCP session between the TV and a server.

    Created via :meth:`open`, which emits the TCP handshake and TLS flights.
    All timestamps are "as captured at the AP".
    """

    def __init__(self, stack: HostStack, server_ip: Ipv4Address,
                 server_name: str, client_port: int,
                 server_port: int) -> None:
        self.stack = stack
        self.server_ip = server_ip
        self.server_name = server_name
        self.client_port = client_port
        self.server_port = server_port
        self.client_seq = stack.rng.bounded_int(
            f"tls:{server_name}:cseq", 1, 0xFFFF0000)
        self.server_seq = stack.rng.bounded_int(
            f"tls:{server_name}:sseq", 1, 0xFFFF0000)
        self.established_at: Optional[int] = None
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- session establishment --------------------------------------------

    @classmethod
    def open(cls, stack: HostStack, at: int, server_ip: Ipv4Address,
             server_name: str, server_port: int = 443,
             certificate_size: int = 2800) -> "TlsSession":
        """TCP three-way handshake + TLS 1.2 handshake; returns the session.

        ``session.established_at`` is the capture time of the client
        Finished flight, after which :meth:`exchange` may be called.
        """
        session = cls(stack, server_ip, server_name,
                      stack.allocate_port(), server_port)
        owd = stack.latency.one_way_ns(server_ip)

        syn = TcpSegment(session.client_port, server_port,
                         session.client_seq, 0, FLAG_SYN, mss_option=MSS)
        ts = stack.emit_outbound_tcp(at, server_ip, syn)
        session.client_seq += 1

        synack = TcpSegment(server_port, session.client_port,
                            session.server_seq, session.client_seq,
                            FLAG_SYN | FLAG_ACK, mss_option=MSS)
        ts = stack.emit_inbound_tcp(ts + 2 * owd + PROCESSING_NS,
                                    server_ip, synack)
        session.server_seq += 1

        ack = TcpSegment(session.client_port, server_port,
                         session.client_seq, session.server_seq, FLAG_ACK)
        ts = stack.emit_outbound_tcp(ts + PROCESSING_NS, server_ip, ack)

        client_random = stack.rng.token_bytes(
            f"tls:{server_name}:crandom", 32)
        server_filler = stack.rng.token_bytes(
            f"tls:{server_name}:sfiller", 200 + certificate_size)
        flight1, flight2, flight3 = handshake_flights(
            server_name, client_random, server_filler, certificate_size)

        ts = session._send_records(ts + PROCESSING_NS, flight1)
        ts = session._recv_records(ts + 2 * owd + PROCESSING_NS, flight2)
        ts = session._send_records(ts + PROCESSING_NS, flight3)
        # Server CCS + Finished
        finish = [TlsRecord(20, b"\x01"),
                  TlsRecord(22, stack.rng.token_bytes(
                      f"tls:{server_name}:sfin", 40))]
        ts = session._recv_records(ts + 2 * owd + PROCESSING_NS, finish)
        session.established_at = ts
        return session

    # -- record transport ---------------------------------------------------

    def _segments_for(self, records: List[TlsRecord]) -> List[bytes]:
        """Concatenate record bytes and cut into MSS-sized chunks."""
        blob = b"".join(record.encode() for record in records)
        return [blob[i:i + MSS] for i in range(0, len(blob), MSS)] or [b""]

    def _send_records(self, at: int, records: List[TlsRecord]) -> int:
        """Client -> server records, with server ACKs. Returns last ts.

        Segments leave the sender back-to-back (serialization-spaced), so
        the whole flight lands inside a millisecond or two at the tap —
        the spikes Figure 4 bins at per-ms resolution.  Only the send
        clock advances per segment; the Wi-Fi hop applies per packet, not
        cumulatively.
        """
        chunks = self._segments_for(records)
        owd = self.stack.latency.one_way_ns(self.server_ip)
        send_ts = at
        last_captured = at
        for index, chunk in enumerate(chunks):
            flags = FLAG_ACK | (FLAG_PSH if index == len(chunks) - 1 else 0)
            segment = TcpSegment(self.client_port, self.server_port,
                                 self.client_seq, self.server_seq,
                                 flags, payload=chunk)
            last_captured = self.stack.emit_outbound_tcp(
                send_ts, self.server_ip, segment)
            self.client_seq = (self.client_seq + len(chunk)) & 0xFFFFFFFF
            self.bytes_sent += len(chunk)
            send_ts += self.stack.latency.serialization_ns(len(chunk))
            # Delayed ACK: every second segment and the final one.
            if index % 2 == 1 or index == len(chunks) - 1:
                ack = TcpSegment(self.server_port, self.client_port,
                                 self.server_seq, self.client_seq, FLAG_ACK)
                last_captured = max(last_captured, self.stack.emit_inbound_tcp(
                    last_captured + 2 * owd, self.server_ip, ack))
        return last_captured

    def _recv_records(self, at: int, records: List[TlsRecord]) -> int:
        """Server -> client records, with client ACKs. Returns last ts."""
        chunks = self._segments_for(records)
        send_ts = at
        last_captured = at
        for index, chunk in enumerate(chunks):
            flags = FLAG_ACK | (FLAG_PSH if index == len(chunks) - 1 else 0)
            segment = TcpSegment(self.server_port, self.client_port,
                                 self.server_seq, self.client_seq,
                                 flags, payload=chunk)
            last_captured = self.stack.emit_inbound_tcp(
                send_ts, self.server_ip, segment)
            self.server_seq = (self.server_seq + len(chunk)) & 0xFFFFFFFF
            self.bytes_received += len(chunk)
            send_ts = max(send_ts + self.stack.latency.serialization_ns(
                len(chunk)), last_captured)
            if index % 2 == 1 or index == len(chunks) - 1:
                ack = TcpSegment(self.client_port, self.server_port,
                                 self.client_seq, self.server_seq, FLAG_ACK)
                last_captured = max(last_captured, self.stack.emit_outbound_tcp(
                    send_ts, self.server_ip, ack))
        return last_captured

    # -- application operations ---------------------------------------------

    def exchange(self, at: int, request_len: int,
                 response_len: int) -> int:
        """Application request/response over the session; returns last ts."""
        self._ensure_open()
        owd = self.stack.latency.one_way_ns(self.server_ip)
        label = f"tls:{self.server_name}:app"
        n_req_records = max(1, -(-request_len // 16368))
        request_filler = self.stack.rng.token_bytes(
            label, request_len + n_req_records * AEAD_OVERHEAD)
        ts = self._send_records(at, application_records(request_len,
                                                        request_filler))
        if response_len > 0:
            n_resp_records = max(1, -(-response_len // 16368))
            response_filler = self.stack.rng.token_bytes(
                label, response_len + n_resp_records * AEAD_OVERHEAD)
            ts = self._recv_records(
                ts + 2 * owd + PROCESSING_NS,
                application_records(response_len, response_filler))
        return ts

    def keepalive(self, at: int) -> int:
        """Small heartbeat record both ways; returns last capture ts."""
        return self.exchange(at, 32, 32)

    def tcp_keepalive(self, at: int) -> int:
        """RFC 1122 keep-alive probe: an empty ACK and its ACK reply."""
        self._ensure_open()
        owd = self.stack.latency.one_way_ns(self.server_ip)
        probe = TcpSegment(self.client_port, self.server_port,
                           (self.client_seq - 1) & 0xFFFFFFFF,
                           self.server_seq, FLAG_ACK)
        ts = self.stack.emit_outbound_tcp(at, self.server_ip, probe)
        reply = TcpSegment(self.server_port, self.client_port,
                           self.server_seq, self.client_seq, FLAG_ACK)
        return self.stack.emit_inbound_tcp(ts + 2 * owd, self.server_ip,
                                           reply)

    def close(self, at: int) -> int:
        """FIN/ACK teardown in both directions; returns last ts."""
        self._ensure_open()
        owd = self.stack.latency.one_way_ns(self.server_ip)
        fin = TcpSegment(self.client_port, self.server_port,
                         self.client_seq, self.server_seq,
                         FLAG_FIN | FLAG_ACK)
        ts = self.stack.emit_outbound_tcp(at, self.server_ip, fin)
        self.client_seq += 1
        finack = TcpSegment(self.server_port, self.client_port,
                            self.server_seq, self.client_seq,
                            FLAG_FIN | FLAG_ACK)
        ts = self.stack.emit_inbound_tcp(ts + 2 * owd + PROCESSING_NS,
                                         self.server_ip, finack)
        self.server_seq += 1
        last_ack = TcpSegment(self.client_port, self.server_port,
                              self.client_seq, self.server_seq, FLAG_ACK)
        ts = self.stack.emit_outbound_tcp(ts + PROCESSING_NS,
                                          self.server_ip, last_ack)
        self.closed = True
        return ts

    def _ensure_open(self) -> None:
        if self.established_at is None:
            raise RuntimeError("TLS session not established")
        if self.closed:
            raise RuntimeError("TLS session already closed")

    def __repr__(self) -> str:
        state = "closed" if self.closed else (
            "open" if self.established_at is not None else "connecting")
        return (f"TlsSession({self.server_name!r} @ {self.server_ip}, "
                f"{state}, sent={self.bytes_sent}B, "
                f"recv={self.bytes_received}B)")
