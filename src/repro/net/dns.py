"""DNS wire format (RFC 1035): queries and responses with A, PTR and CNAME
records, including message-compression-free name encoding (legal, simpler,
and what several embedded stacks emit).

The paper's methodology leans on DNS: "the majority of DNS requests are
typically sent within the first few seconds after device activation", and the
analysis maps contacted IPs back to domain names from captured DNS answers.
This codec makes that mapping work over real bytes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .addresses import Ipv4Address

TYPE_A = 1
TYPE_CNAME = 5
TYPE_PTR = 12
CLASS_IN = 1

FLAG_QR_RESPONSE = 0x8000
FLAG_RD = 0x0100
FLAG_RA = 0x0080
RCODE_NOERROR = 0
RCODE_NXDOMAIN = 3


def encode_name(name: str) -> bytes:
    """Encode a dotted name as DNS labels."""
    if name.endswith("."):
        name = name[:-1]
    out = bytearray()
    if name:
        for label in name.split("."):
            raw = label.encode("ascii")
            if not 0 < len(raw) < 64:
                raise ValueError(f"bad DNS label: {label!r}")
            out.append(len(raw))
            out += raw
    out.append(0)
    return bytes(out)


def decode_name(raw: bytes, offset: int) -> Tuple[str, int]:
    """Decode a name at ``offset``; returns (name, next_offset).

    Handles compression pointers so we can also parse third-party captures.
    """
    labels: List[str] = []
    jumps = 0
    next_offset: Optional[int] = None
    while True:
        if offset >= len(raw):
            raise ValueError("truncated DNS name")
        length = raw[offset]
        if length & 0xC0 == 0xC0:  # compression pointer
            if offset + 1 >= len(raw):
                raise ValueError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | raw[offset + 1]
            if next_offset is None:
                next_offset = offset + 2
            offset = pointer
            jumps += 1
            if jumps > 32:
                raise ValueError("DNS compression loop")
            continue
        offset += 1
        if length == 0:
            break
        labels.append(raw[offset:offset + length].decode("ascii"))
        offset += length
    return ".".join(labels), (next_offset if next_offset is not None
                              else offset)


class DnsQuestion:
    """One question entry."""

    __slots__ = ("name", "qtype")

    def __init__(self, name: str, qtype: int = TYPE_A) -> None:
        self.name = name.lower()
        self.qtype = qtype

    def encode(self) -> bytes:
        return (encode_name(self.name)
                + self.qtype.to_bytes(2, "big")
                + CLASS_IN.to_bytes(2, "big"))

    def __repr__(self) -> str:
        return f"DnsQuestion({self.name!r}, type={self.qtype})"


class DnsRecord:
    """One resource record (answer/authority/additional)."""

    __slots__ = ("name", "rtype", "ttl", "data")

    def __init__(self, name: str, rtype: int, ttl: int, data: bytes) -> None:
        self.name = name.lower()
        self.rtype = rtype
        self.ttl = ttl
        self.data = data

    @classmethod
    def a(cls, name: str, address: Ipv4Address, ttl: int = 300) -> "DnsRecord":
        return cls(name, TYPE_A, ttl, address.to_bytes())

    @classmethod
    def cname(cls, name: str, target: str, ttl: int = 300) -> "DnsRecord":
        return cls(name, TYPE_CNAME, ttl, encode_name(target))

    @classmethod
    def ptr(cls, name: str, target: str, ttl: int = 300) -> "DnsRecord":
        return cls(name, TYPE_PTR, ttl, encode_name(target))

    @property
    def address(self) -> Ipv4Address:
        if self.rtype != TYPE_A:
            raise ValueError("not an A record")
        return Ipv4Address.from_bytes(self.data)

    @property
    def target_name(self) -> str:
        if self.rtype not in (TYPE_CNAME, TYPE_PTR):
            raise ValueError("record has no target name")
        name, __ = decode_name(self.data, 0)
        return name

    def encode(self) -> bytes:
        return (encode_name(self.name)
                + self.rtype.to_bytes(2, "big")
                + CLASS_IN.to_bytes(2, "big")
                + self.ttl.to_bytes(4, "big")
                + len(self.data).to_bytes(2, "big")
                + self.data)

    def __repr__(self) -> str:
        return f"DnsRecord({self.name!r}, type={self.rtype}, ttl={self.ttl})"


class DnsMessage:
    """A complete DNS message."""

    __slots__ = ("txid", "flags", "questions", "answers")

    def __init__(self, txid: int, flags: int,
                 questions: List[DnsQuestion],
                 answers: Optional[List[DnsRecord]] = None) -> None:
        self.txid = txid & 0xFFFF
        self.flags = flags
        self.questions = questions
        self.answers = answers or []

    @classmethod
    def query(cls, txid: int, name: str, qtype: int = TYPE_A) -> "DnsMessage":
        return cls(txid, FLAG_RD, [DnsQuestion(name, qtype)])

    @classmethod
    def response(cls, query: "DnsMessage", answers: List[DnsRecord],
                 rcode: int = RCODE_NOERROR) -> "DnsMessage":
        flags = FLAG_QR_RESPONSE | FLAG_RD | FLAG_RA | (rcode & 0x0F)
        return cls(query.txid, flags, list(query.questions), answers)

    @property
    def is_response(self) -> bool:
        return bool(self.flags & FLAG_QR_RESPONSE)

    @property
    def rcode(self) -> int:
        return self.flags & 0x0F

    def encode(self) -> bytes:
        out = bytearray()
        out += self.txid.to_bytes(2, "big")
        out += self.flags.to_bytes(2, "big")
        out += len(self.questions).to_bytes(2, "big")
        out += len(self.answers).to_bytes(2, "big")
        out += (0).to_bytes(2, "big")  # authority
        out += (0).to_bytes(2, "big")  # additional
        for question in self.questions:
            out += question.encode()
        for answer in self.answers:
            out += answer.encode()
        return bytes(out)

    @classmethod
    def decode(cls, raw: bytes) -> "DnsMessage":
        if len(raw) < 12:
            raise ValueError(f"DNS message too short: {len(raw)} bytes")
        txid = int.from_bytes(raw[0:2], "big")
        flags = int.from_bytes(raw[2:4], "big")
        qdcount = int.from_bytes(raw[4:6], "big")
        ancount = int.from_bytes(raw[6:8], "big")
        offset = 12
        questions: List[DnsQuestion] = []
        for __ in range(qdcount):
            name, offset = decode_name(raw, offset)
            if offset + 4 > len(raw):
                raise ValueError("truncated DNS question")
            qtype = int.from_bytes(raw[offset:offset + 2], "big")
            offset += 4
            questions.append(DnsQuestion(name, qtype))
        answers: List[DnsRecord] = []
        for __ in range(ancount):
            name, offset = decode_name(raw, offset)
            if offset + 10 > len(raw):
                raise ValueError("truncated DNS record header")
            rtype = int.from_bytes(raw[offset:offset + 2], "big")
            ttl = int.from_bytes(raw[offset + 4:offset + 8], "big")
            rdlength = int.from_bytes(raw[offset + 8:offset + 10], "big")
            offset += 10
            if offset + rdlength > len(raw):
                raise ValueError("truncated DNS record data")
            answers.append(
                DnsRecord(name, rtype, ttl, raw[offset:offset + rdlength]))
            offset += rdlength
        return cls(txid, flags, questions, answers)

    def __repr__(self) -> str:
        kind = "response" if self.is_response else "query"
        names = ",".join(q.name for q in self.questions)
        return (f"DnsMessage({kind}, txid={self.txid:#06x}, q=[{names}], "
                f"answers={len(self.answers)})")
