"""RFC 1071 internet checksum, used by the IPv4/TCP/UDP codecs."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement sum of 16-bit words, per RFC 1071."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src: bytes, dst: bytes, protocol: int,
                  length: int) -> bytes:
    """IPv4 pseudo header used in TCP/UDP checksum computation."""
    return (src + dst
            + bytes([0, protocol])
            + length.to_bytes(2, "big"))


def verify_checksum(data: bytes) -> bool:
    """True when a buffer containing its own checksum sums to zero."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
