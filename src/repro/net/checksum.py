"""RFC 1071 internet checksum, used by the IPv4/TCP/UDP codecs.

The one's-complement sum is the busiest few lines in the repo — every
synthesized and every verified packet passes through it — so it is
computed arithmetically rather than with a per-byte Python loop:
``2**16 ≡ 1 (mod 0xFFFF)``, so the end-around-carry sum of a buffer's
big-endian 16-bit words equals the whole buffer taken as one big-endian
integer modulo 0xFFFF.  ``int.from_bytes`` runs in C, making the sum two
interpreter operations regardless of packet size.

The only subtlety is the modulus' double zero: a nonzero buffer whose
word sum is a multiple of 0xFFFF has end-around-carry sum 0xFFFF
("negative zero"), while the all-zero buffer genuinely sums to 0.
``ones_complement_sum`` resolves the collapse exactly as the carry loop
would, so it is bit-for-bit equivalent to the reference implementation
(asserted against it in ``tests/test_net_fastpath.py``).
"""

from __future__ import annotations


def word_sum(data: bytes) -> int:
    """Big-endian 16-bit word sum modulo 0xFFFF (odd buffers are
    zero-padded).  0 and 0xFFFF collapse; callers that need the true
    one's-complement representative use :func:`ones_complement_sum`."""
    if len(data) % 2:
        data = bytes(data) + b"\x00"
    return int.from_bytes(data, "big") % 0xFFFF


def ones_complement_sum(data: bytes) -> int:
    """End-around-carry sum of big-endian 16-bit words, per RFC 1071.

    Shared by :func:`internet_checksum` and :func:`verify_checksum`
    (which historically each carried their own summing loop).
    """
    total = word_sum(data)
    if total == 0 and any(data):
        return 0xFFFF
    return total


def internet_checksum(data: bytes) -> int:
    """One's-complement of the one's-complement sum, per RFC 1071."""
    return (~ones_complement_sum(data)) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when a buffer containing its own checksum sums to zero."""
    return ones_complement_sum(data) == 0xFFFF


def incremental_update(checksum: int, old: bytes, new: bytes) -> int:
    """Recompute a checksum after replacing ``old`` bytes with ``new``,
    per RFC 1624 (eqn. 3) — without touching the unchanged bytes.

    ``old``/``new`` are the before/after images of the changed fields
    (16-bit aligned within the checksummed buffer).  The buffer is
    assumed nonzero after the update — true for any real IP/TCP/UDP
    header — which is what lets the mod-0xFFFF zero collapse resolve to
    0xFFFF, keeping the result bit-identical to a full recompute.
    """
    total = ((~checksum & 0xFFFF) + word_sum(new) - word_sum(old)) % 0xFFFF
    if total == 0:
        total = 0xFFFF
    return (~total) & 0xFFFF


def pseudo_header(src: bytes, dst: bytes, protocol: int,
                  length: int) -> bytes:
    """IPv4 pseudo header used in TCP/UDP checksum computation."""
    return (src + dst
            + bytes([0, protocol])
            + length.to_bytes(2, "big"))
