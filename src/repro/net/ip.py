"""IPv4 packet codec (RFC 791, no options, no fragmentation support needed
for the testbed traffic, but the header fields are encoded/verified
faithfully so the pcap round-trip is byte-exact)."""

from __future__ import annotations

from .addresses import Ipv4Address
from .checksum import internet_checksum

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

HEADER_LEN = 20


class Ipv4Packet:
    """IPv4 header + payload."""

    __slots__ = ("src", "dst", "protocol", "ttl", "identification",
                 "dscp", "flags_df", "payload")

    def __init__(self, src: Ipv4Address, dst: Ipv4Address, protocol: int,
                 payload: bytes, ttl: int = 64, identification: int = 0,
                 dscp: int = 0, flags_df: bool = True) -> None:
        if not 0 <= protocol <= 255:
            raise ValueError(f"protocol out of range: {protocol}")
        if not 0 < ttl <= 255:
            raise ValueError(f"ttl out of range: {ttl}")
        if not 0 <= identification <= 0xFFFF:
            raise ValueError(f"identification out of range: {identification}")
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.ttl = ttl
        self.identification = identification
        self.dscp = dscp
        self.flags_df = flags_df
        self.payload = payload

    @property
    def total_length(self) -> int:
        return HEADER_LEN + len(self.payload)

    def encode(self) -> bytes:
        if self.total_length > 0xFFFF:
            raise ValueError(f"IPv4 packet too large: {self.total_length}")
        version_ihl = (4 << 4) | 5
        flags_fragment = (0x4000 if self.flags_df else 0)
        header = bytearray()
        header.append(version_ihl)
        header.append(self.dscp << 2)
        header += self.total_length.to_bytes(2, "big")
        header += self.identification.to_bytes(2, "big")
        header += flags_fragment.to_bytes(2, "big")
        header.append(self.ttl)
        header.append(self.protocol)
        header += b"\x00\x00"  # checksum placeholder
        header += self.src.to_bytes()
        header += self.dst.to_bytes()
        checksum = internet_checksum(bytes(header))
        header[10:12] = checksum.to_bytes(2, "big")
        return bytes(header) + self.payload

    @classmethod
    def decode(cls, raw: bytes, verify: bool = True) -> "Ipv4Packet":
        if len(raw) < HEADER_LEN:
            raise ValueError(f"IPv4 packet too short: {len(raw)} bytes")
        version = raw[0] >> 4
        if version != 4:
            raise ValueError(f"not IPv4: version={version}")
        ihl = (raw[0] & 0x0F) * 4
        if ihl < HEADER_LEN or len(raw) < ihl:
            raise ValueError(f"bad IHL: {ihl}")
        total_length = int.from_bytes(raw[2:4], "big")
        if total_length > len(raw):
            raise ValueError(
                f"truncated packet: header says {total_length}, "
                f"buffer has {len(raw)}")
        if verify and internet_checksum(raw[:ihl]) != 0:
            raise ValueError("IPv4 header checksum mismatch")
        flags_fragment = int.from_bytes(raw[6:8], "big")
        return cls(
            src=Ipv4Address.from_bytes(raw[12:16]),
            dst=Ipv4Address.from_bytes(raw[16:20]),
            protocol=raw[9],
            payload=raw[ihl:total_length],
            ttl=raw[8],
            identification=int.from_bytes(raw[4:6], "big"),
            dscp=raw[1] >> 2,
            flags_df=bool(flags_fragment & 0x4000),
        )

    def __repr__(self) -> str:
        return (f"Ipv4Packet({self.src} -> {self.dst}, proto={self.protocol},"
                f" ttl={self.ttl}, {len(self.payload)}B)")
