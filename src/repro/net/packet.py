"""Captured-packet model and the two decode tiers.

A :class:`CapturedPacket` is what the access point's tap records: a
timestamp plus raw Ethernet bytes.  Two views re-parse those bytes:

* :func:`decode_packet` — the full tier: constructs
  Ethernet/IP/TCP/UDP/DNS objects, validating as it goes.
* :func:`lazy_decode` — the fast tier: precompiled fixed-offset header
  slicing that yields the flow key (addresses, ports, protocol) and
  lengths without building any per-layer object.  Full decode is
  deferred to the packets that need it (DNS payloads parse on first
  ``.dns`` access; ``.ip``/``.tcp``/``.udp``/``.eth`` delegate to a
  memoized full decode).

The analysis pipeline only ever sees decoded views of raw captures,
mirroring the paper's capture-then-analyze workflow; the lazy tier is
what lets it decode population-scale captures once, cheaply.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from ..obs.metrics import get_registry
from .addresses import Ipv4Address, MacAddress
from .dns import DnsMessage
from .ethernet import ETHERTYPE_IPV4, EthernetFrame
from .ip import PROTO_TCP, PROTO_UDP, Ipv4Packet
from .tcp import TcpSegment
from .udp import UdpDatagram

DNS_PORT = 53


class CapturedPacket:
    """One packet on the wire: capture timestamp (ns) + raw frame bytes."""

    __slots__ = ("timestamp", "data")

    def __init__(self, timestamp: int, data: bytes) -> None:
        if timestamp < 0:
            raise ValueError("negative capture timestamp")
        self.timestamp = timestamp
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"CapturedPacket(t={self.timestamp}, {len(self.data)}B)"


class DecodedPacket:
    """Parsed view of a captured packet (as deep as the bytes allow)."""

    __slots__ = ("timestamp", "length", "eth", "ip", "tcp", "udp", "dns")

    def __init__(self, timestamp: int, length: int,
                 eth: EthernetFrame,
                 ip: Optional[Ipv4Packet] = None,
                 tcp: Optional[TcpSegment] = None,
                 udp: Optional[UdpDatagram] = None,
                 dns: Optional[DnsMessage] = None) -> None:
        self.timestamp = timestamp
        self.length = length
        self.eth = eth
        self.ip = ip
        self.tcp = tcp
        self.udp = udp
        self.dns = dns

    @property
    def src_ip(self) -> Optional[Ipv4Address]:
        return self.ip.src if self.ip else None

    @property
    def dst_ip(self) -> Optional[Ipv4Address]:
        return self.ip.dst if self.ip else None

    @property
    def src_port(self) -> Optional[int]:
        if self.tcp:
            return self.tcp.src_port
        if self.udp:
            return self.udp.src_port
        return None

    @property
    def dst_port(self) -> Optional[int]:
        if self.tcp:
            return self.tcp.dst_port
        if self.udp:
            return self.udp.dst_port
        return None

    @property
    def flow_proto(self) -> Optional[str]:
        """Flow-table protocol discriminator (None for non-IP)."""
        if self.tcp:
            return "tcp"
        if self.udp:
            return "udp"
        return "ip" if self.ip else None

    @property
    def transport_payload(self) -> bytes:
        if self.tcp:
            return self.tcp.payload
        if self.udp:
            return self.udp.payload
        return b""

    def __repr__(self) -> str:
        proto = "tcp" if self.tcp else ("udp" if self.udp else "eth")
        return (f"DecodedPacket(t={self.timestamp}, {proto}, "
                f"{self.src_ip}:{self.src_port} -> "
                f"{self.dst_ip}:{self.dst_port}, {self.length}B)")


def decode_packet(packet: CapturedPacket,
                  verify_checksums: bool = False) -> DecodedPacket:
    """Parse a captured packet as deep as its bytes allow.

    DNS parse failures are tolerated (the payload may be a non-DNS UDP
    protocol on port 53 in hostile captures); lower-layer failures raise.
    """
    data = packet.data
    if type(data) is not bytes:
        # Zero-copy loads hand us buffer views; the object layers slice
        # and ``.decode()`` freely, so materialize real bytes once here.
        data = bytes(data)
    eth = EthernetFrame.decode(data)
    decoded = DecodedPacket(packet.timestamp, len(data), eth)
    if eth.ethertype != ETHERTYPE_IPV4:
        return decoded
    ip = Ipv4Packet.decode(eth.payload, verify=verify_checksums)
    decoded.ip = ip
    if ip.protocol == PROTO_TCP:
        decoded.tcp = TcpSegment.decode(ip.payload)
    elif ip.protocol == PROTO_UDP:
        udp = UdpDatagram.decode(ip.payload)
        decoded.udp = udp
        if DNS_PORT in (udp.src_port, udp.dst_port):
            try:
                decoded.dns = DnsMessage.decode(udp.payload)
            except ValueError:
                decoded.dns = None
    return decoded


_PROTO_NAMES = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}

# Fixed-offset header fields for the lazy tier, relative to frame start:
# Ethernet ethertype, then the IPv4 fields the flow key needs, then the
# transport ports (TCP and UDP both lead with source/destination port).
_IP_FIXED = struct.Struct("!HHxxBBxx4s4s")  # total_len, id.. from offset 16
_PORTS = struct.Struct("!HH")

_MISSING = object()


class LazyPacket:
    """Flow-level view of a captured packet without per-layer objects.

    Parses only the fixed-offset header fields (ethertype, IPv4
    addresses/protocol, transport ports) at construction; everything
    deeper is deferred.  ``.dns`` parses the DNS payload in place for
    UDP port-53 packets, and the object-layer attributes (``ip``,
    ``tcp``, ``udp``, ``eth``) fall back to a memoized
    :func:`decode_packet`, so a lazy capture is drop-in compatible with
    a fully decoded one — consumers just stay fast when they only touch
    the flow key.  Keeps the full tier's failure surface: a frame that
    claims IPv4 but is malformed or truncated (e.g. snaplen-clipped
    records) raises ``ValueError`` exactly like ``Ipv4Packet.decode``,
    rather than silently vanishing from the flow analysis.
    """

    __slots__ = ("timestamp", "data", "length", "src_ip", "dst_ip",
                 "src_port", "dst_port", "proto", "_ihl", "_dns", "_full")

    def __init__(self, timestamp: int, data: bytes,
                 intern: Optional[Dict[bytes, Ipv4Address]] = None) -> None:
        self.timestamp = timestamp
        self.data = data
        self.length = len(data)
        self.src_ip: Optional[Ipv4Address] = None
        self.dst_ip: Optional[Ipv4Address] = None
        self.src_port: Optional[int] = None
        self.dst_port: Optional[int] = None
        self.proto: Optional[int] = None
        self._ihl = 0
        self._dns = _MISSING
        self._full: Optional[DecodedPacket] = None
        if len(data) < 14:
            raise ValueError(f"frame too short: {len(data)} bytes")
        if data[12:14] != b"\x08\x00":
            return
        # The frame claims IPv4: validate like the full tier so bad
        # frames (including snaplen-truncated records) fail loudly
        # instead of silently dropping out of the analysis.
        if len(data) < 34:
            raise ValueError(f"IPv4 packet too short: {len(data) - 14} "
                             f"bytes")
        if data[14] & 0xF0 != 0x40:
            raise ValueError(f"not IPv4: version={data[14] >> 4}")
        ihl = (data[14] & 0x0F) * 4
        if ihl < 20 or len(data) - 14 < ihl:
            raise ValueError(f"bad IHL: {ihl}")
        (total_length, __, __, proto,
         src_raw, dst_raw) = _IP_FIXED.unpack_from(data, 16)
        if 14 + total_length > len(data):
            raise ValueError(
                f"truncated packet: header says {total_length}, "
                f"buffer has {len(data) - 14}")
        self._ihl = ihl
        self.proto = proto
        if intern is not None:
            src = intern.get(src_raw)
            if src is None:
                src = intern[src_raw] = Ipv4Address.from_bytes(src_raw)
            dst = intern.get(dst_raw)
            if dst is None:
                dst = intern[dst_raw] = Ipv4Address.from_bytes(dst_raw)
        else:
            src = Ipv4Address.from_bytes(src_raw)
            dst = Ipv4Address.from_bytes(dst_raw)
        self.src_ip = src
        self.dst_ip = dst
        if proto in _PROTO_NAMES and len(data) >= 14 + ihl + 4:
            self.src_port, self.dst_port = _PORTS.unpack_from(data, 14 + ihl)

    @property
    def flow_proto(self) -> Optional[str]:
        """Flow-table protocol discriminator (None for non-IP)."""
        if self.src_ip is None:
            return None
        return _PROTO_NAMES.get(self.proto, "ip")

    @property
    def full(self) -> DecodedPacket:
        """The fully decoded object view (memoized)."""
        if self._full is None:
            get_registry().inc("pipeline.full_decodes")
            self._full = decode_packet(
                CapturedPacket(self.timestamp, self.data))
        return self._full

    @property
    def eth(self) -> EthernetFrame:
        return self.full.eth

    @property
    def ip(self) -> Optional[Ipv4Packet]:
        return self.full.ip

    @property
    def tcp(self) -> Optional[TcpSegment]:
        return self.full.tcp

    @property
    def udp(self) -> Optional[UdpDatagram]:
        return self.full.udp

    @property
    def transport_payload(self) -> bytes:
        if self.proto == PROTO_TCP:
            transport = 14 + self._ihl
            offset = transport + ((self.data[transport + 12] >> 4) * 4)
            total = int.from_bytes(self.data[16:18], "big")
            return self.data[offset:14 + total]
        if self.proto == PROTO_UDP:
            transport = 14 + self._ihl
            length = int.from_bytes(
                self.data[transport + 4:transport + 6], "big")
            return self.data[transport + 8:transport + length]
        return b""

    @property
    def dns(self) -> Optional[DnsMessage]:
        """Parse DNS in place for UDP/53 packets, like the full tier."""
        if self._dns is _MISSING:
            self._dns = None
            if self.proto == PROTO_UDP \
                    and DNS_PORT in (self.src_port, self.dst_port):
                payload = self.transport_payload
                if type(payload) is not bytes:
                    payload = bytes(payload)
                try:
                    self._dns = DnsMessage.decode(payload)
                except ValueError:
                    self._dns = None
        return self._dns

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (f"LazyPacket(t={self.timestamp}, "
                f"{self.flow_proto or 'eth'}, "
                f"{self.src_ip}:{self.src_port} -> "
                f"{self.dst_ip}:{self.dst_port}, {self.length}B)")


def lazy_decode(packet: CapturedPacket) -> LazyPacket:
    """Fast-tier view of one captured packet."""
    return LazyPacket(packet.timestamp, packet.data)


def lazy_decode_all(packets: List[CapturedPacket]) -> List[LazyPacket]:
    """Fast-tier views of a capture, in order.

    Shares one address intern table across the capture: the handful of
    distinct endpoints repeat across thousands of packets, so the flow
    key reuses one ``Ipv4Address`` per endpoint instead of allocating
    two per packet.
    """
    intern: Dict[bytes, Ipv4Address] = {}
    return [LazyPacket(p.timestamp, p.data, intern) for p in packets]


def build_udp_frame(src_mac: MacAddress, dst_mac: MacAddress,
                    src_ip: Ipv4Address, dst_ip: Ipv4Address,
                    src_port: int, dst_port: int, payload: bytes,
                    identification: int = 0, ttl: int = 64) -> bytes:
    """Compose UDP payload down to Ethernet bytes."""
    udp = UdpDatagram(src_port, dst_port, payload)
    ip = Ipv4Packet(src_ip, dst_ip, PROTO_UDP,
                    udp.encode(src_ip, dst_ip),
                    ttl=ttl, identification=identification)
    return EthernetFrame(dst_mac, src_mac, ETHERTYPE_IPV4, ip.encode()) \
        .encode()


def build_tcp_frame(src_mac: MacAddress, dst_mac: MacAddress,
                    src_ip: Ipv4Address, dst_ip: Ipv4Address,
                    segment: TcpSegment,
                    identification: int = 0, ttl: int = 64) -> bytes:
    """Compose a TCP segment down to Ethernet bytes."""
    ip = Ipv4Packet(src_ip, dst_ip, PROTO_TCP,
                    segment.encode(src_ip, dst_ip),
                    ttl=ttl, identification=identification)
    return EthernetFrame(dst_mac, src_mac, ETHERTYPE_IPV4, ip.encode()) \
        .encode()


def decode_all(packets: List[CapturedPacket]) -> List[DecodedPacket]:
    """Decode a capture in order."""
    return [decode_packet(p) for p in packets]
