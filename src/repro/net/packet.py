"""Captured-packet model and full-stack decode helpers.

A :class:`CapturedPacket` is what the access point's tap records: a
timestamp plus raw Ethernet bytes.  :func:`decode_packet` re-parses those
bytes into a :class:`DecodedPacket` view — the analysis pipeline only ever
sees decoded views of raw captures, mirroring the paper's
capture-then-analyze workflow.
"""

from __future__ import annotations

from typing import List, Optional

from .addresses import Ipv4Address, MacAddress
from .dns import DnsMessage
from .ethernet import ETHERTYPE_IPV4, EthernetFrame
from .ip import PROTO_TCP, PROTO_UDP, Ipv4Packet
from .tcp import TcpSegment
from .udp import UdpDatagram

DNS_PORT = 53


class CapturedPacket:
    """One packet on the wire: capture timestamp (ns) + raw frame bytes."""

    __slots__ = ("timestamp", "data")

    def __init__(self, timestamp: int, data: bytes) -> None:
        if timestamp < 0:
            raise ValueError("negative capture timestamp")
        self.timestamp = timestamp
        self.data = data

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"CapturedPacket(t={self.timestamp}, {len(self.data)}B)"


class DecodedPacket:
    """Parsed view of a captured packet (as deep as the bytes allow)."""

    __slots__ = ("timestamp", "length", "eth", "ip", "tcp", "udp", "dns")

    def __init__(self, timestamp: int, length: int,
                 eth: EthernetFrame,
                 ip: Optional[Ipv4Packet] = None,
                 tcp: Optional[TcpSegment] = None,
                 udp: Optional[UdpDatagram] = None,
                 dns: Optional[DnsMessage] = None) -> None:
        self.timestamp = timestamp
        self.length = length
        self.eth = eth
        self.ip = ip
        self.tcp = tcp
        self.udp = udp
        self.dns = dns

    @property
    def src_ip(self) -> Optional[Ipv4Address]:
        return self.ip.src if self.ip else None

    @property
    def dst_ip(self) -> Optional[Ipv4Address]:
        return self.ip.dst if self.ip else None

    @property
    def src_port(self) -> Optional[int]:
        if self.tcp:
            return self.tcp.src_port
        if self.udp:
            return self.udp.src_port
        return None

    @property
    def dst_port(self) -> Optional[int]:
        if self.tcp:
            return self.tcp.dst_port
        if self.udp:
            return self.udp.dst_port
        return None

    @property
    def transport_payload(self) -> bytes:
        if self.tcp:
            return self.tcp.payload
        if self.udp:
            return self.udp.payload
        return b""

    def __repr__(self) -> str:
        proto = "tcp" if self.tcp else ("udp" if self.udp else "eth")
        return (f"DecodedPacket(t={self.timestamp}, {proto}, "
                f"{self.src_ip}:{self.src_port} -> "
                f"{self.dst_ip}:{self.dst_port}, {self.length}B)")


def decode_packet(packet: CapturedPacket,
                  verify_checksums: bool = False) -> DecodedPacket:
    """Parse a captured packet as deep as its bytes allow.

    DNS parse failures are tolerated (the payload may be a non-DNS UDP
    protocol on port 53 in hostile captures); lower-layer failures raise.
    """
    eth = EthernetFrame.decode(packet.data)
    decoded = DecodedPacket(packet.timestamp, len(packet.data), eth)
    if eth.ethertype != ETHERTYPE_IPV4:
        return decoded
    ip = Ipv4Packet.decode(eth.payload, verify=verify_checksums)
    decoded.ip = ip
    if ip.protocol == PROTO_TCP:
        decoded.tcp = TcpSegment.decode(ip.payload)
    elif ip.protocol == PROTO_UDP:
        udp = UdpDatagram.decode(ip.payload)
        decoded.udp = udp
        if DNS_PORT in (udp.src_port, udp.dst_port):
            try:
                decoded.dns = DnsMessage.decode(udp.payload)
            except ValueError:
                decoded.dns = None
    return decoded


def build_udp_frame(src_mac: MacAddress, dst_mac: MacAddress,
                    src_ip: Ipv4Address, dst_ip: Ipv4Address,
                    src_port: int, dst_port: int, payload: bytes,
                    identification: int = 0, ttl: int = 64) -> bytes:
    """Compose UDP payload down to Ethernet bytes."""
    udp = UdpDatagram(src_port, dst_port, payload)
    ip = Ipv4Packet(src_ip, dst_ip, PROTO_UDP,
                    udp.encode(src_ip, dst_ip),
                    ttl=ttl, identification=identification)
    return EthernetFrame(dst_mac, src_mac, ETHERTYPE_IPV4, ip.encode()) \
        .encode()


def build_tcp_frame(src_mac: MacAddress, dst_mac: MacAddress,
                    src_ip: Ipv4Address, dst_ip: Ipv4Address,
                    segment: TcpSegment,
                    identification: int = 0, ttl: int = 64) -> bytes:
    """Compose a TCP segment down to Ethernet bytes."""
    ip = Ipv4Packet(src_ip, dst_ip, PROTO_TCP,
                    segment.encode(src_ip, dst_ip),
                    ttl=ttl, identification=identification)
    return EthernetFrame(dst_mac, src_mac, ETHERTYPE_IPV4, ip.encode()) \
        .encode()


def decode_all(packets: List[CapturedPacket]) -> List[DecodedPacket]:
    """Decode a capture in order."""
    return [decode_packet(p) for p in packets]
