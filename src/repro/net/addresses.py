"""MAC and IPv4 address types.

Small immutable value types used across the packet codecs, the DNS registry
and the geolocation substrate.  They parse from and render to the canonical
text forms and serialize to network byte order.
"""

from __future__ import annotations

import re
from typing import Iterator, Tuple

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:-]){5}[0-9a-fA-F]{2}$")


class MacAddress:
    """48-bit Ethernet hardware address."""

    __slots__ = ("_value",)

    def __init__(self, value: int) -> None:
        if not 0 <= value < (1 << 48):
            raise ValueError(f"MAC out of range: {value:#x}")
        self._value = value

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse ``aa:bb:cc:dd:ee:ff`` (or ``-`` separated)."""
        if not _MAC_RE.match(text):
            raise ValueError(f"invalid MAC address: {text!r}")
        clean = text.replace("-", ":")
        return cls(int(clean.replace(":", ""), 16))

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MacAddress":
        if len(raw) != 6:
            raise ValueError(f"MAC needs 6 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(6, "big")

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        return bool((self._value >> 40) & 0x01)

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ":".join(f"{b:02x}" for b in raw)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and other._value == self._value

    def __hash__(self) -> int:
        return hash(("mac", self._value))


BROADCAST_MAC = MacAddress((1 << 48) - 1)


class Ipv4Address:
    """32-bit IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: int) -> None:
        if not 0 <= value < (1 << 32):
            raise ValueError(f"IPv4 out of range: {value:#x}")
        self._value = value

    @classmethod
    def parse(cls, text: str) -> "Ipv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"invalid IPv4 address: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
                raise ValueError(f"invalid IPv4 octet in {text!r}")
            octet = int(part)
            if octet > 255:
                raise ValueError(f"IPv4 octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Ipv4Address":
        if len(raw) != 4:
            raise ValueError(f"IPv4 needs 4 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(4, "big")

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_private(self) -> bool:
        """RFC 1918 private ranges."""
        v = self._value
        return (
            (v >> 24) == 10
            or (v >> 20) == (172 << 4) | 1  # 172.16/12
            or (v >> 16) == (192 << 8) | 168
        )

    @property
    def reverse_pointer(self) -> str:
        """The in-addr.arpa name used for PTR lookups."""
        octets = self.to_bytes()
        return ".".join(str(b) for b in reversed(octets)) + ".in-addr.arpa"

    def __add__(self, offset: int) -> "Ipv4Address":
        return Ipv4Address(self._value + offset)

    def __str__(self) -> str:
        return ".".join(str(b) for b in self.to_bytes())

    def __repr__(self) -> str:
        return f"Ipv4Address('{self}')"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ipv4Address) and other._value == self._value

    def __lt__(self, other: "Ipv4Address") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(("ipv4", self._value))


class Ipv4Network:
    """CIDR block, e.g. ``Ipv4Network.parse("203.0.113.0/24")``."""

    __slots__ = ("network", "prefix")

    def __init__(self, network: Ipv4Address, prefix: int) -> None:
        if not 0 <= prefix <= 32:
            raise ValueError(f"invalid prefix length: {prefix}")
        mask = self._mask(prefix)
        if network.value & ~mask & 0xFFFFFFFF:
            raise ValueError(
                f"{network} has host bits set for /{prefix}")
        self.network = network
        self.prefix = prefix

    @staticmethod
    def _mask(prefix: int) -> int:
        return ((1 << prefix) - 1) << (32 - prefix) if prefix else 0

    @classmethod
    def parse(cls, text: str) -> "Ipv4Network":
        addr_text, __, prefix_text = text.partition("/")
        if not prefix_text:
            raise ValueError(f"missing prefix length: {text!r}")
        return cls(Ipv4Address.parse(addr_text), int(prefix_text))

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self.prefix)

    def __contains__(self, addr: Ipv4Address) -> bool:
        mask = self._mask(self.prefix)
        return (addr.value & mask) == self.network.value

    def host(self, index: int) -> Ipv4Address:
        """The ``index``-th address inside the block (0 = network address)."""
        if not 0 <= index < self.num_addresses:
            raise ValueError(
                f"host index {index} outside /{self.prefix} block")
        return Ipv4Address(self.network.value + index)

    def hosts(self) -> Iterator[Ipv4Address]:
        """Iterate usable host addresses (skips network/broadcast on /30-)."""
        if self.prefix >= 31:
            start, stop = 0, self.num_addresses
        else:
            start, stop = 1, self.num_addresses - 1
        for index in range(start, stop):
            yield Ipv4Address(self.network.value + index)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix}"

    def __repr__(self) -> str:
        return f"Ipv4Network('{self}')"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Ipv4Network)
                and other.network == self.network
                and other.prefix == self.prefix)

    def __hash__(self) -> int:
        return hash(("net4", self.network.value, self.prefix))


def mac_from_seed(seed: int, locally_administered: bool = True) -> MacAddress:
    """Derive a stable unicast MAC from an integer seed."""
    value = seed & ((1 << 48) - 1)
    value &= ~(1 << 40)  # clear multicast bit
    if locally_administered:
        value |= (1 << 41)
    return MacAddress(value)


def parse_endpoint(text: str) -> Tuple[Ipv4Address, int]:
    """Parse ``"192.0.2.1:443"`` into (address, port)."""
    host, sep, port = text.rpartition(":")
    if not sep:
        raise ValueError(f"missing port in endpoint: {text!r}")
    port_num = int(port)
    if not 0 < port_num < 65536:
        raise ValueError(f"port out of range: {port_num}")
    return Ipv4Address.parse(host), port_num
