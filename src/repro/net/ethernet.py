"""Ethernet II frame codec."""

from __future__ import annotations

from .addresses import MacAddress

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

HEADER_LEN = 14


class EthernetFrame:
    """An Ethernet II frame: dst, src, ethertype, payload."""

    __slots__ = ("dst", "src", "ethertype", "payload")

    def __init__(self, dst: MacAddress, src: MacAddress,
                 ethertype: int, payload: bytes) -> None:
        if not 0 <= ethertype <= 0xFFFF:
            raise ValueError(f"ethertype out of range: {ethertype:#x}")
        self.dst = dst
        self.src = src
        self.ethertype = ethertype
        self.payload = payload

    def encode(self) -> bytes:
        return (self.dst.to_bytes()
                + self.src.to_bytes()
                + self.ethertype.to_bytes(2, "big")
                + self.payload)

    @classmethod
    def decode(cls, raw: bytes) -> "EthernetFrame":
        if len(raw) < HEADER_LEN:
            raise ValueError(f"frame too short: {len(raw)} bytes")
        return cls(
            dst=MacAddress.from_bytes(raw[0:6]),
            src=MacAddress.from_bytes(raw[6:12]),
            ethertype=int.from_bytes(raw[12:14], "big"),
            payload=raw[14:],
        )

    def __len__(self) -> int:
        return HEADER_LEN + len(self.payload)

    def __repr__(self) -> str:
        return (f"EthernetFrame({self.src} -> {self.dst}, "
                f"type={self.ethertype:#06x}, {len(self.payload)}B)")
