"""Decode-tier selection shared by every capture consumer.

Three tiers decode the same capture bytes into the same answers:

* ``object`` — :func:`repro.net.packet.decode_packet` builds the full
  Ethernet/IP/TCP/UDP/DNS object layers per packet.  The reference
  implementation.
* ``lazy`` — :class:`repro.net.packet.LazyPacket` slices the flow key
  from fixed offsets and defers everything deeper (~10x).
* ``columnar`` — :mod:`repro.net.columnar` walks the pcap once into
  parallel ``array`` columns with zero per-packet objects (~50x), the
  default.

The process-wide default set here is what
:meth:`repro.analysis.pipeline.AuditPipeline.from_pcap_bytes` uses when
no explicit tier is passed; the CLI's ``--decode-tier`` flag writes it.
Every tier is pinned byte-identical to the others by the golden corpus
and the hypothesis equivalence suites, so switching tiers can only ever
change speed, never a result.
"""

from __future__ import annotations

DECODE_TIERS = ("object", "lazy", "columnar")

DEFAULT_DECODE_TIER = "columnar"

_tier = DEFAULT_DECODE_TIER


def decode_tier() -> str:
    """The process-wide default decode tier."""
    return _tier


def set_decode_tier(tier: str) -> str:
    """Set the process-wide default; returns the previous value."""
    global _tier
    if tier not in DECODE_TIERS:
        raise ValueError(
            f"unknown decode tier {tier!r} (choose from "
            f"{', '.join(DECODE_TIERS)})")
    previous = _tier
    _tier = tier
    return previous


def resolve_tier(tier=None) -> str:
    """An explicit tier if given (validated), else the process default."""
    if tier is None:
        return _tier
    if tier not in DECODE_TIERS:
        raise ValueError(
            f"unknown decode tier {tier!r} (choose from "
            f"{', '.join(DECODE_TIERS)})")
    return tier
