"""TCP segment codec (RFC 793 header, no options beyond MSS on SYN).

Only the wire format lives here; connection behaviour (handshake, ordering,
acking) is in :mod:`repro.net.stack`.
"""

from __future__ import annotations

from .addresses import Ipv4Address
from .checksum import internet_checksum, pseudo_header
from .ip import PROTO_TCP

HEADER_LEN = 20

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10


def flag_names(flags: int) -> str:
    """Human-readable flag string, e.g. ``"SYN|ACK"``."""
    names = []
    for bit, name in ((FLAG_SYN, "SYN"), (FLAG_ACK, "ACK"),
                      (FLAG_PSH, "PSH"), (FLAG_FIN, "FIN"),
                      (FLAG_RST, "RST")):
        if flags & bit:
            names.append(name)
    return "|".join(names) if names else "none"


class TcpSegment:
    """TCP header + payload."""

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window",
                 "payload", "mss_option")

    def __init__(self, src_port: int, dst_port: int, seq: int, ack: int,
                 flags: int, payload: bytes = b"", window: int = 0xFFFF,
                 mss_option: int = 0) -> None:
        for name, port in (("src_port", src_port), ("dst_port", dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags
        self.window = window
        self.payload = payload
        self.mss_option = mss_option

    @property
    def header_len(self) -> int:
        return HEADER_LEN + (4 if self.mss_option else 0)

    def _options(self) -> bytes:
        if not self.mss_option:
            return b""
        return bytes([2, 4]) + self.mss_option.to_bytes(2, "big")

    def encode(self, src_ip: Ipv4Address, dst_ip: Ipv4Address) -> bytes:
        options = self._options()
        data_offset = (HEADER_LEN + len(options)) // 4
        header = bytearray()
        header += self.src_port.to_bytes(2, "big")
        header += self.dst_port.to_bytes(2, "big")
        header += self.seq.to_bytes(4, "big")
        header += self.ack.to_bytes(4, "big")
        header.append(data_offset << 4)
        header.append(self.flags)
        header += self.window.to_bytes(2, "big")
        header += b"\x00\x00"  # checksum placeholder
        header += b"\x00\x00"  # urgent pointer
        header += options
        body = bytes(header) + self.payload
        pseudo = pseudo_header(src_ip.to_bytes(), dst_ip.to_bytes(),
                               PROTO_TCP, len(body))
        checksum = internet_checksum(pseudo + body)
        header[16:18] = checksum.to_bytes(2, "big")
        return bytes(header) + self.payload

    @classmethod
    def decode(cls, raw: bytes) -> "TcpSegment":
        if len(raw) < HEADER_LEN:
            raise ValueError(f"TCP segment too short: {len(raw)} bytes")
        data_offset = (raw[12] >> 4) * 4
        if data_offset < HEADER_LEN or data_offset > len(raw):
            raise ValueError(f"bad TCP data offset: {data_offset}")
        mss = 0
        options = raw[HEADER_LEN:data_offset]
        i = 0
        while i < len(options):
            kind = options[i]
            if kind == 0:  # end of options
                break
            if kind == 1:  # NOP
                i += 1
                continue
            if i + 1 >= len(options):
                break
            length = options[i + 1]
            if length < 2 or i + length > len(options):
                break
            if kind == 2 and length == 4:
                mss = int.from_bytes(options[i + 2:i + 4], "big")
            i += length
        return cls(
            src_port=int.from_bytes(raw[0:2], "big"),
            dst_port=int.from_bytes(raw[2:4], "big"),
            seq=int.from_bytes(raw[4:8], "big"),
            ack=int.from_bytes(raw[8:12], "big"),
            flags=raw[13],
            payload=raw[data_offset:],
            window=int.from_bytes(raw[14:16], "big"),
            mss_option=mss,
        )

    def __repr__(self) -> str:
        return (f"TcpSegment({self.src_port} -> {self.dst_port}, "
                f"[{flag_names(self.flags)}], seq={self.seq}, "
                f"ack={self.ack}, {len(self.payload)}B)")
