"""Five-tuple flow assembly and byte accounting.

The paper's Tables 2-5 count "kilobytes sent/received to/from ACR domains";
Figure 4/6 count packets per millisecond.  Flows are the unit both are
computed over.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .addresses import Ipv4Address
from .packet import DecodedPacket

FlowKey = Tuple[Ipv4Address, int, Ipv4Address, int, str]


def canonical_key(packet: DecodedPacket) -> Optional[FlowKey]:
    """Direction-independent flow key, lower endpoint first.

    Works on either decode tier — only the flat ``src_ip``/``dst_ip``/
    port/``flow_proto`` attributes are read, so a
    :class:`~repro.net.packet.LazyPacket` never has to build its object
    layers just to be keyed.
    """
    proto = packet.flow_proto
    if proto is None:
        return None
    if packet.src_port is None or packet.dst_port is None:
        a = (packet.src_ip, 0)
        b = (packet.dst_ip, 0)
    else:
        a = (packet.src_ip, packet.src_port)
        b = (packet.dst_ip, packet.dst_port)
    if (a[0].value, a[1]) <= (b[0].value, b[1]):
        return (a[0], a[1], b[0], b[1], proto)
    return (b[0], b[1], a[0], a[1], proto)


class Flow:
    """Accumulated statistics for one five-tuple."""

    __slots__ = ("key", "first_seen", "last_seen", "packets_ab",
                 "packets_ba", "bytes_ab", "bytes_ba", "timestamps",
                 "byte_sizes")

    def __init__(self, key: FlowKey, first_seen: int) -> None:
        self.key = key
        self.first_seen = first_seen
        self.last_seen = first_seen
        self.packets_ab = 0
        self.packets_ba = 0
        self.bytes_ab = 0
        self.bytes_ba = 0
        self.timestamps: List[int] = []
        self.byte_sizes: List[int] = []

    @property
    def endpoint_a(self) -> Tuple[Ipv4Address, int]:
        return (self.key[0], self.key[1])

    @property
    def endpoint_b(self) -> Tuple[Ipv4Address, int]:
        return (self.key[2], self.key[3])

    @property
    def protocol(self) -> str:
        return self.key[4]

    @property
    def total_packets(self) -> int:
        return self.packets_ab + self.packets_ba

    @property
    def total_bytes(self) -> int:
        return self.bytes_ab + self.bytes_ba

    @property
    def duration(self) -> int:
        return self.last_seen - self.first_seen

    def add(self, packet: DecodedPacket) -> None:
        a_ip, a_port = self.endpoint_a
        from_a = (packet.src_ip == a_ip
                  and (packet.src_port or 0) == a_port)
        if from_a:
            self.packets_ab += 1
            self.bytes_ab += packet.length
        else:
            self.packets_ba += 1
            self.bytes_ba += packet.length
        self.last_seen = max(self.last_seen, packet.timestamp)
        self.timestamps.append(packet.timestamp)
        self.byte_sizes.append(packet.length)

    def __repr__(self) -> str:
        a_ip, a_port = self.endpoint_a
        b_ip, b_port = self.endpoint_b
        return (f"Flow({a_ip}:{a_port} <-> {b_ip}:{b_port} "
                f"[{self.protocol}], pkts={self.total_packets}, "
                f"bytes={self.total_bytes})")


class FlowTable:
    """Assemble decoded packets into flows."""

    def __init__(self) -> None:
        self._flows: Dict[FlowKey, Flow] = {}
        self.skipped = 0

    def add(self, packet: DecodedPacket) -> Optional[Flow]:
        key = canonical_key(packet)
        if key is None:
            self.skipped += 1
            return None
        flow = self._flows.get(key)
        if flow is None:
            flow = Flow(key, packet.timestamp)
            self._flows[key] = flow
        flow.add(packet)
        return flow

    def add_all(self, packets: Iterable[DecodedPacket]) -> None:
        for packet in packets:
            self.add(packet)

    @property
    def flows(self) -> List[Flow]:
        return list(self._flows.values())

    def flows_with_host(self, address: Ipv4Address) -> List[Flow]:
        """All flows where one endpoint is ``address``."""
        return [flow for flow in self._flows.values()
                if address in (flow.key[0], flow.key[2])]

    def __len__(self) -> int:
        return len(self._flows)
