"""libpcap file format reader/writer.

The testbed writes real ``.pcap`` files (classic libpcap, microsecond
timestamps, LINKTYPE_ETHERNET) and the analysis pipeline reads them back.
Files produced here open in Wireshark/tcpdump, which is how we validated the
codecs during development.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterable, Iterator, List, Tuple, Union

from .packet import CapturedPacket

MAGIC_USEC = 0xA1B2C3D4
MAGIC_USEC_SWAPPED = 0xD4C3B2A1
VERSION_MAJOR = 2
VERSION_MINOR = 4
LINKTYPE_ETHERNET = 1

GLOBAL_HEADER = struct.Struct("<IHHiIII")
RECORD_HEADER = struct.Struct("<IIII")

_NS_PER_US = 1_000
_NS_PER_S = 1_000_000_000


class PcapError(ValueError):
    """Raised on malformed pcap input."""


class PcapWriter:
    """Stream packets into a pcap file object."""

    def __init__(self, fileobj: BinaryIO, snaplen: int = 65535) -> None:
        if snaplen <= 0:
            raise ValueError(f"snaplen must be positive: {snaplen}")
        self._file = fileobj
        self._snaplen = snaplen
        self._count = 0
        self._file.write(GLOBAL_HEADER.pack(
            MAGIC_USEC, VERSION_MAJOR, VERSION_MINOR,
            0, 0, snaplen, LINKTYPE_ETHERNET))

    @property
    def count(self) -> int:
        return self._count

    @property
    def snaplen(self) -> int:
        return self._snaplen

    def write(self, packet: CapturedPacket) -> None:
        ts_sec, ts_ns = divmod(packet.timestamp, _NS_PER_S)
        ts_usec = ts_ns // _NS_PER_US
        orig_len = len(packet.data)
        # Records honor the declared snaplen the way a real capture
        # engine would: truncate the stored bytes, preserve orig_len.
        incl_len = min(orig_len, self._snaplen)
        self._file.write(RECORD_HEADER.pack(ts_sec, ts_usec, incl_len,
                                            orig_len))
        self._file.write(packet.data[:incl_len]
                         if incl_len < orig_len else packet.data)
        self._count += 1

    def write_all(self, packets: Iterable[CapturedPacket]) -> int:
        before = self._count
        for packet in packets:
            self.write(packet)
        return self._count - before


class PcapReader:
    """Iterate packets from a pcap file object."""

    def __init__(self, fileobj: BinaryIO) -> None:
        self._file = fileobj
        header = fileobj.read(GLOBAL_HEADER.size)
        if len(header) < GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == MAGIC_USEC:
            self._swapped = False
        elif magic == MAGIC_USEC_SWAPPED:
            self._swapped = True
        else:
            raise PcapError(f"bad pcap magic: {magic:#010x}")
        fmt = ">IHHiIII" if self._swapped else "<IHHiIII"
        (__, major, minor, __, __, self.snaplen,
         self.linktype) = struct.unpack(fmt, header)
        self.version = (major, minor)
        if self.linktype != LINKTYPE_ETHERNET:
            raise PcapError(f"unsupported linktype: {self.linktype}")

    def __iter__(self) -> Iterator[CapturedPacket]:
        fmt = ">IIII" if self._swapped else "<IIII"
        header_size = RECORD_HEADER.size
        while True:
            header = self._file.read(header_size)
            if not header:
                return
            if len(header) < header_size:
                raise PcapError("truncated pcap record header")
            ts_sec, ts_usec, incl_len, orig_len = struct.unpack(fmt, header)
            if incl_len > self.snaplen + 65536:
                raise PcapError(f"implausible record length: {incl_len}")
            data = self._file.read(incl_len)
            if len(data) < incl_len:
                raise PcapError("truncated pcap record data")
            timestamp = ts_sec * _NS_PER_S + ts_usec * _NS_PER_US
            yield CapturedPacket(timestamp, data)


def parse_global_header(buf) -> Tuple[bool, int, int]:
    """Validate a pcap global header in a buffer.

    Returns ``(swapped, snaplen, linktype)`` with the same failure
    surface as :class:`PcapReader` — truncated header, bad magic and
    non-Ethernet linktypes all raise :class:`PcapError`.
    """
    if len(buf) < GLOBAL_HEADER.size:
        raise PcapError("truncated pcap global header")
    magic = buf[3] << 24 | buf[2] << 16 | buf[1] << 8 | buf[0]
    if magic == MAGIC_USEC:
        swapped = False
    elif magic == MAGIC_USEC_SWAPPED:
        swapped = True
    else:
        raise PcapError(f"bad pcap magic: {magic:#010x}")
    fmt = ">IHHiIII" if swapped else "<IHHiIII"
    (__, __, __, __, __, snaplen,
     linktype) = struct.unpack_from(fmt, buf, 0)
    if linktype != LINKTYPE_ETHERNET:
        raise PcapError(f"unsupported linktype: {linktype}")
    return swapped, snaplen, linktype


def iter_records(buf, start: int = 0
                 ) -> Iterator[Tuple[int, int, int, int]]:
    """Walk the record headers of an in-memory pcap buffer.

    Yields ``(timestamp_ns, frame_offset, incl_len, orig_len)`` per
    record without copying a single frame byte — consumers slice (or
    index into) the one buffer they already hold.  This is the
    mmap-friendly walk under both :func:`load_bytes` and the columnar
    decode tier.  ``start`` skips an already-validated global header so
    capture *segments* (record stream only) can reuse the same walk.
    """
    if start == 0:
        swapped, snaplen, __ = parse_global_header(buf)
        offset = GLOBAL_HEADER.size
    else:
        swapped, snaplen, offset = False, 65535, start
    header = (">IIII" if swapped else "<IIII")
    unpack = struct.Struct(header).unpack_from
    header_size = RECORD_HEADER.size
    end = len(buf)
    while offset < end:
        if end - offset < header_size:
            raise PcapError("truncated pcap record header")
        ts_sec, ts_usec, incl_len, orig_len = unpack(buf, offset)
        if incl_len > snaplen + 65536:
            raise PcapError(f"implausible record length: {incl_len}")
        offset += header_size
        if end - offset < incl_len:
            raise PcapError("truncated pcap record data")
        yield (ts_sec * _NS_PER_S + ts_usec * _NS_PER_US,
               offset, incl_len, orig_len)
        offset += incl_len


def dump_bytes(packets: Iterable[CapturedPacket]) -> bytes:
    """Serialize a packet list to pcap bytes in memory."""
    buffer = io.BytesIO()
    writer = PcapWriter(buffer)
    writer.write_all(packets)
    return buffer.getvalue()


def load_bytes(raw: Union[bytes, bytearray]) -> List[CapturedPacket]:
    """Parse pcap bytes into a packet list.

    Zero-copy: every packet's ``data`` is an offset/length view over the
    single input buffer rather than a freshly sliced ``bytes`` — the
    decoders normalize to real ``bytes`` only at the object-decode
    boundaries that need them.
    """
    buf = memoryview(raw)
    return [CapturedPacket(ts, buf[offset:offset + incl_len])
            for ts, offset, incl_len, __ in iter_records(buf)]


def save_file(path: str, packets: Iterable[CapturedPacket]) -> int:
    """Write packets to ``path``; returns the packet count."""
    with open(path, "wb") as fileobj:
        writer = PcapWriter(fileobj)
        return writer.write_all(packets)


def load_file(path: str) -> List[CapturedPacket]:
    """Read all packets from ``path``."""
    with open(path, "rb") as fileobj:
        return list(PcapReader(fileobj))
