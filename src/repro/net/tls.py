"""TLS record layer for traffic synthesis and black-box inspection.

The paper never decrypts: its analysis extracts "traffic patterns from the
data captured ... without decrypting it".  We therefore model TLS at exactly
the fidelity the audit can observe:

* a realistic handshake exchange (ClientHello carrying a real SNI extension,
  ServerHello + Certificate + Finished flights with plausible sizes),
* opaque application-data records whose sizes equal ciphertext sizes
  (plaintext + AEAD tag + record header).

A passive observer (our analysis scripts) can parse record headers and the
SNI from the ClientHello — the same vantage point mitmproxy-without-keys or
tcpdump would give the paper's authors.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

CONTENT_CHANGE_CIPHER_SPEC = 20
CONTENT_ALERT = 21
CONTENT_HANDSHAKE = 22
CONTENT_APPLICATION_DATA = 23

HANDSHAKE_CLIENT_HELLO = 1
HANDSHAKE_SERVER_HELLO = 2

VERSION_TLS12 = 0x0303

RECORD_HEADER_LEN = 5
AEAD_OVERHEAD = 16  # GCM tag
MAX_RECORD_PAYLOAD = 16384


class TlsRecord:
    """One TLS record: content type, version, payload."""

    __slots__ = ("content_type", "version", "payload")

    def __init__(self, content_type: int, payload: bytes,
                 version: int = VERSION_TLS12) -> None:
        if len(payload) > MAX_RECORD_PAYLOAD + 256:
            raise ValueError(f"TLS record too large: {len(payload)}")
        self.content_type = content_type
        self.version = version
        self.payload = payload

    def encode(self) -> bytes:
        return (bytes([self.content_type])
                + self.version.to_bytes(2, "big")
                + len(self.payload).to_bytes(2, "big")
                + self.payload)

    @classmethod
    def decode_stream(cls, raw: bytes) -> Tuple[List["TlsRecord"], bytes]:
        """Parse as many whole records as possible; return (records, rest)."""
        records: List[TlsRecord] = []
        offset = 0
        while offset + RECORD_HEADER_LEN <= len(raw):
            content_type = raw[offset]
            version = int.from_bytes(raw[offset + 1:offset + 3], "big")
            length = int.from_bytes(raw[offset + 3:offset + 5], "big")
            end = offset + RECORD_HEADER_LEN + length
            if end > len(raw):
                break
            records.append(cls(content_type, raw[offset + 5:end], version))
            offset = end
        return records, raw[offset:]

    def __len__(self) -> int:
        return RECORD_HEADER_LEN + len(self.payload)

    def __repr__(self) -> str:
        return (f"TlsRecord(type={self.content_type}, "
                f"{len(self.payload)}B)")


def build_client_hello(server_name: str, client_random: bytes) -> TlsRecord:
    """A ClientHello record carrying a server_name (SNI) extension."""
    if len(client_random) != 32:
        raise ValueError("client random must be 32 bytes")
    sni_host = server_name.encode("ascii")
    sni_entry = bytes([0]) + len(sni_host).to_bytes(2, "big") + sni_host
    sni_list = len(sni_entry).to_bytes(2, "big") + sni_entry
    sni_ext = (0).to_bytes(2, "big") + len(sni_list).to_bytes(2, "big") \
        + sni_list
    extensions = len(sni_ext).to_bytes(2, "big") + sni_ext
    cipher_suites = bytes.fromhex("0004c02bc02f")  # 2 suites, length 4
    body = (
        VERSION_TLS12.to_bytes(2, "big")
        + client_random
        + bytes([0])            # empty session id
        + cipher_suites
        + bytes([1, 0])         # compression: null only
        + extensions
    )
    handshake = (bytes([HANDSHAKE_CLIENT_HELLO])
                 + len(body).to_bytes(3, "big") + body)
    return TlsRecord(CONTENT_HANDSHAKE, handshake)


def extract_sni(record: TlsRecord) -> Optional[str]:
    """Pull the SNI hostname out of a ClientHello record, if present."""
    if record.content_type != CONTENT_HANDSHAKE:
        return None
    payload = record.payload
    if len(payload) < 4 or payload[0] != HANDSHAKE_CLIENT_HELLO:
        return None
    body = payload[4:4 + int.from_bytes(payload[1:4], "big")]
    # Fixed-size prefix: version(2) + random(32) + session id
    offset = 2 + 32
    if offset >= len(body):
        return None
    session_len = body[offset]
    offset += 1 + session_len
    if offset + 2 > len(body):
        return None
    suites_len = int.from_bytes(body[offset:offset + 2], "big")
    offset += 2 + suites_len
    if offset >= len(body):
        return None
    compression_len = body[offset]
    offset += 1 + compression_len
    if offset + 2 > len(body):
        return None
    ext_total = int.from_bytes(body[offset:offset + 2], "big")
    offset += 2
    end = min(len(body), offset + ext_total)
    while offset + 4 <= end:
        ext_type = int.from_bytes(body[offset:offset + 2], "big")
        ext_len = int.from_bytes(body[offset + 2:offset + 4], "big")
        offset += 4
        if ext_type == 0 and offset + ext_len <= end:
            ext = body[offset:offset + ext_len]
            if len(ext) >= 5:
                host_len = int.from_bytes(ext[3:5], "big")
                host = ext[5:5 + host_len]
                try:
                    return host.decode("ascii")
                except UnicodeDecodeError:
                    return None
        offset += ext_len
    return None


def application_records(plaintext_len: int,
                        filler: bytes) -> List[TlsRecord]:
    """Split a plaintext length into application-data records.

    ``filler`` supplies opaque bytes standing in for ciphertext; it must be
    at least ``plaintext_len + records * AEAD_OVERHEAD`` long.  Each record's
    on-wire size matches what real TLS would produce for the same plaintext.
    """
    if plaintext_len < 0:
        raise ValueError("negative plaintext length")
    records: List[TlsRecord] = []
    remaining = plaintext_len
    offset = 0
    while True:
        chunk = min(remaining, MAX_RECORD_PAYLOAD - AEAD_OVERHEAD)
        size = chunk + AEAD_OVERHEAD
        if offset + size > len(filler):
            raise ValueError("filler too short for ciphertext")
        records.append(TlsRecord(CONTENT_APPLICATION_DATA,
                                 filler[offset:offset + size]))
        offset += size
        remaining -= chunk
        if remaining <= 0:
            break
    return records


def handshake_flights(server_name: str, client_random: bytes,
                      server_filler: bytes,
                      certificate_size: int = 2800) -> Tuple[
                          List[TlsRecord], List[TlsRecord], List[TlsRecord]]:
    """The three handshake flights as record lists.

    Returns (client_flight1, server_flight, client_flight2):
    ClientHello / ServerHello+Certificate+Done / ClientKeyExchange+CCS+Finished.
    Sizes approximate a TLS 1.2 ECDHE-RSA handshake, which dominates the
    byte counts in the paper's keep-alive-only scenarios.
    """
    client_hello = build_client_hello(server_name, client_random)
    need = 90 + certificate_size + 4 + 16 + 75
    if len(server_filler) < need:
        raise ValueError(f"server filler too short: need {need}")
    server_hello = TlsRecord(CONTENT_HANDSHAKE, server_filler[:90])
    certificate = TlsRecord(
        CONTENT_HANDSHAKE, server_filler[90:90 + certificate_size])
    server_done = TlsRecord(
        CONTENT_HANDSHAKE,
        server_filler[90 + certificate_size:90 + certificate_size + 4])
    client_kex = TlsRecord(
        CONTENT_HANDSHAKE,
        server_filler[94 + certificate_size:94 + certificate_size + 75])
    ccs = TlsRecord(CONTENT_CHANGE_CIPHER_SPEC, b"\x01")
    finished = TlsRecord(
        CONTENT_HANDSHAKE,
        server_filler[169 + certificate_size:169 + certificate_size + 16])
    return ([client_hello],
            [server_hello, certificate, server_done],
            [client_kex, ccs, finished])
