"""Pre-encoded frame templates for repeated-segment synthesis.

A TLS session emits hundreds of TCP segments that differ only in
seq/ack, flags, IPv4 identification, lengths, payload and the two
checksums; everything else — MACs, addresses, ports, TTL, window — is
fixed for the life of the flow direction.  :class:`TcpFrameTemplate`
encodes the 54 static header bytes once, caches the partial
one's-complement sums of the unchanging 16-bit words, and per segment
only patches the variable fields (``struct.pack_into``) and finishes the
two checksums from the cached partials — the RFC 1624 incremental-update
technique applied at template granularity.

Output is bit-for-bit identical to the object path
(:func:`repro.net.packet.build_tcp_frame` composing
``TcpSegment.encode`` + ``Ipv4Packet.encode`` + ``EthernetFrame.encode``
with default DSCP/DF/window and no TCP options);
``tests/test_net_fastpath.py`` asserts the equivalence property-style.
"""

from __future__ import annotations

import struct

from .addresses import Ipv4Address, MacAddress
from .checksum import incremental_update, internet_checksum, word_sum
from .ethernet import ETHERTYPE_IPV4
from .ip import PROTO_TCP

HEADER_LEN = 54  # Ethernet (14) + IPv4 (20) + TCP without options (20)

_IP_LEN_ID = struct.Struct("!HH")    # total_length + identification @ 16
_IP_CHECKSUM = struct.Struct("!H")   # @ 24
_TCP_SEQ_ACK = struct.Struct("!II")  # @ 38
_TCP_OFF_FLAGS = struct.Struct("!BB")  # data offset/flags @ 46
_TCP_CHECKSUM = struct.Struct("!H")  # @ 50


class TcpFrameTemplate:
    """Cached Ethernet+IPv4+TCP headers for one flow direction.

    Covers the fast-path segment shape: no TCP options (SYN segments
    carry an MSS option and take the slow path), default window, DSCP 0,
    DF set — exactly what :class:`~repro.net.stack.HostStack` emits for
    every non-SYN segment.
    """

    __slots__ = ("_header", "_ip_base_checksum", "_tcp_static_sum")

    def __init__(self, src_mac: MacAddress, dst_mac: MacAddress,
                 src_ip: Ipv4Address, dst_ip: Ipv4Address,
                 src_port: int, dst_port: int, ttl: int = 64,
                 window: int = 0xFFFF) -> None:
        src = src_ip.to_bytes()
        dst = dst_ip.to_bytes()
        header = bytearray(HEADER_LEN)
        header[0:6] = dst_mac.to_bytes()
        header[6:12] = src_mac.to_bytes()
        header[12:14] = ETHERTYPE_IPV4.to_bytes(2, "big")
        # IPv4: version/IHL, DSCP 0, length+id patched per frame,
        # flags=DF, checksum patched per frame.
        header[14] = 0x45
        header[20:22] = b"\x40\x00"
        header[22] = ttl
        header[23] = PROTO_TCP
        header[26:30] = src
        header[30:34] = dst
        # TCP: ports/window fixed; seq/ack/flags/checksum per frame.
        header[34:36] = src_port.to_bytes(2, "big")
        header[36:38] = dst_port.to_bytes(2, "big")
        header[48:50] = window.to_bytes(2, "big")
        self._header = bytes(header)
        # IP header checksum with the variable fields (length, id) held
        # at zero; each frame patches it via RFC 1624.
        self._ip_base_checksum = internet_checksum(self._header[14:34])
        # TCP pseudo header (addresses + protocol; length added per
        # frame) plus the static header words (ports, window).
        self._tcp_static_sum = word_sum(
            src + dst + bytes([0, PROTO_TCP])
            + header[34:38] + header[48:50])

    def frame(self, ip_id: int, seq: int, ack: int, flags: int,
              payload: bytes = b"") -> bytes:
        """One encoded frame with the variable fields patched in."""
        tcp_len = 20 + len(payload)
        total_length = 20 + tcp_len
        header = bytearray(self._header)
        _IP_LEN_ID.pack_into(header, 16, total_length, ip_id)
        _IP_CHECKSUM.pack_into(header, 24, incremental_update(
            self._ip_base_checksum, b"\x00\x00\x00\x00",
            bytes(header[16:20])))
        seq &= 0xFFFFFFFF
        ack &= 0xFFFFFFFF
        _TCP_SEQ_ACK.pack_into(header, 38, seq, ack)
        _TCP_OFF_FLAGS.pack_into(header, 46, 0x50, flags)
        tcp_sum = (self._tcp_static_sum + tcp_len
                   + (seq >> 16) + (seq & 0xFFFF)
                   + (ack >> 16) + (ack & 0xFFFF)
                   + (0x5000 | flags) + word_sum(payload)) % 0xFFFF
        _TCP_CHECKSUM.pack_into(header, 50, 0xFFFF - (tcp_sum or 0xFFFF))
        return bytes(header) + payload
