"""Network substrate: packet codecs, pcap files, flows, and a host stack.

Everything here is implemented from scratch at wire-format level so the
testbed's captures are real pcap files and the analysis pipeline operates on
raw bytes, exactly like the paper's Mon(IoT)r-based setup.
"""

from .addresses import (BROADCAST_MAC, Ipv4Address, Ipv4Network, MacAddress,
                        mac_from_seed, parse_endpoint)
from .columnar import ColumnarCapture, ColumnarSlice, ColumnarView
from .dns import DnsMessage, DnsQuestion, DnsRecord
from .ethernet import EthernetFrame
from .flow import Flow, FlowTable, canonical_key
from .ip import Ipv4Packet
from .link import LatencyModel
from .packet import (CapturedPacket, DecodedPacket, LazyPacket, decode_all,
                     decode_packet, lazy_decode, lazy_decode_all)
from .pcap import (PcapError, PcapReader, PcapWriter, dump_bytes, load_bytes,
                   load_file, save_file)
from .stack import HostStack, TlsSession
from .tcp import TcpSegment
from .template import TcpFrameTemplate
from .tiers import (DECODE_TIERS, DEFAULT_DECODE_TIER, decode_tier,
                    resolve_tier, set_decode_tier)
from .tls import TlsRecord, extract_sni
from .udp import UdpDatagram

__all__ = [
    "BROADCAST_MAC",
    "CapturedPacket",
    "ColumnarCapture",
    "ColumnarSlice",
    "ColumnarView",
    "DECODE_TIERS",
    "DEFAULT_DECODE_TIER",
    "DecodedPacket",
    "DnsMessage",
    "DnsQuestion",
    "DnsRecord",
    "EthernetFrame",
    "Flow",
    "FlowTable",
    "HostStack",
    "Ipv4Address",
    "Ipv4Network",
    "Ipv4Packet",
    "LatencyModel",
    "LazyPacket",
    "MacAddress",
    "PcapError",
    "PcapReader",
    "PcapWriter",
    "TcpFrameTemplate",
    "TcpSegment",
    "TlsRecord",
    "TlsSession",
    "UdpDatagram",
    "canonical_key",
    "decode_all",
    "decode_packet",
    "decode_tier",
    "dump_bytes",
    "extract_sni",
    "lazy_decode",
    "lazy_decode_all",
    "load_bytes",
    "load_file",
    "mac_from_seed",
    "parse_endpoint",
    "resolve_tier",
    "save_file",
    "set_decode_tier",
]
