"""UDP datagram codec (RFC 768) with checksum over the IPv4 pseudo header."""

from __future__ import annotations

from .addresses import Ipv4Address
from .checksum import internet_checksum, pseudo_header
from .ip import PROTO_UDP

HEADER_LEN = 8


class UdpDatagram:
    """UDP header + payload."""

    __slots__ = ("src_port", "dst_port", "payload")

    def __init__(self, src_port: int, dst_port: int, payload: bytes) -> None:
        for name, port in (("src_port", src_port), ("dst_port", dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload

    @property
    def length(self) -> int:
        return HEADER_LEN + len(self.payload)

    def encode(self, src_ip: Ipv4Address, dst_ip: Ipv4Address) -> bytes:
        header = bytearray()
        header += self.src_port.to_bytes(2, "big")
        header += self.dst_port.to_bytes(2, "big")
        header += self.length.to_bytes(2, "big")
        header += b"\x00\x00"
        body = bytes(header) + self.payload
        pseudo = pseudo_header(src_ip.to_bytes(), dst_ip.to_bytes(),
                               PROTO_UDP, self.length)
        checksum = internet_checksum(pseudo + body)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        header[6:8] = checksum.to_bytes(2, "big")
        return bytes(header) + self.payload

    @classmethod
    def decode(cls, raw: bytes) -> "UdpDatagram":
        if len(raw) < HEADER_LEN:
            raise ValueError(f"UDP datagram too short: {len(raw)} bytes")
        length = int.from_bytes(raw[4:6], "big")
        if length < HEADER_LEN or length > len(raw):
            raise ValueError(f"bad UDP length: {length}")
        return cls(
            src_port=int.from_bytes(raw[0:2], "big"),
            dst_port=int.from_bytes(raw[2:4], "big"),
            payload=raw[HEADER_LEN:length],
        )

    def __repr__(self) -> str:
        return (f"UdpDatagram({self.src_port} -> {self.dst_port}, "
                f"{len(self.payload)}B)")
