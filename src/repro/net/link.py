"""Latency and serialization model for the testbed's paths.

The capture point is the access point, so observed timing is:

* TV -> AP: Wi-Fi hop (sub-millisecond).
* AP -> Internet destination: wired WAN path; RTT depends on where the
  destination server physically is — which is exactly what the RIPE IPmap
  latency engine (:mod:`repro.geo.ripe_ipmap`) exploits for geolocation.
"""

from __future__ import annotations

from typing import Dict

from ..sim.clock import microseconds, milliseconds
from ..sim.rng import RngRegistry
from .addresses import Ipv4Address

WIFI_HOP_NS = microseconds(800)
SERIALIZATION_NS_PER_BYTE = 8  # ~1 Gbps wired path

# One-way WAN latency in milliseconds from a vantage region to a server
# region.  Derived from typical public RTT matrices (London<->Amsterdam
# ~8 ms RTT, transatlantic ~75 ms RTT).
ONE_WAY_MS: Dict[str, Dict[str, float]] = {
    "uk": {
        "london": 1.5,
        "amsterdam": 4.0,
        "frankfurt": 6.5,
        "new_york": 38.0,
        "us_east": 40.0,
        "us_west": 70.0,
        "seoul": 120.0,
    },
    "us_west": {
        "london": 68.0,
        "amsterdam": 72.0,
        "frankfurt": 75.0,
        "new_york": 32.0,
        "us_east": 31.0,
        "us_west": 4.0,
        "seoul": 62.0,
    },
}


class LatencyModel:
    """Per-destination one-way delays with reproducible jitter."""

    def __init__(self, vantage: str, rng: RngRegistry,
                 jitter_fraction: float = 0.06) -> None:
        if vantage not in ONE_WAY_MS:
            raise ValueError(f"unknown vantage region: {vantage!r}")
        self.vantage = vantage
        self._rng = rng
        self._jitter = jitter_fraction
        self._server_regions: Dict[Ipv4Address, str] = {}

    def register_server(self, address: Ipv4Address, region: str) -> None:
        """Pin a server address to a physical region."""
        if region not in ONE_WAY_MS[self.vantage]:
            raise ValueError(f"unknown server region: {region!r}")
        self._server_regions[address] = region

    def region_of(self, address: Ipv4Address) -> str:
        region = self._server_regions.get(address)
        if region is None:
            raise KeyError(f"no region registered for {address}")
        return region

    def one_way_ns(self, address: Ipv4Address) -> int:
        """One-way AP -> server delay with jitter, in nanoseconds."""
        region = self.region_of(address)
        base = milliseconds(ONE_WAY_MS[self.vantage][region])
        return self._rng.jitter_ns(f"latency:{region}", base, self._jitter)

    def rtt_ns(self, address: Ipv4Address) -> int:
        """Round-trip AP <-> server delay with jitter."""
        return self.one_way_ns(address) + self.one_way_ns(address)

    def serialization_ns(self, size: int) -> int:
        """Time to put ``size`` bytes on the wire."""
        return size * SERIALIZATION_NS_PER_BYTE

    def wifi_hop_ns(self) -> int:
        """TV <-> AP hop delay with jitter."""
        return self._rng.jitter_ns("latency:wifi", WIFI_HOP_NS, self._jitter)
