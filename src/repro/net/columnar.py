"""Columnar decode tier: a whole capture as parallel field columns.

The third decode tier (after the object and lazy tiers in
:mod:`repro.net.packet`): walk the pcap record headers once, then
byte-gather every fixed-offset header field — timestamps, lengths,
src/dst IPv4 addresses, ports, protocol, the UDP/53 DNS flag — into
parallel numpy columns.  Zero per-packet Python objects are built;
consumers scan columns directly, and only the packets whose *payload*
is actually read (DNS answers) are object-decoded via
:class:`ColumnarView`, a row adapter with the exact ``LazyPacket``
attribute surface.

Equivalence with the reference tiers is non-negotiable and pinned by
the golden corpus and hypothesis suites:

* the record walk raises the same :class:`~repro.net.pcap.PcapError`
  surface as :class:`~repro.net.pcap.PcapReader`, and raises it before
  any frame-level error, exactly like ``load_bytes`` + lazy decode;
* malformed or clipped frames raise the same ``ValueError`` messages in
  the same (capture) order as :class:`~repro.net.packet.LazyPacket` —
  any row the vectorized gather can't prove well-formed (short frames,
  IPv4 options, claimed-but-truncated IPv4) is re-run through a real
  ``LazyPacket``, so the slow path *is* the reference implementation.

The vectorized fast path covers plain ``IHL=20`` IPv4 frames of at
least 38 bytes — every byte the gathers touch is then inside the
record's own data, so no mask can misread a neighbouring record.

Columns are plain contiguous arrays, which is what makes the
shared-memory fleet fan-out (:mod:`repro.fleet.shm`) possible: a worker
re-attaches the buffers read-only instead of re-decoding the capture.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..obs.metrics import get_registry
from .addresses import Ipv4Address
from .dns import DnsMessage
from .ip import PROTO_TCP, PROTO_UDP
from .packet import (DNS_PORT, CapturedPacket, DecodedPacket, LazyPacket,
                     decode_packet)
from .pcap import GLOBAL_HEADER, RECORD_HEADER, PcapError, \
    parse_global_header

_NS_PER_US = 1_000
_NS_PER_S = 1_000_000_000

_PROTO_NAMES = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}

_MISSING = object()

#: Column name -> dtype.  ``off`` is the frame's byte offset inside its
#: segment buffer; ``src``/``dst`` are big-endian IPv4 values (0 for
#: non-IP rows); ``sport``/``dport``/``proto`` use -1 for "absent",
#: mirroring the lazy tier's ``None``.
COLUMN_DTYPES = (
    ("ts", np.int64),
    ("off", np.int64),
    ("length", np.int64),
    ("src", np.uint32),
    ("dst", np.uint32),
    ("sport", np.int32),
    ("dport", np.int32),
    ("proto", np.int16),
    ("ihl", np.int16),
    ("dns", np.uint8),
)

COLUMN_NAMES = tuple(name for name, __ in COLUMN_DTYPES)

# The vectorized gathers read frame bytes up to offset 37 (transport
# ports); only rows with at least this many captured bytes take the
# fast path, so every gather stays inside its own record.
_FAST_MIN_FRAME = 38


def _gather_u32(data: np.ndarray, base: np.ndarray,
                big_endian: bool) -> np.ndarray:
    b0 = data[base].astype(np.uint32)
    b1 = data[base + 1].astype(np.uint32)
    b2 = data[base + 2].astype(np.uint32)
    b3 = data[base + 3].astype(np.uint32)
    if big_endian:
        return b0 << 24 | b1 << 16 | b2 << 8 | b3
    return b3 << 24 | b2 << 16 | b1 << 8 | b0


#: Records walked in Python per probe window before speculating again.
_SPEC_PROBE = 64
#: Longest repeating record-size pattern the speculator recognises.
_SPEC_MAX_PERIOD = 8
#: Cap on predicted records per speculation round (bounds temp arrays).
_SPEC_BATCH = 1 << 20


def _tail_period(sizes: List[int]) -> Optional[int]:
    """Smallest period of the recent record sizes, or ``None``."""
    tail = sizes[-_SPEC_PROBE:]
    for period in range(1, _SPEC_MAX_PERIOD + 1):
        if len(tail) < 2 * period:
            return None
        if all(tail[i] == tail[i + period]
               for i in range(len(tail) - period)):
            return period
    return None


def _walk_offsets(buf: memoryview, data: np.ndarray, start: int,
                  swapped: bool) -> Tuple[np.ndarray, int]:
    """Collect record-header offsets, speculating through runs.

    The record walk is inherently sequential (each offset depends on the
    previous record's ``incl_len``), but capture traffic is heavily
    patterned — data/ACK interleaves repeat a handful of frame sizes for
    thousands of records.  So the walk alternates two modes: a short
    Python probe learns the recent size pattern, then a vectorized round
    *predicts* the next run of offsets by tiling that pattern through a
    ``cumsum`` and keeps exactly the prefix whose actual ``incl_len``
    fields (one numpy gather) match the prediction.  Accepted offsets
    are therefore byte-verified — identical to what the sequential walk
    would produce — and any pattern break just falls back to probing.

    Validation is deliberately deferred: implausible lengths and
    truncation are detected afterwards from the gathered columns (the
    walk past a bad record only ever produces *later*-indexed garbage,
    so "first error wins" ordering is preserved).
    """
    unpack = struct.Struct(">I" if swapped else "<I").unpack_from
    limit = len(buf) - RECORD_HEADER.size
    offset = start
    pending: List[int] = []        # python-walked offsets, oldest first
    chunks: List[np.ndarray] = []  # accepted offset runs, in order
    sizes: List[int] = []          # recent incl values (pattern seed)
    need_probe = True
    while offset <= limit:
        if need_probe:
            walked = 0
            while offset <= limit and walked < _SPEC_PROBE:
                (incl,) = unpack(buf, offset + 8)
                pending.append(offset)
                sizes.append(incl)
                offset += RECORD_HEADER.size + incl
                walked += 1
            if offset > limit:
                break
        del sizes[:-_SPEC_PROBE]
        period = _tail_period(sizes)
        if period is None:
            need_probe = True
            continue
        pattern = np.array(sizes[-period:], dtype=np.int64)
        # Size the round from the *mean* stride: overshoot past the end
        # just fails validation, undershoot rolls into another round.
        stride = RECORD_HEADER.size + float(pattern.mean())
        count = min(int((len(buf) - offset) / stride) + period + 1,
                    _SPEC_BATCH)
        pred_sizes = np.resize(pattern, count)
        pred_off = offset + np.concatenate(
            ([0], np.cumsum(RECORD_HEADER.size + pred_sizes)[:-1]))
        safe = np.minimum(pred_off, limit)
        actual = _gather_u32(data, safe + 8, swapped).astype(np.int64)
        ok = (pred_off <= limit) & (actual == pred_sizes)
        bad = np.nonzero(~ok)[0]
        won = int(bad[0]) if bad.size else count
        if won:
            if pending:
                chunks.append(np.array(pending, dtype=np.int64))
                pending.clear()
            chunks.append(pred_off[:won])
            offset = int(pred_off[won - 1]) + RECORD_HEADER.size \
                + int(pred_sizes[won - 1])
            sizes.extend(pred_sizes[max(won - _SPEC_PROBE, 0):won]
                         .tolist())
            # A short win means the pattern broke at the next record —
            # go learn the new one; a full batch keeps speculating.
            need_probe = won < count
        else:
            need_probe = True
    if pending:
        chunks.append(np.array(pending, dtype=np.int64))
    record = np.concatenate(chunks) if chunks \
        else np.empty(0, dtype=np.int64)
    return record, offset


def _build_columns(buf: memoryview) -> Dict[str, np.ndarray]:
    """Decode one pcap buffer into columns (the tier's hot path)."""
    swapped, snaplen, __ = parse_global_header(buf)
    data = np.frombuffer(buf, dtype=np.uint8)
    record, cursor = _walk_offsets(buf, data, GLOBAL_HEADER.size, swapped)
    end = len(buf)
    count = len(record)
    sec = _gather_u32(data, record, swapped).astype(np.int64)
    usec = _gather_u32(data, record + 4, swapped).astype(np.int64)
    incl = _gather_u32(data, record + 8, swapped).astype(np.int64)

    # Record-level failures surface before any frame-level one, exactly
    # like load_bytes (which finishes the whole walk before decoding).
    implausible = incl > snaplen + 65536
    if implausible.any():
        first = int(implausible.argmax())
        raise PcapError(f"implausible record length: {int(incl[first])}")
    if cursor > end:
        raise PcapError("truncated pcap record data")
    if cursor < end:
        raise PcapError("truncated pcap record header")

    ts = sec * _NS_PER_S + usec * _NS_PER_US
    frame = record + RECORD_HEADER.size
    # Clip gather bases so short tail rows can't index past the buffer;
    # clipped rows never take the fast path (incl < _FAST_MIN_FRAME).
    safe = np.minimum(frame, max(end - _FAST_MIN_FRAME, 0))

    def byte_at(rel: int) -> np.ndarray:
        return data[safe + rel]

    ethertype = byte_at(12).astype(np.int32) << 8 | byte_at(13)
    version_ihl = byte_at(14)
    total_len = byte_at(16).astype(np.int64) << 8 | byte_at(17)
    proto8 = byte_at(23).astype(np.int16)
    src = _gather_u32(data, safe + 26, True)
    dst = _gather_u32(data, safe + 30, True)
    sport16 = byte_at(34).astype(np.int32) << 8 | byte_at(35)
    dport16 = byte_at(36).astype(np.int32) << 8 | byte_at(37)

    sized = incl >= _FAST_MIN_FRAME
    fast = (sized & (ethertype == 0x0800) & (version_ihl == 0x45)
            & (total_len + 14 <= incl))
    plain = sized & (ethertype != 0x0800)

    src_col = np.where(fast, src, np.uint32(0)).astype(np.uint32)
    dst_col = np.where(fast, dst, np.uint32(0)).astype(np.uint32)
    proto_col = np.where(fast, proto8, -1).astype(np.int16)
    ihl_col = np.where(fast, 20, 0).astype(np.int16)
    ports_ok = fast & ((proto8 == PROTO_TCP) | (proto8 == PROTO_UDP))
    sport_col = np.where(ports_ok, sport16, -1).astype(np.int32)
    dport_col = np.where(ports_ok, dport16, -1).astype(np.int32)
    dns_col = (ports_ok & (proto8 == PROTO_UDP)
               & ((sport16 == DNS_PORT)
                  | (dport16 == DNS_PORT))).astype(np.uint8)

    # Everything the gathers can't prove well-formed goes through a real
    # LazyPacket: identical error surface (and ordering — indices
    # ascend), identical field semantics for the odd shapes (non-IP,
    # IPv4 options, 14-37 byte frames).
    for i in np.nonzero(~(fast | plain))[0].tolist():
        start = int(record[i]) + RECORD_HEADER.size
        row = LazyPacket(0, bytes(buf[start:start + int(incl[i])]))
        if row.src_ip is not None:
            src_col[i] = row.src_ip.value
            dst_col[i] = row.dst_ip.value
            proto_col[i] = row.proto
            ihl_col[i] = row._ihl
            if row.src_port is not None:
                sport_col[i] = row.src_port
                dport_col[i] = row.dst_port
                if row.proto == PROTO_UDP and DNS_PORT in (row.src_port,
                                                           row.dst_port):
                    dns_col[i] = 1

    return {
        "ts": ts,
        "off": frame,
        "length": incl,
        "src": src_col,
        "dst": dst_col,
        "sport": sport_col,
        "dport": dport_col,
        "proto": proto_col,
        "ihl": ihl_col,
        "dns": dns_col,
    } if count else _empty_columns()


def _empty_columns() -> Dict[str, np.ndarray]:
    return {name: np.empty(0, dtype)
            for name, dtype in COLUMN_DTYPES}


class ColumnarCapture:
    """A capture decoded into parallel columns, one row per packet.

    Supports multi-segment growth (:meth:`extend_pcap_bytes` — the
    streaming service feeds pcap-framed segments) and a frozen
    read-only mode for shared-memory attached columns.  Iterating or
    indexing yields :class:`ColumnarView` rows, so the capture is
    drop-in wherever a list of lazy packets was.
    """

    __slots__ = ("ts", "off", "length", "src", "dst", "sport", "dport",
                 "proto", "ihl", "dns", "_seg_starts", "_seg_bufs",
                 "_intern", "_owner", "frozen")

    def __init__(self) -> None:
        for name, dtype in COLUMN_DTYPES:
            setattr(self, name, np.empty(0, dtype))
        self._seg_starts: List[int] = []
        self._seg_bufs: List[memoryview] = []
        self._intern: Dict[int, Ipv4Address] = {}
        self._owner = None
        self.frozen = False

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_pcap_bytes(cls, raw: Union[bytes, bytearray, memoryview]
                        ) -> "ColumnarCapture":
        capture = cls()
        capture.extend_pcap_bytes(raw)
        return capture

    @classmethod
    def from_columns(cls, columns: Dict[str, np.ndarray],
                     buf: memoryview,
                     owner=None) -> "ColumnarCapture":
        """Adopt pre-built columns over one pcap buffer (the
        shared-memory attach path); the result is frozen.  ``owner``
        (e.g. the backing ``SharedMemory`` segment) is kept alive for
        the capture's lifetime so the mapped buffers stay valid."""
        capture = cls()
        for name in COLUMN_NAMES:
            setattr(capture, name, columns[name])
        capture._seg_starts = [0]
        capture._seg_bufs = [buf if isinstance(buf, memoryview)
                             else memoryview(buf)]
        capture._owner = owner
        capture.frozen = True
        return capture

    # -- growth -----------------------------------------------------------------

    def extend_pcap_bytes(self, raw: Union[bytes, bytearray, memoryview]
                          ) -> Tuple[int, int]:
        """Decode one pcap-framed segment; returns its [start, end) row
        range."""
        if self.frozen:
            raise TypeError("shared-memory columns are read-only")
        buf = raw if isinstance(raw, memoryview) else memoryview(raw)
        registry = get_registry()
        with registry.span("decode.columnar.build"):
            columns = _build_columns(buf)
        start = len(self.ts)
        count = len(columns["ts"])
        self._seg_starts.append(start)
        self._seg_bufs.append(buf)
        if start == 0:
            for name in COLUMN_NAMES:
                setattr(self, name, columns[name])
        else:
            for name in COLUMN_NAMES:
                setattr(self, name,
                        np.concatenate((getattr(self, name),
                                        columns[name])))
        if registry.enabled:
            registry.inc("decode.columnar.packets", count)
        return start, start + count

    # -- row access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ts)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [ColumnarView(self, i)
                    for i in range(*index.indices(len(self.ts)))]
        if index < 0:
            index += len(self.ts)
        return ColumnarView(self, index)

    def __iter__(self) -> Iterator["ColumnarView"]:
        for index in range(len(self.ts)):
            yield ColumnarView(self, index)

    def view(self, index: int) -> "ColumnarView":
        return ColumnarView(self, index)

    def frame(self, index: int) -> memoryview:
        """The raw frame bytes of one row (a view, not a copy)."""
        seg = bisect_right(self._seg_starts, index) - 1
        offset = int(self.off[index])
        return self._seg_bufs[seg][offset:offset + int(self.length[index])]

    def address(self, value: int) -> Ipv4Address:
        """Interned address object for a u32 column value."""
        addr = self._intern.get(value)
        if addr is None:
            addr = self._intern[value] = Ipv4Address(value)
        return addr

    # -- capture-level queries ---------------------------------------------------

    def infer_tv_ip(self) -> Ipv4Address:
        """Column equivalent of :func:`repro.analysis.pipeline.infer_tv_ip`
        — most talkative private address, ties broken by first
        appearance in src-then-dst packet order."""
        count = len(self.ts)
        interleaved = np.empty(2 * count, np.uint32)
        interleaved[0::2] = self.src
        interleaved[1::2] = self.dst
        is_ip = self.proto >= 0
        valid = np.empty(2 * count, bool)
        valid[0::2] = is_ip
        valid[1::2] = is_ip
        private = (((interleaved >> np.uint32(24)) == 10)
                   | ((interleaved >> np.uint32(20)) == (172 << 4) | 1)
                   | ((interleaved >> np.uint32(16)) == (192 << 8) | 168))
        candidates = interleaved[valid & private]
        if candidates.size == 0:
            raise ValueError("no private addresses in capture")
        values, counts = np.unique(candidates, return_counts=True)
        tied = values[counts == counts.max()]
        if tied.size == 1:
            return self.address(int(tied[0]))
        first_seen = {int(v): int(np.argmax(candidates == v))
                      for v in tied}
        return self.address(min(first_seen, key=first_seen.get))

    @property
    def segment_count(self) -> int:
        return len(self._seg_starts)

    @property
    def buffer(self) -> memoryview:
        """The single backing pcap buffer (shared-memory publish path —
        only defined for unsegmented captures)."""
        if len(self._seg_bufs) != 1:
            raise ValueError(
                f"capture has {len(self._seg_bufs)} segments, not 1")
        return self._seg_bufs[0]

    def columns(self) -> Dict[str, np.ndarray]:
        return {name: getattr(self, name) for name in COLUMN_NAMES}

    @property
    def nbytes(self) -> int:
        """Bytes needed to publish this capture (columns + raw pcap)."""
        return (sum(getattr(self, name).nbytes for name in COLUMN_NAMES)
                + sum(len(buf) for buf in self._seg_bufs))

    def __repr__(self) -> str:
        return (f"ColumnarCapture({len(self.ts)} packets, "
                f"{self.segment_count} segments"
                f"{', frozen' if self.frozen else ''})")


class ColumnarView:
    """One capture row with the full ``LazyPacket`` attribute surface.

    Built only where a consumer genuinely needs a per-packet object —
    DNS payload decodes, flow-table rows, query results — never during
    the column scans themselves.
    """

    __slots__ = ("_capture", "_index", "_dns", "_full")

    def __init__(self, capture: ColumnarCapture, index: int) -> None:
        self._capture = capture
        self._index = index
        self._dns = _MISSING
        self._full: Optional[DecodedPacket] = None

    @property
    def timestamp(self) -> int:
        return int(self._capture.ts[self._index])

    @property
    def data(self) -> memoryview:
        return self._capture.frame(self._index)

    @property
    def length(self) -> int:
        return int(self._capture.length[self._index])

    @property
    def src_ip(self) -> Optional[Ipv4Address]:
        capture, index = self._capture, self._index
        if capture.proto[index] < 0:
            return None
        return capture.address(int(capture.src[index]))

    @property
    def dst_ip(self) -> Optional[Ipv4Address]:
        capture, index = self._capture, self._index
        if capture.proto[index] < 0:
            return None
        return capture.address(int(capture.dst[index]))

    @property
    def src_port(self) -> Optional[int]:
        value = int(self._capture.sport[self._index])
        return None if value < 0 else value

    @property
    def dst_port(self) -> Optional[int]:
        value = int(self._capture.dport[self._index])
        return None if value < 0 else value

    @property
    def proto(self) -> Optional[int]:
        value = int(self._capture.proto[self._index])
        return None if value < 0 else value

    @property
    def flow_proto(self) -> Optional[str]:
        value = int(self._capture.proto[self._index])
        if value < 0:
            return None
        return _PROTO_NAMES.get(value, "ip")

    @property
    def full(self) -> DecodedPacket:
        if self._full is None:
            get_registry().inc("pipeline.full_decodes")
            self._full = decode_packet(
                CapturedPacket(self.timestamp, self.data))
        return self._full

    @property
    def eth(self):
        return self.full.eth

    @property
    def ip(self):
        return self.full.ip

    @property
    def tcp(self):
        return self.full.tcp

    @property
    def udp(self):
        return self.full.udp

    @property
    def transport_payload(self):
        capture, index = self._capture, self._index
        proto = int(capture.proto[index])
        data = self.data
        transport = 14 + int(capture.ihl[index])
        if proto == PROTO_TCP:
            offset = transport + ((data[transport + 12] >> 4) * 4)
            total = int.from_bytes(data[16:18], "big")
            return data[offset:14 + total]
        if proto == PROTO_UDP:
            length = int.from_bytes(
                data[transport + 4:transport + 6], "big")
            return data[transport + 8:transport + length]
        return b""

    @property
    def dns(self) -> Optional[DnsMessage]:
        if self._dns is _MISSING:
            self._dns = None
            capture, index = self._capture, self._index
            if capture.dns[index]:
                registry = get_registry()
                if registry.enabled:
                    registry.inc("decode.columnar.dns_decodes")
                try:
                    self._dns = DnsMessage.decode(
                        bytes(self.transport_payload))
                except ValueError:
                    self._dns = None
        return self._dns

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (f"ColumnarView(t={self.timestamp}, "
                f"{self.flow_proto or 'eth'}, "
                f"{self.src_ip}:{self.src_port} -> "
                f"{self.dst_ip}:{self.dst_port}, {self.length}B)")


_EMPTY_INDICES = np.empty(0, np.int64)


class ColumnarSlice:
    """An ordered subset of capture rows (a query result).

    Behaves like the list of packets the object/lazy pipelines return —
    ``len``/iteration/indexing/``==`` — while keeping the underlying
    index array addressable so consumers like the CDF builder can stay
    columnar."""

    __slots__ = ("capture", "indices")

    def __init__(self, capture: ColumnarCapture,
                 indices: Optional[np.ndarray] = None) -> None:
        self.capture = capture
        self.indices = _EMPTY_INDICES if indices is None else indices

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ColumnarSlice(self.capture, self.indices[index])
        return ColumnarView(self.capture, int(self.indices[index]))

    def __iter__(self) -> Iterator[ColumnarView]:
        capture = self.capture
        for index in self.indices.tolist():
            yield ColumnarView(capture, index)

    def __eq__(self, other) -> bool:
        if isinstance(other, ColumnarSlice):
            return (self.capture is other.capture
                    and np.array_equal(self.indices, other.indices))
        if isinstance(other, (list, tuple)):
            if len(other) != len(self.indices):
                return False
            return all(mine is theirs or mine == theirs
                       for mine, theirs in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"ColumnarSlice({len(self.indices)} packets)"
