"""Small shared utilities with no domain dependencies."""

from __future__ import annotations

import os


def atomic_write_bytes(path: str, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (write-then-rename).

    A reader never observes a partially written file: either the old
    content (or absence) or the complete new content.  Both cache layers
    (the grid :class:`~repro.experiments.grid.ResultCache` and campaign
    pcap artifacts) persist through this helper so a crashed run cannot
    leave a readable truncated capture behind.
    """
    temp = path + ".tmp"
    with open(temp, "wb") as fileobj:
        fileobj.write(payload)
    os.replace(temp, path)


def atomic_write_text(path: str, text: str) -> None:
    """UTF-8 text variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))
