"""Output rendering: ASCII tables, terminal plots, CSV/JSON export."""

from .ascii_plot import plot_cdf, plot_timeline, plot_timelines
from .export import (cdf_to_csv, findings_to_json, table_to_csv,
                     timeline_to_csv)
from .tables import kb, render_markdown, render_table

__all__ = [
    "cdf_to_csv",
    "findings_to_json",
    "kb",
    "plot_cdf",
    "plot_timeline",
    "plot_timelines",
    "render_markdown",
    "render_table",
    "table_to_csv",
    "timeline_to_csv",
]
