"""Plain-text / markdown table rendering for benches and examples."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """A padded ASCII table; right-aligns numeric-looking cells."""
    all_rows = [list(map(str, headers))] + [list(map(str, r)) for r in rows]
    widths = [max(len(row[i]) for row in all_rows)
              for i in range(len(headers))]

    def fmt(row: List[str]) -> str:
        cells = []
        for i, cell in enumerate(row):
            if _numericish(cell) and row is not all_rows[0]:
                cells.append(cell.rjust(widths[i]))
            else:
                cells.append(cell.ljust(widths[i]))
        return "| " + " | ".join(cells) + " |"

    separator = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(all_rows[0]))
    lines.append(separator)
    lines.extend(fmt(row) for row in all_rows[1:])
    return "\n".join(lines)


def render_markdown(headers: Sequence[str],
                    rows: Sequence[Sequence[str]]) -> str:
    """GitHub-flavoured markdown table."""
    out = ["| " + " | ".join(map(str, headers)) + " |",
           "|" + "|".join("---" for __ in headers) + "|"]
    out.extend("| " + " | ".join(map(str, row)) + " |" for row in rows)
    return "\n".join(out)


def _numericish(cell: str) -> bool:
    stripped = cell.replace(".", "").replace("-", "").replace("x", "")
    return stripped.isdigit() and cell not in ("-",)


def kb(value: float) -> str:
    """Kilobyte cell formatting matching the paper's tables."""
    return f"{value:.1f}"
