"""Terminal plots: spike timelines (Figures 4/6) and CDF curves (5/7),
plus the small primitives (meters, sparklines, intensity ramp) the live
dashboard (:mod:`repro.obs.dashboard`) composes its frames from."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..analysis.cdf import CumulativeCurve
from ..analysis.timeline import Timeline

#: Intensity ramp shared by spike plots, heatmap cells and sparklines:
#: index 0 is "nothing", the last index is "peak".
BARS = " .:-=+*#%@"
_BARS = BARS  # historical private alias

#: Fixed label column width in stacked timeline plots.
LABEL_WIDTH = 24


def fit_label(label: str, width: int = LABEL_WIDTH) -> str:
    """Pad — or truncate with an ellipsis — to exactly ``width`` columns.

    Long labels used to overflow the fixed ``{label:24s}`` field and
    break column alignment in stacked plots; every labelled plot now
    routes through this.
    """
    if len(label) <= width:
        return f"{label:<{width}s}"
    if width <= 3:
        return label[:width]
    return label[:width - 3] + "..."


def meter(fraction: float, width: int = 20) -> str:
    """A filled horizontal bar, e.g. ``[######--------------]``."""
    if width <= 0:
        return ""
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def sparkline(values: Sequence[float], width: int = 0) -> str:
    """One character per value on the :data:`BARS` ramp, scaled to the
    sequence's own peak (an all-zero sequence renders as spaces).

    With ``width`` set, the sequence is resampled (by max within each
    slice) so the line occupies exactly that many columns.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if width and len(data) > width:
        data = np.array([chunk.max() if len(chunk) else 0.0
                         for chunk in np.array_split(data, width)])
    if len(data) == 0:
        return " " * width
    top = data.max()
    if top <= 0:
        body = " " * len(data)
    else:
        levels = np.ceil(data / top * (len(BARS) - 1)).astype(int)
        body = "".join(BARS[level] for level in levels)
    if width and len(body) < width:
        body = body.ljust(width)
    return body


def plot_timeline(timeline: Timeline, width: int = 80,
                  label: str = "") -> str:
    """A one-line spike plot: each column is a window slice, character
    height encodes the peak packets/ms inside the slice."""
    counts = timeline.counts
    if len(counts) == 0:
        return f"{label} (empty)"
    slices = np.array_split(counts, width)
    peaks = np.array([s.max() if len(s) else 0 for s in slices],
                     dtype=np.float64)
    top = peaks.max()
    if top == 0:
        body = " " * width
    else:
        levels = np.ceil(peaks / top * (len(BARS) - 1)).astype(int)
        body = "".join(BARS[level] for level in levels)
    return f"{fit_label(label)} |{body}| peak={int(top)} pkts/bin"


def plot_timelines(timelines: Sequence[Timeline],
                   labels: Sequence[str], width: int = 80) -> str:
    return "\n".join(plot_timeline(t, width, l)
                     for t, l in zip(timelines, labels))


def plot_cdf(curve: CumulativeCurve, width: int = 60, height: int = 10,
             label: str = "") -> str:
    """A block-character CDF plot (fraction of bytes vs time)."""
    lines: List[str] = []
    if label:
        lines.append(label)
    if len(curve) == 0:
        lines.append("(no traffic)")
        return "\n".join(lines)
    duration = float(curve.times_s[-1]) or 1.0
    grid_t = np.linspace(0.0, duration, width)
    fractions = np.array([curve.value_at(t) for t in grid_t],
                         dtype=np.float64)
    total = curve.total_bytes or 1
    fractions /= total
    for row in range(height, 0, -1):
        threshold = row / height
        line = "".join("#" if f >= threshold - 1e-9 else " "
                       for f in fractions)
        prefix = f"{threshold:4.1f} " if row in (height, 1) else "     "
        lines.append(prefix + "|" + line)
    lines.append("     +" + "-" * width)
    lines.append(f"     0s{'':{max(0, width - 12)}}{duration:.0f}s")
    return "\n".join(lines)
