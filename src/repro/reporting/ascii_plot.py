"""Terminal plots: spike timelines (Figures 4/6) and CDF curves (5/7)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..analysis.cdf import CumulativeCurve
from ..analysis.timeline import Timeline

_BARS = " .:-=+*#%@"


def plot_timeline(timeline: Timeline, width: int = 80,
                  label: str = "") -> str:
    """A one-line spike plot: each column is a window slice, character
    height encodes the peak packets/ms inside the slice."""
    counts = timeline.counts
    if len(counts) == 0:
        return f"{label} (empty)"
    slices = np.array_split(counts, width)
    peaks = np.array([s.max() if len(s) else 0 for s in slices],
                     dtype=np.float64)
    top = peaks.max()
    if top == 0:
        body = " " * width
    else:
        levels = np.ceil(peaks / top * (len(_BARS) - 1)).astype(int)
        body = "".join(_BARS[level] for level in levels)
    return f"{label:24s} |{body}| peak={int(top)} pkts/bin"


def plot_timelines(timelines: Sequence[Timeline],
                   labels: Sequence[str], width: int = 80) -> str:
    return "\n".join(plot_timeline(t, width, l)
                     for t, l in zip(timelines, labels))


def plot_cdf(curve: CumulativeCurve, width: int = 60, height: int = 10,
             label: str = "") -> str:
    """A block-character CDF plot (fraction of bytes vs time)."""
    lines: List[str] = []
    if label:
        lines.append(label)
    if len(curve) == 0:
        lines.append("(no traffic)")
        return "\n".join(lines)
    duration = float(curve.times_s[-1]) or 1.0
    grid_t = np.linspace(0.0, duration, width)
    fractions = np.array([curve.value_at(t) for t in grid_t],
                         dtype=np.float64)
    total = curve.total_bytes or 1
    fractions /= total
    for row in range(height, 0, -1):
        threshold = row / height
        line = "".join("#" if f >= threshold - 1e-9 else " "
                       for f in fractions)
        prefix = f"{threshold:4.1f} " if row in (height, 1) else "     "
        lines.append(prefix + "|" + line)
    lines.append("     +" + "-" * width)
    lines.append(f"     0s{'':{max(0, width - 12)}}{duration:.0f}s")
    return "\n".join(lines)
