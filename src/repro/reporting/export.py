"""CSV/JSON export of analysis artifacts."""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Sequence

from ..analysis.cdf import CumulativeCurve
from ..analysis.timeline import Timeline


def table_to_csv(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def timeline_to_csv(timeline: Timeline) -> str:
    """Columns: bin start (ns, window relative), packet count."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["bin_start_ns", "packets"])
    for index, count in enumerate(timeline.counts):
        if count:
            writer.writerow([index * timeline.bin_ns, int(count)])
    return buffer.getvalue()


def cdf_to_csv(curve: CumulativeCurve) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time_s", "cumulative_bytes"])
    for t, b in zip(curve.times_s, curve.cumulative_bytes):
        writer.writerow([f"{t:.6f}", int(b)])
    return buffer.getvalue()


def findings_to_json(findings: List[Any]) -> str:
    """Serialize ACR-domain findings (or any __slots__ records)."""
    out: List[Dict[str, Any]] = []
    for finding in findings:
        record: Dict[str, Any] = {}
        for slot in getattr(finding, "__slots__", ()):
            value = getattr(finding, slot)
            if hasattr(value, "__slots__"):
                value = repr(value)
            record[slot] = value
        out.append(record)
    return json.dumps(out, indent=2, default=str)
