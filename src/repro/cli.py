"""Command-line interface.

::

    python -m repro.cli run --vendor lg --country uk --scenario linear \
        --phase LIn-OIn --out capture.pcap
    python -m repro.cli audit capture.pcap
    python -m repro.cli scorecard
    python -m repro.cli report > EXPERIMENTS.md
    python -m repro.cli table 2
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import AcrDomainAuditor, AuditPipeline
from .reporting import render_table
from .testbed import (Country, ExperimentSpec, Phase, Scenario, Vendor,
                      run_experiment, validate)

_PHASES = {phase.value: phase for phase in Phase}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ACR smart-TV tracking reproduction (IMC 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="run one experiment cell")
    run_cmd.add_argument("--vendor", choices=[v.value for v in Vendor],
                         default="lg")
    run_cmd.add_argument("--country", choices=[c.value for c in Country],
                         default="uk")
    run_cmd.add_argument("--scenario",
                         choices=[s.value for s in Scenario],
                         default="linear")
    run_cmd.add_argument("--phase", choices=sorted(_PHASES),
                         default="LIn-OIn")
    run_cmd.add_argument("--seed", type=int, default=7)
    run_cmd.add_argument("--minutes", type=int, default=60,
                         help="experiment duration")
    run_cmd.add_argument("--out", default=None,
                         help="write the capture to this pcap path")

    audit_cmd = sub.add_parser("audit",
                               help="audit a pcap file for ACR traffic")
    audit_cmd.add_argument("pcap", help="path to a capture file")

    sub.add_parser("scorecard",
                   help="verify all paper findings (S1-S12); slow")

    sub.add_parser("report",
                   help="print the EXPERIMENTS.md paper-vs-measured "
                        "report; slow")

    table_cmd = sub.add_parser("table",
                               help="regenerate a paper table (2-5)")
    table_cmd.add_argument("number", type=int, choices=[2, 3, 4, 5])
    return parser


def _cmd_run(args) -> int:
    from .sim.clock import minutes as minutes_ns
    spec = ExperimentSpec(Vendor(args.vendor), Country(args.country),
                          Scenario(args.scenario), _PHASES[args.phase],
                          duration_ns=minutes_ns(args.minutes))
    print(f"running {spec.label} ({args.minutes} simulated minutes, "
          f"seed {args.seed})...")
    result = run_experiment(spec, seed=args.seed)
    report = validate(result)
    print(f"captured {result.packet_count} packets "
          f"({len(result.pcap_bytes) / 1e6:.1f} MB); "
          f"validation: {'OK' if report.ok else report.failures}")
    if args.out:
        with open(args.out, "wb") as fileobj:
            fileobj.write(result.pcap_bytes)
        print(f"wrote {args.out}")
    else:
        _print_audit(AuditPipeline.from_result(result))
    return 0


def _print_audit(pipeline: AuditPipeline) -> None:
    auditor = AcrDomainAuditor()
    rows = []
    for finding in auditor.audit(pipeline):
        cadence = finding.periodicity
        rows.append([
            finding.domain,
            f"{pipeline.kilobytes_for(finding.domain):.1f}",
            f"{cadence.period_s:.1f}s" if cadence.period_s else "-",
            "yes" if finding.blocklist_listed else "no",
            "yes" if finding.validated else "no",
        ])
    if rows:
        print(render_table(
            ["ACR domain", "KB", "cadence", "blocklisted", "validated"],
            rows))
    else:
        print("no ACR candidate domains in capture")


def _cmd_audit(args) -> int:
    with open(args.pcap, "rb") as fileobj:
        raw = fileobj.read()
    pipeline = AuditPipeline.from_pcap_bytes(raw)
    print(f"{len(pipeline.packets)} packets; contacted domains: "
          f"{', '.join(pipeline.contacted_domains)}")
    _print_audit(pipeline)
    return 0


def _cmd_scorecard(args) -> int:
    from .experiments import run_all_checks
    failures = 0
    for check in run_all_checks():
        state = "PASS" if check.passed else "FAIL"
        print(f"[{state}] {check.finding_id}: {check.description}")
        print(f"       {check.evidence}")
        failures += not check.passed
    return 1 if failures else 0


def _cmd_report(args) -> int:
    from .experiments.report import generate
    print(generate())
    return 0


def _cmd_table(args) -> int:
    from .experiments import tables_volumes as tv_mod
    from .experiments.tables_volumes import SCENARIO_NAMES
    builder = {2: tv_mod.table2, 3: tv_mod.table3,
               4: tv_mod.table4, 5: tv_mod.table5}[args.number]
    table = builder()
    print(render_table(["Domain"] + SCENARIO_NAMES, table.rows(),
                       title=f"Table {args.number}"))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "audit": _cmd_audit,
    "scorecard": _cmd_scorecard,
    "report": _cmd_report,
    "table": _cmd_table,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
