"""Command-line interface (documented in detail in ``docs/cli.md``).

::

    python -m repro.cli run --vendor lg --country uk --scenario linear \
        --phase LIn-OIn --out capture.pcap
    python -m repro.cli audit capture.pcap
    python -m repro.cli grid --jobs 4 --filter vendor=lg --filter country=uk
    python -m repro.cli grid --jobs 4 --filter vendor=roku,vizio
    python -m repro.cli scorecard --jobs 4 --vendors samsung,lg
    python -m repro.cli report --jobs 4 > EXPERIMENTS.md
    python -m repro.cli table 2
    python -m repro.cli fleet --households 200 --jobs 8 \
        --mix vendor=roku:1,vizio:1,lg:2,samsung:2
    python -m repro.cli serve --households 200 --jobs 8 \
        --checkpoint-dir ck/ --resume
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .analysis import AcrDomainAuditor, AuditPipeline
from .reporting import render_table
from .testbed import (Country, ExperimentSpec, Phase, Scenario, Vendor,
                      run_experiment, validate)

_PHASES = {phase.value: phase for phase in Phase}


def _add_grid_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--jobs", type=int, default=1,
                     help="worker processes for cell execution "
                          "(1 = serial; results are identical)")
    cmd.add_argument("--seed", type=int, default=7)


def _add_vendors_option(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--vendors", default=None, metavar="NAME[,NAME...]",
        help="restrict vendor-specific findings to these vendors "
             f"(choose from {', '.join(v.value for v in Vendor)}; "
             "default: all registered vendors; 'samsung,lg' reproduces "
             "the pre-registry output byte for byte)")


def _parse_vendors(args) -> Optional[List[str]]:
    if not args.vendors:
        return None
    return [name.strip() for name in args.vendors.split(",")
            if name.strip()]


def _add_decode_options(cmd: argparse.ArgumentParser) -> None:
    from .net.tiers import DECODE_TIERS, DEFAULT_DECODE_TIER
    cmd.add_argument(
        "--decode-tier", choices=DECODE_TIERS,
        default=DEFAULT_DECODE_TIER,
        help="packet decode implementation: columnar (array columns, "
             "the fast default), lazy (on-demand per-packet objects) "
             "or object (eager full decode); every tier produces "
             "byte-identical output")


def _apply_decode_tier(args) -> None:
    """Make ``--decode-tier`` the process default, so every pipeline
    this command builds (including memoized grid pipelines) uses it."""
    from .net.tiers import set_decode_tier
    set_decode_tier(args.decode_tier)


def _add_obs_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--dashboard", action="store_true",
                     help="live ANSI status frame on stderr (degrades "
                          "to plain progress lines when stderr is not "
                          "a TTY, NO_COLOR is set, or with --plain)")
    cmd.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write the run's metrics snapshot here as "
                          "JSONL (enables metrics collection)")


def _obs_start(args):
    """Enable the metrics registry when observability was asked for.

    Returns the live registry, or ``None`` — in which case the no-op
    singleton stays active and the run is byte-identical to one without
    these flags.
    """
    if not (getattr(args, "dashboard", False)
            or getattr(args, "metrics_out", None)):
        return None
    from .obs import enable
    return enable()


def _obs_write(args, registry, **meta) -> None:
    """Export --metrics-out (stable JSONL schema; see docs/cli.md)."""
    if registry is None or not args.metrics_out:
        return
    from .obs.metrics import write_metrics_jsonl
    write_metrics_jsonl(args.metrics_out, registry.snapshot(),
                        {"command": args.command, **meta})
    print(f"wrote {args.metrics_out}", file=sys.stderr)


def _obs_stop(registry) -> None:
    if registry is None:
        return
    from .obs import disable
    disable()


def _add_findings_option(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--findings-out", default=None, metavar="PATH",
        help="write the run's findings ledger here as schema-v1 JSONL "
             "(sorted, atomic, byte-identical across --jobs; compare "
             "two exports with `repro.cli findings diff`)")


def _write_findings(args, ledger, **meta) -> None:
    """Export --findings-out (stable JSONL schema; see docs/cli.md).

    ``meta`` deliberately never includes ``--jobs``: the export must be
    byte-identical however many workers produced the ledger.
    """
    if not getattr(args, "findings_out", None):
        return
    from .findings import write_findings_jsonl
    write_findings_jsonl(args.findings_out, ledger,
                         {"command": args.command, **meta})
    print(f"wrote {args.findings_out}", file=sys.stderr)


def _add_fault_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--faults", default=None, metavar="SITE:RATE[,..]",
        help="deterministic fault injection plan, e.g. "
             "'segment.drop:0.2,worker.crash:0.1' (bare SITE means "
             "rate 1.0; see docs/cli.md for the site list and "
             "recovery guarantees)")
    cmd.add_argument(
        "--fault-seed", type=int, default=0, metavar="N",
        help="seed for the fault plan's decision oracle (default 0); "
             "same plan + seed reproduces the exact same failures at "
             "any --jobs")


def _parse_faults(args):
    """``(plan, error_message)`` for the invocation's --faults flags."""
    from .faults import FaultPlan, FaultSpecError, NULL_PLAN
    spec = getattr(args, "faults", None)
    if not spec:
        return NULL_PLAN, None
    try:
        return FaultPlan.parse(spec, seed=args.fault_seed), None
    except FaultSpecError as exc:
        return None, str(exc)


def _add_cache_options(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--cache-dir", default=None,
                     help="result-cache directory "
                          "(default: $REPRO_CACHE_DIR or "
                          "~/.cache/repro-acr/grid)")
    cmd.add_argument("--no-cache", action="store_true",
                     help="always execute; neither read nor write "
                          "the cache")


def _open_cache(args):
    """The result cache an invocation asked for (shared grid/fleet).

    Returns ``(cache, error_message)``; the cache may be ``None`` both
    for ``--no-cache`` and for an unwritable default location.
    """
    from .experiments import grid as grid_mod
    if args.no_cache:
        return None, None
    if args.cache_dir:
        try:
            return grid_mod.ResultCache(args.cache_dir), None
        except OSError as exc:
            return None, f"cannot use cache dir {args.cache_dir}: {exc}"
    # Honors REPRO_CACHE_DIR / REPRO_NO_CACHE and degrades to no
    # caching when the default location is unwritable.
    return grid_mod.default_cache(), None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ACR smart-TV tracking reproduction (IMC 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="run one experiment cell")
    run_cmd.add_argument("--vendor", choices=[v.value for v in Vendor],
                         default="lg")
    run_cmd.add_argument("--country", choices=[c.value for c in Country],
                         default="uk")
    run_cmd.add_argument("--scenario",
                         choices=[s.value for s in Scenario],
                         default="linear")
    run_cmd.add_argument("--phase", choices=sorted(_PHASES),
                         default="LIn-OIn")
    run_cmd.add_argument("--seed", type=int, default=7)
    run_cmd.add_argument("--minutes", type=int, default=60,
                         help="experiment duration")
    run_cmd.add_argument("--out", default=None,
                         help="write the capture to this pcap path")

    audit_cmd = sub.add_parser("audit",
                               help="audit a pcap file for ACR traffic")
    audit_cmd.add_argument("pcap", help="path to a capture file")

    grid_cmd = sub.add_parser(
        "grid",
        help="run an experiment grid in parallel through the result "
             "cache")
    _add_grid_options(grid_cmd)
    grid_cmd.add_argument(
        "--filter", action="append", default=[], metavar="AXIS=VALUE[,..]",
        help="restrict the grid along one axis "
             "(vendor/country/scenario/phase); repeatable")
    grid_cmd.add_argument("--minutes", type=int, default=60,
                          help="simulated minutes per cell")
    grid_cmd.add_argument("--plain", action="store_true",
                          help="with --dashboard: plain progress lines "
                               "instead of the live frame")
    _add_decode_options(grid_cmd)
    _add_obs_options(grid_cmd)
    _add_fault_options(grid_cmd)
    _add_cache_options(grid_cmd)

    fleet_cmd = sub.add_parser(
        "fleet",
        help="simulate and audit a population of households with "
             "streaming aggregation")
    fleet_cmd.add_argument("--households", type=int, default=100,
                           help="population size (default 100)")
    fleet_cmd.add_argument(
        "--mix", action="append", default=[],
        metavar="AXIS=VALUE:WEIGHT[,..]",
        help="population mix for one axis "
             "(vendor/country/phase/diary), e.g. "
             "vendor=lg:3,samsung:1; repeatable; unset axes keep the "
             "default mix")
    fleet_cmd.add_argument("--out", default=None,
                           help="also write the report to this path")
    fleet_cmd.add_argument("--plain", action="store_true",
                           help="plain per-shard progress lines (the "
                                "default without --dashboard; forces "
                                "the dashboard's line mode)")
    fleet_cmd.add_argument(
        "--shm-columns", action="store_true",
        help="with the columnar tier: publish each household's packet "
             "columns to shared memory so other workers (and, with "
             "--shm-keep, later runs) attach instead of re-decoding")
    fleet_cmd.add_argument(
        "--shm-keep", action="store_true",
        help="leave published column segments in shared memory after "
             "the run instead of unlinking them")
    _add_decode_options(fleet_cmd)
    _add_obs_options(fleet_cmd)
    _add_fault_options(fleet_cmd)
    _add_findings_option(fleet_cmd)
    _add_grid_options(fleet_cmd)
    _add_cache_options(fleet_cmd)

    serve_cmd = sub.add_parser(
        "serve",
        help="stream a fleet through the audit service: out-of-order "
             "segment ingestion, bounded memory, checkpoint/resume; "
             "report byte-identical to `fleet --jobs 1`")
    serve_cmd.add_argument("--households", type=int, default=100,
                           help="population size (default 100)")
    serve_cmd.add_argument(
        "--mix", action="append", default=[],
        metavar="AXIS=VALUE:WEIGHT[,..]",
        help="population mix for one axis (same syntax as fleet)")
    serve_cmd.add_argument("--checkpoint-dir", default=None,
                           help="write periodic atomic snapshots here; "
                                "required for --resume")
    serve_cmd.add_argument("--resume", action="store_true",
                           help="restore the checkpoint in "
                                "--checkpoint-dir and continue (also "
                                "grows the fleet in place when "
                                "--households is larger)")
    serve_cmd.add_argument("--checkpoint-every", type=int, default=25,
                           metavar="N",
                           help="snapshot every N completed households "
                                "(default 25; 0 = only on exit)")
    serve_cmd.add_argument("--window", type=int, default=8,
                           help="max households audited concurrently — "
                                "the bounded-memory window (default 8)")
    serve_cmd.add_argument("--credits", type=int, default=4,
                           help="per-household segment credit window "
                                "(default 4)")
    serve_cmd.add_argument("--segments", type=int, default=6,
                           help="capture segments per household "
                                "(default 6)")
    serve_cmd.add_argument("--plain", action="store_true",
                           help="line-per-household progress instead of "
                                "the live status line (for logs/CI)")
    serve_cmd.add_argument("--out", default=None,
                           help="also write the report to this path")
    _add_decode_options(serve_cmd)
    _add_obs_options(serve_cmd)
    _add_fault_options(serve_cmd)
    _add_findings_option(serve_cmd)
    _add_grid_options(serve_cmd)
    _add_cache_options(serve_cmd)

    scorecard_cmd = sub.add_parser(
        "scorecard",
        help="verify the paper findings (S1-S12) plus the extension-"
             "vendor findings (X1-X6); incremental over the grid cache")
    _add_grid_options(scorecard_cmd)
    _add_vendors_option(scorecard_cmd)
    _add_decode_options(scorecard_cmd)
    _add_findings_option(scorecard_cmd)

    report_cmd = sub.add_parser(
        "report",
        help="print the EXPERIMENTS.md paper-vs-measured report; "
             "incremental over the grid cache")
    _add_grid_options(report_cmd)
    _add_vendors_option(report_cmd)
    _add_decode_options(report_cmd)

    table_cmd = sub.add_parser("table",
                               help="regenerate a paper table (2-5)")
    table_cmd.add_argument("number", type=int, choices=[2, 3, 4, 5])

    findings_cmd = sub.add_parser(
        "findings",
        help="work with --findings-out exports (schema-v1 JSONL)")
    findings_sub = findings_cmd.add_subparsers(dest="findings_command",
                                               required=True)
    diff_cmd = findings_sub.add_parser(
        "diff",
        help="compare two findings exports: new regressions, resolved "
             "findings, severity changes (exit 1 on regressions)")
    diff_cmd.add_argument("old", help="baseline findings JSONL")
    diff_cmd.add_argument("new", help="candidate findings JSONL")
    return parser


def _cmd_run(args) -> int:
    from .sim.clock import minutes as minutes_ns
    spec = ExperimentSpec(Vendor(args.vendor), Country(args.country),
                          Scenario(args.scenario), _PHASES[args.phase],
                          duration_ns=minutes_ns(args.minutes))
    print(f"running {spec.label} ({args.minutes} simulated minutes, "
          f"seed {args.seed})...")
    result = run_experiment(spec, seed=args.seed)
    report = validate(result)
    print(f"captured {result.packet_count} packets "
          f"({len(result.pcap_bytes) / 1e6:.1f} MB); "
          f"validation: {'OK' if report.ok else report.failures}")
    if args.out:
        with open(args.out, "wb") as fileobj:
            fileobj.write(result.pcap_bytes)
        print(f"wrote {args.out}")
    else:
        _print_audit(AuditPipeline.from_result(result))
    return 0


def _print_audit(pipeline: AuditPipeline) -> None:
    auditor = AcrDomainAuditor()
    rows = []
    for finding in auditor.audit(pipeline):
        cadence = finding.periodicity
        rows.append([
            finding.domain,
            f"{pipeline.kilobytes_for(finding.domain):.1f}",
            f"{cadence.period_s:.1f}s" if cadence.period_s else "-",
            "yes" if finding.blocklist_listed else "no",
            "yes" if finding.validated else "no",
        ])
    if rows:
        print(render_table(
            ["ACR domain", "KB", "cadence", "blocklisted", "validated"],
            rows))
    else:
        print("no ACR candidate domains in capture")


def _cmd_audit(args) -> int:
    with open(args.pcap, "rb") as fileobj:
        raw = fileobj.read()
    pipeline = AuditPipeline.from_pcap_bytes(raw)
    print(f"{len(pipeline.packets)} packets; contacted domains: "
          f"{', '.join(pipeline.contacted_domains)}")
    _print_audit(pipeline)
    return 0


def _cmd_grid(args) -> int:
    from .experiments import grid as grid_mod
    from .sim.clock import minutes as minutes_ns
    _apply_decode_tier(args)
    try:
        filters = grid_mod.parse_filters(args.filter)
        specs = grid_mod.enumerate_cells(
            filters, duration_ns=minutes_ns(args.minutes))
    except (grid_mod.GridFilterError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print("no cells match the filters", file=sys.stderr)
        return 1
    cache, cache_error = _open_cache(args)
    if cache_error:
        print(f"error: {cache_error}", file=sys.stderr)
        return 2
    faults, fault_error = _parse_faults(args)
    if fault_error:
        print(f"error: {fault_error}", file=sys.stderr)
        return 2
    runner = grid_mod.GridRunner(seed=args.seed, cache=cache,
                                 jobs=args.jobs, faults=faults)
    registry = _obs_start(args)
    print(f"grid: {len(specs)} cells x {args.minutes} simulated minutes, "
          f"seed {args.seed}, {args.jobs} job(s), "
          f"cache {'off' if cache is None else cache.root}")

    dashboard = None
    if args.dashboard:
        from .obs import Dashboard
        dashboard = Dashboard("grid", len(specs), unit="cells",
                              plain=args.plain, registry=registry)
    counts = {"done": 0, "executed": 0, "cached": 0}

    def progress(spec, record):
        counts["done"] += 1
        counts["cached" if record.from_cache else "executed"] += 1
        if dashboard is not None:
            # The dashboard replaces the per-cell log lines.
            dashboard.update(counts["done"],
                             executed=counts["executed"],
                             cached=counts["cached"])
            return
        origin = "cached" if record.from_cache \
            else f"ran {record.elapsed_s:5.1f}s"
        print(f"  [{origin:>10}] {spec.label}: "
              f"{record.packet_count} packets")

    started = time.perf_counter()
    try:
        records = runner.run(specs, progress=progress)
        elapsed = time.perf_counter() - started
        if dashboard is not None:
            dashboard.finish(note=f"done in {elapsed:.1f}s")
        _obs_write(args, registry, cells=len(specs), seed=args.seed,
                   jobs=args.jobs)
    finally:
        _obs_stop(registry)
    executed = sum(not record.from_cache for record in records)
    print(render_table(
        ["cells", "executed", "cache hits", "packets", "pcap MB",
         "wall s"],
        [[len(records), executed, len(records) - executed,
          sum(record.packet_count for record in records),
          f"{sum(record.pcap_len for record in records) / 1e6:.1f}",
          f"{elapsed:.2f}"]],
        title="grid summary"))
    return 0


def _cmd_fleet(args) -> int:
    from . import fleet as fleet_mod
    _apply_decode_tier(args)
    try:
        mixes = fleet_mod.parse_mix(args.mix)
        population = fleet_mod.PopulationSpec(
            args.households, seed=args.seed, mixes=mixes)
    except (fleet_mod.MixError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache, cache_error = _open_cache(args)
    if cache_error:
        print(f"error: {cache_error}", file=sys.stderr)
        return 2
    faults, fault_error = _parse_faults(args)
    if fault_error:
        print(f"error: {fault_error}", file=sys.stderr)
        return 2
    runner = fleet_mod.FleetRunner(cache=cache, jobs=args.jobs,
                                   decode_tier=args.decode_tier,
                                   shm_columns=args.shm_columns,
                                   shm_keep=args.shm_keep,
                                   faults=faults)
    registry = _obs_start(args)
    # Progress and timing go to stderr: the stdout report is a pure
    # function of (population, seed) — byte-identical across --jobs.
    print(f"fleet: {args.households} households, seed {args.seed}, "
          f"{args.jobs} job(s), "
          f"cache {'off' if cache is None else cache.root}",
          file=sys.stderr)

    dashboard = None
    if args.dashboard:
        from .obs import Dashboard
        dashboard = Dashboard("fleet", args.households,
                              unit="households", plain=args.plain,
                              registry=registry)

    def progress(done, total, executed, cached):
        print(f"  shard {done}/{total} "
              f"({executed} executed, {cached} cached)",
              file=sys.stderr)

    def observer(done, total, executed, cached, aggregate):
        dashboard.update(aggregate.households, executed=executed,
                         cached=cached, aggregate=aggregate)

    try:
        result = runner.run(
            population,
            progress=None if dashboard is not None else progress,
            observer=observer if dashboard is not None else None)
        if dashboard is not None:
            dashboard.finish(note=f"done in {result.elapsed_s:.1f}s")
        _obs_write(args, registry, households=args.households,
                   seed=args.seed, jobs=args.jobs)
    finally:
        _obs_stop(registry)
    print(f"fleet done in {result.elapsed_s:.1f}s "
          f"({result.executed} executed, {result.cached} cached)",
          file=sys.stderr)
    report = fleet_mod.render_population_report(result.aggregate,
                                                population)
    print(report, end="")
    if args.out:
        from .util import atomic_write_text
        atomic_write_text(args.out, report)
        print(f"wrote {args.out}", file=sys.stderr)
    _write_findings(args, result.aggregate.findings,
                    households=args.households, seed=args.seed)
    return 0


def _cmd_serve(args) -> int:
    import signal

    from . import fleet as fleet_mod
    from . import service as service_mod
    _apply_decode_tier(args)
    faults, fault_error = _parse_faults(args)
    if fault_error:
        print(f"error: {fault_error}", file=sys.stderr)
        return 2
    try:
        mixes = fleet_mod.parse_mix(args.mix)
        population = fleet_mod.PopulationSpec(
            args.households, seed=args.seed, mixes=mixes)
        config = service_mod.ServiceConfig(
            window=args.window, credits=args.credits,
            segments=args.segments,
            checkpoint_every=args.checkpoint_every,
            faults=faults)
    except (fleet_mod.MixError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume needs --checkpoint-dir", file=sys.stderr)
        return 2
    cache, cache_error = _open_cache(args)
    if cache_error:
        print(f"error: {cache_error}", file=sys.stderr)
        return 2
    registry = _obs_start(args)
    print(f"serve: {args.households} households, seed {args.seed}, "
          f"window {args.window}, {args.jobs} job(s), "
          f"cache {'off' if cache is None else cache.root}, "
          f"checkpoints "
          f"{'off' if not args.checkpoint_dir else args.checkpoint_dir}",
          file=sys.stderr)

    dashboard = None
    if args.dashboard:
        from .obs import Dashboard
        dashboard = Dashboard("serve", args.households,
                              unit="households", plain=args.plain,
                              registry=registry)

    # A SIGTERM/SIGINT requests a graceful stop: the service writes a
    # final checkpoint between events, then unwinds.
    stop = {"requested": False}

    def _request_stop(signum, frame):
        stop["requested"] = True

    previous = [signal.signal(signal.SIGTERM, _request_stop),
                signal.signal(signal.SIGINT, _request_stop)]

    def progress(done, total, executed, cached):
        line = (f"  {done}/{total} households folded "
                f"({executed} executed, {cached} cached)")
        if args.plain:
            print(line, file=sys.stderr)
        else:
            print(f"\r{line}", end="", file=sys.stderr, flush=True)

    def observer(done, total, executed, cached, state):
        dashboard.update(done, executed=executed, cached=cached,
                         aggregate=state)

    try:
        result = service_mod.serve_fleet(
            population, cache=cache, config=config, jobs=args.jobs,
            checkpoint_dir=args.checkpoint_dir, resume=args.resume,
            progress=None if dashboard is not None else progress,
            observer=observer if dashboard is not None else None,
            stop_check=lambda: stop["requested"])
        if dashboard is not None:
            dashboard.finish(note=f"done in {result.elapsed_s:.1f}s")
        _obs_write(args, registry, households=args.households,
                   seed=args.seed, jobs=args.jobs)
    except service_mod.ServiceStopped as exc:
        if not args.plain and dashboard is None:
            print(file=sys.stderr)
        print(f"interrupted: {exc}; checkpoint at {exc.checkpoint}",
              file=sys.stderr)
        return 3
    except service_mod.CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        signal.signal(signal.SIGTERM, previous[0])
        signal.signal(signal.SIGINT, previous[1])
        _obs_stop(registry)
    if not args.plain and dashboard is None:
        print(file=sys.stderr)
    print(f"serve done in {result.elapsed_s:.1f}s "
          f"({result.executed} executed, {result.cached} cached, "
          f"{result.resumed_households} resumed; "
          f"{result.segments_delivered} segments, "
          f"{result.refusals} refusals, peak "
          f"{result.peak_open_households} open households / "
          f"{result.peak_tracked_flows} tracked flows)",
          file=sys.stderr)
    report = fleet_mod.render_population_report(result.state,
                                                population)
    print(report, end="")
    if args.out:
        from .util import atomic_write_text
        atomic_write_text(args.out, report)
        print(f"wrote {args.out}", file=sys.stderr)
    _write_findings(args, result.state.findings,
                    households=args.households, seed=args.seed)
    return 0


def _vendors_selection_error(args) -> Optional[str]:
    """A usage-error message for a bad ``--vendors``, else None.

    Only selection validation sits behind the exit-2 usage error; the
    actual simulation/evaluation runs outside it so an internal
    ValueError surfaces as a traceback, not a bogus usage error.
    """
    from .experiments.findings import selected_checks
    try:
        selected_checks(_parse_vendors(args))
    except ValueError as exc:
        return str(exc)
    return None


def _cmd_scorecard(args) -> int:
    from .experiments import run_all_checks
    from .experiments.findings import render_checks
    _apply_decode_tier(args)
    error = _vendors_selection_error(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    checks = run_all_checks(seed=args.seed, jobs=args.jobs,
                            vendors=_parse_vendors(args))
    sys.stdout.write(render_checks(checks))
    from .experiments.findings import ledger_from_checks
    vendors = _parse_vendors(args)
    _write_findings(args, ledger_from_checks(checks), seed=args.seed,
                    vendors=",".join(vendors) if vendors else "all")
    return 1 if any(not check.passed for check in checks) else 0


def _cmd_report(args) -> int:
    from .experiments.report import generate
    _apply_decode_tier(args)
    error = _vendors_selection_error(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(generate(seed=args.seed, jobs=args.jobs,
                   vendors=_parse_vendors(args)))
    return 0


def _cmd_findings(args) -> int:
    """``findings diff OLD NEW``: exit 0 clean, 1 regression, 2 usage."""
    from .findings import diff_records, read_findings_jsonl
    try:
        __, old_records = read_findings_jsonl(args.old)
        __, new_records = read_findings_jsonl(args.new)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: invalid findings file: {exc}", file=sys.stderr)
        return 2
    diff = diff_records(old_records, new_records)
    sys.stdout.write(diff.render(args.old, args.new))
    return 1 if diff.is_regression else 0


def _cmd_table(args) -> int:
    from .experiments import tables_volumes as tv_mod
    from .experiments.tables_volumes import SCENARIO_NAMES
    builder = {2: tv_mod.table2, 3: tv_mod.table3,
               4: tv_mod.table4, 5: tv_mod.table5}[args.number]
    table = builder()
    print(render_table(["Domain"] + SCENARIO_NAMES, table.rows(),
                       title=f"Table {args.number}"))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "audit": _cmd_audit,
    "grid": _cmd_grid,
    "fleet": _cmd_fleet,
    "serve": _cmd_serve,
    "scorecard": _cmd_scorecard,
    "report": _cmd_report,
    "table": _cmd_table,
    "findings": _cmd_findings,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
