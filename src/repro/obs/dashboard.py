"""The live ANSI terminal observatory over grid, fleet and service runs.

One :class:`Dashboard` renders a box-drawing frame on stderr — overall
progress bar, executed/cached meters, cache hit rate, a vendor×country
ACR-hit heatmap, and a sparkline of ACR upload volume over the run —
redrawn in place (cursor-up + erase) and throttled to a few frames per
second.  Everything in the frame is a *view* over state the run already
maintains: the :class:`~repro.fleet.aggregate.FleetAggregate` /
:class:`~repro.service.state.LiveState` the report is rendered from and
the active :mod:`repro.obs.metrics` snapshot.  The dashboard never
computes a number of its own, so turning it on cannot change a result.

Fallback discipline (ansviewer-style): when stderr is not a TTY, when
``NO_COLOR`` is set, when ``TERM=dumb``, or when the user passes
``--plain``, the dashboard degrades to one plain, byte-stable progress
line per update — safe for logs and CI.

:func:`render_frame` is a pure function of a :class:`DashboardView`, so
frames are golden-testable byte for byte.
"""

from __future__ import annotations

import os
import sys
import time
from collections import OrderedDict
from typing import List, Mapping, Optional, Sequence

from ..reporting.ascii_plot import BARS, fit_label, meter, sparkline

#: Minimum seconds between live redraws (updates in between only
#: refresh the view; the next redraw shows the latest state).
REFRESH_INTERVAL_S = 0.25

_BOLD = "\x1b[1m"
_RESET = "\x1b[0m"


def detect_plain(stream=None, plain: bool = False,
                 environ: Optional[Mapping[str, str]] = None) -> bool:
    """Should output degrade to plain progress lines?

    True for an explicit ``--plain``, ``NO_COLOR`` (any value),
    ``TERM=dumb``, or a stream that is not a terminal.
    """
    if plain:
        return True
    env = os.environ if environ is None else environ
    if env.get("NO_COLOR"):
        return True
    if env.get("TERM", "") == "dumb":
        return True
    stream = stream if stream is not None else sys.stderr
    isatty = getattr(stream, "isatty", None)
    return not (isatty and isatty())


class DashboardView:
    """Everything one frame renders, as plain data (pure-render input)."""

    __slots__ = ("title", "unit", "done", "total", "executed", "cached",
                 "elapsed_s", "snapshot", "aggregate", "spark", "note")

    def __init__(self, title: str, unit: str, done: int, total: int,
                 executed: int = 0, cached: int = 0,
                 elapsed_s: float = 0.0,
                 snapshot: Optional[Mapping] = None,
                 aggregate=None,
                 spark: Sequence[float] = (),
                 note: Optional[str] = None) -> None:
        self.title = title
        self.unit = unit
        self.done = done
        self.total = total
        self.executed = executed
        self.cached = cached
        self.elapsed_s = elapsed_s
        self.snapshot = snapshot
        self.aggregate = aggregate
        self.spark = spark
        self.note = note


# -- pure rendering -----------------------------------------------------------


def _heat_char(rate: float) -> str:
    """One heatmap cell on the shared intensity ramp ('·' = no data)."""
    if rate <= 0:
        return "."
    index = max(1, min(len(BARS) - 1,
                       round(rate * (len(BARS) - 1))))
    return BARS[index]


def _heatmap_lines(aggregate, inner: int) -> List[str]:
    """Vendor×country ACR-hit rates off the aggregate's cross counters."""
    vendors = sorted(aggregate.vendors)
    countries = sorted(aggregate.countries)
    if not vendors or not countries:
        return []
    label_w = max([len("acr heat")] + [len(v) for v in vendors]) + 1
    lines = ["acr heat".ljust(label_w)
             + " ".join(f"{c:>4s}" for c in countries)]
    totals = aggregate.households_by_vendor_country
    hits = aggregate.acr_households_by_vendor_country
    for vendor in vendors:
        cells = []
        for country in countries:
            key = f"{vendor}/{country}"
            total = totals.get(key, 0)
            if not total:
                cells.append(f"{'':>4s}")
            else:
                rate = hits.get(key, 0) / total
                cells.append(f"{_heat_char(rate) * 2:>4s}")
        lines.append(vendor.ljust(label_w) + " ".join(cells))
    return [line[:inner] for line in lines]


def render_frame(view: DashboardView, width: int = 80,
                 color: bool = False) -> str:
    """Render one complete frame (no trailing newline), deterministically
    from the view alone — the golden-frame tests pin this byte for byte."""
    inner = width - 4  # borders plus one space of padding each side
    lines: List[str] = []

    def emit(text: str = "") -> None:
        lines.append(text[:inner])

    total = max(view.total, 1)
    fraction = view.done / total
    bar = meter(fraction, max(10, inner - 34))
    emit(f"progress {bar} {view.done}/{view.total} {view.unit} "
         f"{100.0 * fraction:5.1f}%")
    rate = view.done / view.elapsed_s if view.elapsed_s > 0 else 0.0
    emit(f"executed {view.executed}   cached {view.cached}   "
         f"elapsed {view.elapsed_s:6.1f}s   rate {rate:6.2f}/s")

    counters = (view.snapshot or {}).get("counters", {})
    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    looked = hits + misses
    if looked:
        emit(f"cache    {meter(hits / looked, 20)} "
             f"{100.0 * hits / looked:5.1f}% hit   "
             f"({hits} hit / {misses} miss / "
             f"{counters.get('cache.store', 0)} stored)")
    built = counters.get("decode.columnar.packets", 0)
    attached = counters.get("decode.columnar.shm.attach", 0)
    published = counters.get("decode.columnar.shm.publish", 0)
    skipped = counters.get("decode.columnar.shm.skipped", 0)
    audits = attached + published + skipped
    if audits:
        # Shared-memory reuse meter: fraction of columnar audits that
        # attached published columns instead of decoding the capture.
        emit(f"columns  {meter(attached / audits, 20)} "
             f"{100.0 * attached / audits:5.1f}% shm   "
             f"({attached} attach / {published} publish / "
             f"{skipped} skip)")
    elif built:
        emit(f"columns  {built} pkts decoded (no shared-memory arena)")
    injected = sum(value for name, value in counters.items()
                   if name.startswith("faults.injected."))
    recovered = sum(value for name, value in counters.items()
                    if name.startswith("faults.recovered."))
    degraded = sum(value for name, value in counters.items()
                   if name.startswith("faults.degraded."))
    if injected or recovered or degraded:
        # Fault-injection recovery meter; absent entirely on clean runs
        # so the existing golden frames stay byte-identical.
        fraction = min(1.0, recovered / injected) if injected else 1.0
        emit(f"faults   {meter(fraction, 20)} "
             f"{recovered}/{injected} recovered   "
             f"{degraded} degraded")
    if view.aggregate is not None and view.aggregate.households:
        emit()
        for line in _heatmap_lines(view.aggregate, inner):
            emit(line)
    if view.spark:
        emit()
        emit("uploads  |" + sparkline(view.spark, inner - 11) + "|")
    if view.note:
        emit()
        emit(view.note)

    title = f" {view.title} "
    if color:
        title = f"{_BOLD}{title}{_RESET}"
        pad = len(_BOLD) + len(_RESET)
    else:
        pad = 0
    top = "┌─" + title + "─" * (width - 3 - len(title) + pad) \
        + "┐"
    body = ["│ " + line.ljust(inner) + " │" for line in lines]
    bottom = "└" + "─" * (width - 2) + "┘"
    return "\n".join([top] + body + [bottom])


def render_plain_line(view: DashboardView) -> str:
    """The byte-stable fallback line: progress counts only, no timing,
    so CI logs are reproducible run to run."""
    line = (f"[{view.title}] {view.done}/{view.total} {view.unit} "
            f"({view.executed} executed, {view.cached} cached)")
    if view.note:
        line += f" -- {view.note}"
    return line


# -- the live widget ----------------------------------------------------------


class Dashboard:
    """Owns the redraw loop around :func:`render_frame`.

    ``update`` is cheap to call per completion event; actual terminal
    writes are throttled.  In plain mode every update prints one
    :func:`render_plain_line` instead (so even ``--plain`` runs report
    progress — never silence).
    """

    def __init__(self, title: str, total: int, unit: str = "items",
                 stream=None, width: int = 80, plain: bool = False,
                 refresh_s: float = REFRESH_INTERVAL_S,
                 registry=None) -> None:
        self.title = title
        self.total = total
        self.unit = unit
        self.stream = stream if stream is not None else sys.stderr
        self.width = width
        self.plain = detect_plain(self.stream, plain)
        self.refresh_s = refresh_s
        self._registry = registry
        self._started = time.perf_counter()
        self._last_draw = 0.0
        self._last_height = 0
        self._last_plain = ""
        #: ACR upload volume samples (one per update) for the sparkline.
        self._spark: "OrderedDict[int, float]" = OrderedDict()
        self._view = DashboardView(title, unit, 0, total)

    # -- state ------------------------------------------------------------------

    def update(self, done: int, executed: int = 0, cached: int = 0,
               aggregate=None, note: Optional[str] = None,
               force: bool = False) -> None:
        """Refresh the view; redraw if the throttle window has passed."""
        aggregate = getattr(aggregate, "aggregate", aggregate)
        snapshot = self._registry.snapshot() if self._registry is not None \
            else None
        spark = list(self._view.spark)
        if aggregate is not None:
            previous = sum(self._spark.values())
            self._spark[len(self._spark)] = \
                aggregate.acr_upload_bytes - previous
            spark = list(self._spark.values())
        self._view = DashboardView(
            self.title, self.unit, done, self.total,
            executed=executed, cached=cached,
            elapsed_s=time.perf_counter() - self._started,
            snapshot=snapshot, aggregate=aggregate, spark=spark,
            note=note)
        self._draw(force=force)

    def finish(self, note: Optional[str] = None) -> None:
        """Draw the final frame (always) and leave the cursor below it."""
        if note is not None:
            self._view.note = note
        self._draw(force=True)

    # -- drawing ----------------------------------------------------------------

    def _draw(self, force: bool = False) -> None:
        if self.plain:
            # No throttle: plain output must be a deterministic
            # function of the update sequence (CI logs byte-stable
            # run to run), so every *changed* line prints.
            line = render_plain_line(self._view)
            if line != self._last_plain:
                self._last_plain = line
                print(line, file=self.stream, flush=True)
            return
        now = time.perf_counter()
        if not force and now - self._last_draw < self.refresh_s:
            return
        self._last_draw = now
        frame = render_frame(self._view, width=self.width, color=True)
        lines = frame.split("\n")
        out = []
        if self._last_height:
            out.append(f"\x1b[{self._last_height}F")
        # Erase-to-EOL per line so a shrinking frame leaves no residue.
        out.extend(line + "\x1b[K\n" for line in lines)
        if self._last_height > len(lines):
            out.append("\x1b[0J")
        self.stream.write("".join(out))
        self.stream.flush()
        self._last_height = len(lines)
