"""Observability layer: mergeable metrics plus the terminal observatory.

Two halves, one discipline:

* :mod:`repro.obs.metrics` — counters/gauges/histograms/spans whose
  snapshots merge associatively (the ``FleetAggregate`` discipline), a
  no-op singleton when disabled, and a stable JSONL export.
* :mod:`repro.obs.dashboard` — the live ANSI frame (and its byte-stable
  plain fallback), rendered purely as a *view* over the aggregates and
  metric snapshots the run already maintains.

The dashboard half is loaded lazily (PEP 562): instrumented hot layers
(``net``, ``acr``, ``analysis``, ...) import ``repro.obs.metrics``,
and eagerly importing the renderer here would drag the reporting/
analysis stack into every one of them — a cycle waiting to happen.
"""

from .metrics import (METRICS_SCHEMA_VERSION, MetricsRegistry,
                      NullRegistry, disable, empty_snapshot, enable,
                      get_registry, merge_all_snapshots, merge_snapshots,
                      metrics_enabled, scoped, snapshot_to_jsonl,
                      write_metrics_jsonl)

_DASHBOARD_NAMES = ("Dashboard", "DashboardView", "detect_plain",
                    "render_frame", "render_plain_line")

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "NullRegistry",
    "disable",
    "empty_snapshot",
    "enable",
    "get_registry",
    "merge_all_snapshots",
    "merge_snapshots",
    "metrics_enabled",
    "scoped",
    "snapshot_to_jsonl",
    "write_metrics_jsonl",
] + list(_DASHBOARD_NAMES)


def __getattr__(name):
    if name in _DASHBOARD_NAMES:
        from . import dashboard
        return getattr(dashboard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
