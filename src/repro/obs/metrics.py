"""Metrics core: counters, gauges, histograms, spans — mergeable.

Observability here follows the same discipline as
:class:`~repro.fleet.aggregate.FleetAggregate`: every instrument
accumulates into plain numbers, a :meth:`MetricsRegistry.snapshot` is a
plain dict, and snapshots combine through an associative *and*
commutative :func:`merge_snapshots` —

* **counters** merge by summing,
* **gauges** merge by ``max`` (the peak discipline: a fleet-wide gauge
  is the highest value any shard saw),
* **histograms** have *fixed* bucket bounds per name, so per-bucket
  counts (and count/sum/min/max) merge bucket-wise.

Shard workers therefore collect into a fresh registry and ship the
snapshot back beside their :class:`FleetAggregate`; the parent absorbs
shard snapshots in any order and the totals are independent of
``--jobs`` (``tests/test_obs.py`` asserts this the same way the fleet
suite pins aggregate merges).

The module keeps one *active* registry.  By default it is the
:data:`NULL` no-op singleton: every instrumentation site in the hot
layers calls ``get_registry().inc(...)`` unconditionally, and when
observability is off that is one attribute lookup plus an empty method
— undashboarded runs stay byte-identical and effectively free.
:func:`enable` swaps in a live registry (the CLI does this for
``--dashboard`` / ``--metrics-out``).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Bump on any incompatible change to the snapshot / JSONL schema.
METRICS_SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds, in milliseconds (log-spaced;
#: the last implicit bucket is +inf).  Spans for simulate/decode/
#: checkpoint all land comfortably inside this range.
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0, 10000.0, 30000.0)


class _Histogram:
    """Fixed-bucket histogram: counts per bucket + count/sum/min/max."""

    __slots__ = ("bounds", "bucket_counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def to_dict(self) -> Dict[str, object]:
        return {
            "le": list(self.bounds),
            "counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }


class NullRegistry:
    """The disabled registry: every instrument is a no-op.

    Kept deliberately method-compatible with :class:`MetricsRegistry`
    so call sites never branch.
    """

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def gauge_set(self, name: str, value: float) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                bounds: Tuple[float, ...] = DEFAULT_BUCKETS_MS) -> None:
        pass

    @contextmanager
    def span(self, name: str, clock=None):
        yield

    def absorb(self, snapshot: Optional[Mapping[str, object]]) -> None:
        pass

    def snapshot(self) -> Optional[Dict[str, object]]:
        return None


class MetricsRegistry:
    """A live metrics sink (see the module docstring for merge rules)."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, _Histogram] = {}

    # -- instruments ------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge_set(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def observe(self, name: str, value: float,
                bounds: Tuple[float, ...] = DEFAULT_BUCKETS_MS) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = _Histogram(bounds)
        histogram.observe(value)

    @contextmanager
    def span(self, name: str, clock=None):
        """Time a block: wall ms into ``<name>.wall_ms``, and — given a
        :class:`~repro.sim.clock.Clock` — virtual ms into
        ``<name>.sim_ms``."""
        wall_started = time.perf_counter()
        sim_started = clock.now if clock is not None else None
        try:
            yield
        finally:
            self.observe(f"{name}.wall_ms",
                         (time.perf_counter() - wall_started) * 1e3)
            if sim_started is not None:
                self.observe(f"{name}.sim_ms",
                             (clock.now - sim_started) / 1e6)

    # -- snapshots --------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict, JSON-safe, mergeable view of this registry."""
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: histogram.to_dict()
                           for name, histogram
                           in sorted(self.histograms.items())},
        }

    def absorb(self, snapshot: Optional[Mapping[str, object]]) -> None:
        """Merge a snapshot (e.g. from a shard worker) into this live
        registry, under the same rules as :func:`merge_snapshots`."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge_max(name, value)
        for name, entry in snapshot.get("histograms", {}).items():
            bounds = tuple(entry["le"])
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = _Histogram(bounds)
            elif histogram.bounds != bounds:
                raise ValueError(
                    f"histogram {name!r}: bucket bounds differ")
            for index, count in enumerate(entry["counts"]):
                histogram.bucket_counts[index] += count
            histogram.count += entry["count"]
            histogram.total += entry["sum"]
            for attr, pick in (("minimum", min), ("maximum", max)):
                incoming = entry["min" if attr == "minimum" else "max"]
                if incoming is None:
                    continue
                current = getattr(histogram, attr)
                setattr(histogram, attr,
                        incoming if current is None
                        else pick(current, incoming))


# -- snapshot algebra ---------------------------------------------------------


def empty_snapshot() -> Dict[str, object]:
    """The merge identity."""
    return MetricsRegistry().snapshot()


def merge_snapshots(left: Mapping[str, object],
                    right: Mapping[str, object]) -> Dict[str, object]:
    """Combine two snapshots (associative and commutative)."""
    registry = MetricsRegistry()
    registry.absorb(left)
    registry.absorb(right)
    return registry.snapshot()


def merge_all_snapshots(snapshots: Iterable[Optional[Mapping[str, object]]]
                        ) -> Dict[str, object]:
    """Left-fold :func:`merge_snapshots`; ``None`` entries are skipped."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.absorb(snapshot)
    return registry.snapshot()


# -- the active registry ------------------------------------------------------

#: The process-wide no-op singleton (identity comparison is the
#: "is observability on?" check).
NULL = NullRegistry()

_active = NULL


def get_registry():
    """The active registry (the :data:`NULL` no-op when disabled)."""
    return _active


def metrics_enabled() -> bool:
    return _active is not NULL


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) a live registry as the active one."""
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> None:
    """Back to the no-op singleton."""
    global _active
    _active = NULL


@contextmanager
def scoped(collect: bool = True):
    """A fresh registry active for the duration of the block.

    Yields the registry (or ``None`` when ``collect`` is false) and
    restores the previous active registry on exit.  Shard workers run
    under this so their snapshot contains exactly their own work — in
    forked children *and* in the in-process ``--jobs 1`` path.
    """
    if not collect:
        yield None
        return
    global _active
    previous = _active
    registry = MetricsRegistry()
    _active = registry
    try:
        yield registry
    finally:
        _active = previous


# -- JSONL export -------------------------------------------------------------


def snapshot_to_jsonl(snapshot: Mapping[str, object],
                      meta: Optional[Mapping[str, object]] = None) -> str:
    """Render a snapshot as stable-schema JSONL (one record per line).

    Line 1 is a ``meta`` record carrying the schema version plus any
    caller context (command, population size, ...); then one record per
    counter, gauge and histogram, sorted by kind then name, so the
    export is deterministic given the snapshot.
    ``scripts/check_metrics.py`` validates this schema in CI.
    """
    lines: List[str] = []
    header: Dict[str, object] = {
        "record": "meta",
        "schema": snapshot.get("schema", METRICS_SCHEMA_VERSION),
    }
    for key, value in (meta or {}).items():
        header[key] = value
    lines.append(json.dumps(header, sort_keys=True))
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(json.dumps(
            {"record": "counter", "name": name, "value": value},
            sort_keys=True))
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(json.dumps(
            {"record": "gauge", "name": name, "value": value},
            sort_keys=True))
    for name, entry in sorted(snapshot.get("histograms", {}).items()):
        record = {"record": "histogram", "name": name}
        record.update(entry)
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + "\n"


def write_metrics_jsonl(path: str, snapshot: Mapping[str, object],
                        meta: Optional[Mapping[str, object]] = None) -> None:
    """Atomically write the JSONL export of one snapshot."""
    from ..util import atomic_write_text
    atomic_write_text(path, snapshot_to_jsonl(snapshot, meta))
