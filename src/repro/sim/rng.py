"""Named, seeded random streams.

Every source of randomness in a simulated experiment (boot jitter, payload
padding, link latency, channel zapping...) draws from its own named stream
derived from the experiment seed.  Adding a new consumer of randomness never
perturbs existing streams, which keeps calibrated traffic volumes stable
across code changes — the property the paper's Tables 2-5 comparison relies
on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of independent, reproducible random streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def jitter_ns(self, name: str, base: int, fraction: float = 0.05) -> int:
        """``base`` nanoseconds +/- ``fraction`` uniform jitter.

        The result is clamped to be non-negative, so callers may pass small
        bases without worrying about scheduling in the past.
        """
        if not 0.0 <= fraction < 1.0:
            raise ValueError("fraction must be in [0, 1)")
        stream = self.stream(name)
        spread = int(base * fraction)
        if spread == 0:
            return int(base)
        return max(0, int(base) + stream.randint(-spread, spread))

    def bounded_int(self, name: str, low: int, high: int) -> int:
        """Uniform integer in [low, high] from the named stream."""
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        return self.stream(name).randint(low, high)

    def chance(self, name: str, probability: float) -> bool:
        """Bernoulli draw from the named stream."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        return self.stream(name).random() < probability

    def token_bytes(self, name: str, n: int) -> bytes:
        """``n`` reproducible pseudo-random bytes from the named stream."""
        return self.stream(name).randbytes(n)

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        return RngRegistry(_derive_seed(self.root_seed, f"fork:{name}"))
