"""Event queue and scheduler for the discrete-event simulator.

The event loop is the single source of truth for virtual time.  Components
(TV services, ACR clients, network links) schedule callbacks; the loop pops
them in timestamp order and advances the clock.

Determinism: ties on timestamp are broken by insertion sequence number, so a
run is fully reproducible from its seed regardless of heap internals.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from .clock import Clock


class Event:
    """A scheduled callback.

    Events are cancellable: :meth:`cancel` marks the event dead and the loop
    skips it on pop.  This is how timeouts and interrupted sleeps work.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., Any], args: Tuple[Any, ...]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the loop will not execute it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class EventLoop:
    """Deterministic discrete-event loop.

    Usage::

        loop = EventLoop()
        loop.call_at(clock_ns, fn, arg1)
        loop.call_after(delay_ns, fn)
        loop.run_until(hours(1))
    """

    def __init__(self, start: int = 0) -> None:
        self.clock = Clock(start)
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._executed = 0

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Number of events executed so far."""
        return self._executed

    def call_at(self, time: int, callback: Callable[..., Any],
                *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < {self.clock.now}")
        event = Event(int(time), self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def call_after(self, delay: int, callback: Callable[..., Any],
                   *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self.clock.now + delay, callback, *args)

    def run_until(self, deadline: int) -> None:
        """Execute events up to and including ``deadline``.

        The clock finishes exactly at ``deadline`` even if the queue drains
        early, so capture durations are exact.
        """
        if deadline < self.clock.now:
            raise ValueError("deadline is in the past")
        self._running = True
        try:
            while self._heap and self._heap[0].time <= deadline:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self.clock.advance_to(event.time)
                self._executed += 1
                event.callback(*event.args)
            self.clock.advance_to(deadline)
        finally:
            self._running = False

    def run_to_completion(self, max_events: Optional[int] = None) -> None:
        """Drain the queue entirely (mainly for tests)."""
        self._running = True
        try:
            count = 0
            while self._heap:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self.clock.advance_to(event.time)
                self._executed += 1
                event.callback(*event.args)
                count += 1
                if max_events is not None and count >= max_events:
                    break
        finally:
            self._running = False

    def __repr__(self) -> str:
        return (f"EventLoop(now={self.clock.format()}, "
                f"pending={self.pending}, executed={self._executed})")
