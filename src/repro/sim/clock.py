"""Virtual time for the discrete-event simulator.

All simulation time is kept in integer nanoseconds to avoid floating point
drift over hour-long experiments (the paper's unit of capture is one hour,
and its finest-grained analysis bins packets per *millisecond*, Figure 4).
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SECOND = 1_000_000_000
NS_PER_MINUTE = 60 * NS_PER_SECOND
NS_PER_HOUR = 60 * NS_PER_MINUTE


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * NS_PER_SECOND)


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * NS_PER_MS)


def microseconds(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * NS_PER_US)


def minutes(value: float) -> int:
    """Convert minutes to integer nanoseconds."""
    return round(value * NS_PER_MINUTE)


def hours(value: float) -> int:
    """Convert hours to integer nanoseconds."""
    return round(value * NS_PER_HOUR)


def to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / NS_PER_SECOND


def to_milliseconds(ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds."""
    return ns / NS_PER_MS


class Clock:
    """Monotonic virtual clock owned by a :class:`~repro.sim.events.EventLoop`.

    The clock only moves forward, and only the event loop may advance it.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current virtual time in seconds (for reporting only)."""
        return to_seconds(self._now)

    def advance_to(self, t: int) -> None:
        """Move the clock forward to ``t`` nanoseconds.

        Raises ``ValueError`` on any attempt to move backwards; the event
        loop's heap ordering makes this a programming error, not a runtime
        condition.
        """
        if t < self._now:
            raise ValueError(f"clock moved backwards: {t} < {self._now}")
        self._now = t

    def format(self) -> str:
        """Render the current time as ``HH:MM:SS.mmm`` for logs."""
        total_ms, __ = divmod(self._now, NS_PER_MS)
        total_s, ms = divmod(total_ms, 1000)
        h, rem = divmod(total_s, 3600)
        m, s = divmod(rem, 60)
        return f"{h:02d}:{m:02d}:{s:02d}.{ms:03d}"

    def __repr__(self) -> str:
        return f"Clock({self.format()})"
