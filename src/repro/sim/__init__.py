"""Discrete-event simulation core.

The testbed (:mod:`repro.testbed`) runs every experiment on this engine: a
virtual :class:`~repro.sim.clock.Clock`, a deterministic
:class:`~repro.sim.events.EventLoop`, generator-based
:class:`~repro.sim.process.Process` objects for device behaviour, and named
seeded random streams (:class:`~repro.sim.rng.RngRegistry`).
"""

from .clock import (
    Clock,
    NS_PER_HOUR,
    NS_PER_MINUTE,
    NS_PER_MS,
    NS_PER_SECOND,
    NS_PER_US,
    hours,
    microseconds,
    milliseconds,
    minutes,
    seconds,
    to_milliseconds,
    to_seconds,
)
from .events import Event, EventLoop
from .process import Process, Signal, Sleep, WaitFor, spawn
from .rng import RngRegistry

__all__ = [
    "Clock",
    "Event",
    "EventLoop",
    "Process",
    "RngRegistry",
    "Signal",
    "Sleep",
    "WaitFor",
    "NS_PER_HOUR",
    "NS_PER_MINUTE",
    "NS_PER_MS",
    "NS_PER_SECOND",
    "NS_PER_US",
    "hours",
    "microseconds",
    "milliseconds",
    "minutes",
    "seconds",
    "spawn",
    "to_milliseconds",
    "to_seconds",
]
