"""Generator-based processes on top of the event loop.

A process is a Python generator that yields *commands*; the scheduler
interprets each command and resumes the generator when it is satisfied.
This gives device models a readable, sequential style::

    def acr_loop(proc):
        while True:
            yield Sleep(seconds(15))
            client.flush_batch()

Supported commands:

* :class:`Sleep` — resume after a virtual-time delay.
* :class:`WaitFor` — resume when a :class:`Signal` fires.

Processes can be stopped (e.g. when the TV powers off); a stopped process
never resumes.
"""

from __future__ import annotations

from typing import Any, Generator, Iterator, List, Optional

from .events import Event, EventLoop


class Sleep:
    """Yield command: suspend the process for ``delay`` nanoseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: int) -> None:
        if delay < 0:
            raise ValueError("negative sleep")
        self.delay = int(delay)


class WaitFor:
    """Yield command: suspend until ``signal`` fires."""

    __slots__ = ("signal",)

    def __init__(self, signal: "Signal") -> None:
        self.signal = signal


class Signal:
    """A broadcast wake-up primitive.

    ``fire(value)`` resumes every process currently waiting on the signal,
    delivering ``value`` as the result of the ``yield``.
    """

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._waiters: List["Process"] = []

    def fire(self, value: Any = None) -> int:
        """Wake all waiters; returns the number of processes resumed."""
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            # Resume via the loop so wake-ups are ordered deterministically.
            self._loop.call_after(0, proc._resume, value)
        return len(waiters)

    def _register(self, proc: "Process") -> None:
        self._waiters.append(proc)


ProcessBody = Generator[Any, Any, None]


class Process:
    """A running generator bound to an event loop."""

    def __init__(self, loop: EventLoop, body: ProcessBody,
                 name: str = "proc") -> None:
        self.loop = loop
        self.name = name
        self._body: Optional[Iterator[Any]] = body
        self._pending_event: Optional[Event] = None
        self.finished = False
        self.stopped = False

    def start(self) -> "Process":
        """Schedule the first step at the current virtual time."""
        self._pending_event = self.loop.call_after(0, self._resume, None)
        return self

    def stop(self) -> None:
        """Terminate the process; it will never resume."""
        self.stopped = True
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._body is not None:
            self._body.close()
            self._body = None
        self.finished = True

    @property
    def alive(self) -> bool:
        """True while the process can still make progress."""
        return not self.finished and not self.stopped

    def _resume(self, value: Any) -> None:
        if self.stopped or self._body is None:
            return
        self._pending_event = None
        try:
            command = self._body.send(value)
        except StopIteration:
            self.finished = True
            self._body = None
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Sleep):
            self._pending_event = self.loop.call_after(
                command.delay, self._resume, None)
        elif isinstance(command, WaitFor):
            command.signal._register(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported command: "
                f"{command!r}")

    def __repr__(self) -> str:
        if self.stopped:
            state = "stopped"
        elif self.finished:
            state = "finished"
        else:
            state = "running"
        return f"Process({self.name!r}, {state})"


def spawn(loop: EventLoop, body: ProcessBody, name: str = "proc") -> Process:
    """Create and start a process in one call."""
    return Process(loop, body, name).start()
