"""Payload inspection over decrypted MITM traffic.

Once the proxy yields plaintext, the auditor can finally answer what the
black-box study could not: *what exactly do ACR payloads contain?*  The
inspector classifies each message, parses fingerprint batches with the
real codec, and scans for identifiers (the advertising ID that §4.2
conjectures ACR keys on).
"""

from __future__ import annotations

import json
import math
import re
from collections import Counter
from typing import Dict, List, Optional

from ..acr.fingerprint import FingerprintBatch
from .proxy import MitmProxy, PlaintextRecord

_UUID_RE = re.compile(
    rb"[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}")

KIND_ACR_BATCH = "acr-fingerprint-batch"
KIND_JSON_LOG = "json-telemetry"
KIND_KEEPALIVE = "keepalive"
KIND_UNKNOWN = "opaque"


def shannon_entropy(data: bytes) -> float:
    """Bits per byte; near 8 looks encrypted/compressed, low looks
    structured."""
    if not data:
        return 0.0
    counts = Counter(data)
    total = len(data)
    return -sum((n / total) * math.log2(n / total)
                for n in counts.values())


class InspectedMessage:
    """The inspector's verdict on one plaintext record."""

    __slots__ = ("record", "kind", "batch", "json_body", "identifiers",
                 "entropy")

    def __init__(self, record: PlaintextRecord, kind: str,
                 batch: Optional[FingerprintBatch],
                 json_body: Optional[dict],
                 identifiers: List[str], entropy: float) -> None:
        self.record = record
        self.kind = kind
        self.batch = batch
        self.json_body = json_body
        self.identifiers = identifiers
        self.entropy = entropy

    def __repr__(self) -> str:
        return (f"InspectedMessage({self.record.domain}, {self.kind}, "
                f"{len(self.identifiers)} ids)")


def inspect_record(record: PlaintextRecord) -> InspectedMessage:
    """Classify and parse one plaintext message."""
    data = record.plaintext
    identifiers = [m.decode("ascii")
                   for m in _UUID_RE.findall(data.lower())]
    batch = None
    json_body = None
    if data[:4] == FingerprintBatch.MAGIC:
        try:
            batch = FingerprintBatch.decode(data)
            kind = KIND_ACR_BATCH
        except ValueError:
            kind = KIND_UNKNOWN
    elif data[:1] == b"{":
        try:
            json_body = json.loads(data.decode("utf-8"))
            kind = KIND_JSON_LOG
        except (UnicodeDecodeError, json.JSONDecodeError):
            kind = KIND_UNKNOWN
    elif len(data) <= 64:
        kind = KIND_KEEPALIVE
    else:
        kind = KIND_UNKNOWN
    if json_body:
        for value in _iter_strings(json_body):
            if _UUID_RE.match(value.lower().encode("ascii")):
                identifiers.append(value.lower())
    return InspectedMessage(record, kind, batch, json_body,
                            sorted(set(identifiers)),
                            shannon_entropy(data))


def _iter_strings(obj) -> List[str]:
    out: List[str] = []
    if isinstance(obj, str):
        out.append(obj)
    elif isinstance(obj, dict):
        for value in obj.values():
            out.extend(_iter_strings(value))
    elif isinstance(obj, list):
        for value in obj:
            out.extend(_iter_strings(value))
    return out


class DomainPayloadReport:
    """Aggregate payload findings for one domain."""

    __slots__ = ("domain", "messages", "kinds", "identifiers",
                 "total_captures", "capture_cadence_ms")

    def __init__(self, domain: str,
                 messages: List[InspectedMessage]) -> None:
        self.domain = domain
        self.messages = messages
        self.kinds = Counter(m.kind for m in messages)
        self.identifiers = sorted({identifier for m in messages
                                   for identifier in m.identifiers})
        batches = [m.batch for m in messages if m.batch is not None]
        self.total_captures = sum(len(b) for b in batches)
        cadences = []
        for batch in batches:
            offsets = sorted(c.offset_ns for c in batch.captures)
            cadences.extend((b - a) / 1e6
                            for a, b in zip(offsets, offsets[1:]))
        self.capture_cadence_ms = (sorted(cadences)[len(cadences) // 2]
                                   if cadences else None)

    @property
    def carries_fingerprints(self) -> bool:
        return self.kinds.get(KIND_ACR_BATCH, 0) > 0

    def __repr__(self) -> str:
        return (f"DomainPayloadReport({self.domain}, kinds="
                f"{dict(self.kinds)}, ids={len(self.identifiers)})")


class PayloadInspector:
    """Runs the inspection over everything a proxy decrypted."""

    def __init__(self, proxy: MitmProxy) -> None:
        self.proxy = proxy

    def inspect_all(self) -> Dict[str, DomainPayloadReport]:
        by_domain: Dict[str, List[InspectedMessage]] = {}
        for record in self.proxy.records:
            by_domain.setdefault(record.domain, []).append(
                inspect_record(record))
        return {domain: DomainPayloadReport(domain, messages)
                for domain, messages in by_domain.items()}

    def device_identifiers(self) -> List[str]:
        """Every identifier observed anywhere in decrypted payloads."""
        out = set()
        for report in self.inspect_all().values():
            out.update(report.identifiers)
        return sorted(out)

    def fingerprint_domains(self) -> List[str]:
        """Domains whose payloads actually carry fingerprint batches —
        ground truth for what the wire-level heuristic inferred."""
        return sorted(domain for domain, report
                      in self.inspect_all().items()
                      if report.carries_fingerprints)
