"""The MITM interception proxy and its plaintext tap.

Deployed at the access point, the proxy terminates the TV's TLS sessions
with testbed-CA certificates and re-encrypts upstream.  Whether a given
session yields plaintext depends on the client's trust store:

* CA installed + host not pinned  -> full plaintext visibility;
* host pinned                     -> the client detects the forged
  certificate; the proxy falls back to pass-through (bytes flow, no
  plaintext) — mitmproxy's behaviour for pinned apps;
* CA not installed                -> pass-through for everything.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .ca import CertificateAuthority, TESTBED_CA, TrustStore


class PlaintextRecord:
    """One decrypted application message."""

    __slots__ = ("at_ns", "domain", "direction", "plaintext")

    def __init__(self, at_ns: int, domain: str, direction: str,
                 plaintext: bytes) -> None:
        if direction not in ("request", "response"):
            raise ValueError(f"bad direction: {direction!r}")
        self.at_ns = at_ns
        self.domain = domain
        self.direction = direction
        self.plaintext = plaintext

    def __len__(self) -> int:
        return len(self.plaintext)

    def __repr__(self) -> str:
        return (f"PlaintextRecord({self.domain}, {self.direction}, "
                f"{len(self.plaintext)}B @ {self.at_ns / 1e9:.0f}s)")


class InterceptionStats:
    """Per-domain interception accounting."""

    __slots__ = ("intercepted", "passthrough")

    def __init__(self) -> None:
        self.intercepted = 0
        self.passthrough = 0

    @property
    def total(self) -> int:
        return self.intercepted + self.passthrough

    def __repr__(self) -> str:
        return (f"InterceptionStats(intercepted={self.intercepted}, "
                f"passthrough={self.passthrough})")


class MitmProxy:
    """TLS-terminating proxy with pinning-aware fallback."""

    def __init__(self, trust_store: TrustStore,
                 ca: CertificateAuthority = TESTBED_CA) -> None:
        self.trust_store = trust_store
        self.ca = ca
        self.records: List[PlaintextRecord] = []
        self.stats: Dict[str, InterceptionStats] = {}

    def can_intercept(self, domain: str) -> bool:
        """Would this client accept our forged leaf for ``domain``?"""
        forged = self.ca.issue(domain)
        return self.trust_store.accepts(forged, domain)

    def observe(self, at_ns: int, domain: str,
                request_plaintext: Optional[bytes],
                response_plaintext: Optional[bytes]) -> bool:
        """Called per application exchange; returns True if decrypted."""
        stats = self.stats.setdefault(domain, InterceptionStats())
        if not self.can_intercept(domain):
            stats.passthrough += 1
            return False
        stats.intercepted += 1
        if request_plaintext is not None:
            self.records.append(PlaintextRecord(
                at_ns, domain, "request", request_plaintext))
        if response_plaintext is not None:
            self.records.append(PlaintextRecord(
                at_ns, domain, "response", response_plaintext))
        return True

    # -- queries -----------------------------------------------------------

    def records_for(self, domain: str) -> List[PlaintextRecord]:
        return [r for r in self.records if r.domain == domain]

    @property
    def intercepted_domains(self) -> List[str]:
        return sorted(d for d, s in self.stats.items()
                      if s.intercepted > 0)

    @property
    def opaque_domains(self) -> List[str]:
        """Domains the proxy saw but could not decrypt (pinned)."""
        return sorted(d for d, s in self.stats.items()
                      if s.passthrough > 0 and s.intercepted == 0)

    def __repr__(self) -> str:
        return (f"MitmProxy({len(self.records)} plaintext records, "
                f"{len(self.intercepted_domains)} domains open, "
                f"{len(self.opaque_domains)} pinned)")
