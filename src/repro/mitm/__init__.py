"""MITM payload-inspection substrate — the paper's stated future work:
"explore more advanced MITM techniques to understand the payload of ACR
network traffic".

A pinning-aware TLS-terminating proxy (:mod:`repro.mitm.proxy`) yields
plaintext for non-pinned hosts; the inspector (:mod:`repro.mitm.inspect`)
classifies payloads, parses fingerprint batches, and extracts device
identifiers."""

from .ca import (Certificate, CertificateAuthority, OPERATOR_CA,
                 PINNED_DOMAINS, TESTBED_CA, TrustStore)
from .inspect import (DomainPayloadReport, InspectedMessage,
                      KIND_ACR_BATCH, KIND_JSON_LOG, KIND_KEEPALIVE,
                      KIND_UNKNOWN, PayloadInspector, inspect_record,
                      shannon_entropy)
from .proxy import InterceptionStats, MitmProxy, PlaintextRecord

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "DomainPayloadReport",
    "InspectedMessage",
    "InterceptionStats",
    "KIND_ACR_BATCH",
    "KIND_JSON_LOG",
    "KIND_KEEPALIVE",
    "KIND_UNKNOWN",
    "MitmProxy",
    "OPERATOR_CA",
    "PINNED_DOMAINS",
    "PayloadInspector",
    "PlaintextRecord",
    "TESTBED_CA",
    "TrustStore",
    "inspect_record",
    "shannon_entropy",
]
