"""Testbed certificate authority and certificate-pinning model.

The paper's future work: "we plan to explore more advanced man-in-the-
middle (MITM) techniques to understand the payload of ACR network
traffic."  A MITM proxy only sees plaintext when the client trusts the
proxy's CA *and* does not pin the operator certificate.  Real smart-TV
clients pin inconsistently — which is exactly the partial-visibility
situation this module models.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping
from typing import Dict, List, Optional, Set


class Certificate:
    """A simulated X.509 leaf: subject, issuer, stable fingerprint."""

    __slots__ = ("subject", "issuer", "fingerprint")

    def __init__(self, subject: str, issuer: str) -> None:
        self.subject = subject.lower()
        self.issuer = issuer
        digest = hashlib.sha256(
            f"{issuer}/{subject}".encode("ascii")).hexdigest()
        self.fingerprint = digest[:40]

    def __repr__(self) -> str:
        return (f"Certificate({self.subject!r} by {self.issuer!r}, "
                f"fp={self.fingerprint[:12]}...)")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Certificate)
                and other.fingerprint == self.fingerprint)

    def __hash__(self) -> int:
        return hash(("cert", self.fingerprint))


class CertificateAuthority:
    """Issues leaves; the testbed CA impersonates operator domains."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._issued: Dict[str, Certificate] = {}

    def issue(self, subject: str) -> Certificate:
        subject = subject.lower()
        cert = self._issued.get(subject)
        if cert is None:
            cert = Certificate(subject, self.name)
            self._issued[subject] = cert
        return cert

    @property
    def issued_count(self) -> int:
        return len(self._issued)

    def __repr__(self) -> str:
        return f"CertificateAuthority({self.name!r}, {self.issued_count})"


OPERATOR_CA = CertificateAuthority("DigiCert-like Operator CA")
TESTBED_CA = CertificateAuthority("Testbed MITM CA")

class _RegistryPins(Mapping):
    """Live view of each vendor profile's declared certificate pins.

    Resolves through the registry on every access (like every other
    vendor-dispatch site) so vendors registered after this module's
    import are still covered.
    """

    def __getitem__(self, vendor: str) -> Set[str]:
        from ..tv import vendors
        return set(vendors.get(vendor).pinned_domains)

    def __iter__(self):
        from ..tv import vendors
        return iter(vendors.vendor_names())

    def __len__(self) -> int:
        from ..tv import vendors
        return len(vendors.vendor_names())


# Which hostnames each vendor's clients pin to the operator certificate,
# as declared on the vendor profiles: Samsung pins its fingerprint
# ingestion endpoints (uploads are the sensitive channel); LG's webOS
# client validates against the system trust store only, so a
# user-installed CA intercepts everything.
PINNED_DOMAINS: Mapping = _RegistryPins()


class TrustStore:
    """A client's certificate validation policy."""

    def __init__(self, vendor: str,
                 extra_roots: Optional[List[CertificateAuthority]] = None,
                 pinned: Optional[Set[str]] = None) -> None:
        self.vendor = vendor
        self.roots = [OPERATOR_CA] + list(extra_roots or [])
        self.pinned = (set(pinned) if pinned is not None
                       else set(PINNED_DOMAINS.get(vendor, set())))

    def install_root(self, ca: CertificateAuthority) -> None:
        if ca not in self.roots:
            self.roots.append(ca)

    def accepts(self, cert: Certificate, expected_subject: str) -> bool:
        """Standard validation: matching subject, trusted issuer, and —
        for pinned hosts — the *operator* certificate specifically."""
        if cert.subject != expected_subject.lower():
            return False
        if cert.issuer not in [ca.name for ca in self.roots]:
            return False
        if expected_subject.lower() in self.pinned:
            return cert == OPERATOR_CA.issue(expected_subject)
        return True

    def __repr__(self) -> str:
        return (f"TrustStore({self.vendor}, {len(self.roots)} roots, "
                f"{len(self.pinned)} pinned)")
