"""Deterministic, seed-derived fault plans.

A :class:`FaultPlan` is the single source of truth for *whether* a fault
fires at a given site.  Every decision is a pure function of
``(fault seed, site, coordinates)`` — the coordinates are stable
identities (household index, segment seq, record index, attempt
number), never execution order, wall clock, or process identity — so

* the same plan injects the *same* faults on every run (reproducible
  chaos: a failure found under ``--faults ... --fault-seed 3`` replays
  exactly);
* injection totals are invariant under ``--jobs``: a decision made in a
  pool worker and the same decision made in-process agree bit for bit
  (``tests/test_obs.py`` pins this the same way it pins metric totals).

Decisions hash through SHA-256, mirroring how
:mod:`repro.fleet.population` derives household attributes: the first 8
digest bytes, scaled to [0, 1), compare against the site's rate.

The fault-spec grammar (the CLI's ``--faults`` argument) is a
comma-separated list of ``site:rate`` entries::

    segment.drop:0.2,worker.crash:0.1,checkpoint.torn:0.5

Rates are floats in [0, 1].  A bare ``site`` (no rate) means ``1.0`` —
"always", which for retried sites still converges because injection is
*bounded*: sites consulted through :meth:`FaultPlan.fires_bounded` stop
firing after :data:`FAULT_ATTEMPT_CAP` attempts, so the final retry of
any bounded-retry loop is guaranteed clean and recovery is total.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Mapping, Tuple

#: Attempts after which a bounded site stops injecting.  Every
#: retry-with-backoff loop in the stack retries at least this many
#: times, which is what makes recovery from injected crash/drop/
#: starvation faults *guaranteed* rather than probabilistic.
FAULT_ATTEMPT_CAP = 4

#: Every injection site the engine knows, with the layer it lives in.
#: Parsing refuses unknown sites so a typoed plan fails loudly instead
#: of silently injecting nothing.
FAULT_SITES: Dict[str, str] = {
    # decode layer (lossy: quarantined rows become degradation records)
    "pcap.truncate": "net: truncate a capture segment mid-record",
    "pcap.corrupt": "net: corrupt one record's frame header",
    # segment bus / arrival schedule (lossless: bus + retries recover)
    "segment.drop": "service: drop a segment offer (producer resends)",
    "segment.dup": "service: deliver a segment twice (bus dedups)",
    "segment.reorder": "service: scramble a segment's arrival time",
    "segment.starve": "service: refuse an admissible offer (no credit)",
    # capture production (lossless: bounded retry with backoff)
    "worker.crash": "fleet/service: capture production dies mid-task",
    "worker.hang": "fleet/service: capture production hangs (timeout)",
    # checkpoint durability (lossless: fallback to last valid snapshot)
    "checkpoint.torn": "service: checkpoint write torn mid-payload",
    "checkpoint.corrupt": "service: checkpoint bytes corrupted on disk",
    # shared-memory arena (lossless: attach falls back to re-decode)
    "shm.vanish": "fleet: column segment unlinked before attach",
}

_SCALE = float(1 << 64)


class FaultSpecError(ValueError):
    """A ``--faults`` spec string that doesn't parse or names an
    unknown site."""


class FaultPlan:
    """Per-site injection rates plus the deterministic decision oracle.

    Falsy when every rate is zero (the :data:`NULL_PLAN` case), so hot
    paths can guard injection behind a single ``if plan:`` check and a
    fault-free run never hashes anything.
    """

    __slots__ = ("rates", "seed")

    def __init__(self, rates: Mapping[str, float] = (),
                 seed: int = 0) -> None:
        validated: Dict[str, float] = {}
        for site, rate in dict(rates).items():
            if site not in FAULT_SITES:
                raise FaultSpecError(
                    f"unknown fault site {site!r} (choose from "
                    f"{', '.join(sorted(FAULT_SITES))})")
            rate = float(rate)
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(
                    f"fault rate for {site} must be in [0, 1]: {rate}")
            if rate:
                validated[site] = rate
        self.rates = validated
        self.seed = int(seed)

    # -- construction -----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse the ``site:rate[,site:rate...]`` grammar."""
        rates: Dict[str, float] = {}
        for entry in (spec or "").split(","):
            entry = entry.strip()
            if not entry:
                continue
            site, colon, rate_text = entry.partition(":")
            site = site.strip()
            if colon:
                try:
                    rate = float(rate_text)
                except ValueError:
                    raise FaultSpecError(
                        f"bad fault rate in {entry!r}") from None
            else:
                rate = 1.0
            if site in rates:
                raise FaultSpecError(f"duplicate fault site {site!r}")
            rates[site] = rate
        return cls(rates, seed=seed)

    def as_tuple(self) -> Tuple:
        """Primitive form for process-pool payloads."""
        return (tuple(sorted(self.rates.items())), self.seed)

    @classmethod
    def from_tuple(cls, values: Tuple) -> "FaultPlan":
        rates, seed = values
        return cls(dict(rates), seed=seed)

    # -- the decision oracle ----------------------------------------------------

    def draw(self, site: str, *coords) -> float:
        """A deterministic uniform draw in [0, 1) for ``(site, coords)``."""
        message = ":".join(
            [str(self.seed), site] + [str(value) for value in coords])
        digest = hashlib.sha256(message.encode()).digest()
        return int.from_bytes(digest[:8], "big") / _SCALE

    def fires(self, site: str, *coords) -> bool:
        """Does the fault at ``site`` fire for these coordinates?"""
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self.draw(site, *coords) < rate

    def fires_bounded(self, site: str, attempt: int, *coords) -> bool:
        """Like :meth:`fires`, but never past :data:`FAULT_ATTEMPT_CAP`
        attempts — the convergence guarantee for retried sites."""
        return attempt < FAULT_ATTEMPT_CAP \
            and self.fires(site, *coords, attempt)

    def rate(self, site: str) -> float:
        return self.rates.get(site, 0.0)

    # -- misc -------------------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.rates)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FaultPlan)
                and self.rates == other.rates
                and self.seed == other.seed)

    def __repr__(self) -> str:
        inner = ",".join(f"{site}:{rate:g}"
                         for site, rate in sorted(self.rates.items()))
        return f"FaultPlan({inner or 'off'}, seed={self.seed})"


#: The shared empty plan: falsy, never fires, allocation-free to check.
NULL_PLAN = FaultPlan()
