"""Fault injection transforms and the quarantine (salvage) decoder.

Two halves:

* **Injection** — pure, deterministic transforms driven by a
  :class:`~repro.faults.plan.FaultPlan`: tamper a pcap segment
  (truncate mid-record / corrupt one frame header) or raise an
  :class:`InjectedFault` where a worker would crash or hang.  Injected
  pcap damage is constructed so *both* decode tiers detect it (a
  structural ``PcapError`` or a frame ``ValueError``) before any
  pipeline state mutates — which is what lets the ingest layer
  quarantine and re-apply safely.

* **Salvage** — :func:`salvage_pcap_bytes`, the hardening that turns a
  corrupt capture from an abort into a counted degradation: walk the
  record stream tolerantly, probe every frame with the same defensive
  decode the analysis tiers use, keep the good records byte-for-byte,
  and report each dropped record with evidence (index + reason).
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..net.packet import LazyPacket
from ..net.pcap import GLOBAL_HEADER, RECORD_HEADER, PcapError, \
    parse_global_header
from ..obs.metrics import get_registry
from .plan import FaultPlan

_NS_PER_US = 1_000
_NS_PER_S = 1_000_000_000

#: Record-length sanity bound for the tolerant salvage walk (matches
#: the strict readers' "implausible record length" ceiling at the
#: maximum snaplen).
_MAX_RECORD_LEN = 65535 + 65536


class InjectedFault(RuntimeError):
    """A simulated infrastructure failure (worker crash or hang).

    Raised *inside* the failing component — in a pool worker it really
    crosses the process boundary — so the recovery path exercised is
    the one a genuine failure would take.
    """

    def __init__(self, site: str, attempt: int) -> None:
        super().__init__(f"injected {site} (attempt {attempt})")
        self.site = site
        self.attempt = attempt

    def __reduce__(self):
        return (InjectedFault, (self.site, self.attempt))


def maybe_raise_worker_fault(plan: FaultPlan, attempt: int,
                             *coords) -> None:
    """Raise :class:`InjectedFault` when a worker-level fault fires.

    Consulted once per production attempt with stable coordinates; the
    bounded oracle guarantees some attempt under
    :data:`~repro.faults.plan.FAULT_ATTEMPT_CAP` runs clean.
    """
    for site in ("worker.crash", "worker.hang"):
        if plan.fires_bounded(site, attempt, *coords):
            raise InjectedFault(site, attempt)


def produce_with_retries(plan: FaultPlan, coords: Tuple, produce):
    """Run ``produce()`` under bounded injected crash/hang retries.

    The in-process twin of the daemon's pool resubmission loop: counts
    ``faults.injected.worker.*`` per failed attempt and
    ``faults.recovered.worker.*`` once the retry succeeds, and returns
    ``(result, sites that fired)`` so callers can convert each failure
    into its kind of virtual-time backoff.
    """
    registry = get_registry()
    injected: List[str] = []
    attempt = 0
    while True:
        try:
            maybe_raise_worker_fault(plan, attempt, *coords)
        except InjectedFault as fault:
            injected.append(fault.site)
            registry.inc(f"faults.injected.{fault.site}")
            registry.inc("retry.worker.attempts")
            attempt += 1
            continue
        result = produce()
        for site in injected:
            registry.inc(f"faults.recovered.{site}")
        return result, injected


# -- pcap tampering -----------------------------------------------------------


def _record_spans(raw: bytes) -> List[Tuple[int, int]]:
    """(start, end) byte spans of every complete record, tolerantly
    (stops at the first structural break instead of raising)."""
    spans: List[Tuple[int, int]] = []
    position = GLOBAL_HEADER.size
    size = len(raw)
    header = RECORD_HEADER
    while position < size:
        if position + header.size > size:
            break
        incl_len = header.unpack_from(raw, position)[2]
        if incl_len > _MAX_RECORD_LEN:
            break
        end = position + header.size + incl_len
        if end > size:
            break
        spans.append((position, end))
        position = end
    return spans


def tamper_pcap_bytes(plan: FaultPlan, payload: bytes,
                      *coords) -> Tuple[bytes, List[str]]:
    """Apply the plan's pcap faults to one capture (segment) payload.

    Returns ``(payload, injected sites)`` — unchanged payload and an
    empty list when nothing fires.  Damage is deterministic in
    ``(plan seed, coords)``:

    * ``pcap.truncate`` cuts the stream mid-record at a drawn record,
      losing that record and everything after it (a torn capture tail);
    * ``pcap.corrupt`` rewrites one drawn record's frame to claim IPv4
      with an impossible version nibble, so every decode tier rejects
      exactly that record.
    """
    injected: List[str] = []
    if not plan or len(payload) <= GLOBAL_HEADER.size:
        return payload, injected
    truncate = plan.fires("pcap.truncate", *coords)
    corrupt = plan.fires("pcap.corrupt", *coords)
    if not (truncate or corrupt):
        return payload, injected
    spans = _record_spans(payload)
    if not spans:
        return payload, injected
    registry = get_registry()
    if corrupt:
        pick = int(plan.draw("pcap.corrupt.record", *coords)
                   * len(spans))
        # The recipe needs 15 frame bytes; records are Ethernet frames
        # (>= 14 bytes on the wire), so scan forward for one that fits.
        for offset in range(len(spans)):
            start, end = spans[(pick + offset) % len(spans)]
            frame = start + RECORD_HEADER.size
            if end - frame >= 15:
                tampered = bytearray(payload)
                # Claim IPv4, then break the version nibble: both the
                # lazy and columnar tiers raise ValueError for this
                # exact frame and nothing else.
                tampered[frame + 12:frame + 14] = b"\x08\x00"
                tampered[frame + 14] = 0x0F
                payload = bytes(tampered)
                injected.append("pcap.corrupt")
                registry.inc("faults.injected.pcap.corrupt")
                break
    if truncate:
        start, end = spans[int(plan.draw("pcap.truncate.record",
                                         *coords) * len(spans))]
        length = end - start - RECORD_HEADER.size
        cut = start + RECORD_HEADER.size + length // 2 if length \
            else start + RECORD_HEADER.size // 2
        payload = payload[:cut]
        injected.append("pcap.truncate")
        registry.inc("faults.injected.pcap.truncate")
    return payload, injected


# -- salvage (quarantine-and-continue) ----------------------------------------


def _probe(timestamp: int, data: bytes) -> Optional[str]:
    """Reason string if this frame would fail analysis decode, else
    ``None``.  Mirrors the decode tiers' failure surface: LazyPacket
    field parse plus the in-place DNS parse for UDP datagrams."""
    try:
        packet = LazyPacket(timestamp, data)
        if packet.proto == 17:
            packet.dns
    except Exception as exc:  # noqa: BLE001 — any decode error quarantines
        return f"{type(exc).__name__}: {exc}"
    return None


def salvage_pcap_bytes(raw: bytes) -> Tuple[bytes, List[Tuple[int, str]]]:
    """Split a damaged pcap into its decodable part plus evidence.

    Returns ``(clean, drops)`` where ``clean`` is a valid pcap holding
    every record that decodes (byte-identical slices of the original —
    never re-encoded) and ``drops`` lists ``(record index, reason)``
    for each quarantined record (index ``-1`` marks an unusable global
    header).  A structural break (truncated header/data) ends the walk:
    framing past the break cannot be trusted, so the remaining records
    are reported as a single drop at the break's index.

    ``salvage(raw) == (raw, [])`` for any capture the decode tiers
    accept, so routing a *healthy* segment through here is a no-op.
    """
    try:
        swapped, snaplen, __ = parse_global_header(raw)
    except PcapError as exc:
        return b"", [(-1, f"unusable global header: {exc}")]
    header_size = RECORD_HEADER.size
    unpack = struct.Struct(">IIII" if swapped else "<IIII").unpack_from
    # Same acceptance bound as the strict readers, so a salvaged
    # payload re-decodes without a second rejection pass.
    max_record_len = snaplen + 65536
    size = len(raw)
    good: List[bytes] = [bytes(raw[:GLOBAL_HEADER.size])]
    drops: List[Tuple[int, str]] = []
    position = GLOBAL_HEADER.size
    index = 0
    while position < size:
        if position + header_size > size:
            drops.append((index, "truncated pcap record header"))
            break
        ts_sec, ts_usec, incl_len, __ = unpack(raw, position)
        if incl_len > max_record_len:
            drops.append((index,
                          f"implausible record length: {incl_len}"))
            break
        end = position + header_size + incl_len
        if end > size:
            drops.append((index, "truncated pcap record data"))
            break
        timestamp = ts_sec * _NS_PER_S + ts_usec * _NS_PER_US
        reason = _probe(timestamp, bytes(raw[position + header_size:end]))
        if reason is None:
            good.append(bytes(raw[position:end]))
        else:
            drops.append((index, reason))
        position = end
        index += 1
    return b"".join(good), drops


def degradation_evidence(label: str, household_index: int,
                         segment_seq: Optional[int], record_index: int,
                         reason: str) -> str:
    """The canonical evidence string one quarantined record reports.

    Stable and self-contained — household identity, capture label,
    segment and record coordinates, and the decode failure — so
    degradation records aggregate (and dedupe) as plain Counter keys
    and render verbatim in the report and metrics export.  Since the
    findings model became the source of truth this is a thin view over
    :meth:`repro.findings.Finding.degradation`; the one formatter lives
    there so the text and the structured evidence can never drift.
    """
    from ..findings import Finding
    finding = Finding.degradation(label, household_index, segment_seq,
                                  record_index, reason)
    return finding.evidence[0].text
