"""Deterministic fault injection and the recovery machinery it tests.

``repro.faults`` turns "what if a worker dies / a segment vanishes / a
checkpoint tears" from a hope into a pinned property: a
:class:`FaultPlan` derives every injection decision from
``(seed, site, stable coordinates)`` through SHA-256, so a chaos run is
exactly reproducible, invariant under ``--jobs``, and — because
injection is bounded per retry site — guaranteed to recover.  See
:mod:`repro.faults.plan` for the decision oracle and spec grammar and
:mod:`repro.faults.inject` for the tamper transforms and the salvage
(quarantine-and-continue) decoder.
"""

from .inject import (
    InjectedFault,
    degradation_evidence,
    maybe_raise_worker_fault,
    produce_with_retries,
    salvage_pcap_bytes,
    tamper_pcap_bytes,
)
from .plan import (
    FAULT_ATTEMPT_CAP,
    FAULT_SITES,
    NULL_PLAN,
    FaultPlan,
    FaultSpecError,
)

__all__ = [
    "FAULT_ATTEMPT_CAP",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpecError",
    "InjectedFault",
    "NULL_PLAN",
    "degradation_evidence",
    "maybe_raise_worker_fault",
    "produce_with_retries",
    "salvage_pcap_bytes",
    "tamper_pcap_bytes",
]
