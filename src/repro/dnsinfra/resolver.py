"""Recursive resolver and on-device stub cache.

The access point runs the recursive resolver (as Mon(IoT)r setups do, so
every TV lookup is observable on the capture).  The TV runs a stub cache in
front of it: repeated lookups inside a record's TTL produce no network
traffic, which is why the paper sees the DNS burst concentrated "within the
first few seconds after device activation".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..net.addresses import Ipv4Address
from ..net.dns import DnsRecord
from .zones import Zone


class ResolveResult:
    """Outcome of one lookup."""

    __slots__ = ("name", "records", "from_cache", "nxdomain")

    def __init__(self, name: str, records: List[DnsRecord],
                 from_cache: bool, nxdomain: bool) -> None:
        self.name = name
        self.records = records
        self.from_cache = from_cache
        self.nxdomain = nxdomain

    @property
    def addresses(self) -> List[Ipv4Address]:
        return [r.address for r in self.records if r.rtype == 1]

    def __repr__(self) -> str:
        state = "NXDOMAIN" if self.nxdomain else \
            f"{len(self.records)} records"
        origin = "cache" if self.from_cache else "authoritative"
        return f"ResolveResult({self.name!r}, {state}, {origin})"


class RecursiveResolver:
    """The AP-side resolver with a TTL-respecting cache."""

    def __init__(self, zone: Zone) -> None:
        self.zone = zone
        self._cache: Dict[str, Tuple[int, List[DnsRecord]]] = {}
        self.queries = 0
        self.cache_hits = 0

    def resolve(self, name: str, now_ns: int) -> ResolveResult:
        """Resolve ``name`` at virtual time ``now_ns``."""
        key = name.lower()
        self.queries += 1
        cached = self._cache.get(key)
        if cached is not None:
            expires, records = cached
            if now_ns < expires:
                self.cache_hits += 1
                return ResolveResult(key, records, True, not records)
            del self._cache[key]
        records = self.zone.lookup_a(key)
        if records is None:
            # Negative caching, 60 s.
            self._cache[key] = (now_ns + 60 * 10 ** 9, [])
            return ResolveResult(key, [], False, True)
        ttl_ns = min(r.ttl for r in records) * 10 ** 9
        self._cache[key] = (now_ns + ttl_ns, records)
        return ResolveResult(key, records, False, False)

    def resolve_ptr(self, address: Ipv4Address,
                    now_ns: int) -> Optional[str]:
        """Reverse lookup; no caching needed at simulation scale."""
        record = self.zone.lookup_ptr(address)
        return record.target_name if record else None


class FilteringResolver:
    """A resolver wrapper that sinkholes blocklisted names.

    This is how DNS-based ad blocking (Pi-hole, Blokada at a router)
    actually intervenes: listed queries return NXDOMAIN, everything else
    passes through to the inner resolver.
    """

    def __init__(self, inner: RecursiveResolver, blocklist) -> None:
        # ``blocklist`` is anything with an ``is_listed(name) -> bool``.
        self.inner = inner
        self.blocklist = blocklist
        self.blocked_queries = 0

    def resolve(self, name: str, now_ns: int) -> ResolveResult:
        if self.blocklist.is_listed(name):
            self.blocked_queries += 1
            return ResolveResult(name.lower(), [], False, True)
        return self.inner.resolve(name, now_ns)

    def resolve_ptr(self, address: Ipv4Address,
                    now_ns: int) -> Optional[str]:
        return self.inner.resolve_ptr(address, now_ns)

    @property
    def zone(self) -> Zone:
        return self.inner.zone


class StubCache:
    """The TV-side stub resolver cache.

    ``lookup`` returns the cached addresses if fresh; otherwise the caller
    must perform a network query (observable!) and then ``store`` the
    answer.
    """

    def __init__(self) -> None:
        self._cache: Dict[str, Tuple[int, List[DnsRecord]]] = {}

    def lookup(self, name: str, now_ns: int) -> Optional[List[DnsRecord]]:
        entry = self._cache.get(name.lower())
        if entry is None:
            return None
        expires, records = entry
        if now_ns >= expires:
            del self._cache[name.lower()]
            return None
        return records

    def store(self, name: str, records: List[DnsRecord],
              now_ns: int) -> None:
        if not records:
            return
        ttl_ns = min(r.ttl for r in records) * 10 ** 9
        self._cache[name.lower()] = (now_ns + ttl_ns, records)

    def flush(self) -> None:
        """Power cycles clear the cache — hence the boot-time DNS burst."""
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
