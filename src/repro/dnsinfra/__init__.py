"""Simulated DNS infrastructure: vendor domain catalog, authoritative zone,
recursive resolver, and the TV-side stub cache."""

from .registry import (DomainRecord, DomainRegistry, ROTATION_PERIOD_NS,
                       ROTATION_POOL_SIZE)
from .resolver import RecursiveResolver, ResolveResult, StubCache
from .zones import Zone

__all__ = [
    "DomainRecord",
    "DomainRegistry",
    "RecursiveResolver",
    "ResolveResult",
    "ROTATION_PERIOD_NS",
    "ROTATION_POOL_SIZE",
    "StubCache",
    "Zone",
]
