"""Authoritative DNS zone built from the domain registry.

Holds the A records for every catalog hostname and the PTR records for
every allocated server address (the reverse zone is what RIPE IPmap's
reverse-DNS engine consumes).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..net.addresses import Ipv4Address
from ..net.dns import DnsRecord
from .registry import DomainRegistry

DEFAULT_TTL = 300
ACR_TTL = 60  # vendor ACR endpoints use short TTLs for load balancing


class Zone:
    """Authoritative answers for the simulated Internet."""

    def __init__(self, registry: DomainRegistry) -> None:
        self.registry = registry
        self._a: Dict[str, List[DnsRecord]] = {}
        self._ptr: Dict[str, DnsRecord] = {}
        for name in registry.all_names():
            record = registry.record(name)
            server = registry.server(name)
            ttl = ACR_TTL if record.role.startswith("acr") else DEFAULT_TTL
            self._a[name] = [DnsRecord.a(name, server.address, ttl=ttl)]
            pointer = server.address.reverse_pointer
            self._ptr[pointer] = DnsRecord.ptr(
                pointer, server.ptr_name, ttl=DEFAULT_TTL)

    def lookup_a(self, name: str) -> Optional[List[DnsRecord]]:
        """A records for ``name``, or None for NXDOMAIN."""
        return self._a.get(name.lower())

    def lookup_ptr(self, address: Ipv4Address) -> Optional[DnsRecord]:
        """PTR record for an address, or None."""
        return self._ptr.get(address.reverse_pointer)

    def add_a(self, name: str, address: Ipv4Address,
              ttl: int = DEFAULT_TTL) -> None:
        """Register an extra A record (testbed-local services etc.)."""
        self._a.setdefault(name.lower(), []).append(
            DnsRecord.a(name, address, ttl=ttl))

    def add_ptr(self, address: Ipv4Address, target: str,
                ttl: int = DEFAULT_TTL) -> None:
        pointer = address.reverse_pointer
        self._ptr[pointer] = DnsRecord.ptr(pointer, target, ttl=ttl)

    @property
    def names(self) -> List[str]:
        return sorted(self._a)

    def __len__(self) -> int:
        return len(self._a)
