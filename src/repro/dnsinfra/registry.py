"""The vendor domain catalog and the rotating ACR hostname scheme.

The paper observes:

* LG contacts a single ACR domain per region, with a rotating number:
  ``eu-acrX.alphonso.tv`` in the UK and ``tkacrX.alphonso.tv`` in the US.
* Samsung contacts a set of ACR domains: ``acr-eu-prd.samsungcloud.tv``,
  ``acr0.samsungcloudsolution.com``, ``log-config.samsungacr.com`` and
  ``log-ingestion-eu.samsungacr.com`` in the UK; in the US the
  ``samsungcloudsolution`` domain is dropped and ``-eu`` suffixes disappear.
* Plenty of *non*-ACR platform traffic exists (e.g. ``samsungads.com``)
  that the "acr"-substring heuristic must exclude.

The per-vendor hostname data itself is declared by the vendor plugins in
:mod:`repro.tv.vendors`; this module assembles their catalogs, assigns
every hostname a server in the ground-truth
:class:`~repro.geo.ipspace.IpSpace`, and resolves the rotation and
fingerprint-domain policies through the registered profiles.

Catalog iteration follows the profiles' ``catalog_order`` — the IP
allocator hands out addresses sequentially per provider block, so this
order is part of the byte-stability contract for cached captures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..geo.ipspace import IpSpace, ServerRecord
from ..sim.clock import NS_PER_HOUR

ROTATION_PERIOD_NS = 6 * NS_PER_HOUR
ROTATION_POOL_SIZE = 6


class DomainRecord:
    """One catalog entry: hostname -> provider/city/role."""

    __slots__ = ("name", "provider", "city_key", "role", "ptr_label")

    def __init__(self, name: str, provider: str, city_key: str,
                 role: str, ptr_label: str = "edge") -> None:
        self.name = name.lower()
        self.provider = provider
        self.city_key = city_key
        self.role = role
        self.ptr_label = ptr_label

    def __repr__(self) -> str:
        return (f"DomainRecord({self.name!r}, {self.provider}, "
                f"{self.city_key}, role={self.role})")


# Roles (declared by the vendor plugins):
#   acr-fingerprint : carries content fingerprints (the heavy channel)
#   acr-log         : ACR logging / config / keep-alive endpoints
#   ads             : ad platform, NOT matched by the "acr" heuristic
#   platform        : OS services (time, store, firmware)
#   ott             : third-party streaming backends


class DomainRegistry:
    """Catalog of hostnames with allocated ground-truth servers."""

    def __init__(self, ipspace: Optional[IpSpace] = None) -> None:
        from ..tv import vendors
        self.ipspace = ipspace or IpSpace()
        self._records: Dict[str, DomainRecord] = {}
        self._servers: Dict[str, ServerRecord] = {}
        for profile in vendors.catalog_profiles():
            for country in profile.countries:
                for record in profile.domains(country):
                    self._add(record)

    def _add(self, record: DomainRecord) -> None:
        if record.name in self._records:
            return  # shared domains (log-config, netflix...) allocate once
        self._records[record.name] = record
        self._servers[record.name] = self.ipspace.allocate(
            record.provider, record.city_key, record.ptr_label)

    # -- catalog queries ----------------------------------------------------

    def domains_for(self, vendor: str, country: str) -> List[DomainRecord]:
        """Every catalog entry for one vendor in one country."""
        from ..tv import vendors
        if not vendors.is_registered(vendor):
            raise KeyError(
                f"unknown vendor/country: {vendor!r}/{country!r}")
        profile = vendors.get(vendor)
        if country not in profile.countries:
            raise KeyError(
                f"unknown vendor/country: {vendor!r}/{country!r}")
        return list(profile.domains(country))

    def record(self, name: str) -> DomainRecord:
        try:
            return self._records[name.lower()]
        except KeyError:
            raise KeyError(f"domain not in catalog: {name!r}") from None

    def server(self, name: str) -> ServerRecord:
        try:
            return self._servers[name.lower()]
        except KeyError:
            raise KeyError(f"domain not in catalog: {name!r}") from None

    def knows(self, name: str) -> bool:
        return name.lower() in self._records

    def all_names(self) -> List[str]:
        return sorted(self._records)

    # -- rotation -------------------------------------------------------------

    def rotating_acr_domain(self, vendor: str, country: str, at_ns: int,
                            seed: int = 0) -> str:
        """The ACR hostname active at virtual time ``at_ns`` for a vendor
        with a declared rotation policy (LG's ``eu-acrX`` scheme).

        The index changes every rotation period, derived from a keyed
        hash so different seeds see different (but stable) schedules —
        matching the paper's "X is an arbitrary number that changes
        periodically".
        """
        from ..tv import vendors
        if not vendors.is_registered(vendor):
            raise ValueError(f"unknown vendor: {vendor!r}")
        profile = vendors.get(vendor)
        if profile.rotation is None:
            raise ValueError(
                f"{vendor} does not use rotating ACR hostnames")
        return profile.rotating_domain(country, at_ns, seed)

    def fingerprint_domain(self, vendor: str, country: str, at_ns: int,
                           seed: int = 0) -> str:
        """The hostname fingerprints are shipped to, per vendor/country."""
        from ..tv import vendors
        if not vendors.is_registered(vendor):
            raise ValueError(f"unknown vendor: {vendor!r}")
        return vendors.get(vendor).fingerprint_domain(country, at_ns, seed)
