"""The vendor domain catalog and the rotating ACR hostname scheme.

The paper observes:

* LG contacts a single ACR domain per region, with a rotating number:
  ``eu-acrX.alphonso.tv`` in the UK and ``tkacrX.alphonso.tv`` in the US.
* Samsung contacts a set of ACR domains: ``acr-eu-prd.samsungcloud.tv``,
  ``acr0.samsungcloudsolution.com``, ``log-config.samsungacr.com`` and
  ``log-ingestion-eu.samsungacr.com`` in the UK; in the US the
  ``samsungcloudsolution`` domain is dropped and ``-eu`` suffixes disappear.
* Plenty of *non*-ACR platform traffic exists (e.g. ``samsungads.com``)
  that the "acr"-substring heuristic must exclude.

This module encodes that catalog, assigns every hostname a server in the
ground-truth :class:`~repro.geo.ipspace.IpSpace`, and implements the rotating
``X`` selection.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from ..geo.ipspace import IpSpace, ServerRecord
from ..sim.clock import NS_PER_HOUR

ROTATION_PERIOD_NS = 6 * NS_PER_HOUR
ROTATION_POOL_SIZE = 6


class DomainRecord:
    """One catalog entry: hostname -> provider/city/role."""

    __slots__ = ("name", "provider", "city_key", "role", "ptr_label")

    def __init__(self, name: str, provider: str, city_key: str,
                 role: str, ptr_label: str = "edge") -> None:
        self.name = name.lower()
        self.provider = provider
        self.city_key = city_key
        self.role = role
        self.ptr_label = ptr_label

    def __repr__(self) -> str:
        return (f"DomainRecord({self.name!r}, {self.provider}, "
                f"{self.city_key}, role={self.role})")


# Roles:
#   acr-fingerprint : carries content fingerprints (the heavy channel)
#   acr-log         : ACR logging / config / keep-alive endpoints
#   ads             : ad platform, NOT matched by the "acr" heuristic
#   platform        : OS services (time, store, firmware)
#   ott             : third-party streaming backends
def _lg_rotating(country: str) -> List[DomainRecord]:
    prefix = "eu-acr" if country == "uk" else "tkacr"
    city = "amsterdam" if country == "uk" else "san_jose"
    return [
        DomainRecord(f"{prefix}{i}.alphonso.tv", "alphonso", city,
                     "acr-fingerprint", ptr_label="acr")
        for i in range(1, ROTATION_POOL_SIZE + 1)
    ]


def _samsung_numbered() -> List[DomainRecord]:
    return [
        DomainRecord(f"acr{i}.samsungcloudsolution.com", "samsung",
                     "amsterdam", "acr-log", ptr_label="acr")
        for i in range(0, 4)
    ]


_CATALOG: Dict[str, Dict[str, List[DomainRecord]]] = {
    "lg": {
        "uk": _lg_rotating("uk") + [
            DomainRecord("gb.lgtvsdp.com", "bystander", "london",
                         "platform"),
            DomainRecord("ngfts.lge.com", "bystander", "london",
                         "platform"),
            DomainRecord("gb.ad.lgsmartad.com", "bystander", "london",
                         "ads"),
            DomainRecord("lgtvonline.lge.com", "bystander", "amsterdam",
                         "platform"),
            DomainRecord("api.netflix.com", "bystander", "london", "ott"),
            DomainRecord("www.youtube.com", "bystander", "london", "ott"),
        ],
        "us": _lg_rotating("us") + [
            DomainRecord("us.lgtvsdp.com", "bystander", "san_jose",
                         "platform"),
            DomainRecord("ngfts.lge.com", "bystander", "san_jose",
                         "platform"),
            DomainRecord("us.ad.lgsmartad.com", "bystander", "new_york",
                         "ads"),
            DomainRecord("lgtvonline.lge.com", "bystander", "san_jose",
                         "platform"),
            DomainRecord("api.netflix.com", "bystander", "san_jose", "ott"),
            DomainRecord("www.youtube.com", "bystander", "san_jose", "ott"),
        ],
    },
    "samsung": {
        "uk": [
            DomainRecord("acr-eu-prd.samsungcloud.tv", "samsung", "london",
                         "acr-fingerprint", ptr_label="acr"),
            DomainRecord("log-config.samsungacr.com", "samsung", "new_york",
                         "acr-log", ptr_label="acr"),
            DomainRecord("log-ingestion-eu.samsungacr.com", "samsung",
                         "london", "acr-log", ptr_label="acr"),
        ] + _samsung_numbered() + [
            DomainRecord("eu.samsungads.com", "samsung", "london", "ads"),
            DomainRecord("config.samsungads.com", "samsung", "amsterdam",
                         "ads"),
            DomainRecord("time.samsungcloudsolution.com", "samsung",
                         "amsterdam", "platform"),
            DomainRecord("otn.samsungcloudsolution.com", "samsung",
                         "amsterdam", "platform"),
            DomainRecord("api.samsungosp.com", "samsung", "london",
                         "platform"),
            DomainRecord("api.netflix.com", "bystander", "london", "ott"),
            DomainRecord("www.youtube.com", "bystander", "london", "ott"),
        ],
        "us": [
            DomainRecord("acr-us-prd.samsungcloud.tv", "samsung", "san_jose",
                         "acr-fingerprint", ptr_label="acr"),
            DomainRecord("log-config.samsungacr.com", "samsung", "new_york",
                         "acr-log", ptr_label="acr"),
            DomainRecord("log-ingestion.samsungacr.com", "samsung",
                         "ashburn", "acr-log", ptr_label="acr"),
            DomainRecord("us.samsungads.com", "samsung", "new_york", "ads"),
            DomainRecord("config.samsungads.com", "samsung", "ashburn",
                         "ads"),
            DomainRecord("time.samsungcloudsolution.com", "samsung",
                         "ashburn", "platform"),
            DomainRecord("otn.samsungcloudsolution.com", "samsung",
                         "ashburn", "platform"),
            DomainRecord("api.samsungosp.com", "samsung", "san_jose",
                         "platform"),
            DomainRecord("api.netflix.com", "bystander", "san_jose", "ott"),
            DomainRecord("www.youtube.com", "bystander", "san_jose", "ott"),
        ],
    },
}


class DomainRegistry:
    """Catalog of hostnames with allocated ground-truth servers."""

    def __init__(self, ipspace: Optional[IpSpace] = None) -> None:
        self.ipspace = ipspace or IpSpace()
        self._records: Dict[str, DomainRecord] = {}
        self._servers: Dict[str, ServerRecord] = {}
        for vendor_catalog in _CATALOG.values():
            for records in vendor_catalog.values():
                for record in records:
                    self._add(record)

    def _add(self, record: DomainRecord) -> None:
        if record.name in self._records:
            return  # shared domains (log-config, netflix...) allocate once
        self._records[record.name] = record
        self._servers[record.name] = self.ipspace.allocate(
            record.provider, record.city_key, record.ptr_label)

    # -- catalog queries ----------------------------------------------------

    def domains_for(self, vendor: str, country: str) -> List[DomainRecord]:
        """Every catalog entry for one vendor in one country."""
        try:
            return list(_CATALOG[vendor][country])
        except KeyError:
            raise KeyError(
                f"unknown vendor/country: {vendor!r}/{country!r}") from None

    def record(self, name: str) -> DomainRecord:
        try:
            return self._records[name.lower()]
        except KeyError:
            raise KeyError(f"domain not in catalog: {name!r}") from None

    def server(self, name: str) -> ServerRecord:
        try:
            return self._servers[name.lower()]
        except KeyError:
            raise KeyError(f"domain not in catalog: {name!r}") from None

    def knows(self, name: str) -> bool:
        return name.lower() in self._records

    def all_names(self) -> List[str]:
        return sorted(self._records)

    # -- rotation -------------------------------------------------------------

    def rotating_acr_domain(self, vendor: str, country: str, at_ns: int,
                            seed: int = 0) -> str:
        """The LG ACR hostname active at virtual time ``at_ns``.

        The index changes every :data:`ROTATION_PERIOD_NS`, derived from a
        keyed hash so different seeds see different (but stable) schedules —
        matching the paper's "X is an arbitrary number that changes
        periodically".
        """
        if vendor != "lg":
            raise ValueError("only LG uses rotating ACR hostnames")
        window = at_ns // ROTATION_PERIOD_NS
        digest = hashlib.sha256(
            f"{seed}:{country}:{window}".encode("ascii")).digest()
        index = 1 + digest[0] % ROTATION_POOL_SIZE
        prefix = "eu-acr" if country == "uk" else "tkacr"
        return f"{prefix}{index}.alphonso.tv"

    def fingerprint_domain(self, vendor: str, country: str, at_ns: int,
                           seed: int = 0) -> str:
        """The hostname fingerprints are shipped to, per vendor/country."""
        if vendor == "lg":
            return self.rotating_acr_domain(vendor, country, at_ns, seed)
        if vendor == "samsung":
            return ("acr-eu-prd.samsungcloud.tv" if country == "uk"
                    else "acr-us-prd.samsungcloud.tv")
        raise ValueError(f"unknown vendor: {vendor!r}")
