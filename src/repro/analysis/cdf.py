"""Cumulative bytes-over-time curves — Figures 5 and 7.

"the CDF of data transferred to ACR domains (in bytes) in each scenario
during the LIn-OIn and LOut-OIn phases."
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..net.packet import DecodedPacket
from ..sim.clock import NS_PER_SECOND


class CumulativeCurve:
    """Cumulative transmitted bytes as a function of capture time."""

    def __init__(self, times_s: np.ndarray, cumulative_bytes: np.ndarray
                 ) -> None:
        if len(times_s) != len(cumulative_bytes):
            raise ValueError("length mismatch")
        self.times_s = times_s
        self.cumulative_bytes = cumulative_bytes

    @property
    def total_bytes(self) -> int:
        return int(self.cumulative_bytes[-1]) if len(
            self.cumulative_bytes) else 0

    def fraction_curve(self) -> np.ndarray:
        """Normalised to [0, 1] — the CDF view."""
        total = self.total_bytes
        if total == 0:
            return np.zeros_like(self.cumulative_bytes, dtype=np.float64)
        return self.cumulative_bytes / total

    def value_at(self, t_s: float) -> int:
        """Cumulative bytes at time ``t_s`` (step interpolation)."""
        index = np.searchsorted(self.times_s, t_s, side="right") - 1
        if index < 0:
            return 0
        return int(self.cumulative_bytes[index])

    def time_to_fraction(self, fraction: float) -> float:
        """Earliest time by which ``fraction`` of bytes had been sent."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        curve = self.fraction_curve()
        indexes = np.nonzero(curve >= fraction)[0]
        if len(indexes) == 0:
            return float("inf")
        return float(self.times_s[indexes[0]])

    def __len__(self) -> int:
        return len(self.times_s)

    def __repr__(self) -> str:
        return (f"CumulativeCurve({len(self)} points, "
                f"total={self.total_bytes}B)")


def cumulative_bytes(packets: Sequence[DecodedPacket],
                     start_ns: int, end_ns: int,
                     sent_only_from=None) -> CumulativeCurve:
    """Build the curve over a window.

    ``sent_only_from``: when given an address, count only bytes the TV
    *transmitted* (the paper plots "bytes transmitted to ACR domains").
    """
    if end_ns <= start_ns:
        raise ValueError("window ends before it starts")
    capture = getattr(packets, "capture", None)
    if capture is not None:
        # Columnar query results carry their row indices: build the
        # curve straight from the timestamp/length columns.  The sort
        # replicates the object path's ``points.sort()`` over
        # ``(time, length)`` tuples exactly (lexicographic, stable).
        rows = packets.indices
        ts = capture.ts[rows]
        keep = (ts >= start_ns) & (ts < end_ns)
        if sent_only_from is not None:
            keep &= capture.src[rows] == np.uint32(sent_only_from.value)
            keep &= capture.proto[rows] >= 0
        ts = ts[keep]
        sizes = capture.length[rows][keep]
        times = (ts - start_ns) / NS_PER_SECOND
        order = np.lexsort((sizes, times))
        times = times[order]
        sizes = sizes[order]
        return CumulativeCurve(times, np.cumsum(sizes) if len(sizes)
                               else sizes)
    points: List[Tuple[float, int]] = []
    for packet in packets:
        if not start_ns <= packet.timestamp < end_ns:
            continue
        if sent_only_from is not None:
            if packet.src_ip != sent_only_from:
                continue
        points.append(((packet.timestamp - start_ns) / NS_PER_SECOND,
                       packet.length))
    points.sort()
    times = np.array([t for t, __ in points], dtype=np.float64)
    sizes = np.array([s for __, s in points], dtype=np.int64)
    return CumulativeCurve(times, np.cumsum(sizes) if len(sizes)
                           else sizes)


def median_step_interval_s(curve: CumulativeCurve) -> float:
    """Median spacing between transmission events — the periodicity view
    of the CDF ("distinctions in the data transfer periodicity")."""
    if len(curve) < 2:
        return float("inf")
    gaps = np.diff(curve.times_s)
    gaps = gaps[gaps > 0.5]  # ignore intra-burst spacing
    if len(gaps) == 0:
        return 0.0
    return float(np.median(gaps))
