"""Differential comparisons across phases and countries (§4.2, §4.3)."""

from __future__ import annotations

from typing import Dict, List, Optional

from .pipeline import AuditPipeline
from .volumes import normalize_rotating


class PhaseComparison:
    """Login-status / opt-out differential between two captures."""

    __slots__ = ("label_a", "label_b", "domains_a", "domains_b",
                 "volumes_a", "volumes_b")

    def __init__(self, label_a: str, pipeline_a: AuditPipeline,
                 label_b: str, pipeline_b: AuditPipeline,
                 domains: Optional[List[str]] = None) -> None:
        self.label_a = label_a
        self.label_b = label_b
        self.domains_a = set(map(normalize_rotating,
                                 pipeline_a.acr_candidate_domains()))
        self.domains_b = set(map(normalize_rotating,
                                 pipeline_b.acr_candidate_domains()))
        targets_a = domains or pipeline_a.acr_candidate_domains()
        targets_b = domains or pipeline_b.acr_candidate_domains()
        self.volumes_a = {normalize_rotating(d):
                          pipeline_a.kilobytes_for(d) for d in targets_a}
        self.volumes_b = {normalize_rotating(d):
                          pipeline_b.kilobytes_for(d) for d in targets_b}

    @property
    def same_domain_set(self) -> bool:
        """§4.2: "the set of ACR domains contacted ... remains identical"."""
        return self.domains_a == self.domains_b

    def volume_ratio(self, domain: str) -> Optional[float]:
        """B/A volume ratio for one (normalized) domain."""
        a = self.volumes_a.get(domain, 0.0)
        b = self.volumes_b.get(domain, 0.0)
        if a == 0.0:
            return None if b == 0.0 else float("inf")
        return b / a

    def volumes_similar(self, tolerance: float = 0.5) -> bool:
        """True when every shared domain's volume is within tolerance
        (|log-ratio| bounded) — "a high degree of similarity"."""
        shared = self.domains_a & self.domains_b
        for domain in shared:
            ratio = self.volume_ratio(domain)
            if ratio is None or ratio == float("inf"):
                return False
            if not (1.0 - tolerance) <= ratio <= 1.0 / (1.0 - tolerance):
                return False
        return True

    @property
    def b_is_silent(self) -> bool:
        """§4.2 opt-out check: B shows no traffic to A's ACR domains."""
        return all(volume == 0.0 for volume in self.volumes_b.values()) \
            and not self.domains_b

    def __repr__(self) -> str:
        return (f"PhaseComparison({self.label_a} vs {self.label_b}, "
                f"same_domains={self.same_domain_set})")


class CountryComparison:
    """UK-vs-US differential for one vendor/scenario/phase (§4.3)."""

    __slots__ = ("uk_domains", "us_domains")

    def __init__(self, uk: AuditPipeline, us: AuditPipeline) -> None:
        self.uk_domains = set(uk.acr_candidate_domains())
        self.us_domains = set(us.acr_candidate_domains())

    @property
    def distinct_domain_names(self) -> bool:
        """The two regions contact non-identical ACR hostname sets
        (shared infrastructure like log-config may overlap)."""
        return self.uk_domains != self.us_domains

    @property
    def uk_only(self) -> List[str]:
        return sorted(self.uk_domains - self.us_domains)

    @property
    def us_only(self) -> List[str]:
        return sorted(self.us_domains - self.uk_domains)

    def __repr__(self) -> str:
        return (f"CountryComparison(uk_only={self.uk_only}, "
                f"us_only={self.us_only})")


def acr_volume_total(pipeline: AuditPipeline) -> float:
    """Total KB across every "acr" candidate domain in one capture."""
    return sum(pipeline.kilobytes_for(d)
               for d in pipeline.acr_candidate_domains())


def scenario_volume_profile(pipelines: Dict[str, AuditPipeline]
                            ) -> Dict[str, float]:
    """Scenario -> total ACR KB, for who-wins-where comparisons."""
    return {scenario: acr_volume_total(pipeline)
            for scenario, pipeline in pipelines.items()}
