"""Burst-interval analysis: detect the 15 s / 60 s ACR cadences and score
contact regularity.

This implements the paper's third validation bullet: ACR domains "showed
regular contact patterns, unlike other ad/tracking domains like
samsungads.com" — plus the cadence findings themselves ("we observe
network traffic every 15 seconds", "communication occurs once per
minute").
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..net.packet import DecodedPacket
from ..sim.clock import NS_PER_SECOND
from .timeline import burst_times_ns

REGULAR_CV_THRESHOLD = 0.25  # coefficient of variation below => regular


class PeriodicityReport:
    """Cadence statistics for one domain's traffic."""

    __slots__ = ("domain", "bursts", "period_s", "cv", "intervals_s")

    def __init__(self, domain: str, bursts: int,
                 period_s: Optional[float], cv: Optional[float],
                 intervals_s: List[float]) -> None:
        self.domain = domain
        self.bursts = bursts
        self.period_s = period_s
        self.cv = cv
        self.intervals_s = intervals_s

    @property
    def regular(self) -> bool:
        """True when bursts arrive on a stable clock."""
        return (self.cv is not None and self.cv < REGULAR_CV_THRESHOLD
                and self.bursts >= 5)

    def __repr__(self) -> str:
        period = f"{self.period_s:.1f}s" if self.period_s else "n/a"
        cv = f"{self.cv:.2f}" if self.cv is not None else "n/a"
        return (f"PeriodicityReport({self.domain}, {self.bursts} bursts, "
                f"period={period}, cv={cv})")


def analyze_periodicity(domain: str, packets: List[DecodedPacket],
                        burst_gap_ns: int = 2 * NS_PER_SECOND
                        ) -> PeriodicityReport:
    """Burst detection + inter-burst interval statistics."""
    bursts = burst_times_ns(packets, gap_ns=burst_gap_ns)
    if len(bursts) < 2:
        return PeriodicityReport(domain, len(bursts), None, None, [])
    intervals = np.diff(np.array(bursts, dtype=np.float64)) / NS_PER_SECOND
    period = float(np.median(intervals))
    mean = float(np.mean(intervals))
    cv = float(np.std(intervals) / mean) if mean > 0 else None
    return PeriodicityReport(domain, len(bursts), period, cv,
                             [float(v) for v in intervals])


def dominant_period_s(packets: List[DecodedPacket],
                      max_lag_s: int = 120) -> Optional[float]:
    """Autocorrelation-based period estimate on per-second counts.

    More robust than burst medians when bursts overlap (e.g. Samsung's
    minute batches riding on five-minute peaks).
    """
    if not packets:
        return None
    times = np.array(sorted(p.timestamp for p in packets))
    start = times[0]
    seconds_index = ((times - start) // NS_PER_SECOND).astype(np.int64)
    duration = int(seconds_index[-1]) + 1
    if duration < 4:
        return None
    counts = np.bincount(seconds_index, minlength=duration).astype(
        np.float64)
    counts -= counts.mean()
    max_lag = min(max_lag_s, duration - 2)
    if max_lag < 2:
        return None
    correlation = np.array([
        float(np.dot(counts[:-lag], counts[lag:]))
        for lag in range(1, max_lag + 1)])
    denominator = float(np.dot(counts, counts))
    if denominator <= 0:
        return None
    correlation /= denominator
    # First strong local maximum beyond trivial lags.
    best_lag = None
    for lag in range(2, len(correlation) - 1):
        if correlation[lag] > 0.2 and \
                correlation[lag] >= correlation[lag - 1] and \
                correlation[lag] >= correlation[lag + 1]:
            best_lag = lag + 1
            break
    if best_lag is None:
        best_lag = int(np.argmax(correlation)) + 1
        if correlation[best_lag - 1] < 0.1:
            return None
    return float(best_lag)
