"""Per-domain byte accounting — the engine behind Tables 2-5.

"Tables 2, 3, 4 and 5 quantify the amount of data (kilobytes) exchanged
with LG and Samsung ACR destinations across various scenarios."
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .pipeline import AuditPipeline


class VolumeCell:
    """One table cell: KB exchanged with a domain in one scenario."""

    __slots__ = ("domain", "scenario", "kilobytes", "packets")

    def __init__(self, domain: str, scenario: str, kilobytes: float,
                 packets: int) -> None:
        self.domain = domain
        self.scenario = scenario
        self.kilobytes = kilobytes
        self.packets = packets

    @property
    def present(self) -> bool:
        """Tables show '-' for domains not contacted in a scenario."""
        return self.packets > 0

    def render(self) -> str:
        return f"{self.kilobytes:.1f}" if self.present else "-"

    def __repr__(self) -> str:
        return (f"VolumeCell({self.domain}, {self.scenario}, "
                f"{self.render()} KB)")


class VolumeTable:
    """KB-per-domain-per-scenario, as in the paper's appendix tables."""

    def __init__(self, scenarios: List[str]) -> None:
        self.scenarios = scenarios
        self._cells: Dict[str, Dict[str, VolumeCell]] = {}

    def add(self, cell: VolumeCell) -> None:
        self._cells.setdefault(cell.domain, {})[cell.scenario] = cell

    def cell(self, domain: str, scenario: str) -> Optional[VolumeCell]:
        return self._cells.get(domain, {}).get(scenario)

    def kilobytes(self, domain: str, scenario: str) -> float:
        cell = self.cell(domain, scenario)
        return cell.kilobytes if cell else 0.0

    @property
    def domains(self) -> List[str]:
        return sorted(self._cells)

    def row(self, domain: str) -> List[str]:
        return [domain] + [
            (self.cell(domain, s).render()
             if self.cell(domain, s) else "-")
            for s in self.scenarios]

    def rows(self) -> List[List[str]]:
        return [self.row(domain) for domain in self.domains]

    def __repr__(self) -> str:
        return (f"VolumeTable({len(self._cells)} domains x "
                f"{len(self.scenarios)} scenarios)")


def normalize_rotating(domain: str) -> str:
    """Collapse rotating hostnames to the paper's X notation, e.g.
    ``eu-acr4.alphonso.tv`` -> ``eu-acrX.alphonso.tv``."""
    import re
    return re.sub(r"^(eu-acr|tkacr|acr)(\d+)\.",
                  lambda m: f"{m.group(1)}X." if m.group(1) != "acr"
                  else f"acr{m.group(2)}.", domain)


def domain_volumes(pipeline: AuditPipeline,
                   domains: List[str]) -> Dict[str, float]:
    """KB for each domain in one capture."""
    return {domain: pipeline.kilobytes_for(domain) for domain in domains}


def build_volume_table(pipelines_by_scenario: Dict[str, AuditPipeline],
                       acr_domains_by_scenario: Dict[str, List[str]]
                       ) -> VolumeTable:
    """Assemble one appendix-style table from per-scenario pipelines.

    Rotating LG hostnames are collapsed into the ``X`` notation so one row
    covers every rotation index, exactly like the paper's tables.
    """
    table = VolumeTable(list(pipelines_by_scenario))
    for scenario, pipeline in pipelines_by_scenario.items():
        merged: Dict[str, VolumeCell] = {}
        for domain in acr_domains_by_scenario.get(scenario, []):
            display = normalize_rotating(domain)
            kilobytes = pipeline.kilobytes_for(domain)
            packets = pipeline.packet_count_for(domain)
            if display in merged:
                merged[display] = VolumeCell(
                    display, scenario,
                    merged[display].kilobytes + kilobytes,
                    merged[display].packets + packets)
            else:
                merged[display] = VolumeCell(display, scenario,
                                             kilobytes, packets)
        for cell in merged.values():
            table.add(cell)
    return table
