"""Traffic timelines: the packets-per-millisecond series of Figures 4/6.

"The data is presented in a packet-per-millisecond format, where each spike
corresponds to a single millisecond slot."
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..net.packet import DecodedPacket
from ..sim.clock import NS_PER_MS, NS_PER_SECOND


class Timeline:
    """Binned packet counts over a window."""

    def __init__(self, counts: np.ndarray, start_ns: int,
                 bin_ns: int) -> None:
        self.counts = counts
        self.start_ns = start_ns
        self.bin_ns = bin_ns

    @property
    def duration_ns(self) -> int:
        return len(self.counts) * self.bin_ns

    @property
    def total_packets(self) -> int:
        return int(self.counts.sum())

    @property
    def peak(self) -> int:
        return int(self.counts.max()) if len(self.counts) else 0

    @property
    def active_bins(self) -> int:
        return int((self.counts > 0).sum())

    def spike_times_ns(self) -> List[int]:
        """Timestamps (window-relative) of every non-empty bin."""
        indexes = np.nonzero(self.counts)[0]
        return [int(i) * self.bin_ns for i in indexes]

    def rebin(self, factor: int) -> "Timeline":
        """Coarser view (e.g. ms -> s) by summing adjacent bins."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        n = len(self.counts) // factor * factor
        coarse = self.counts[:n].reshape(-1, factor).sum(axis=1)
        return Timeline(coarse, self.start_ns, self.bin_ns * factor)

    def __len__(self) -> int:
        return len(self.counts)

    def __repr__(self) -> str:
        return (f"Timeline({len(self.counts)} bins x "
                f"{self.bin_ns / 1e6:.0f}ms, peak={self.peak}, "
                f"packets={self.total_packets})")


def packets_per_ms(packets: List[DecodedPacket], start_ns: int,
                   end_ns: int) -> Timeline:
    """Millisecond-binned counts over [start_ns, end_ns)."""
    return _binned(packets, start_ns, end_ns, NS_PER_MS)


def packets_per_second(packets: List[DecodedPacket], start_ns: int,
                       end_ns: int) -> Timeline:
    """Second-binned counts over [start_ns, end_ns)."""
    return _binned(packets, start_ns, end_ns, NS_PER_SECOND)


def _binned(packets: List[DecodedPacket], start_ns: int, end_ns: int,
            bin_ns: int) -> Timeline:
    if end_ns <= start_ns:
        raise ValueError("window ends before it starts")
    n_bins = -(-(end_ns - start_ns) // bin_ns)
    counts = np.zeros(n_bins, dtype=np.int64)
    for packet in packets:
        if start_ns <= packet.timestamp < end_ns:
            counts[(packet.timestamp - start_ns) // bin_ns] += 1
    return Timeline(counts, start_ns, bin_ns)


def burst_times_ns(packets: List[DecodedPacket],
                   gap_ns: int = NS_PER_SECOND) -> List[int]:
    """Start timestamps of packet bursts (gaps > ``gap_ns`` split bursts)."""
    times = sorted(p.timestamp for p in packets)
    if not times:
        return []
    bursts = [times[0]]
    last = times[0]
    for t in times[1:]:
        if t - last > gap_ns:
            bursts.append(t)
        last = t
    return bursts


def peak_ratio(active: Timeline, restricted: Timeline) -> float:
    """Figure-4 style comparison: how much taller are the active-scenario
    spikes than the restricted-scenario ones ("peaks get reduced by up
    to 12x")."""
    if restricted.peak == 0:
        return float("inf")
    return active.peak / restricted.peak


def window_of(packets: List[DecodedPacket],
              minutes_: int = 10,
              skip_ns: int = 0) -> Tuple[int, int]:
    """A ``minutes_`` window starting after ``skip_ns`` of the capture."""
    if not packets:
        raise ValueError("empty capture")
    start = packets[0].timestamp + skip_ns
    return start, start + minutes_ * 60 * NS_PER_SECOND
