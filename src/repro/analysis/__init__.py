"""The black-box audit pipeline: capture decoding, DNS mapping, the
"acr"-substring heuristic with its validations, traffic timelines, byte
volumes, CDFs, periodicity, and cross-phase/country comparisons."""

from .acr_domains import (AcrDomainAuditor, AcrDomainFinding,
                          no_new_acr_domains)
from .blocklists import Blocklist, NetifyDirectory
from .cdf import CumulativeCurve, cumulative_bytes, median_step_interval_s
from .compare import (CountryComparison, PhaseComparison, acr_volume_total,
                      scenario_volume_profile)
from .dns_map import DnsMap
from .periodicity import (PeriodicityReport, analyze_periodicity,
                          dominant_period_s)
from .pipeline import AuditPipeline, infer_tv_ip
from .timeline import (Timeline, burst_times_ns, packets_per_ms,
                       packets_per_second, peak_ratio, window_of)
from .volumes import (VolumeCell, VolumeTable, build_volume_table,
                      domain_volumes, normalize_rotating)

__all__ = [
    "AcrDomainAuditor",
    "AcrDomainFinding",
    "AuditPipeline",
    "Blocklist",
    "CountryComparison",
    "CumulativeCurve",
    "DnsMap",
    "NetifyDirectory",
    "PeriodicityReport",
    "PhaseComparison",
    "Timeline",
    "VolumeCell",
    "VolumeTable",
    "acr_volume_total",
    "analyze_periodicity",
    "build_volume_table",
    "burst_times_ns",
    "cumulative_bytes",
    "domain_volumes",
    "dominant_period_s",
    "infer_tv_ip",
    "median_step_interval_s",
    "no_new_acr_domains",
    "normalize_rotating",
    "packets_per_ms",
    "packets_per_second",
    "peak_ratio",
    "scenario_volume_profile",
    "window_of",
]
