"""IP -> domain mapping recovered from captured DNS answers.

The paper's methodology: power-on is captured precisely because "the
majority of DNS requests are typically sent within the first few seconds
after device activation. This is essential to identify the domain names
associated with the contacted IP addresses."  This module is that
association, built purely from the capture.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..net.addresses import Ipv4Address
from ..net.dns import TYPE_A, TYPE_CNAME
from ..net.packet import DecodedPacket


class DnsMap:
    """Mapping from contacted IPs to the query names that produced them."""

    def __init__(self) -> None:
        self._ip_to_names: Dict[Ipv4Address, Set[str]] = {}
        self._name_to_ips: Dict[str, Set[Ipv4Address]] = {}
        self._cnames: Dict[str, str] = {}
        self.answers_seen = 0

    def observe(self, packet: DecodedPacket) -> None:
        """Fold one decoded packet into the map (no-op unless DNS)."""
        message = packet.dns
        if message is None or not message.is_response:
            return
        # Resolve CNAME indirection back to the original query name.
        for record in message.answers:
            if record.rtype == TYPE_CNAME:
                self._cnames[record.target_name] = record.name
        for record in message.answers:
            if record.rtype != TYPE_A:
                continue
            name = self._canonical_name(record.name)
            self.answers_seen += 1
            self._ip_to_names.setdefault(record.address, set()).add(name)
            self._name_to_ips.setdefault(name, set()).add(record.address)

    def observe_all(self, packets: Iterable[DecodedPacket]) -> "DnsMap":
        for packet in packets:
            self.observe(packet)
        return self

    def _canonical_name(self, name: str) -> str:
        seen = set()
        while name in self._cnames and name not in seen:
            seen.add(name)
            name = self._cnames[name]
        return name

    # -- queries ----------------------------------------------------------------

    def domains_for(self, address: Ipv4Address) -> List[str]:
        return sorted(self._ip_to_names.get(address, ()))

    def domain_for(self, address: Ipv4Address) -> Optional[str]:
        names = self._ip_to_names.get(address)
        if not names:
            return None
        return sorted(names)[0]

    def addresses_for(self, name: str) -> List[Ipv4Address]:
        return sorted(self._name_to_ips.get(name.lower(), ()))

    @property
    def all_domains(self) -> List[str]:
        return sorted(self._name_to_ips)

    def label(self, address: Ipv4Address) -> str:
        """Domain if known, else a stable unknown-IP label."""
        name = self.domain_for(address)
        return name if name is not None else f"unresolved:{address}"

    def __len__(self) -> int:
        return len(self._ip_to_names)

    def __repr__(self) -> str:
        return (f"DnsMap({len(self._ip_to_names)} addresses, "
                f"{len(self._name_to_ips)} names)")
