"""The ACR-domain identification heuristic with its three-way validation.

§3.2: "we filter the list of contacted domains ... retaining only those
containing the string 'acr'", validated because (1) blocklists classify
them as tracking-related, (2) the numbered naming scheme is consistent,
and (3) they disappear after opting out and show regular contact patterns,
unlike e.g. ``samsungads.com``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from .blocklists import Blocklist, NetifyDirectory
from .periodicity import PeriodicityReport, analyze_periodicity
from .pipeline import AuditPipeline

_NUMBERED_RE = re.compile(r"\d")


class AcrDomainFinding:
    """Everything the heuristic learned about one candidate domain."""

    __slots__ = ("domain", "contains_acr", "blocklist_listed",
                 "netify_category", "numbered_scheme", "periodicity",
                 "disappears_on_optout")

    def __init__(self, domain: str, contains_acr: bool,
                 blocklist_listed: bool, netify_category: Optional[str],
                 numbered_scheme: bool,
                 periodicity: PeriodicityReport,
                 disappears_on_optout: Optional[bool]) -> None:
        self.domain = domain
        self.contains_acr = contains_acr
        self.blocklist_listed = blocklist_listed
        self.netify_category = netify_category
        self.numbered_scheme = numbered_scheme
        self.periodicity = periodicity
        self.disappears_on_optout = disappears_on_optout

    @property
    def validated(self) -> bool:
        """The paper's acceptance bar: name hit + blocklist confirmation
        + behavioural evidence.

        Behavioural evidence is either a regular contact cadence, or — for
        sparse endpoints like boot-time config fetches that are too quiet
        to establish a cadence — the opt-out differential alone.
        """
        if not (self.contains_acr and self.blocklist_listed):
            return False
        sparse = self.periodicity.bursts <= 6
        behavioural = self.periodicity.regular or sparse
        if self.disappears_on_optout is not None:
            return self.disappears_on_optout and behavioural
        return behavioural

    def __repr__(self) -> str:
        return (f"AcrDomainFinding({self.domain}, "
                f"validated={self.validated})")


class AcrDomainAuditor:
    """Runs the heuristic over opted-in (and optionally opted-out)
    captures of the same cell."""

    def __init__(self, blocklist: Optional[Blocklist] = None,
                 netify: Optional[NetifyDirectory] = None) -> None:
        self.blocklist = blocklist or Blocklist()
        self.netify = netify or NetifyDirectory()

    def audit(self, opted_in: AuditPipeline,
              opted_out: Optional[AuditPipeline] = None
              ) -> List[AcrDomainFinding]:
        """One finding per "acr"-substring candidate."""
        findings: List[AcrDomainFinding] = []
        optout_domains = (set(opted_out.contacted_domains)
                          if opted_out is not None else None)
        for domain in opted_in.acr_candidate_domains():
            info = self.netify.classify(domain)
            disappears = (None if optout_domains is None
                          else domain not in optout_domains)
            findings.append(AcrDomainFinding(
                domain=domain,
                contains_acr=True,
                blocklist_listed=self.blocklist.is_listed(domain),
                netify_category=info["category"] if info else None,
                numbered_scheme=bool(_NUMBERED_RE.search(
                    domain.split(".")[0])),
                periodicity=analyze_periodicity(
                    domain, opted_in.packets_for(domain)),
                disappears_on_optout=disappears,
            ))
        return findings

    def validated_domains(self, opted_in: AuditPipeline,
                          opted_out: Optional[AuditPipeline] = None
                          ) -> List[str]:
        return [finding.domain
                for finding in self.audit(opted_in, opted_out)
                if finding.validated]

    def counterexample_regularity(self, pipeline: AuditPipeline
                                  ) -> Dict[str, PeriodicityReport]:
        """Cadence reports for ad-platform domains — the paper's contrast
        case ("unlike other ad/tracking domains like samsungads.com").

        Ad domains are picked via the Netify classification, excluding the
        "acr" candidates themselves.
        """
        reports: Dict[str, PeriodicityReport] = {}
        for domain in pipeline.contacted_domains:
            if "acr" in domain:
                continue
            if self.netify.is_tracking_related(domain):
                reports[domain] = analyze_periodicity(
                    domain, pipeline.packets_for(domain))
        return reports


def no_new_acr_domains(opted_in: AuditPipeline,
                       opted_out: AuditPipeline) -> bool:
    """§4.2: after opt-out, "no new ACR-related domains are observed"."""
    before = set(opted_in.acr_candidate_domains())
    after = set(opted_out.acr_candidate_domains())
    return after.issubset(before)
