"""The audit pipeline: from raw pcap bytes to per-domain traffic views.

This is the reproduction of the paper's Analysis Scripts.  Everything here
works from the capture alone — packets and the DNS answers inside them —
never from simulator ground truth, preserving the black-box vantage.

The pipeline is the single decode of a capture: pcap bytes are parsed
once through the lazy tier (:func:`repro.net.packet.lazy_decode_all` —
flow keys and lengths from fixed-offset header slices, full object
decode only where a packet's payload is actually read, i.e. DNS), and
every consumer — flow table, DNS map, per-domain index, table/figure/
finding drivers — shares the resulting indexed view instead of
re-decoding.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence

from ..net.addresses import Ipv4Address
from ..net.flow import FlowTable
from ..net.packet import DecodedPacket, lazy_decode_all
from ..net.pcap import load_bytes
from .dns_map import DnsMap


class AuditPipeline:
    """Decoded capture + DNS map + flow table + per-domain packet index."""

    def __init__(self, packets: Sequence[DecodedPacket],
                 tv_ip: Ipv4Address) -> None:
        self.packets = packets
        self.tv_ip = tv_ip
        # Two passes over the shared views: the DNS map must be complete
        # before packets are labelled (answers name the IPs that later
        # traffic contacts), then flows and the domain index fill in one
        # combined sweep.
        self.dns_map = DnsMap().observe_all(packets)
        self.flows = FlowTable()
        self._by_domain: Dict[str, List[DecodedPacket]] = defaultdict(list)
        self._index(packets)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_pcap_bytes(cls, raw: bytes,
                        tv_ip: Optional[Ipv4Address] = None
                        ) -> "AuditPipeline":
        packets = lazy_decode_all(load_bytes(raw))
        if tv_ip is None:
            tv_ip = infer_tv_ip(packets)
        return cls(packets, tv_ip)

    @classmethod
    def from_result(cls, result) -> "AuditPipeline":
        """From an ExperimentResult (reads only its pcap + TV IP)."""
        return cls.from_pcap_bytes(result.pcap_bytes,
                                   Ipv4Address.parse(result.tv_ip))

    # -- indexing ----------------------------------------------------------------

    def _remote_ip(self, packet: DecodedPacket) -> Optional[Ipv4Address]:
        if packet.src_ip == self.tv_ip:
            return packet.dst_ip
        if packet.dst_ip == self.tv_ip:
            return packet.src_ip
        return None

    def _index(self, packets: Sequence[DecodedPacket]) -> None:
        add_flow = self.flows.add
        label_of = self.dns_map.label
        by_domain = self._by_domain
        for packet in packets:
            add_flow(packet)
            remote = self._remote_ip(packet)
            if remote is None:
                continue
            if remote.is_private:
                label = f"lan:{remote}"
            else:
                label = label_of(remote)
            by_domain[label].append(packet)

    # -- queries ------------------------------------------------------------------

    @property
    def contacted_domains(self) -> List[str]:
        """Every resolved Internet domain the TV exchanged traffic with."""
        return sorted(name for name in self._by_domain
                      if not name.startswith(("lan:", "unresolved:")))

    def packets_for(self, domain: str) -> List[DecodedPacket]:
        return list(self._by_domain.get(domain, ()))

    def packets_for_all(self, domains: List[str]) -> List[DecodedPacket]:
        out: List[DecodedPacket] = []
        for domain in domains:
            out.extend(self._by_domain.get(domain, ()))
        out.sort(key=lambda p: p.timestamp)
        return out

    def bytes_for(self, domain: str) -> int:
        """Total bytes sent + received to/from one domain."""
        return sum(p.length for p in self._by_domain.get(domain, ()))

    def kilobytes_for(self, domain: str) -> float:
        return self.bytes_for(domain) / 1000.0

    def bytes_sent_to(self, domain: str) -> int:
        return sum(p.length for p in self._by_domain.get(domain, ())
                   if p.src_ip == self.tv_ip)

    def upload_timestamps(self, domains: List[str]) -> List[int]:
        """Sorted capture times of TV-originated packets to ``domains``."""
        return sorted(p.timestamp for p in self.packets_for_all(domains)
                      if p.src_ip == self.tv_ip)

    def byte_totals(self) -> Dict[str, int]:
        return {domain: self.bytes_for(domain)
                for domain in self.contacted_domains}

    # -- the heuristic's first stage ------------------------------------------------

    def acr_candidate_domains(self) -> List[str]:
        """Contacted domains whose *name* contains "acr" (§3.2)."""
        return [domain for domain in self.contacted_domains
                if "acr" in domain]

    def __repr__(self) -> str:
        return (f"AuditPipeline({len(self.packets)} packets, "
                f"{len(self.contacted_domains)} domains)")


def infer_tv_ip(packets: Sequence[DecodedPacket]) -> Ipv4Address:
    """The device under audit is the most talkative private address."""
    counter: Counter = Counter()
    for packet in packets:
        for address in (packet.src_ip, packet.dst_ip):
            if address is not None and address.is_private:
                counter[address] += 1
    if not counter:
        raise ValueError("no private addresses in capture")
    return counter.most_common(1)[0][0]
