"""The audit pipeline: from raw pcap bytes to per-domain traffic views.

This is the reproduction of the paper's Analysis Scripts.  Everything here
works from the capture alone — packets and the DNS answers inside them —
never from simulator ground truth, preserving the black-box vantage.

The pipeline is the single decode of a capture: pcap bytes are parsed
once through the lazy tier (:func:`repro.net.packet.lazy_decode_all` —
flow keys and lengths from fixed-offset header slices, full object
decode only where a packet's payload is actually read, i.e. DNS), and
every consumer — flow table, DNS map, per-domain index, table/figure/
finding drivers — shares the resulting indexed view instead of
re-decoding.

Incremental extension
---------------------

A pipeline can also be grown one capture *segment* at a time
(:meth:`AuditPipeline.incremental` + :meth:`AuditPipeline.extend`) — the
streaming service tier feeds it per-household segments as they arrive.
The invariant that makes this byte-identical to a one-shot decode: a
packet's domain label is a pure function of its remote IP and the *final*
DNS map.  Packets are therefore indexed by remote IP at ingest (order
preserved), and the label -> packets view is materialized lazily at query
time against the DNS map as observed so far.  After the last segment the
map equals the batch map, so every query answers exactly as a
whole-capture pipeline would — regardless of how the capture was cut.
"""

from __future__ import annotations

from collections import Counter
from operator import itemgetter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..net.addresses import Ipv4Address
from ..net.columnar import ColumnarCapture, ColumnarSlice
from ..net.flow import FlowTable
from ..net.packet import DecodedPacket, decode_all, lazy_decode_all
from ..net.pcap import load_bytes
from ..net.tiers import resolve_tier
from ..obs.metrics import get_registry
from .dns_map import DnsMap


class AuditPipeline:
    """Decoded capture + DNS map + flow table + per-domain packet index."""

    def __init__(self, packets: Sequence[DecodedPacket],
                 tv_ip: Ipv4Address) -> None:
        self.packets: List[DecodedPacket] = []
        self.tv_ip = tv_ip
        self.dns_map = DnsMap()
        self.flows = FlowTable()
        #: remote IP -> [(arrival seq, packet), ...] in capture order.
        #: Labels are *not* assigned here: a DNS answer later in the
        #: capture may name an IP contacted earlier, so the label view
        #: is derived lazily against the complete map (`_domain_index`).
        self._by_remote: Dict[Ipv4Address,
                              List[Tuple[int, DecodedPacket]]] = {}
        self._domain_view: Optional[Dict[str, List[DecodedPacket]]] = None
        self.extend(packets)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def incremental(cls, tv_ip: Ipv4Address,
                    tier: Optional[str] = None) -> "AuditPipeline":
        """An empty pipeline to be grown segment by segment."""
        if resolve_tier(tier) == "columnar":
            return ColumnarAuditPipeline(ColumnarCapture(), tv_ip)
        return cls((), tv_ip)

    @classmethod
    def from_pcap_bytes(cls, raw: bytes,
                        tv_ip: Optional[Ipv4Address] = None,
                        tier: Optional[str] = None) -> "AuditPipeline":
        tier = resolve_tier(tier)
        if tier == "columnar":
            capture = ColumnarCapture.from_pcap_bytes(raw)
            if tv_ip is None:
                tv_ip = capture.infer_tv_ip()
            return ColumnarAuditPipeline(capture, tv_ip)
        if tier == "object":
            packets: Sequence[DecodedPacket] = decode_all(load_bytes(raw))
        else:
            packets = lazy_decode_all(load_bytes(raw))
        if tv_ip is None:
            tv_ip = infer_tv_ip(packets)
        return cls(packets, tv_ip)

    @classmethod
    def from_result(cls, result,
                    tier: Optional[str] = None) -> "AuditPipeline":
        """From an ExperimentResult (reads only its pcap + TV IP)."""
        return cls.from_pcap_bytes(result.pcap_bytes,
                                   Ipv4Address.parse(result.tv_ip),
                                   tier=tier)

    # -- indexing ----------------------------------------------------------------

    def extend(self, packets: Iterable[DecodedPacket]) -> "AuditPipeline":
        """Absorb more packets, in capture order.

        Extends the DNS map, the flow table and the per-remote index in
        one sweep and invalidates the lazy label view.  Feeding a capture
        through ``extend`` in any number of slices produces a pipeline
        whose every query is byte-identical to a one-shot construction.
        """
        add_flow = self.flows.add
        by_remote = self._by_remote
        observe = self.dns_map.observe
        tv_ip = self.tv_ip
        seq = start = len(self.packets)
        appended = self.packets
        for packet in packets:
            observe(packet)
            add_flow(packet)
            if packet.src_ip == tv_ip:
                remote = packet.dst_ip
            elif packet.dst_ip == tv_ip:
                remote = packet.src_ip
            else:
                remote = None
            if remote is not None:
                bucket = by_remote.get(remote)
                if bucket is None:
                    bucket = by_remote[remote] = []
                bucket.append((seq, packet))
            appended.append(packet)
            seq += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("pipeline.extends")
            registry.inc("pipeline.packets.lazy", seq - start)
        self._domain_view = None
        return self

    def extend_pcap_bytes(self, raw: bytes) -> int:
        """Absorb one pcap-framed capture segment; returns its packet
        count (the streaming tier's per-segment ingest)."""
        packets = lazy_decode_all(load_bytes(raw))
        self.extend(packets)
        return len(packets)

    def _label(self, remote: Ipv4Address) -> str:
        if remote.is_private:
            return f"lan:{remote}"
        return self.dns_map.label(remote)

    def _domain_index(self) -> Dict[str, List[DecodedPacket]]:
        """label -> packets (capture order), built against the DNS map
        as of now and cached until the next :meth:`extend`."""
        registry = get_registry()
        if self._domain_view is None:
            registry.inc("pipeline.domain_view.build")
            grouped: Dict[str, List[List[Tuple[int, DecodedPacket]]]] = {}
            for remote, entries in self._by_remote.items():
                grouped.setdefault(self._label(remote), []).append(entries)
            view: Dict[str, List[DecodedPacket]] = {}
            for label, groups in grouped.items():
                if len(groups) == 1:
                    view[label] = [packet for __, packet in groups[0]]
                else:
                    # Several IPs resolved to one name: interleave their
                    # per-IP runs back into capture order.
                    merged = sorted((entry for group in groups
                                     for entry in group),
                                    key=itemgetter(0))
                    view[label] = [packet for __, packet in merged]
            self._domain_view = view
        else:
            registry.inc("pipeline.domain_view.memo_hit")
        return self._domain_view

    # -- queries ------------------------------------------------------------------

    @property
    def contacted_domains(self) -> List[str]:
        """Every resolved Internet domain the TV exchanged traffic with."""
        return sorted(name for name in self._domain_index()
                      if not name.startswith(("lan:", "unresolved:")))

    def packets_for(self, domain: str) -> List[DecodedPacket]:
        return list(self._domain_index().get(domain, ()))

    def packets_for_all(self, domains: List[str]) -> List[DecodedPacket]:
        index = self._domain_index()
        out: List[DecodedPacket] = []
        for domain in domains:
            out.extend(index.get(domain, ()))
        out.sort(key=lambda p: p.timestamp)
        return out

    def bytes_for(self, domain: str) -> int:
        """Total bytes sent + received to/from one domain."""
        return sum(p.length for p in self._domain_index().get(domain, ()))

    def kilobytes_for(self, domain: str) -> float:
        return self.bytes_for(domain) / 1000.0

    def bytes_sent_to(self, domain: str) -> int:
        return sum(p.length for p in self._domain_index().get(domain, ())
                   if p.src_ip == self.tv_ip)

    def packet_count_for(self, domain: str) -> int:
        return len(self._domain_index().get(domain, ()))

    def upload_timestamps(self, domains: List[str]) -> List[int]:
        """Sorted capture times of TV-originated packets to ``domains``."""
        return sorted(p.timestamp for p in self.packets_for_all(domains)
                      if p.src_ip == self.tv_ip)

    def byte_totals(self) -> Dict[str, int]:
        return {domain: self.bytes_for(domain)
                for domain in self.contacted_domains}

    # -- the heuristic's first stage ------------------------------------------------

    def acr_candidate_domains(self) -> List[str]:
        """Contacted domains whose *name* contains "acr" (§3.2)."""
        return [domain for domain in self.contacted_domains
                if "acr" in domain]

    def __repr__(self) -> str:
        return (f"AuditPipeline({len(self.packets)} packets, "
                f"{len(self.contacted_domains)} domains)")


def infer_tv_ip(packets: Sequence[DecodedPacket]) -> Ipv4Address:
    """The device under audit is the most talkative private address."""
    counter: Counter = Counter()
    for packet in packets:
        for address in (packet.src_ip, packet.dst_ip):
            if address is not None and address.is_private:
                counter[address] += 1
    if not counter:
        raise ValueError("no private addresses in capture")
    return counter.most_common(1)[0][0]


class ColumnarAuditPipeline(AuditPipeline):
    """The columnar decode tier's pipeline: every index and query is a
    column scan; per-packet objects exist only in query *results*.

    ``packets`` is a :class:`~repro.net.columnar.ColumnarCapture` (row
    views on demand) rather than a list, and the per-remote index holds
    u32 address keys and row-index arrays instead of packet objects.
    Query semantics — including tie-breaking, stable sorts, and the
    label-view memoization — replicate the base class bit for bit; the
    equivalence suite and golden corpus hold the two tiers identical.
    """

    def __init__(self, capture: ColumnarCapture,
                 tv_ip: Ipv4Address) -> None:
        self.packets = capture
        self.tv_ip = tv_ip
        self.dns_map = DnsMap()
        self._flows: Optional[FlowTable] = None
        #: remote u32 -> [row-index array, ...] (one chunk per segment,
        #: indices ascending within and across chunks).
        self._by_remote: Dict[int, List[np.ndarray]] = {}
        self._domain_view = None
        self._absorb(0, len(capture))

    # -- indexing ----------------------------------------------------------------

    def extend(self, packets) -> "AuditPipeline":
        raise TypeError("columnar pipelines grow from capture segments; "
                        "use extend_pcap_bytes")

    def extend_pcap_bytes(self, raw: bytes) -> int:
        start, end = self.packets.extend_pcap_bytes(raw)
        self._absorb(start, end)
        return end - start

    def _absorb(self, start: int, end: int) -> None:
        """Index rows [start, end): DNS map, per-remote buckets, and —
        only if already materialized — the flow table."""
        capture = self.packets
        observe = self.dns_map.observe
        for i in np.nonzero(capture.dns[start:end])[0].tolist():
            observe(capture.view(start + i))
        tv = np.uint32(self.tv_ip.value)
        src = capture.src[start:end]
        dst = capture.dst[start:end]
        is_ip = capture.proto[start:end] >= 0
        from_tv = is_ip & (src == tv)
        to_tv = is_ip & (dst == tv)
        keep = from_tv | to_tv
        remote = np.where(from_tv, dst, src)[keep]
        if remote.size:
            rows = np.nonzero(keep)[0].astype(np.int64) + start
            order = np.argsort(remote, kind="stable")
            remote = remote[order]
            rows = rows[order]
            cuts = np.nonzero(np.diff(remote))[0] + 1
            bounds = np.concatenate(([0], cuts, [remote.size]))
            by_remote = self._by_remote
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                chunks = by_remote.get(int(remote[lo]))
                if chunks is None:
                    chunks = by_remote[int(remote[lo])] = []
                chunks.append(rows[lo:hi])
        if self._flows is not None:
            self._add_flows(start, end)
        registry = get_registry()
        if registry.enabled:
            registry.inc("pipeline.extends")
        self._domain_view = None

    @property
    def flows(self) -> FlowTable:
        """Built lazily on first access (batch audits never pay for
        it), then maintained incrementally across segments."""
        if self._flows is None:
            self._flows = FlowTable()
            self._add_flows(0, len(self.packets))
        return self._flows

    def _add_flows(self, start: int, end: int) -> None:
        add = self._flows.add
        capture = self.packets
        for index in range(start, end):
            add(capture.view(index))

    def _domain_index(self) -> Dict[str, np.ndarray]:
        registry = get_registry()
        if self._domain_view is None:
            registry.inc("pipeline.domain_view.build")
            grouped: Dict[str, List[np.ndarray]] = {}
            for value, chunks in self._by_remote.items():
                remote = self.packets.address(value)
                label = (f"lan:{remote}" if remote.is_private
                         else self.dns_map.label(remote))
                grouped.setdefault(label, []).extend(chunks)
            view: Dict[str, np.ndarray] = {}
            for label, chunks in grouped.items():
                if len(chunks) == 1:
                    view[label] = chunks[0]
                else:
                    # Arrival seq == row index, so the base class's
                    # seq-keyed merge is just a sort of the indices.
                    merged = np.concatenate(chunks)
                    merged.sort()
                    view[label] = merged
            self._domain_view = view
        else:
            registry.inc("pipeline.domain_view.memo_hit")
        return self._domain_view

    # -- queries ------------------------------------------------------------------

    def packets_for(self, domain: str) -> ColumnarSlice:
        return ColumnarSlice(self.packets,
                             self._domain_index().get(domain))

    def packets_for_all(self, domains: List[str]) -> ColumnarSlice:
        index = self._domain_index()
        parts = [index[domain] for domain in domains if domain in index]
        if not parts:
            return ColumnarSlice(self.packets)
        rows = np.concatenate(parts)
        order = np.argsort(self.packets.ts[rows], kind="stable")
        return ColumnarSlice(self.packets, rows[order])

    def bytes_for(self, domain: str) -> int:
        rows = self._domain_index().get(domain)
        if rows is None:
            return 0
        return int(self.packets.length[rows].sum())

    def bytes_sent_to(self, domain: str) -> int:
        rows = self._domain_index().get(domain)
        if rows is None:
            return 0
        capture = self.packets
        sent = capture.src[rows] == np.uint32(self.tv_ip.value)
        return int(capture.length[rows][sent].sum())

    def packet_count_for(self, domain: str) -> int:
        rows = self._domain_index().get(domain)
        return 0 if rows is None else len(rows)

    def upload_timestamps(self, domains: List[str]) -> List[int]:
        index = self._domain_index()
        parts = [index[domain] for domain in domains if domain in index]
        if not parts:
            return []
        rows = np.concatenate(parts)
        capture = self.packets
        sent = capture.src[rows] == np.uint32(self.tv_ip.value)
        return np.sort(capture.ts[rows][sent]).tolist()
