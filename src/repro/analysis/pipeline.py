"""The audit pipeline: from raw pcap bytes to per-domain traffic views.

This is the reproduction of the paper's Analysis Scripts.  Everything here
works from the capture alone — packets and the DNS answers inside them —
never from simulator ground truth, preserving the black-box vantage.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional

from ..net.addresses import Ipv4Address
from ..net.flow import FlowTable
from ..net.packet import DecodedPacket, decode_all
from ..net.pcap import load_bytes
from .dns_map import DnsMap


class AuditPipeline:
    """Decoded capture + DNS map + per-domain packet index."""

    def __init__(self, packets: List[DecodedPacket],
                 tv_ip: Ipv4Address) -> None:
        self.packets = packets
        self.tv_ip = tv_ip
        self.dns_map = DnsMap().observe_all(packets)
        self.flows = FlowTable()
        self.flows.add_all(packets)
        self._by_domain: Dict[str, List[DecodedPacket]] = defaultdict(list)
        self._index_by_domain()

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_pcap_bytes(cls, raw: bytes,
                        tv_ip: Optional[Ipv4Address] = None
                        ) -> "AuditPipeline":
        packets = decode_all(load_bytes(raw))
        if tv_ip is None:
            tv_ip = infer_tv_ip(packets)
        return cls(packets, tv_ip)

    @classmethod
    def from_result(cls, result) -> "AuditPipeline":
        """From an ExperimentResult (reads only its pcap + TV IP)."""
        return cls.from_pcap_bytes(result.pcap_bytes,
                                   Ipv4Address.parse(result.tv_ip))

    # -- indexing ----------------------------------------------------------------

    def _remote_ip(self, packet: DecodedPacket) -> Optional[Ipv4Address]:
        if packet.ip is None:
            return None
        if packet.ip.src == self.tv_ip:
            return packet.ip.dst
        if packet.ip.dst == self.tv_ip:
            return packet.ip.src
        return None

    def _index_by_domain(self) -> None:
        for packet in self.packets:
            remote = self._remote_ip(packet)
            if remote is None:
                continue
            if remote.is_private:
                label = f"lan:{remote}"
            else:
                label = self.dns_map.label(remote)
            self._by_domain[label].append(packet)

    # -- queries ------------------------------------------------------------------

    @property
    def contacted_domains(self) -> List[str]:
        """Every resolved Internet domain the TV exchanged traffic with."""
        return sorted(name for name in self._by_domain
                      if not name.startswith(("lan:", "unresolved:")))

    def packets_for(self, domain: str) -> List[DecodedPacket]:
        return list(self._by_domain.get(domain, ()))

    def packets_for_all(self, domains: List[str]) -> List[DecodedPacket]:
        out: List[DecodedPacket] = []
        for domain in domains:
            out.extend(self._by_domain.get(domain, ()))
        out.sort(key=lambda p: p.timestamp)
        return out

    def bytes_for(self, domain: str) -> int:
        """Total bytes sent + received to/from one domain."""
        return sum(p.length for p in self._by_domain.get(domain, ()))

    def kilobytes_for(self, domain: str) -> float:
        return self.bytes_for(domain) / 1000.0

    def bytes_sent_to(self, domain: str) -> int:
        return sum(p.length for p in self._by_domain.get(domain, ())
                   if p.ip is not None and p.ip.src == self.tv_ip)

    def byte_totals(self) -> Dict[str, int]:
        return {domain: self.bytes_for(domain)
                for domain in self.contacted_domains}

    # -- the heuristic's first stage ------------------------------------------------

    def acr_candidate_domains(self) -> List[str]:
        """Contacted domains whose *name* contains "acr" (§3.2)."""
        return [domain for domain in self.contacted_domains
                if "acr" in domain]

    def __repr__(self) -> str:
        return (f"AuditPipeline({len(self.packets)} packets, "
                f"{len(self.contacted_domains)} domains)")


def infer_tv_ip(packets: List[DecodedPacket]) -> Ipv4Address:
    """The device under audit is the most talkative private address."""
    counter: Counter = Counter()
    for packet in packets:
        if packet.ip is None:
            continue
        for address in (packet.ip.src, packet.ip.dst):
            if address.is_private:
                counter[address] += 1
    if not counter:
        raise ValueError("no private addresses in capture")
    return counter.most_common(1)[0][0]
