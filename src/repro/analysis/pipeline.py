"""The audit pipeline: from raw pcap bytes to per-domain traffic views.

This is the reproduction of the paper's Analysis Scripts.  Everything here
works from the capture alone — packets and the DNS answers inside them —
never from simulator ground truth, preserving the black-box vantage.

The pipeline is the single decode of a capture: pcap bytes are parsed
once through the lazy tier (:func:`repro.net.packet.lazy_decode_all` —
flow keys and lengths from fixed-offset header slices, full object
decode only where a packet's payload is actually read, i.e. DNS), and
every consumer — flow table, DNS map, per-domain index, table/figure/
finding drivers — shares the resulting indexed view instead of
re-decoding.

Incremental extension
---------------------

A pipeline can also be grown one capture *segment* at a time
(:meth:`AuditPipeline.incremental` + :meth:`AuditPipeline.extend`) — the
streaming service tier feeds it per-household segments as they arrive.
The invariant that makes this byte-identical to a one-shot decode: a
packet's domain label is a pure function of its remote IP and the *final*
DNS map.  Packets are therefore indexed by remote IP at ingest (order
preserved), and the label -> packets view is materialized lazily at query
time against the DNS map as observed so far.  After the last segment the
map equals the batch map, so every query answers exactly as a
whole-capture pipeline would — regardless of how the capture was cut.
"""

from __future__ import annotations

from collections import Counter
from operator import itemgetter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..net.addresses import Ipv4Address
from ..net.flow import FlowTable
from ..net.packet import DecodedPacket, lazy_decode_all
from ..net.pcap import load_bytes
from ..obs.metrics import get_registry
from .dns_map import DnsMap


class AuditPipeline:
    """Decoded capture + DNS map + flow table + per-domain packet index."""

    def __init__(self, packets: Sequence[DecodedPacket],
                 tv_ip: Ipv4Address) -> None:
        self.packets: List[DecodedPacket] = []
        self.tv_ip = tv_ip
        self.dns_map = DnsMap()
        self.flows = FlowTable()
        #: remote IP -> [(arrival seq, packet), ...] in capture order.
        #: Labels are *not* assigned here: a DNS answer later in the
        #: capture may name an IP contacted earlier, so the label view
        #: is derived lazily against the complete map (`_domain_index`).
        self._by_remote: Dict[Ipv4Address,
                              List[Tuple[int, DecodedPacket]]] = {}
        self._domain_view: Optional[Dict[str, List[DecodedPacket]]] = None
        self.extend(packets)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def incremental(cls, tv_ip: Ipv4Address) -> "AuditPipeline":
        """An empty pipeline to be grown with :meth:`extend`."""
        return cls((), tv_ip)

    @classmethod
    def from_pcap_bytes(cls, raw: bytes,
                        tv_ip: Optional[Ipv4Address] = None
                        ) -> "AuditPipeline":
        packets = lazy_decode_all(load_bytes(raw))
        if tv_ip is None:
            tv_ip = infer_tv_ip(packets)
        return cls(packets, tv_ip)

    @classmethod
    def from_result(cls, result) -> "AuditPipeline":
        """From an ExperimentResult (reads only its pcap + TV IP)."""
        return cls.from_pcap_bytes(result.pcap_bytes,
                                   Ipv4Address.parse(result.tv_ip))

    # -- indexing ----------------------------------------------------------------

    def extend(self, packets: Iterable[DecodedPacket]) -> "AuditPipeline":
        """Absorb more packets, in capture order.

        Extends the DNS map, the flow table and the per-remote index in
        one sweep and invalidates the lazy label view.  Feeding a capture
        through ``extend`` in any number of slices produces a pipeline
        whose every query is byte-identical to a one-shot construction.
        """
        add_flow = self.flows.add
        by_remote = self._by_remote
        observe = self.dns_map.observe
        tv_ip = self.tv_ip
        seq = start = len(self.packets)
        appended = self.packets
        for packet in packets:
            observe(packet)
            add_flow(packet)
            if packet.src_ip == tv_ip:
                remote = packet.dst_ip
            elif packet.dst_ip == tv_ip:
                remote = packet.src_ip
            else:
                remote = None
            if remote is not None:
                bucket = by_remote.get(remote)
                if bucket is None:
                    bucket = by_remote[remote] = []
                bucket.append((seq, packet))
            appended.append(packet)
            seq += 1
        registry = get_registry()
        if registry.enabled:
            registry.inc("pipeline.extends")
            registry.inc("pipeline.packets.lazy", seq - start)
        self._domain_view = None
        return self

    def extend_pcap_bytes(self, raw: bytes) -> int:
        """Absorb one pcap-framed capture segment; returns its packet
        count (the streaming tier's per-segment ingest)."""
        packets = lazy_decode_all(load_bytes(raw))
        self.extend(packets)
        return len(packets)

    def _label(self, remote: Ipv4Address) -> str:
        if remote.is_private:
            return f"lan:{remote}"
        return self.dns_map.label(remote)

    def _domain_index(self) -> Dict[str, List[DecodedPacket]]:
        """label -> packets (capture order), built against the DNS map
        as of now and cached until the next :meth:`extend`."""
        registry = get_registry()
        if self._domain_view is None:
            registry.inc("pipeline.domain_view.build")
            grouped: Dict[str, List[List[Tuple[int, DecodedPacket]]]] = {}
            for remote, entries in self._by_remote.items():
                grouped.setdefault(self._label(remote), []).append(entries)
            view: Dict[str, List[DecodedPacket]] = {}
            for label, groups in grouped.items():
                if len(groups) == 1:
                    view[label] = [packet for __, packet in groups[0]]
                else:
                    # Several IPs resolved to one name: interleave their
                    # per-IP runs back into capture order.
                    merged = sorted((entry for group in groups
                                     for entry in group),
                                    key=itemgetter(0))
                    view[label] = [packet for __, packet in merged]
            self._domain_view = view
        else:
            registry.inc("pipeline.domain_view.memo_hit")
        return self._domain_view

    # -- queries ------------------------------------------------------------------

    @property
    def contacted_domains(self) -> List[str]:
        """Every resolved Internet domain the TV exchanged traffic with."""
        return sorted(name for name in self._domain_index()
                      if not name.startswith(("lan:", "unresolved:")))

    def packets_for(self, domain: str) -> List[DecodedPacket]:
        return list(self._domain_index().get(domain, ()))

    def packets_for_all(self, domains: List[str]) -> List[DecodedPacket]:
        index = self._domain_index()
        out: List[DecodedPacket] = []
        for domain in domains:
            out.extend(index.get(domain, ()))
        out.sort(key=lambda p: p.timestamp)
        return out

    def bytes_for(self, domain: str) -> int:
        """Total bytes sent + received to/from one domain."""
        return sum(p.length for p in self._domain_index().get(domain, ()))

    def kilobytes_for(self, domain: str) -> float:
        return self.bytes_for(domain) / 1000.0

    def bytes_sent_to(self, domain: str) -> int:
        return sum(p.length for p in self._domain_index().get(domain, ())
                   if p.src_ip == self.tv_ip)

    def upload_timestamps(self, domains: List[str]) -> List[int]:
        """Sorted capture times of TV-originated packets to ``domains``."""
        return sorted(p.timestamp for p in self.packets_for_all(domains)
                      if p.src_ip == self.tv_ip)

    def byte_totals(self) -> Dict[str, int]:
        return {domain: self.bytes_for(domain)
                for domain in self.contacted_domains}

    # -- the heuristic's first stage ------------------------------------------------

    def acr_candidate_domains(self) -> List[str]:
        """Contacted domains whose *name* contains "acr" (§3.2)."""
        return [domain for domain in self.contacted_domains
                if "acr" in domain]

    def __repr__(self) -> str:
        return (f"AuditPipeline({len(self.packets)} packets, "
                f"{len(self.contacted_domains)} domains)")


def infer_tv_ip(packets: Sequence[DecodedPacket]) -> Ipv4Address:
    """The device under audit is the most talkative private address."""
    counter: Counter = Counter()
    for packet in packets:
        for address in (packet.src_ip, packet.dst_ip):
            if address is not None and address.is_private:
                counter[address] += 1
    if not counter:
        raise ValueError("no private addresses in capture")
    return counter.most_common(1)[0][0]
