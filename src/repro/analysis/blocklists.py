"""Tracker blocklists in the style of Blokada's 1Hosts and Netify.

The paper validates its "acr"-substring heuristic against these sources:
"Identified domains with the 'acr' string were classified as
tracking-related by sources like Netify and Blocada."  We model both as
suffix/wildcard lists over the simulated domain universe.
"""

from __future__ import annotations

from typing import Dict, List, Optional

# Blokada-1Hosts-like: plain suffix entries; a domain is listed when it
# equals an entry or ends with "." + entry.
BLOKADA_LITE = [
    "alphonso.tv",
    "samsungacr.com",
    "samsungcloud.tv",
    "samsungcloudsolution.com",
    "samsungads.com",
    "lgsmartad.com",
    "lgads.tv",
    # Extension-vendor operators (appended: earlier entries keep their
    # positions so paper-vendor classifications never shift).
    "teletrack.tv",
    "inscape.example.tv",
]

# Netify-like: domain suffix -> (application, category).
NETIFY_CATALOG: Dict[str, Dict[str, str]] = {
    "alphonso.tv": {"application": "Alphonso", "category": "advertiser"},
    "samsungacr.com": {"application": "Samsung ACR",
                       "category": "advertiser"},
    "samsungcloud.tv": {"application": "Samsung TV",
                        "category": "advertiser"},
    "samsungcloudsolution.com": {"application": "Samsung TV",
                                 "category": "platform"},
    "samsungads.com": {"application": "Samsung Ads",
                       "category": "advertiser"},
    "lgsmartad.com": {"application": "LG Smart Ad",
                      "category": "advertiser"},
    "lgtvsdp.com": {"application": "LG SDP", "category": "platform"},
    "lge.com": {"application": "LG Electronics", "category": "platform"},
    "netflix.com": {"application": "Netflix", "category": "streaming"},
    "youtube.com": {"application": "YouTube", "category": "streaming"},
    "teletrack.tv": {"application": "Teletrack ACR",
                     "category": "advertiser"},
    "inscape.example.tv": {"application": "Inscape-style Data",
                           "category": "advertiser"},
}


def _suffix_match(domain: str, entry: str) -> bool:
    domain = domain.lower().rstrip(".")
    return domain == entry or domain.endswith("." + entry)


class Blocklist:
    """A Blokada-style hosts list."""

    def __init__(self, entries: Optional[List[str]] = None) -> None:
        self.entries = [e.lower() for e in
                        (entries if entries is not None else BLOKADA_LITE)]

    def is_listed(self, domain: str) -> bool:
        return any(_suffix_match(domain, entry) for entry in self.entries)

    def listed_subset(self, domains: List[str]) -> List[str]:
        return [d for d in domains if self.is_listed(d)]

    def __len__(self) -> int:
        return len(self.entries)


class HostsFileBlocklist:
    """A hosts-file-style list: *exact hostnames*, as Blokada ships them.

    Exactness is the operational weakness the rotation study exploits:
    a snapshot listing ``eu-acr1..eu-acr4.alphonso.tv`` silently misses
    ``eu-acr5`` when the vendor rotates past the snapshot.
    """

    def __init__(self, hostnames: List[str]) -> None:
        self.hostnames = {h.lower().rstrip(".") for h in hostnames}

    def is_listed(self, domain: str) -> bool:
        return domain.lower().rstrip(".") in self.hostnames

    def listed_subset(self, domains: List[str]) -> List[str]:
        return [d for d in domains if self.is_listed(d)]

    def __len__(self) -> int:
        return len(self.hostnames)

    def __repr__(self) -> str:
        return f"HostsFileBlocklist({len(self.hostnames)} hosts)"


def stale_hosts_snapshot(known_rotation_max: int = 4
                         ) -> HostsFileBlocklist:
    """A Blokada-like snapshot taken when only rotation indices
    1..``known_rotation_max`` had been observed in the wild."""
    hosts = []
    for prefix in ("eu-acr", "tkacr"):
        hosts.extend(f"{prefix}{i}.alphonso.tv"
                     for i in range(1, known_rotation_max + 1))
    hosts += [
        "acr-eu-prd.samsungcloud.tv",
        "acr-us-prd.samsungcloud.tv",
        "acr0.samsungcloudsolution.com",
        "log-config.samsungacr.com",
        "log-ingestion-eu.samsungacr.com",
        "log-ingestion.samsungacr.com",
    ]
    return HostsFileBlocklist(hosts)


class NetifyDirectory:
    """A Netify-style domain intelligence directory."""

    def __init__(self,
                 catalog: Optional[Dict[str, Dict[str, str]]] = None
                 ) -> None:
        self.catalog = catalog if catalog is not None else NETIFY_CATALOG

    def classify(self, domain: str) -> Optional[Dict[str, str]]:
        for suffix, info in self.catalog.items():
            if _suffix_match(domain, suffix):
                return dict(info)
        return None

    def is_tracking_related(self, domain: str) -> bool:
        info = self.classify(domain)
        return bool(info and info["category"] == "advertiser")
