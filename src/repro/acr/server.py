"""The ACR backend: ingestion, matching, and viewing-history assembly.

The paper audits the client side of this black box; we also implement the
server so the full Figure-1 loop runs: fingerprints arrive, get matched
against the reference library, and accumulate into per-device viewing
sessions that the segmenter (:mod:`repro.acr.segments`) turns into audience
segments.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.clock import NS_PER_SECOND
from .fingerprint import FingerprintBatch
from .library import ReferenceLibrary
from .matcher import BatchVerdict, FingerprintMatcher

SESSION_GAP_NS = 120 * NS_PER_SECOND  # merge events closer than 2 minutes


class ViewingEvent:
    """One recognised batch: device saw content at a point in time."""

    __slots__ = ("device_id", "at_ns", "content_id", "confidence")

    def __init__(self, device_id: str, at_ns: int, content_id: str,
                 confidence: float) -> None:
        self.device_id = device_id
        self.at_ns = at_ns
        self.content_id = content_id
        self.confidence = confidence

    def __repr__(self) -> str:
        return (f"ViewingEvent({self.device_id}, t={self.at_ns / 1e9:.0f}s, "
                f"{self.content_id})")


class ViewingSession:
    """A maximal run of consecutive events for the same content."""

    __slots__ = ("device_id", "content_id", "start_ns", "end_ns", "events")

    def __init__(self, event: ViewingEvent) -> None:
        self.device_id = event.device_id
        self.content_id = event.content_id
        self.start_ns = event.at_ns
        self.end_ns = event.at_ns
        self.events = 1

    def absorb(self, event: ViewingEvent) -> bool:
        """Extend with an event if contiguous; returns success."""
        if event.content_id != self.content_id:
            return False
        if event.at_ns - self.end_ns > SESSION_GAP_NS:
            return False
        self.end_ns = event.at_ns
        self.events += 1
        return True

    @property
    def duration_s(self) -> float:
        return (self.end_ns - self.start_ns) / NS_PER_SECOND

    def __repr__(self) -> str:
        return (f"ViewingSession({self.device_id}: {self.content_id}, "
                f"{self.duration_s:.0f}s, {self.events} events)")


class AcrBackend:
    """One operator's server stack (Alphonso for LG, Samsung Ads)."""

    def __init__(self, operator: str, library: ReferenceLibrary) -> None:
        self.operator = operator
        self.library = library
        self.matcher = FingerprintMatcher(library)
        self.batches_received = 0
        self.batches_recognised = 0
        self._events: Dict[str, List[ViewingEvent]] = {}
        self._sessions: Dict[str, List[ViewingSession]] = {}

    def ingest(self, batch: FingerprintBatch, at_ns: int) -> BatchVerdict:
        """Process one uploaded batch; returns the match verdict."""
        self.batches_received += 1
        verdict = self.matcher.match_batch(batch.captures)
        if verdict.recognised:
            self.batches_recognised += 1
            event = ViewingEvent(batch.device_id, at_ns,
                                 verdict.content_id, verdict.confidence)
            self._events.setdefault(batch.device_id, []).append(event)
            self._sessionize(event)
        return verdict

    def ingest_raw(self, raw: bytes, at_ns: int) -> BatchVerdict:
        """Ingest a wire-encoded batch (exercises the codec)."""
        return self.ingest(FingerprintBatch.decode(raw), at_ns)

    def _sessionize(self, event: ViewingEvent) -> None:
        sessions = self._sessions.setdefault(event.device_id, [])
        if sessions and sessions[-1].absorb(event):
            return
        sessions.append(ViewingSession(event))

    # -- queries -------------------------------------------------------------

    def events_for(self, device_id: str) -> List[ViewingEvent]:
        return list(self._events.get(device_id, []))

    def sessions_for(self, device_id: str) -> List[ViewingSession]:
        return list(self._sessions.get(device_id, []))

    def watch_seconds(self, device_id: str,
                      content_id: Optional[str] = None) -> float:
        """Total recognised viewing seconds, optionally for one content."""
        total = 0.0
        for session in self._sessions.get(device_id, []):
            if content_id is None or session.content_id == content_id:
                total += session.duration_s
        return total

    @property
    def recognition_rate(self) -> float:
        if not self.batches_received:
            return 0.0
        return self.batches_recognised / self.batches_received

    def __repr__(self) -> str:
        return (f"AcrBackend({self.operator!r}, "
                f"{self.batches_received} batches, "
                f"{self.recognition_rate:.0%} recognised)")
