"""Audience segmentation from recognised viewing history.

Figure 1's last stage: the ACR operator profiles users "into audience
segments (Travel, Shopping, Sports...), which are then used to target
personalized ads."  Segments are derived from genre watch time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from .library import ReferenceLibrary
from .server import AcrBackend

# Segment label per dominant genre.
SEGMENT_LABELS: Dict[str, str] = {
    "news": "News Junkie",
    "sports": "Sports Enthusiast",
    "drama": "Binge Watcher",
    "travel": "Travel Intender",
    "shopping": "Home Shopper",
    "cooking": "Foodie",
    "documentary": "Lifelong Learner",
    "kids": "Family Household",
    "music": "Music Lover",
    "comedy": "Comedy Fan",
}

MIN_SEGMENT_SECONDS = 300.0  # five recognised minutes joins a segment


class AudienceProfile:
    """Segments assigned to one device."""

    __slots__ = ("device_id", "genre_seconds", "segments")

    def __init__(self, device_id: str, genre_seconds: Dict[str, float],
                 segments: List[str]) -> None:
        self.device_id = device_id
        self.genre_seconds = genre_seconds
        self.segments = segments

    def __repr__(self) -> str:
        return f"AudienceProfile({self.device_id}, {self.segments})"


class SegmentProfiler:
    """Builds audience profiles from a backend's viewing sessions."""

    def __init__(self, backend: AcrBackend,
                 library: ReferenceLibrary) -> None:
        self.backend = backend
        self.library = library

    def genre_watch_seconds(self, device_id: str) -> Dict[str, float]:
        """Recognised seconds per genre for one device."""
        totals: Dict[str, float] = defaultdict(float)
        for session in self.backend.sessions_for(device_id):
            if not self.library.knows(session.content_id):
                continue
            item = self.library.item(session.content_id)
            totals[item.genre] += session.duration_s
        return dict(totals)

    def profile(self, device_id: str,
                min_seconds: float = MIN_SEGMENT_SECONDS) -> AudienceProfile:
        """Assign every segment whose genre crosses the threshold."""
        genre_seconds = self.genre_watch_seconds(device_id)
        segments = [SEGMENT_LABELS[genre]
                    for genre, seconds in sorted(
                        genre_seconds.items(),
                        key=lambda kv: -kv[1])
                    if seconds >= min_seconds and genre in SEGMENT_LABELS]
        return AudienceProfile(device_id, genre_seconds, segments)
