"""The on-TV ACR client: capture -> fingerprint -> batch -> transmit.

The client is vendor-agnostic; everything vendor-specific comes from its
:class:`~repro.acr.policy.VendorAcrProfile` and the policy decision table.
It is wired to the device via three callables so it can be tested in
isolation:

* ``enabled_fn()`` — the privacy-settings gate (§4.2: opt-out must silence
  the client completely);
* ``source_fn()`` — the active input source;
* ``transport`` — ships bytes (observable on the wire) and delivers the
  decoded batch to the operator backend (the out-of-band "server side" a
  black-box audit cannot see, but our reproduction can).
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from ..media.sources import InputSource, SourceType
from .fingerprint import Capture, FingerprintBatch, capture_state
from .matcher import BatchVerdict
from .policy import (CaptureDecision, TRIGGER_CONTENT_CHANGE,
                     VendorAcrProfile, capture_decision)


def _padded_json(body: dict, target_size: int) -> bytes:
    """Encode ``body`` as JSON padded out to ``target_size`` bytes (real
    clients pad/extend status payloads with context fields)."""
    raw = json.dumps(body, separators=(",", ":")).encode("utf-8")
    if len(raw) >= target_size:
        return raw
    padding = target_size - len(raw) - len(',"pad":""') - 2
    if padding <= 0:
        return raw
    padded = dict(body)
    padded["pad"] = "x" * padding
    return json.dumps(padded, separators=(",", ":")).encode("utf-8")


class AcrTransport:
    """What the client needs from the device's network plumbing."""

    def send(self, at_ns: int, domain: str, request_bytes: int,
             response_bytes: int,
             request_plaintext: Optional[bytes] = None,
             response_plaintext: Optional[bytes] = None) -> None:
        """Ship a request/response exchange to ``domain``.

        ``request_bytes``/``response_bytes`` size the ciphertext on the
        wire; the optional plaintexts are what a TLS-terminating MITM
        proxy would recover (ignored by transports without one).
        """
        raise NotImplementedError

    def deliver_batch(self, at_ns: int, domain: str,
                      batch: FingerprintBatch) -> Optional[BatchVerdict]:
        """Hand the decoded batch to the operator backend, if any."""
        raise NotImplementedError

    def keepalive_probe(self, at_ns: int, domain: str) -> None:
        """A bare TCP keep-alive on the session to ``domain``.

        Default maps to a zero-byte send; network-backed transports emit
        actual empty ACK segments.
        """
        self.send(at_ns, domain, 0, 0)


class AcrClientStats:
    """Counters for tests and reporting."""

    __slots__ = ("full_batches", "beacons", "silent_slots",
                 "skipped_backoff", "disabled_slots", "recognised",
                 "unrecognised", "burst_uploads", "content_gated_slots",
                 "downsampled_batches")

    def __init__(self) -> None:
        self.full_batches = 0
        self.beacons = 0
        self.silent_slots = 0
        self.skipped_backoff = 0
        self.disabled_slots = 0
        self.recognised = 0
        self.unrecognised = 0
        # Content-change-triggered vendors (Roku-style) only:
        self.burst_uploads = 0         # batches shipped as boundary bursts
        self.content_gated_slots = 0   # ticks skipped: content unchanged
        self.downsampled_batches = 0   # opted-out reduced-rate uploads

    def __repr__(self) -> str:
        return (f"AcrClientStats(full={self.full_batches}, "
                f"beacons={self.beacons}, silent={self.silent_slots}, "
                f"backoff={self.skipped_backoff}, "
                f"disabled={self.disabled_slots}, "
                f"bursts={self.burst_uploads}, "
                f"gated={self.content_gated_slots}, "
                f"downsampled={self.downsampled_batches})")


class AcrClient:
    """One vendor's ACR client running on one TV."""

    def __init__(self, device_id: str, profile: VendorAcrProfile,
                 enabled_fn: Callable[[], bool],
                 source_fn: Callable[[], InputSource],
                 transport: AcrTransport,
                 domain_fn: Callable[[int], str]) -> None:
        self.device_id = device_id
        self.profile = profile
        self._enabled_fn = enabled_fn
        self._source_fn = source_fn
        self._transport = transport
        self._domain_fn = domain_fn
        self.stats = AcrClientStats()
        self._slot = 0
        self._last_recognised = True
        self._last_content_id: Optional[str] = None
        self._static_slots = 0

    # -- periodic entry point ------------------------------------------------

    def batch_tick(self, at_ns: int) -> None:
        """Called by the device every ``profile.batch_interval_ns``."""
        self._slot += 1
        if not self._enabled_fn():
            # Opted out: complete silence on every ACR channel (§4.2) —
            # unless the vendor's profile declares downsample-on-opt-out
            # semantics, in which case every Nth tick still uploads a
            # single (never burst) batch.
            every = self.profile.optout_downsample_every
            if not every or self._slot % every:
                self.stats.disabled_slots += 1
                return
            downsampled = True
        else:
            downsampled = False
        source = self._source_fn()
        decision = capture_decision(self.profile.vendor,
                                    self.profile.country,
                                    source.source_type)
        if decision is CaptureDecision.SILENT or \
                (downsampled and decision is not CaptureDecision.FULL):
            self.stats.silent_slots += 1
            return
        if decision is CaptureDecision.BEACON:
            self._send_beacon(at_ns, source)
            return
        self._send_full_batch(at_ns, source, downsampled)

    # -- modes -------------------------------------------------------------

    def _send_beacon(self, at_ns: int, source: InputSource) -> None:
        request, response = self.profile.beacon_payload_bytes(
            self._slot, source.source_type)
        domain = self._domain_fn(at_ns)
        if request == 0 and response == 0:
            self._transport.keepalive_probe(at_ns, domain)
        else:
            self._transport.send(
                at_ns, domain, request, response,
                request_plaintext=self._beacon_plaintext(
                    request, source),
                response_plaintext=_padded_json(
                    {"status": "ok"}, response))
        self.stats.beacons += 1

    def _beacon_plaintext(self, size: int, source: InputSource) -> bytes:
        """What the beacon actually carries: device identity + context."""
        return _padded_json({
            "type": "acr-status",
            "device": self.device_id,
            "source": source.source_type.value,
            "slot": self._slot,
        }, size)

    def _send_full_batch(self, at_ns: int, source: InputSource,
                         downsampled: bool = False) -> None:
        if (not downsampled and self.profile.backoff_when_unrecognised
                and not self._last_recognised and self._slot % 2 == 0):
            # Unrecognised content (e.g. a game over HDMI): halve the
            # upload rate until something matches again.
            self.stats.skipped_backoff += 1
            return
        burst = 1
        if (self.profile.upload_trigger == TRIGGER_CONTENT_CHANGE
                and not downsampled):
            burst = self._content_gate(at_ns, source)
            if burst == 0:
                return
        batch = self._sample_batch(at_ns, source)
        domain = self._domain_fn(at_ns)
        request = self.profile.batch_payload_bytes(
            self.stats.full_batches + 1, source.source_type)
        if burst > 1:
            # A boundary burst: the wire carries several batches' worth
            # of fingerprints back to back in one flush.
            request *= burst
            self.stats.burst_uploads += 1
        self._transport.send(
            at_ns, domain, request, self.profile.batch_response_bytes,
            request_plaintext=batch.encode(),
            response_plaintext=_padded_json(
                {"ack": True}, self.profile.batch_response_bytes))
        verdict = self._transport.deliver_batch(at_ns, domain, batch)
        if verdict is not None:
            self._last_recognised = verdict.recognised
            if verdict.recognised:
                self.stats.recognised += 1
            else:
                self.stats.unrecognised += 1
        self.stats.full_batches += 1
        if downsampled:
            self.stats.downsampled_batches += 1

    def _content_gate(self, at_ns: int, source: InputSource) -> int:
        """How many batches a content-change-triggered tick ships.

        0 = gated (content unchanged, no background refresh due);
        1 = background refresh; ``profile.burst_batches`` = boundary
        burst because the on-screen content just changed.
        """
        state = source.screen_state(at_ns)
        content_id = state.item.content_id if state is not None else None
        changed = (content_id is not None
                   and content_id != self._last_content_id)
        if content_id is not None:
            self._last_content_id = content_id
        if changed:
            self._static_slots = 0
            return self.profile.burst_batches
        self._static_slots += 1
        idle = self.profile.idle_upload_every
        if idle and self._static_slots % idle == 0:
            return 1
        self.stats.content_gated_slots += 1
        return 0

    # -- capture sampling -----------------------------------------------------

    def _sample_batch(self, at_ns: int,
                      source: InputSource) -> FingerprintBatch:
        """Fingerprint a sample of real captures from the batch window.

        The client conceptually captured ``captures_per_batch`` frames;
        for matching purposes a sample is equivalent and keeps the
        simulation tractable (the *wire* size still reflects every
        capture — see ``VendorAcrProfile.batch_payload_bytes``).  Capture
        *offsets* tick at the true capture interval, so payload-level
        inspection (the MITM study) recovers the vendor's capture cadence
        — 10 ms for LG, 500 ms for Samsung — from the batch alone.
        """
        window = self.profile.batch_interval_ns
        samples = self.profile.match_samples_per_batch
        spread = window // samples
        captures = []
        for index in range(samples):
            offset = index * self.profile.capture_interval_ns
            t = at_ns - window + index * spread
            if t < 0:
                continue
            state = source.screen_state(t)
            if state is None:
                continue
            captures.append(capture_state(state, offset_ns=offset))
        return FingerprintBatch(self.device_id, captures)

    def __repr__(self) -> str:
        return (f"AcrClient({self.device_id!r}, "
                f"{self.profile.vendor}/{self.profile.country}, "
                f"slot={self._slot})")
