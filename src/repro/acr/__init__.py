"""The ACR system under audit: fingerprinting, reference library, matcher,
vendor capture policies, on-TV client, operator backend and audience
segmentation — the full Figure-1 loop of the paper."""

from .client import AcrClient, AcrClientStats, AcrTransport
from .fingerprint import (Capture, FingerprintBatch, audio_fingerprint,
                          capture_state, hamming_distance,
                          video_fingerprint)
from .library import ReferenceEntry, ReferenceLibrary
from .matcher import (BatchVerdict, FingerprintMatcher, Match, bands_of)
from .policy import (CaptureDecision, VendorAcrProfile,
                     capture_decision, profile_for)
from .segments import (AudienceProfile, SEGMENT_LABELS, SegmentProfiler)
from .server import AcrBackend, ViewingEvent, ViewingSession

__all__ = [
    "AcrBackend",
    "AcrClient",
    "AcrClientStats",
    "AcrTransport",
    "AudienceProfile",
    "BatchVerdict",
    "Capture",
    "CaptureDecision",
    "FingerprintBatch",
    "FingerprintMatcher",
    "Match",
    "ReferenceEntry",
    "ReferenceLibrary",
    "SEGMENT_LABELS",
    "SegmentProfiler",
    "VendorAcrProfile",
    "ViewingEvent",
    "ViewingSession",
    "audio_fingerprint",
    "bands_of",
    "capture_decision",
    "capture_state",
    "hamming_distance",
    "profile_for",
    "video_fingerprint",
]
