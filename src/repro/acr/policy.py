"""Vendor capture policy: cadence, payload sizing and per-source gating.

Everything the paper *infers* about client behaviour from traffic shapes is
made explicit policy here:

* LG captures frames every 10 ms and ships a batched fingerprint every
  15 s (LG documentation via §4.1); Samsung captures every 500 ms and
  ships every 60 s, with larger flushes roughly every 5 minutes.
* Fingerprinting is **gated by input source and country**: Linear and HDMI
  are always fingerprinted; the manufacturer's FAST platform is
  fingerprinted in the US but not the UK (§4.3); third-party OTT apps are
  never fingerprinted (Netflix-style restrictions, §4.1); home screen and
  casting fall back to beacon-level traffic.
* When opted out there is no ACR traffic at all (§4.2) — that gate lives
  in the client, not here.

The byte constants are calibrated so a one-hour experiment lands near the
paper's Tables 2-5 (see EXPERIMENTS.md for paper-vs-measured).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Tuple

from ..media.sources import SourceType
from ..sim.clock import milliseconds, seconds


class CaptureDecision(Enum):
    """What the ACR client does for a batch from a given source."""

    FULL = "full"        # fingerprint and transmit the batch
    BEACON = "beacon"    # no fingerprints; light status beacon only
    SILENT = "silent"    # no traffic on the fingerprint channel


class VendorAcrProfile:
    """Per-vendor, per-country ACR client parameters."""

    __slots__ = (
        "vendor", "country", "capture_interval_ns", "batch_interval_ns",
        "bytes_per_capture", "batch_response_bytes", "peak_every_batches",
        "peak_extra_bytes", "beacon_request_bytes", "beacon_response_bytes",
        "beacon_peak_every", "beacon_peak_scale", "cast_request_bytes",
        "cast_response_bytes", "hdmi_dedup_fraction",
        "backoff_when_unrecognised", "match_samples_per_batch",
    )

    def __init__(self, vendor: str, country: str,
                 capture_interval_ns: int, batch_interval_ns: int,
                 bytes_per_capture: int, batch_response_bytes: int,
                 peak_every_batches: int, peak_extra_bytes: int,
                 beacon_request_bytes: int, beacon_response_bytes: int,
                 beacon_peak_every: int, beacon_peak_scale: float,
                 cast_request_bytes: int, cast_response_bytes: int,
                 hdmi_dedup_fraction: float,
                 backoff_when_unrecognised: bool,
                 match_samples_per_batch: int = 8) -> None:
        if not 0.0 <= hdmi_dedup_fraction < 1.0:
            raise ValueError("dedup fraction must be in [0, 1)")
        self.vendor = vendor
        self.country = country
        self.capture_interval_ns = capture_interval_ns
        self.batch_interval_ns = batch_interval_ns
        self.bytes_per_capture = bytes_per_capture
        self.batch_response_bytes = batch_response_bytes
        self.peak_every_batches = peak_every_batches
        self.peak_extra_bytes = peak_extra_bytes
        self.beacon_request_bytes = beacon_request_bytes
        self.beacon_response_bytes = beacon_response_bytes
        self.beacon_peak_every = beacon_peak_every
        self.beacon_peak_scale = beacon_peak_scale
        self.cast_request_bytes = cast_request_bytes
        self.cast_response_bytes = cast_response_bytes
        self.hdmi_dedup_fraction = hdmi_dedup_fraction
        self.backoff_when_unrecognised = backoff_when_unrecognised
        self.match_samples_per_batch = match_samples_per_batch

    @property
    def captures_per_batch(self) -> int:
        return self.batch_interval_ns // self.capture_interval_ns

    def batch_payload_bytes(self, batch_number: int,
                            source: SourceType = SourceType.TUNER) -> int:
        """Request payload for full-fingerprint batch number N (1-based).

        HDMI batches shrink by the duplicate-suppression fraction: static
        desktop frames dedup before upload, which is why the paper's HDMI
        volumes sit slightly below Antenna for LG.
        """
        captures = self.captures_per_batch
        if source is SourceType.HDMI and self.hdmi_dedup_fraction:
            captures = int(captures * (1.0 - self.hdmi_dedup_fraction))
        payload = 64 + captures * self.bytes_per_capture
        if self.peak_every_batches and \
                batch_number % self.peak_every_batches == 0:
            payload += self.peak_extra_bytes
        return payload

    def beacon_payload_bytes(self, slot_number: int,
                             source: SourceType) -> Tuple[int, int]:
        """(request, response) beacon sizes for slot number N (1-based).

        A (0, 0) result means "bare TCP keep-alive" — Samsung's restricted
        scenarios show traffic far too small to be TLS exchanges.
        Casting carries its own richer status beacon when the vendor
        differentiates it (Samsung does; LG treats cast like any beacon).
        """
        if source is SourceType.CAST and \
                (self.cast_request_bytes, self.cast_response_bytes) != (
                    self.beacon_request_bytes, self.beacon_response_bytes):
            return self.cast_request_bytes, self.cast_response_bytes
        request = self.beacon_request_bytes
        response = self.beacon_response_bytes
        if request and self.beacon_peak_every and \
                slot_number % self.beacon_peak_every == 0:
            request = int(request * self.beacon_peak_scale)
            response = int(response * self.beacon_peak_scale)
        return request, response

    def __repr__(self) -> str:
        return (f"VendorAcrProfile({self.vendor}/{self.country}, "
                f"capture={self.capture_interval_ns / 1e6:.0f}ms, "
                f"batch={self.batch_interval_ns / 1e9:.0f}s)")


# LG webOS: 10 ms captures, 15 s batches; compact per-capture records;
# duplicate-frame suppression trims HDMI batches (desktop content is
# largely static).
_LG_COMMON = dict(
    capture_interval_ns=milliseconds(10),
    batch_interval_ns=seconds(15),
    bytes_per_capture=12,
    batch_response_bytes=360,
    peak_every_batches=4,          # minute-cadence peaks (Fig. 4a)
    peak_extra_bytes=2600,
    beacon_peak_every=4,           # "peaks every minute"
    beacon_peak_scale=2.4,
    hdmi_dedup_fraction=0.10,
    backoff_when_unrecognised=False,
)

# Samsung Tizen: 500 ms captures, 60 s batches; richer per-capture records,
# five-minute flush peaks.  Restricted scenarios keep the fingerprint
# session alive with bare TCP keep-alives (near-zero bytes), except
# casting, which sends a small status beacon.
_SAMSUNG_COMMON = dict(
    capture_interval_ns=milliseconds(500),
    batch_interval_ns=seconds(60),
    batch_response_bytes=420,
    peak_every_batches=5,          # "peaks ... every five minutes" (Fig. 4b)
    peak_extra_bytes=2200,
    beacon_peak_every=2,           # alternating minute peaks (§4.1)
    beacon_peak_scale=1.8,
    beacon_request_bytes=0,        # bare TCP keep-alive
    beacon_response_bytes=0,
    cast_request_bytes=110,
    cast_response_bytes=90,
    hdmi_dedup_fraction=0.0,
)

PROFILES: Dict[Tuple[str, str], VendorAcrProfile] = {
    ("lg", "uk"): VendorAcrProfile(
        "lg", "uk",
        beacon_request_bytes=370, beacon_response_bytes=240,
        cast_request_bytes=370, cast_response_bytes=240,
        **_LG_COMMON),
    ("lg", "us"): VendorAcrProfile(
        "lg", "us",
        beacon_request_bytes=260, beacon_response_bytes=170,
        cast_request_bytes=260, cast_response_bytes=170,
        **_LG_COMMON),
    ("samsung", "uk"): VendorAcrProfile(
        "samsung", "uk",
        bytes_per_capture=52,
        backoff_when_unrecognised=True,
        **_SAMSUNG_COMMON),
    ("samsung", "us"): VendorAcrProfile(
        "samsung", "us",
        bytes_per_capture=17,
        backoff_when_unrecognised=False,  # US HDMI volumes ~= Antenna
        **_SAMSUNG_COMMON),
}


def profile_for(vendor: str, country: str) -> VendorAcrProfile:
    """The calibrated profile for a vendor/country pair."""
    try:
        return PROFILES[(vendor, country)]
    except KeyError:
        raise KeyError(
            f"no ACR profile for {vendor!r}/{country!r}") from None


# Decision table: (vendor, country, source) -> CaptureDecision.  Entries
# not listed fall back to the per-source defaults below.
_DECISIONS: Dict[Tuple[str, str, SourceType], CaptureDecision] = {
    # The manufacturer FAST platform: restricted in the UK, active in the
    # US (§4.3: "the FAST scenario deviates from the UK findings").
    ("lg", "uk", SourceType.FAST): CaptureDecision.BEACON,
    ("lg", "us", SourceType.FAST): CaptureDecision.FULL,
    ("samsung", "uk", SourceType.FAST): CaptureDecision.BEACON,
    ("samsung", "us", SourceType.FAST): CaptureDecision.FULL,
    # Samsung goes fully silent on the fingerprint channel in the US for
    # idle/OTT/cast (Table 4 shows no acr-us-prd traffic there).
    ("samsung", "us", SourceType.OTT): CaptureDecision.SILENT,
    ("samsung", "us", SourceType.CAST): CaptureDecision.SILENT,
    ("samsung", "uk", SourceType.HOME): CaptureDecision.SILENT,
    ("samsung", "us", SourceType.HOME): CaptureDecision.SILENT,
}

_DEFAULTS: Dict[SourceType, CaptureDecision] = {
    SourceType.TUNER: CaptureDecision.FULL,
    SourceType.HDMI: CaptureDecision.FULL,
    SourceType.FAST: CaptureDecision.BEACON,
    SourceType.OTT: CaptureDecision.BEACON,
    SourceType.CAST: CaptureDecision.BEACON,
    SourceType.HOME: CaptureDecision.BEACON,
}


def capture_decision(vendor: str, country: str,
                     source: SourceType) -> CaptureDecision:
    """What the ACR client does for this source in this country."""
    specific = _DECISIONS.get((vendor, country, source))
    if specific is not None:
        return specific
    return _DEFAULTS[source]
