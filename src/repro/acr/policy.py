"""Vendor capture policy: cadence, payload sizing and per-source gating.

Everything the paper *infers* about client behaviour from traffic shapes is
made explicit policy here:

* LG captures frames every 10 ms and ships a batched fingerprint every
  15 s (LG documentation via §4.1); Samsung captures every 500 ms and
  ships every 60 s, with larger flushes roughly every 5 minutes.
* Fingerprinting is **gated by input source and country**: Linear and HDMI
  are always fingerprinted; the manufacturer's FAST platform is
  fingerprinted in the US but not the UK (§4.3); third-party OTT apps are
  never fingerprinted (Netflix-style restrictions, §4.1); home screen and
  casting fall back to beacon-level traffic.
* When opted out there is no ACR traffic at all (§4.2) — that gate lives
  in the client, not here — *unless* the vendor's profile declares
  downsample-on-opt-out semantics (the Roku-style extension vendor).

This module owns the vendor-agnostic vocabulary
(:class:`VendorAcrProfile`, :class:`CaptureDecision`) and the per-source
defaults.  The per-vendor calibrated profiles and decision overrides are
declared by the vendor plugins in :mod:`repro.tv.vendors`;
:func:`profile_for` and :func:`capture_decision` resolve through that
registry.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Tuple

from ..media.sources import SourceType

#: Upload scheduling modes.  ``interval`` ships a batch on every tick
#: (the paper's pair); ``content_change`` gates uploads on the on-screen
#: content changing, with bursts at boundaries (Roku-style SDKs).
TRIGGER_INTERVAL = "interval"
TRIGGER_CONTENT_CHANGE = "content_change"


class CaptureDecision(Enum):
    """What the ACR client does for a batch from a given source."""

    FULL = "full"        # fingerprint and transmit the batch
    BEACON = "beacon"    # no fingerprints; light status beacon only
    SILENT = "silent"    # no traffic on the fingerprint channel


class VendorAcrProfile:
    """Per-vendor, per-country ACR client parameters."""

    __slots__ = (
        "vendor", "country", "capture_interval_ns", "batch_interval_ns",
        "bytes_per_capture", "batch_response_bytes", "peak_every_batches",
        "peak_extra_bytes", "beacon_request_bytes", "beacon_response_bytes",
        "beacon_peak_every", "beacon_peak_scale", "cast_request_bytes",
        "cast_response_bytes", "hdmi_dedup_fraction",
        "backoff_when_unrecognised", "match_samples_per_batch",
        "upload_trigger", "burst_batches", "idle_upload_every",
        "optout_downsample_every",
    )

    def __init__(self, vendor: str, country: str,
                 capture_interval_ns: int, batch_interval_ns: int,
                 bytes_per_capture: int, batch_response_bytes: int,
                 peak_every_batches: int, peak_extra_bytes: int,
                 beacon_request_bytes: int, beacon_response_bytes: int,
                 beacon_peak_every: int, beacon_peak_scale: float,
                 cast_request_bytes: int, cast_response_bytes: int,
                 hdmi_dedup_fraction: float,
                 backoff_when_unrecognised: bool,
                 match_samples_per_batch: int = 8,
                 upload_trigger: str = TRIGGER_INTERVAL,
                 burst_batches: int = 1,
                 idle_upload_every: int = 0,
                 optout_downsample_every: int = 0) -> None:
        if not 0.0 <= hdmi_dedup_fraction < 1.0:
            raise ValueError("dedup fraction must be in [0, 1)")
        if upload_trigger not in (TRIGGER_INTERVAL, TRIGGER_CONTENT_CHANGE):
            raise ValueError(f"unknown upload trigger: {upload_trigger!r}")
        if upload_trigger == TRIGGER_INTERVAL and burst_batches != 1:
            raise ValueError("bursts require the content-change trigger")
        self.vendor = vendor
        self.country = country
        self.capture_interval_ns = capture_interval_ns
        self.batch_interval_ns = batch_interval_ns
        self.bytes_per_capture = bytes_per_capture
        self.batch_response_bytes = batch_response_bytes
        self.peak_every_batches = peak_every_batches
        self.peak_extra_bytes = peak_extra_bytes
        self.beacon_request_bytes = beacon_request_bytes
        self.beacon_response_bytes = beacon_response_bytes
        self.beacon_peak_every = beacon_peak_every
        self.beacon_peak_scale = beacon_peak_scale
        self.cast_request_bytes = cast_request_bytes
        self.cast_response_bytes = cast_response_bytes
        self.hdmi_dedup_fraction = hdmi_dedup_fraction
        self.backoff_when_unrecognised = backoff_when_unrecognised
        self.match_samples_per_batch = match_samples_per_batch
        self.upload_trigger = upload_trigger
        self.burst_batches = burst_batches
        self.idle_upload_every = idle_upload_every
        self.optout_downsample_every = optout_downsample_every

    @property
    def captures_per_batch(self) -> int:
        return self.batch_interval_ns // self.capture_interval_ns

    def batch_payload_bytes(self, batch_number: int,
                            source: SourceType = SourceType.TUNER) -> int:
        """Request payload for full-fingerprint batch number N (1-based).

        HDMI batches shrink by the duplicate-suppression fraction: static
        desktop frames dedup before upload, which is why the paper's HDMI
        volumes sit slightly below Antenna for LG.
        """
        captures = self.captures_per_batch
        if source is SourceType.HDMI and self.hdmi_dedup_fraction:
            captures = int(captures * (1.0 - self.hdmi_dedup_fraction))
        payload = 64 + captures * self.bytes_per_capture
        if self.peak_every_batches and \
                batch_number % self.peak_every_batches == 0:
            payload += self.peak_extra_bytes
        return payload

    def beacon_payload_bytes(self, slot_number: int,
                             source: SourceType) -> Tuple[int, int]:
        """(request, response) beacon sizes for slot number N (1-based).

        A (0, 0) result means "bare TCP keep-alive" — Samsung's restricted
        scenarios show traffic far too small to be TLS exchanges.
        Casting carries its own richer status beacon when the vendor
        differentiates it (Samsung does; LG treats cast like any beacon).
        """
        if source is SourceType.CAST and \
                (self.cast_request_bytes, self.cast_response_bytes) != (
                    self.beacon_request_bytes, self.beacon_response_bytes):
            return self.cast_request_bytes, self.cast_response_bytes
        request = self.beacon_request_bytes
        response = self.beacon_response_bytes
        if request and self.beacon_peak_every and \
                slot_number % self.beacon_peak_every == 0:
            request = int(request * self.beacon_peak_scale)
            response = int(response * self.beacon_peak_scale)
        return request, response

    def __repr__(self) -> str:
        return (f"VendorAcrProfile({self.vendor}/{self.country}, "
                f"capture={self.capture_interval_ns / 1e6:.0f}ms, "
                f"batch={self.batch_interval_ns / 1e9:.0f}s)")


def profile_for(vendor: str, country: str) -> VendorAcrProfile:
    """The calibrated profile for a vendor/country pair."""
    from ..tv import vendors
    try:
        return vendors.get(vendor).acr_profiles[country]
    except KeyError:
        raise KeyError(
            f"no ACR profile for {vendor!r}/{country!r}") from None


# Per-source fallbacks; vendor profiles override specific cells.
_DEFAULTS: Dict[SourceType, CaptureDecision] = {
    SourceType.TUNER: CaptureDecision.FULL,
    SourceType.HDMI: CaptureDecision.FULL,
    SourceType.FAST: CaptureDecision.BEACON,
    SourceType.OTT: CaptureDecision.BEACON,
    SourceType.CAST: CaptureDecision.BEACON,
    SourceType.HOME: CaptureDecision.BEACON,
}


def capture_decision(vendor: str, country: str,
                     source: SourceType) -> CaptureDecision:
    """What the ACR client does for this source in this country."""
    from ..tv import vendors
    specific = vendors.get(vendor).capture_decisions.get((country, source))
    if specific is not None:
        return specific
    return _DEFAULTS[source]
