"""Fingerprint matching: LSH-banded inverted index with Hamming tolerance.

The 64-bit video hash is split into four 16-bit bands; a query retrieves
candidates sharing at least one exact band (any hash within Hamming
distance 3 is guaranteed to share a band by pigeonhole), then candidates
are verified with the true Hamming distance and audio-landmark overlap.
Batch queries vote across captures, so a 15-60 second batch resolves to a
(content, offset) even when single frames are ambiguous.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from .fingerprint import Capture, hamming_distance
from .library import ReferenceLibrary

BANDS = 4
BAND_BITS = 16
DEFAULT_HAMMING_TOLERANCE = BANDS - 1  # pigeonhole guarantee
MIN_VOTES_FRACTION = 0.34


def bands_of(video_hash: int) -> Tuple[int, ...]:
    """The four 16-bit bands of a 64-bit hash, most significant first."""
    mask = (1 << BAND_BITS) - 1
    return tuple((video_hash >> (BAND_BITS * (BANDS - 1 - i))) & mask
                 for i in range(BANDS))


class Match:
    """One verified candidate for a single capture."""

    __slots__ = ("content_id", "position_s", "video_distance",
                 "audio_overlap")

    def __init__(self, content_id: str, position_s: int,
                 video_distance: int, audio_overlap: int) -> None:
        self.content_id = content_id
        self.position_s = position_s
        self.video_distance = video_distance
        self.audio_overlap = audio_overlap

    def __repr__(self) -> str:
        return (f"Match({self.content_id}@{self.position_s}s, "
                f"dv={self.video_distance}, da={self.audio_overlap})")


class BatchVerdict:
    """The matcher's answer for a whole batch."""

    __slots__ = ("content_id", "votes", "total", "confidence", "matches")

    def __init__(self, content_id: Optional[str], votes: int, total: int,
                 matches: List[Match]) -> None:
        self.content_id = content_id
        self.votes = votes
        self.total = total
        self.confidence = votes / total if total else 0.0
        self.matches = matches

    @property
    def recognised(self) -> bool:
        return self.content_id is not None

    def __repr__(self) -> str:
        label = self.content_id or "<no match>"
        return (f"BatchVerdict({label}, {self.votes}/{self.total} votes, "
                f"confidence={self.confidence:.2f})")


class FingerprintMatcher:
    """The server-side matcher over a reference library."""

    def __init__(self, library: ReferenceLibrary,
                 hamming_tolerance: int = DEFAULT_HAMMING_TOLERANCE) -> None:
        if hamming_tolerance < 0:
            raise ValueError("negative tolerance")
        self.library = library
        self.hamming_tolerance = hamming_tolerance
        # band index -> band value -> list of entry indexes
        self._band_index: List[Dict[int, List[int]]] = [
            defaultdict(list) for __ in range(BANDS)]
        self._indexed_entries = 0
        self.reindex()

    def reindex(self) -> None:
        """(Re)build the band index over the current library entries."""
        for band in self._band_index:
            band.clear()
        for position, entry in enumerate(self.library.entries):
            for band_no, value in enumerate(bands_of(entry.video_hash)):
                self._band_index[band_no][value].append(position)
        self._indexed_entries = len(self.library.entries)

    def _candidates(self, video_hash: int) -> List[int]:
        seen = set()
        out: List[int] = []
        for band_no, value in enumerate(bands_of(video_hash)):
            for entry_index in self._band_index[band_no].get(value, ()):
                if entry_index not in seen:
                    seen.add(entry_index)
                    out.append(entry_index)
        return out

    def match_capture(self, capture: Capture) -> Optional[Match]:
        """Best verified match for one capture, or None."""
        if self._indexed_entries != len(self.library.entries):
            self.reindex()
        best: Optional[Match] = None
        query_audio = set(capture.audio_hashes)
        for entry_index in self._candidates(capture.video_hash):
            entry = self.library.entries[entry_index]
            distance = hamming_distance(capture.video_hash,
                                        entry.video_hash)
            if distance > self.hamming_tolerance:
                continue
            overlap = len(query_audio.intersection(entry.audio_hashes))
            if best is None or (distance, -overlap) < (
                    best.video_distance, -best.audio_overlap):
                best = Match(entry.content_id, entry.position_s,
                             distance, overlap)
        return best

    def match_batch(self, captures: List[Capture]) -> BatchVerdict:
        """Vote across a batch; a content wins with a qualified majority."""
        if not captures:
            return BatchVerdict(None, 0, 0, [])
        matches = [self.match_capture(c) for c in captures]
        found = [m for m in matches if m is not None]
        tally: Dict[str, int] = defaultdict(int)
        for match in found:
            tally[match.content_id] += 1
        if not tally:
            return BatchVerdict(None, 0, len(captures), [])
        winner, votes = max(tally.items(), key=lambda kv: kv[1])
        if votes < max(1, int(MIN_VOTES_FRACTION * len(captures))):
            return BatchVerdict(None, votes, len(captures), found)
        return BatchVerdict(winner, votes, len(captures),
                            [m for m in found if m.content_id == winner])
