"""Content fingerprinting — the "Shazam-like" core of ACR.

Two modalities, as in deployed ACR systems:

* **Video**: a difference hash (dHash).  The frame is downsampled to a
  9x8 luma grid; each bit encodes whether a pixel is brighter than its
  right neighbour.  Robust to brightness shifts and mild noise, which is
  exactly the drift :mod:`repro.media.frames` injects within a scene.
* **Audio**: spectral landmarks.  The strongest FFT peaks of a one-second
  excerpt are paired into (f1, f2, dt) hashes, Shazam-style.

Fingerprints are compact ("essentially hash of the content", §2) and the
serialized batch size is what travels inside TLS to the ACR server — the
quantity the paper measures on the wire.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..media.content import PlayState
from ..media.frames import _SCENE_LENGTH_S, render_audio, render_frame
from ..obs.metrics import get_registry

VIDEO_HASH_BITS = 64
_DHASH_WIDTH = 9
_DHASH_HEIGHT = 8

AUDIO_PEAKS = 5
AUDIO_FANOUT = 3


def video_fingerprint(frame: np.ndarray) -> int:
    """64-bit dHash of a luma frame."""
    if frame.ndim != 2:
        raise ValueError("expected a 2-D luma frame")
    grid = _resample(frame, _DHASH_HEIGHT, _DHASH_WIDTH)
    # MSB-first row-major neighbour comparisons, packed in one shot —
    # identical bits to the original per-cell shift loop.
    comparisons = grid[:, :-1] > grid[:, 1:]
    return int.from_bytes(np.packbits(comparisons).tobytes(), "big")


#: (frame shape, grid shape) -> [(flat grid positions, gather indices)],
#: one entry per distinct block shape.  Frames are fixed-size, so the
#: plan is computed once and the per-frame work is a handful of batched
#: gather-and-reduce operations instead of rows*cols tiny ones.
_RESAMPLE_PLANS: Dict[Tuple[int, int, int, int], List] = {}


def _resample_plan(h: int, w: int, rows: int, cols: int) -> List:
    key = (h, w, rows, cols)
    plan = _RESAMPLE_PLANS.get(key)
    if plan is None:
        row_edges = np.linspace(0, h, rows + 1).astype(int)
        col_edges = np.linspace(0, w, cols + 1).astype(int)
        by_shape: Dict[Tuple[int, int], List] = {}
        for r in range(rows):
            row_stop = int(max(row_edges[r + 1], row_edges[r] + 1))
            block_rows = np.arange(int(row_edges[r]), row_stop)
            for c in range(cols):
                col_stop = int(max(col_edges[c + 1], col_edges[c] + 1))
                block_cols = np.arange(int(col_edges[c]), col_stop)
                positions, indices = by_shape.setdefault(
                    (len(block_rows), len(block_cols)), ([], []))
                positions.append(r * cols + c)
                indices.append(block_rows[:, None] * w
                               + block_cols[None, :])
        plan = [(np.array(positions), np.stack(indices))
                for positions, indices in by_shape.values()]
        _RESAMPLE_PLANS[key] = plan
    return plan


def _resample(frame: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Block-mean downsample to ``rows x cols`` (no scipy dependency).

    Same-shape blocks are gathered into one ``(blocks, h, w)`` array
    per shape class and reduced in a single batched ``mean`` —
    bit-identical to reducing each block view on its own
    (``tests/test_acr_fingerprint.py`` pins the equivalence), just
    without thousands of tiny reductions per frame.
    """
    h, w = frame.shape
    flat = frame.ravel()
    out = np.empty((rows, cols), dtype=np.float64)
    for positions, indices in _resample_plan(h, w, rows, cols):
        out.flat[positions] = flat[indices].mean(axis=(1, 2))
    return out


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two 64-bit hashes."""
    return bin((a ^ b) & ((1 << VIDEO_HASH_BITS) - 1)).count("1")


def audio_fingerprint(signal: np.ndarray) -> List[int]:
    """Landmark hashes from a one-second audio excerpt.

    Returns up to ``AUDIO_PEAKS * AUDIO_FANOUT`` 32-bit hashes of
    (anchor_bin, target_bin, rank_gap) triples.
    """
    if signal.ndim != 1:
        raise ValueError("expected 1-D audio samples")
    spectrum = np.abs(np.fft.rfft(signal))
    if len(spectrum) < AUDIO_PEAKS + AUDIO_FANOUT:
        raise ValueError("audio excerpt too short")
    peak_bins = np.argsort(spectrum)[-(AUDIO_PEAKS + AUDIO_FANOUT):][::-1]
    hashes: List[int] = []
    for i in range(min(AUDIO_PEAKS, len(peak_bins))):
        for j in range(1, AUDIO_FANOUT + 1):
            if i + j >= len(peak_bins):
                break
            anchor = int(peak_bins[i]) & 0xFFF
            target = int(peak_bins[i + j]) & 0xFFF
            hashes.append((anchor << 20) | (target << 8) | (j & 0xFF))
    return hashes


class Capture:
    """One fingerprinted screen capture."""

    __slots__ = ("offset_ns", "video_hash", "audio_hashes")

    def __init__(self, offset_ns: int, video_hash: int,
                 audio_hashes: Sequence[int]) -> None:
        self.offset_ns = offset_ns
        self.video_hash = video_hash
        self.audio_hashes = list(audio_hashes)

    def __repr__(self) -> str:
        return (f"Capture(+{self.offset_ns / 1e9:.1f}s, "
                f"video={self.video_hash:#018x}, "
                f"{len(self.audio_hashes)} audio landmarks)")


#: (visual_seed, playback second, scene) -> (video hash, audio hashes).
#: Rendering and fingerprinting are pure functions of exactly this key
#: (see ``repro.media.frames``), so the memo never changes a value — it
#: only skips re-rendering content the process has fingerprinted before.
#: Channels replay the same content across grid cells and fleet
#: households, which makes the hit rate high precisely where cold runs
#: hurt (scorecard/report/fleet sweeps within one process).
_FINGERPRINT_CACHE: Dict[Tuple[int, int, int], Tuple[int, Tuple[int, ...]]] \
    = {}


def clear_fingerprint_cache() -> None:
    """Drop the process-wide content-fingerprint memo (tests)."""
    _FINGERPRINT_CACHE.clear()


def capture_state(state: PlayState, offset_ns: int = 0) -> Capture:
    """Fingerprint whatever a play state is showing (memoized)."""
    position = state.position_s
    key = (state.item.visual_seed, int(position),
           int(position / _SCENE_LENGTH_S))
    cached = _FINGERPRINT_CACHE.get(key)
    if cached is None:
        get_registry().inc("acr.memo.miss")
        video = video_fingerprint(render_frame(state))
        audio = audio_fingerprint(render_audio(state))
        cached = _FINGERPRINT_CACHE[key] = (video, tuple(audio))
    else:
        get_registry().inc("acr.memo.hit")
    return Capture(offset_ns, cached[0], list(cached[1]))


class FingerprintBatch:
    """A batch of captures as shipped to the ACR server.

    ``encode`` defines the exact on-the-wire payload: an 8-byte header,
    then per capture a 4-byte offset, 8-byte video hash, a count byte and
    4 bytes per audio landmark.  The wire sizes in the paper's Tables 2-5
    emerge from this encoding times the vendor's capture cadence.
    """

    HEADER = struct.Struct(">4sHH")
    MAGIC = b"ACRB"

    def __init__(self, device_id: str, captures: List[Capture]) -> None:
        self.device_id = device_id
        self.captures = captures

    def encode(self) -> bytes:
        out = bytearray()
        device = self.device_id.encode("ascii")[:65535]
        out += self.HEADER.pack(self.MAGIC, len(device), len(self.captures))
        out += device
        for capture in self.captures:
            out += struct.pack(">IQB", capture.offset_ns // 1_000_000,
                               capture.video_hash,
                               min(255, len(capture.audio_hashes)))
            for landmark in capture.audio_hashes[:255]:
                out += struct.pack(">I", landmark)
        return bytes(out)

    @classmethod
    def decode(cls, raw: bytes) -> "FingerprintBatch":
        if len(raw) < cls.HEADER.size:
            raise ValueError("batch too short")
        magic, device_len, count = cls.HEADER.unpack_from(raw, 0)
        if magic != cls.MAGIC:
            raise ValueError("bad batch magic")
        offset = cls.HEADER.size
        device_id = raw[offset:offset + device_len].decode("ascii")
        offset += device_len
        captures: List[Capture] = []
        for __ in range(count):
            ms, video_hash, n_audio = struct.unpack_from(">IQB", raw, offset)
            offset += 13
            audio = [struct.unpack_from(">I", raw, offset + 4 * k)[0]
                     for k in range(n_audio)]
            offset += 4 * n_audio
            captures.append(Capture(ms * 1_000_000, video_hash, audio))
        return cls(device_id, captures)

    @property
    def encoded_size(self) -> int:
        return len(self.encode())

    def __len__(self) -> int:
        return len(self.captures)

    def __repr__(self) -> str:
        return (f"FingerprintBatch({self.device_id!r}, "
                f"{len(self.captures)} captures)")
