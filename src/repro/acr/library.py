"""Server-side reference fingerprint database.

The ACR operator pre-fingerprints its content library ("movies, ads, live
feed", Figure 1); the matcher then recognises screen captures against it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..media.content import ContentItem, PlayState
from .fingerprint import capture_state

DEFAULT_SAMPLE_INTERVAL_S = 4
MAX_REFERENCE_SECONDS = 2700  # fingerprint the first N seconds per item


class ReferenceEntry:
    """One reference sample: which content, where, and its hashes."""

    __slots__ = ("content_id", "position_s", "video_hash", "audio_hashes")

    def __init__(self, content_id: str, position_s: int, video_hash: int,
                 audio_hashes: List[int]) -> None:
        self.content_id = content_id
        self.position_s = position_s
        self.video_hash = video_hash
        self.audio_hashes = audio_hashes

    def __repr__(self) -> str:
        return (f"ReferenceEntry({self.content_id}@{self.position_s}s, "
                f"{self.video_hash:#018x})")


class ReferenceLibrary:
    """All reference samples for an operator's content catalog."""

    def __init__(self, sample_interval_s: int = DEFAULT_SAMPLE_INTERVAL_S,
                 max_seconds: int = MAX_REFERENCE_SECONDS) -> None:
        if sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.sample_interval_s = sample_interval_s
        self.max_seconds = max_seconds
        self.entries: List[ReferenceEntry] = []
        self._content_ids: Dict[str, ContentItem] = {}

    def ingest(self, item: ContentItem,
               max_seconds: Optional[int] = None) -> int:
        """Fingerprint one item; returns the number of samples added.

        ``max_seconds`` overrides the library-wide depth cap for this item
        (operators fingerprint broadcast content in full but may only keep
        a prefix of a long-tail movie catalog).
        """
        if item.content_id in self._content_ids:
            return 0
        self._content_ids[item.content_id] = item
        added = 0
        cap = self.max_seconds if max_seconds is None else max_seconds
        horizon = min(item.duration_s, cap)
        for position in range(0, horizon, self.sample_interval_s):
            capture = capture_state(PlayState(item, position))
            self.entries.append(ReferenceEntry(
                item.content_id, position, capture.video_hash,
                capture.audio_hashes))
            added += 1
        return added

    def ingest_all(self, items: Iterable[ContentItem],
                   max_seconds: Optional[int] = None) -> int:
        return sum(self.ingest(item, max_seconds) for item in items)

    def item(self, content_id: str) -> ContentItem:
        try:
            return self._content_ids[content_id]
        except KeyError:
            raise KeyError(f"content not in library: {content_id!r}") \
                from None

    def knows(self, content_id: str) -> bool:
        return content_id in self._content_ids

    @property
    def content_count(self) -> int:
        return len(self._content_ids)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        return (f"ReferenceLibrary({self.content_count} items, "
                f"{len(self.entries)} samples)")
