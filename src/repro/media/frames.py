"""Synthetic frame and audio generation.

Frames are small luma rasters generated deterministically from
``(content.visual_seed, playback_second)``, built so that:

* the same content at the same position always renders the same frame
  (fingerprints must be reproducible end-to-end);
* consecutive seconds are visually *similar* but not identical (scene
  drift), exercising the matcher's Hamming tolerance;
* different content items are visually distinct with overwhelming
  probability.

Audio is a short deterministic waveform per second, from which the audio
fingerprinter extracts spectral landmarks.
"""

from __future__ import annotations

import numpy as np

from .content import ContentItem, PlayState

FRAME_HEIGHT = 18
FRAME_WIDTH = 32
AUDIO_SAMPLES = 512
AUDIO_RATE_HZ = 4000

_SCENE_LENGTH_S = 8.0  # average seconds per "scene" of stable imagery


def _rng_for(seed: int, scene: int) -> np.random.Generator:
    return np.random.default_rng(np.uint64(seed) ^ np.uint64(scene * 2654435761 + 7))


def render_frame(state: PlayState) -> np.ndarray:
    """Render the luma frame for a play state as float32 in [0, 1].

    A frame is a sum of a scene-stable random field plus a small
    per-second drift field, so frames within a scene have close
    fingerprints and scene cuts change the fingerprint sharply.
    """
    seed = state.item.visual_seed
    second = int(state.position_s)
    scene = int(state.position_s / _SCENE_LENGTH_S)
    base = _rng_for(seed, scene).random((FRAME_HEIGHT, FRAME_WIDTH),
                                        dtype=np.float32)
    drift_rng = _rng_for(seed ^ 0x5DEECE66D, scene * 100000 + second)
    drift = drift_rng.random((FRAME_HEIGHT, FRAME_WIDTH),
                             dtype=np.float32)
    frame = 0.96 * base + 0.04 * drift
    return frame.astype(np.float32)


def render_audio(state: PlayState) -> np.ndarray:
    """One second of synthetic audio as float32 samples in [-1, 1].

    The waveform is a mixture of a few content-and-scene-specific tones —
    enough structure for spectral landmarks to be meaningful.
    """
    seed = state.item.visual_seed ^ 0xA5A5A5A5
    second = int(state.position_s)
    scene = int(state.position_s / _SCENE_LENGTH_S)
    rng = _rng_for(seed, scene)
    tones = rng.integers(60, AUDIO_RATE_HZ // 4, size=4)
    amplitudes = rng.random(4) * 0.5 + 0.2
    t = np.arange(AUDIO_SAMPLES, dtype=np.float32) / AUDIO_RATE_HZ
    phase = (second % 16) * 0.37
    signal = np.zeros(AUDIO_SAMPLES, dtype=np.float32)
    for frequency, amplitude in zip(tones, amplitudes):
        signal += amplitude * np.sin(
            2.0 * np.pi * float(frequency) * t + phase).astype(np.float32)
    peak = float(np.max(np.abs(signal)))
    if peak > 0:
        signal = signal / peak
    return signal


def frame_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Normalised correlation between two frames (1.0 = identical)."""
    if a.shape != b.shape:
        raise ValueError("frame shape mismatch")
    fa = a.ravel() - a.mean()
    fb = b.ravel() - b.mean()
    denom = float(np.linalg.norm(fa) * np.linalg.norm(fb))
    if denom == 0:
        return 1.0
    return float(np.dot(fa, fb) / denom)


def render_sequence(item: ContentItem, start_s: float,
                    count: int, step_s: float = 1.0) -> list:
    """Frames for ``count`` consecutive samples starting at ``start_s``."""
    if count < 0:
        raise ValueError("negative count")
    return [render_frame(PlayState(item, start_s + i * step_s))
            for i in range(count)]
