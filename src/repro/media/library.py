"""Deterministic media library generation.

Builds the catalog of shows, ads, movies and live feeds that channels play
and the ACR reference database is trained on — plus "off-library" content
(games, desktops) that external devices display over HDMI and casting.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.rng import RngRegistry
from .content import (ContentItem, ContentKind, GENRES, make_content_id)


class MediaLibrary:
    """A reproducible catalog of content items."""

    def __init__(self, namespace: str, seed: int = 0) -> None:
        self.namespace = namespace
        self._rng = RngRegistry(seed).stream(f"library:{namespace}")
        self.shows: List[ContentItem] = []
        self.ads: List[ContentItem] = []
        self.movies: List[ContentItem] = []
        self.live_feeds: List[ContentItem] = []
        self.episodes: List[ContentItem] = []
        self.off_library: List[ContentItem] = []
        self._counter = 0

    def _next_id(self, kind: str) -> str:
        self._counter += 1
        return make_content_id(f"{self.namespace}:{kind}", self._counter)

    def _genre(self) -> str:
        return GENRES[self._rng.randrange(len(GENRES))]

    # -- population ---------------------------------------------------------

    def populate(self, shows: int = 40, ads: int = 30, movies: int = 15,
                 live_feeds: int = 6, episodes: int = 25,
                 games: int = 5, desktops: int = 3) -> "MediaLibrary":
        """Fill the catalog with a standard mix; returns self."""
        for i in range(shows):
            self.shows.append(ContentItem(
                self._next_id("show"), f"Show {i}", ContentKind.SHOW,
                duration_s=self._rng.choice([1320, 1740, 2640]),
                genre=self._genre()))
        for i in range(ads):
            self.ads.append(ContentItem(
                self._next_id("ad"), f"Ad {i}", ContentKind.AD,
                duration_s=self._rng.choice([15, 20, 30]),
                genre=self._rng.choice(["shopping", "travel"])))
        for i in range(movies):
            self.movies.append(ContentItem(
                self._next_id("movie"), f"Movie {i}", ContentKind.MOVIE,
                duration_s=self._rng.choice([5400, 6600, 7800]),
                genre=self._genre()))
        for i in range(live_feeds):
            self.live_feeds.append(ContentItem(
                self._next_id("live"), f"Live feed {i}", ContentKind.LIVE,
                duration_s=86400, genre=self._rng.choice(
                    ["news", "sports"])))
        for i in range(episodes):
            self.episodes.append(ContentItem(
                self._next_id("episode"), f"Episode {i}",
                ContentKind.EPISODE,
                duration_s=self._rng.choice([1500, 2700, 3300]),
                genre=self._genre()))
        for i in range(games):
            self.off_library.append(ContentItem(
                self._next_id("game"), f"Game session {i}",
                ContentKind.GAME, duration_s=86400, genre="kids"))
        for i in range(desktops):
            self.off_library.append(ContentItem(
                self._next_id("desktop"), f"Laptop desktop {i}",
                ContentKind.DESKTOP, duration_s=86400, genre="news"))
        return self

    # -- access ---------------------------------------------------------------

    @property
    def reference_items(self) -> List[ContentItem]:
        """Everything a vendor's ACR reference database would contain."""
        return (self.shows + self.ads + self.movies + self.live_feeds
                + self.episodes)

    @property
    def all_items(self) -> List[ContentItem]:
        return self.reference_items + self.off_library

    def find(self, content_id: str) -> Optional[ContentItem]:
        for item in self.all_items:
            if item.content_id == content_id:
                return item
        return None

    def game(self, index: int = 0) -> ContentItem:
        games = [i for i in self.off_library
                 if i.kind == ContentKind.GAME]
        return games[index % len(games)]

    def desktop(self, index: int = 0) -> ContentItem:
        desktops = [i for i in self.off_library
                    if i.kind == ContentKind.DESKTOP]
        return desktops[index % len(desktops)]

    def __len__(self) -> int:
        return len(self.all_items)


def standard_library(country: str, seed: int = 0) -> MediaLibrary:
    """The library used by the testbed for one country."""
    return MediaLibrary(f"{country}-catalog", seed).populate()
