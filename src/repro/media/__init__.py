"""Content substrate: items, synthetic frames/audio, channel schedules, and
the TV input sources corresponding to the paper's six scenarios."""

from .content import (ContentItem, ContentKind, GENRES, LIBRARY_KINDS,
                      PlayState, ad_break, make_content_id)
from .frames import (AUDIO_RATE_HZ, AUDIO_SAMPLES, FRAME_HEIGHT, FRAME_WIDTH,
                     frame_similarity, render_audio, render_frame,
                     render_sequence)
from .library import MediaLibrary, standard_library
from .schedule import (AD_BREAK_EVERY_S, Channel, ScheduleSlot,
                       build_channel, build_lineup)
from .sources import (FastApp, HdmiInput, HomeScreen, InputSource, OttApp,
                      ScreenCast, SourceType, Tuner)

__all__ = [
    "AD_BREAK_EVERY_S",
    "AUDIO_RATE_HZ",
    "AUDIO_SAMPLES",
    "Channel",
    "ContentItem",
    "ContentKind",
    "FRAME_HEIGHT",
    "FRAME_WIDTH",
    "FastApp",
    "GENRES",
    "HdmiInput",
    "HomeScreen",
    "InputSource",
    "LIBRARY_KINDS",
    "MediaLibrary",
    "OttApp",
    "PlayState",
    "ScheduleSlot",
    "ScreenCast",
    "SourceType",
    "Tuner",
    "ad_break",
    "build_channel",
    "build_lineup",
    "frame_similarity",
    "make_content_id",
    "render_audio",
    "render_frame",
    "render_sequence",
    "standard_library",
]
