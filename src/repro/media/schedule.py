"""Channel schedules for linear broadcast and FAST streaming.

A channel is a deterministic timeline of slots — show segments interleaved
with ad breaks; ``playing_at`` answers "what content, at what offset, is on
this channel at wall-time t" — which is what the tuner and FAST app render
and the ACR client fingerprints.
"""

from __future__ import annotations

from typing import List

from ..sim.clock import NS_PER_SECOND
from .content import ContentItem, PlayState
from .library import MediaLibrary

AD_BREAK_EVERY_S = 600  # one break roughly every ten minutes
AD_SLOTS_PER_BREAK = 3


class ScheduleSlot:
    """One slot: a content item playing from ``item_offset_s`` for
    ``duration_s`` seconds, starting at channel time ``start_s``."""

    __slots__ = ("start_s", "duration_s", "item", "item_offset_s")

    def __init__(self, start_s: int, duration_s: int, item: ContentItem,
                 item_offset_s: int = 0) -> None:
        if duration_s <= 0:
            raise ValueError("slot duration must be positive")
        self.start_s = start_s
        self.duration_s = duration_s
        self.item = item
        self.item_offset_s = item_offset_s

    @property
    def end_s(self) -> int:
        return self.start_s + self.duration_s

    def __repr__(self) -> str:
        return (f"ScheduleSlot({self.start_s}s +{self.duration_s}s: "
                f"{self.item.content_id}@{self.item_offset_s}s)")


class Channel:
    """A broadcast or FAST channel with a repeating timeline."""

    def __init__(self, name: str, slots: List[ScheduleSlot],
                 kind: str = "linear") -> None:
        if not slots:
            raise ValueError("empty schedule")
        for earlier, later in zip(slots, slots[1:]):
            if later.start_s != earlier.end_s:
                raise ValueError("slots must be strictly consecutive")
        self.name = name
        self.slots = slots
        self.kind = kind
        self.cycle_s = slots[-1].end_s

    def playing_at(self, at_ns: int) -> PlayState:
        """The play state on this channel at virtual time ``at_ns``."""
        second = (at_ns // NS_PER_SECOND) % self.cycle_s
        lo, hi = 0, len(self.slots) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.slots[mid].end_s <= second:
                lo = mid + 1
            else:
                hi = mid
        slot = self.slots[lo]
        return PlayState(slot.item,
                         slot.item_offset_s + (second - slot.start_s))

    def items_between(self, start_ns: int, end_ns: int) -> List[ContentItem]:
        """Distinct content items on air in a window (order of airing)."""
        if end_ns < start_ns:
            raise ValueError("window ends before it starts")
        seen: List[ContentItem] = []
        t = start_ns
        while t <= end_ns:
            item = self.playing_at(t).item
            if item not in seen:
                seen.append(item)
            t += NS_PER_SECOND
        return seen

    def __repr__(self) -> str:
        return (f"Channel({self.name!r}, {self.kind}, "
                f"{len(self.slots)} slots, cycle={self.cycle_s}s)")


def build_channel(name: str, library: MediaLibrary, kind: str = "linear",
                  shows: int = 6, offset: int = 0) -> Channel:
    """A channel alternating show segments with ad breaks.

    ``offset`` lets different channels draw different shows from the same
    library, so two channels never have identical timelines.
    """
    if not library.shows or not library.ads:
        raise ValueError("library must be populated")
    slots: List[ScheduleSlot] = []
    clock_s = 0
    ad_cursor = offset
    for i in range(shows):
        show = library.shows[(offset + i) % len(library.shows)]
        position = 0
        while position < show.duration_s:
            segment = min(show.duration_s - position, AD_BREAK_EVERY_S)
            slots.append(ScheduleSlot(clock_s, segment, show, position))
            clock_s += segment
            position += segment
            if position < show.duration_s:
                for __ in range(AD_SLOTS_PER_BREAK):
                    ad = library.ads[ad_cursor % len(library.ads)]
                    ad_cursor += 1
                    slots.append(ScheduleSlot(clock_s, ad.duration_s, ad))
                    clock_s += ad.duration_s
    return Channel(name, slots, kind)


def build_lineup(library: MediaLibrary, kind: str,
                 names: List[str]) -> List[Channel]:
    """A lineup of channels over one library."""
    return [build_channel(name, library, kind=kind, offset=3 * i)
            for i, name in enumerate(names)]
