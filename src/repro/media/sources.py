"""TV input sources — one per experimental scenario.

A source answers two questions the ACR client asks at capture time:
"what's on screen right now?" (:meth:`screen_state`) and "what kind of
input am I?" (:attr:`source_type`).  The six paper scenarios map to:

========== ==========================
Scenario   Source
========== ==========================
Idle       :class:`HomeScreen`
Linear     :class:`Tuner`
FAST       :class:`FastApp`
OTT        :class:`OttApp`
HDMI       :class:`HdmiInput`
ScreenCast :class:`ScreenCast`
========== ==========================
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from ..sim.clock import NS_PER_SECOND
from .content import ContentItem, ContentKind, PlayState
from .schedule import Channel


class SourceType(Enum):
    """Input classes the ACR policy can discriminate between."""

    HOME = "home"
    TUNER = "tuner"
    FAST = "fast"
    OTT = "ott"
    HDMI = "hdmi"
    CAST = "cast"


class InputSource:
    """Base class: a thing the TV can display."""

    source_type: SourceType

    def screen_state(self, at_ns: int) -> Optional[PlayState]:
        """What is on screen at ``at_ns`` (None = nothing / static UI)."""
        raise NotImplementedError

    @property
    def app_id(self) -> Optional[str]:
        """The foreground app identity, if the source is an app."""
        return None


class HomeScreen(InputSource):
    """The launcher UI: a single static 'content' item of kind UI."""

    source_type = SourceType.HOME

    def __init__(self, ui_item: ContentItem) -> None:
        if ui_item.kind != ContentKind.UI:
            raise ValueError("home screen needs a UI content item")
        self.ui_item = ui_item

    def screen_state(self, at_ns: int) -> PlayState:
        # The launcher animates mildly; position cycles slowly.
        return PlayState(self.ui_item, (at_ns // NS_PER_SECOND) % 30)


class Tuner(InputSource):
    """Linear broadcast via antenna."""

    source_type = SourceType.TUNER

    def __init__(self, channel: Channel) -> None:
        if channel.kind != "linear":
            raise ValueError("tuner needs a linear channel")
        self.channel = channel

    def screen_state(self, at_ns: int) -> PlayState:
        return self.channel.playing_at(at_ns)


class FastApp(InputSource):
    """The manufacturer's FAST platform (Samsung TV+ / LG Channels)."""

    source_type = SourceType.FAST

    def __init__(self, app_name: str, channel: Channel) -> None:
        if channel.kind != "fast":
            raise ValueError("FAST app needs a fast channel")
        self._app_name = app_name
        self.channel = channel

    @property
    def app_id(self) -> str:
        return self._app_name

    def screen_state(self, at_ns: int) -> PlayState:
        return self.channel.playing_at(at_ns)


class OttApp(InputSource):
    """A third-party streaming app (Netflix / YouTube)."""

    source_type = SourceType.OTT

    def __init__(self, app_name: str, playlist: List[ContentItem]) -> None:
        if not playlist:
            raise ValueError("empty playlist")
        self._app_name = app_name
        self.playlist = playlist

    @property
    def app_id(self) -> str:
        return self._app_name

    def screen_state(self, at_ns: int) -> PlayState:
        second = at_ns // NS_PER_SECOND
        for item in self.playlist:
            if second < item.duration_s:
                return PlayState(item, second)
            second -= item.duration_s
        # Loop the playlist.
        total = sum(item.duration_s for item in self.playlist)
        return self.screen_state((at_ns // NS_PER_SECOND % total)
                                 * NS_PER_SECOND)


class HdmiInput(InputSource):
    """An external device over HDMI: laptop or game console.

    The display alternates between the external item's own timeline —
    the TV has no idea what the pixels are, it is a "dumb" display.
    """

    source_type = SourceType.HDMI

    def __init__(self, external_items: List[ContentItem],
                 dwell_s: int = 300) -> None:
        if not external_items:
            raise ValueError("HDMI needs at least one external item")
        if dwell_s <= 0:
            raise ValueError("dwell must be positive")
        self.external_items = external_items
        self.dwell_s = dwell_s

    def screen_state(self, at_ns: int) -> PlayState:
        second = at_ns // NS_PER_SECOND
        index = (second // self.dwell_s) % len(self.external_items)
        item = self.external_items[index]
        return PlayState(item, second % min(self.dwell_s, item.duration_s))


class ScreenCast(InputSource):
    """Wi-Fi mirroring of a phone/laptop playing streamed video."""

    source_type = SourceType.CAST

    def __init__(self, mirrored: ContentItem) -> None:
        self.mirrored = mirrored

    def screen_state(self, at_ns: int) -> PlayState:
        second = at_ns // NS_PER_SECOND
        return PlayState(self.mirrored, second % self.mirrored.duration_s)
