"""Content items: the things that can appear on a TV screen.

Everything the six experimental scenarios can display — broadcast shows,
ads, streaming episodes, a laptop desktop, a game — is a
:class:`ContentItem`.  Content identity is what the ACR server ultimately
tries to recover from fingerprints.
"""

from __future__ import annotations

import hashlib
from enum import Enum
from typing import List, Optional


class ContentKind(Enum):
    """What sort of content an item is."""

    SHOW = "show"            # broadcast programme
    AD = "ad"                # advertisement
    MOVIE = "movie"          # on-demand film
    EPISODE = "episode"      # on-demand series episode
    LIVE = "live"            # live feed (news, sport)
    GAME = "game"            # console game output (HDMI)
    DESKTOP = "desktop"      # laptop screen (HDMI / cast)
    UI = "ui"                # smart TV home screen


# Kinds the vendor content library can know about; a console game session
# or a private laptop desktop is not in any reference library.
LIBRARY_KINDS = {ContentKind.SHOW, ContentKind.AD, ContentKind.MOVIE,
                 ContentKind.EPISODE, ContentKind.LIVE}

GENRES = ["news", "sports", "drama", "travel", "shopping", "cooking",
          "documentary", "kids", "music", "comedy"]


class ContentItem:
    """One piece of content with stable identity and visual seed."""

    __slots__ = ("content_id", "title", "kind", "duration_s", "genre")

    def __init__(self, content_id: str, title: str, kind: ContentKind,
                 duration_s: int, genre: str) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if genre not in GENRES:
            raise ValueError(f"unknown genre: {genre!r}")
        self.content_id = content_id
        self.title = title
        self.kind = kind
        self.duration_s = duration_s
        self.genre = genre

    @property
    def visual_seed(self) -> int:
        """Stable seed that drives this item's synthetic frames."""
        digest = hashlib.sha256(self.content_id.encode("ascii")).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def in_reference_library(self) -> bool:
        """Can a vendor content library plausibly contain this item?"""
        return self.kind in LIBRARY_KINDS

    def __repr__(self) -> str:
        return (f"ContentItem({self.content_id!r}, {self.kind.value}, "
                f"{self.duration_s}s, {self.genre})")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ContentItem)
                and other.content_id == self.content_id)

    def __hash__(self) -> int:
        return hash(("content", self.content_id))


def make_content_id(namespace: str, index: int) -> str:
    """Deterministic content id, e.g. ``uk-bbc:show:0012``."""
    return f"{namespace}:{index:04d}"


class PlayState:
    """A content item at a playback position."""

    __slots__ = ("item", "position_s")

    def __init__(self, item: ContentItem, position_s: float) -> None:
        if position_s < 0:
            raise ValueError("negative playback position")
        self.item = item
        self.position_s = position_s

    def __repr__(self) -> str:
        return f"PlayState({self.item.content_id} @ {self.position_s:.1f}s)"


def launcher_item() -> ContentItem:
    """The smart TV launcher UI as a content item (Idle scenario)."""
    return ContentItem("ui:launcher", "Launcher", ContentKind.UI,
                       duration_s=86400, genre="news")


def ad_break(ads: List[ContentItem],
             start_index: int = 0) -> List[ContentItem]:
    """A standard three-slot ad break drawn round-robin from a pool."""
    if not ads:
        raise ValueError("empty ad pool")
    return [ads[(start_index + i) % len(ads)] for i in range(3)]
