"""Population-scale fleet simulation and auditing.

The paper audits one TV at a time; this layer audits *populations*:
sample N households from configurable vendor/country/phase/diary mixes
(:mod:`population`), play each household's viewing diary as one
multi-scenario capture (:mod:`diary`), execute households sharded over a
process pool with content-addressed capture caching (:mod:`runner`), and
fold every audit into constant-memory streaming aggregates
(:mod:`aggregate`) rendered by :mod:`report`.

Exposed on the CLI as ``python -m repro.cli fleet``.
"""

from .aggregate import FleetAggregate, merge_all, summarize_household
from .diary import DIARIES, Diary, Segment, diary_named
from .population import (DEFAULT_MIX, HouseholdSpec, MixError,
                         PopulationSpec, parse_mix, sample_population)
from .report import render_population_report
from .runner import FleetResult, FleetRunError, FleetRunner, SHARD_SIZE

__all__ = [
    "DEFAULT_MIX",
    "DIARIES",
    "Diary",
    "FleetAggregate",
    "FleetResult",
    "FleetRunError",
    "FleetRunner",
    "HouseholdSpec",
    "MixError",
    "PopulationSpec",
    "SHARD_SIZE",
    "Segment",
    "diary_named",
    "merge_all",
    "parse_mix",
    "render_population_report",
    "sample_population",
    "summarize_household",
]
