"""Population sampling: from one fleet seed to N deterministic households.

A household is a point in ``vendor x country x phase x diary`` space plus
its own simulation seed.  Both the attribute draws and the seed are
derived per household *index* with SHA-256 — never from Python's global
RNG state — so:

* the same ``(fleet_seed, index)`` yields the same household in every
  process, on every platform, forever (the cache contract);
* growing a fleet from N to M > N households re-derives households
  ``0..N-1`` identically, so an enlarged fleet only pays for the new
  indices.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

from ..testbed.experiment import Country, Phase, Vendor, paper_vendors
from .diary import DIARIES, Diary, diary_named

#: Mix axes and their valid values (diary values are registry names).
MIX_AXES = ("vendor", "country", "phase", "diary")

#: The default population mirrors the paper's audited pair; extension
#: vendors join a fleet via ``--mix vendor=roku:1,vizio:1,...`` so
#: default fleet reports stay byte-identical as the registry grows.
DEFAULT_MIX: Dict[str, Dict[str, float]] = {
    "vendor": {vendor.value: 1.0 / len(paper_vendors())
               for vendor in paper_vendors()},
    "country": {"uk": 0.5, "us": 0.5},
    # Most real households never touch privacy settings; opt-out is the
    # minority configuration the efficacy aggregate measures.
    "phase": {"LIn-OIn": 0.5, "LOut-OIn": 0.2,
              "LIn-OOut": 0.2, "LOut-OOut": 0.1},
    "diary": {"ambient": 0.2, "binge": 0.2, "evening_mix": 0.3,
              "channel_surfer": 0.15, "console_gamer": 0.1,
              "second_screen": 0.05},
}


class MixError(ValueError):
    """A ``--mix`` expression names an unknown axis, value or weight."""


def _valid_values(axis: str) -> List[str]:
    if axis == "vendor":
        return [member.value for member in Vendor]
    if axis == "country":
        return [member.value for member in Country]
    if axis == "phase":
        return [member.value for member in Phase]
    return sorted(DIARIES)


def parse_mix(expressions: Optional[Iterable[str]]
              ) -> Dict[str, Dict[str, float]]:
    """Parse ``axis=value:weight[,value:weight...]`` expressions.

    Unmentioned axes keep :data:`DEFAULT_MIX`.  Weights are relative
    (they need not sum to 1; sampling normalizes), e.g.::

        parse_mix(["vendor=lg:3,samsung:1", "phase=LIn-OIn:1"])
    """
    mixes = {axis: dict(weights) for axis, weights in DEFAULT_MIX.items()}
    for expression in expressions or ():
        if "=" not in expression:
            raise MixError(f"bad mix {expression!r}: expected "
                           f"axis=value:weight[,value:weight]")
        axis, __, raw = expression.partition("=")
        axis = axis.strip().lower()
        if axis not in MIX_AXES:
            raise MixError(f"unknown mix axis {axis!r} "
                           f"(choose from {', '.join(MIX_AXES)})")
        weights: Dict[str, float] = {}
        for part in raw.split(","):
            value, colon, raw_weight = part.strip().partition(":")
            try:
                weight = float(raw_weight) if colon else 1.0
            except ValueError:
                raise MixError(f"bad weight {raw_weight!r} "
                               f"for {axis}={value}") from None
            weights[value] = weights.get(value, 0.0) + weight
        validate_weights(axis, weights)
        mixes[axis] = weights
    return mixes


def validate_weights(axis: str, weights: Mapping[str, float]) -> None:
    """Reject unknown values and degenerate weights for one axis.

    Shared by the CLI's :func:`parse_mix` and by
    :class:`PopulationSpec` itself, so library callers get the same
    clear errors instead of a bare ``ZeroDivisionError`` deep inside
    sampling.
    """
    valid = _valid_values(axis)
    for value, weight in weights.items():
        if value not in valid:
            raise MixError(f"unknown {axis} {value!r} "
                           f"(choose from {', '.join(valid)})")
        if not math.isfinite(weight):
            raise MixError(f"non-finite weight for {axis}={value}")
        if weight < 0:
            raise MixError(f"negative weight for {axis}={value}")
    if not any(weights.values()):
        raise MixError(f"mix for {axis} has zero total weight")


def _derive(fleet_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{fleet_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _weighted_pick(fleet_seed: int, index: int, axis: str,
                   weights: Mapping[str, float]) -> str:
    """Deterministic weighted draw for one household attribute.

    The unit fraction comes from a SHA-256 over ``(seed, index, axis)``,
    so each attribute has its own independent stream and adding an axis
    can never perturb another axis's draws.
    """
    fraction = _derive(fleet_seed, f"hh:{index}:{axis}") / float(2 ** 64)
    total = sum(weights.values())
    cumulative = 0.0
    values = sorted(weights)  # canonical order: dict order is irrelevant
    for value in values:
        cumulative += weights[value] / total
        if fraction < cumulative:
            return value
    return values[-1]


class HouseholdSpec:
    """One simulated household: attributes plus its derived seed."""

    __slots__ = ("index", "vendor", "country", "phase", "diary", "seed")

    def __init__(self, index: int, vendor: Vendor, country: Country,
                 phase: Phase, diary: str, seed: int) -> None:
        self.index = index
        self.vendor = vendor
        self.country = country
        self.phase = phase
        self.diary = diary
        self.seed = seed

    @property
    def label(self) -> str:
        """The configuration label (identity lives in the seed)."""
        return (f"hh-{self.vendor.value}-{self.country.value}-"
                f"{self.diary}-{self.phase.value}")

    @property
    def diary_obj(self) -> Diary:
        return diary_named(self.diary)

    def as_tuple(self):
        """Primitive form for crossing a process boundary."""
        return (self.index, self.vendor.value, self.country.value,
                self.phase.value, self.diary, self.seed)

    @classmethod
    def from_tuple(cls, values) -> "HouseholdSpec":
        index, vendor, country, phase, diary, seed = values
        return cls(index, Vendor(vendor), Country(country),
                   Phase(phase), diary, seed)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, HouseholdSpec)
                and self.as_tuple() == other.as_tuple())

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        return (f"HouseholdSpec(#{self.index} {self.label} "
                f"seed={self.seed})")


class PopulationSpec:
    """N households drawn from configurable mix distributions."""

    def __init__(self, households: int, seed: int = 7,
                 mixes: Optional[Mapping[str, Mapping[str, float]]] = None
                 ) -> None:
        if households <= 0:
            raise ValueError("population needs at least one household")
        self.households = households
        self.seed = seed
        self.mixes = {axis: dict(weights)
                      for axis, weights in (mixes or DEFAULT_MIX).items()}
        for axis in self.mixes:
            if axis not in MIX_AXES:
                raise MixError(f"unknown mix axis {axis!r} "
                               f"(choose from {', '.join(MIX_AXES)})")
        for axis in MIX_AXES:
            if axis not in self.mixes:
                self.mixes[axis] = dict(DEFAULT_MIX[axis])
            validate_weights(axis, self.mixes[axis])

    def household(self, index: int) -> HouseholdSpec:
        """Derive household ``index`` (independent of every other)."""
        return HouseholdSpec(
            index=index,
            vendor=Vendor(_weighted_pick(self.seed, index, "vendor",
                                         self.mixes["vendor"])),
            country=Country(_weighted_pick(self.seed, index, "country",
                                           self.mixes["country"])),
            phase=Phase(_weighted_pick(self.seed, index, "phase",
                                       self.mixes["phase"])),
            diary=_weighted_pick(self.seed, index, "diary",
                                 self.mixes["diary"]),
            seed=_derive(self.seed, f"hh:{index}:seed"),
        )

    def __iter__(self) -> Iterator[HouseholdSpec]:
        for index in range(self.households):
            yield self.household(index)

    def sample(self) -> List[HouseholdSpec]:
        """The full household list, in index order."""
        return list(self)

    def countries(self) -> List[str]:
        """Countries with non-zero weight (for asset warming)."""
        return sorted(value for value, weight
                      in self.mixes["country"].items() if weight > 0)

    def __repr__(self) -> str:
        return (f"PopulationSpec({self.households} households, "
                f"seed={self.seed})")


def sample_population(households: int, seed: int = 7,
                      mixes: Optional[Mapping] = None
                      ) -> List[HouseholdSpec]:
    """Convenience wrapper: derive the full household list."""
    return PopulationSpec(households, seed=seed, mixes=mixes).sample()
