"""The population report: a fleet aggregate rendered as markdown.

Every number here is derived from the aggregate's integer accumulators
with fixed formatting, so the report is a pure function of the
population — byte-identical across job counts, shard orderings and
cache states.  Wall-clock and cache statistics intentionally live in
the CLI's stderr stream, never in the report.
"""

from __future__ import annotations

from typing import List

from ..reporting import render_table
from .aggregate import FleetAggregate
from .population import MIX_AXES, PopulationSpec


def _pct(numerator: int, denominator: int) -> str:
    if not denominator:
        return "-"
    return f"{100.0 * numerator / denominator:.1f}%"


def _kb(total_bytes: int) -> str:
    return f"{total_bytes / 1000.0:.1f}"


def render_population_report(aggregate: FleetAggregate,
                             population: PopulationSpec) -> str:
    """The full population report for one fleet run.

    Accepts either a bare :class:`FleetAggregate` or anything carrying
    one under ``.aggregate`` (a ``FleetResult``, or the streaming
    tier's ``LiveState``) — both paths must render byte-identically.
    """
    sections: List[str] = []
    agg = getattr(aggregate, "aggregate", aggregate)

    sections.append(
        f"# Fleet audit report\n\n"
        f"{population.households} simulated households, fleet seed "
        f"{population.seed}.  Each household plays one viewing diary "
        f"(a multi-scenario session) on its sampled vendor/country/"
        f"privacy configuration; every number below is folded from "
        f"per-household audits of the captures alone.")

    # -- population mix ---------------------------------------------------------
    counters = {"vendor": agg.vendors, "country": agg.countries,
                "phase": agg.phases, "diary": agg.diaries}
    rows = []
    for axis in MIX_AXES:
        weights = population.mixes[axis]
        total_weight = sum(weights.values())
        for value in sorted(weights):
            if weights[value] <= 0:
                continue
            rows.append([
                axis, value,
                f"{100.0 * weights[value] / total_weight:.1f}%",
                counters[axis][value],
                _pct(counters[axis][value], agg.households)])
    sections.append("## Population mix\n\n" + render_table(
        ["axis", "value", "target", "households", "realized"], rows))

    # -- ACR reach --------------------------------------------------------------
    reach_rows = [["all", "all", agg.households, agg.acr_households,
                   _pct(agg.acr_households, agg.households)]]
    for vendor in sorted(agg.vendors):
        reach_rows.append(
            ["vendor", vendor, agg.vendors[vendor],
             agg.acr_households_by_vendor[vendor],
             _pct(agg.acr_households_by_vendor[vendor],
                  agg.vendors[vendor])])
    for country in sorted(agg.countries):
        reach_rows.append(
            ["country", country, agg.countries[country],
             agg.acr_households_by_country[country],
             _pct(agg.acr_households_by_country[country],
                  agg.countries[country])])
    sections.append("## ACR reach\n\n" + render_table(
        ["axis", "value", "households", "with ACR flows", "share"],
        reach_rows))

    # -- ACR volume -------------------------------------------------------------
    volume_rows = []
    for vendor in sorted(agg.vendors):
        with_acr = agg.acr_households_by_vendor[vendor]
        volume_rows.append(
            [vendor, _kb(agg.acr_bytes_by_vendor[vendor]),
             _kb(agg.acr_upload_bytes_by_vendor[vendor]),
             _kb(agg.acr_bytes_by_vendor[vendor] // with_acr)
             if with_acr else "-"])
    sections.append("## ACR traffic volume\n\n" + render_table(
        ["vendor", "total KB", "upload KB", "KB per ACR household"],
        volume_rows))

    # -- contact cadence --------------------------------------------------------
    cadence_rows = [
        [vendor, agg.cadence_intervals_by_vendor[vendor],
         f"{agg.mean_cadence_s(vendor):.1f}s"
         if agg.cadence_intervals_by_vendor[vendor] else "-"]
        for vendor in sorted(agg.vendors)]
    sections.append("## ACR contact cadence\n\n" + render_table(
        ["vendor", "intervals", "mean interval"], cadence_rows))

    # -- opt-out efficacy -------------------------------------------------------
    optout_rows = [
        ["opted in", agg.optin_households, agg.optin_acr_households,
         _pct(agg.optin_acr_households, agg.optin_households)],
        ["opted out", agg.optout_households, agg.optout_acr_households,
         _pct(agg.optout_acr_households, agg.optout_households)],
    ]
    sections.append(
        "## Opt-out efficacy\n\n"
        + render_table(["group", "households", "with ACR flows",
                        "share"], optout_rows)
        + "\n\nOpt-out is effective iff the opted-out share is 0% "
          "while the opted-in share is not.")

    # -- domains ----------------------------------------------------------------
    domain_rows = [[domain, count, _pct(count, agg.households)]
                   for domain, count in sorted(
                       agg.domain_households.items(),
                       key=lambda item: (-item[1], item[0]))]
    if domain_rows:
        sections.append("## ACR domains observed\n\n" + render_table(
            ["domain", "households", "share"], domain_rows))
    else:
        sections.append("## ACR domains observed\n\nnone")

    # -- degradations -----------------------------------------------------------
    # Quarantined capture records, with evidence.  Rendered only when
    # present, so every clean run's report stays byte-identical to one
    # produced before degradation tracking existed.
    if agg.degradations:
        degradation_rows = [[evidence, count] for evidence, count
                            in sorted(agg.degradations.items())]
        sections.append(
            "## Degradations\n\n"
            "Capture records the audit quarantined instead of "
            "decoding; their traffic is excluded from every figure "
            "above.\n\n"
            + render_table(["evidence", "occurrences"],
                           degradation_rows))

    return "\n\n".join(sections) + "\n"
