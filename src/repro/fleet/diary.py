"""Viewing diaries: multi-scenario household sessions.

The paper's cells run one scenario for one hour.  Real households do not
— an evening is idle → linear → OTT → cast.  A :class:`Diary` composes
several of the paper's scenarios into one session; the testbed's
:func:`~repro.testbed.runner.run_session` drives the segments through a
single capture, switching the input source at each boundary.

Diaries are archetypes, not per-household scripts: a household's diary
is *which* archetype it follows (sampled from the population's diary
mix), and all per-household variation comes from the derived household
seed, which perturbs every random stream in the session.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..sim.clock import minutes
from ..testbed.experiment import Scenario
from ..testbed.runner import session_duration_ns


class Segment:
    """One diary entry: a scenario held for a dwell time."""

    __slots__ = ("scenario", "dwell_ns")

    def __init__(self, scenario: Scenario, dwell_ns: int) -> None:
        if dwell_ns <= 0:
            raise ValueError("segment dwell must be positive")
        self.scenario = scenario
        self.dwell_ns = int(dwell_ns)

    def __repr__(self) -> str:
        return (f"Segment({self.scenario.value}, "
                f"{self.dwell_ns / 60e9:.0f}m)")


class Diary:
    """A named sequence of segments one household plays through."""

    __slots__ = ("name", "segments")

    def __init__(self, name: str, segments: Sequence[Segment]) -> None:
        if not segments:
            raise ValueError("diary needs at least one segment")
        self.name = name
        self.segments = list(segments)

    @property
    def duration_ns(self) -> int:
        """Total session duration — delegated to the testbed runner so
        the fleet cache key can never disagree with the simulation."""
        return session_duration_ns(self.as_runner_segments())

    @property
    def scenarios(self) -> List[Scenario]:
        return [segment.scenario for segment in self.segments]

    def as_runner_segments(self) -> List[Tuple[Scenario, int]]:
        """The ``(Scenario, dwell_ns)`` pairs ``run_session`` consumes."""
        return [(segment.scenario, segment.dwell_ns)
                for segment in self.segments]

    def __repr__(self) -> str:
        chain = " -> ".join(s.scenario.value for s in self.segments)
        return f"Diary({self.name}: {chain})"


def _diary(name: str, *entries: Tuple[Scenario, int]) -> Diary:
    return Diary(name, [Segment(scenario, dwell_ns)
                        for scenario, dwell_ns in entries])


#: The built-in archetypes.  Dwells are deliberately shorter than the
#: paper's one-hour cells so population-scale fleets stay tractable; the
#: ACR loops they exercise have second-scale cadences, so every segment
#: is long enough to show its scenario's steady-state behaviour.
DIARIES: Dict[str, Diary] = {
    diary.name: diary for diary in (
        _diary("ambient",
               (Scenario.LINEAR, minutes(16))),
        _diary("binge",
               (Scenario.IDLE, minutes(2)),
               (Scenario.OTT, minutes(14))),
        _diary("evening_mix",
               (Scenario.IDLE, minutes(2)),
               (Scenario.LINEAR, minutes(6)),
               (Scenario.OTT, minutes(6)),
               (Scenario.SCREEN_CAST, minutes(4))),
        _diary("console_gamer",
               (Scenario.IDLE, minutes(2)),
               (Scenario.HDMI, minutes(12))),
        _diary("channel_surfer",
               (Scenario.LINEAR, minutes(5)),
               (Scenario.FAST, minutes(5)),
               (Scenario.LINEAR, minutes(4))),
        _diary("second_screen",
               (Scenario.IDLE, minutes(3)),
               (Scenario.SCREEN_CAST, minutes(9))),
    )
}


def diary_named(name: str) -> Diary:
    """Look up a diary archetype; raise with the valid names on miss."""
    try:
        return DIARIES[name]
    except KeyError:
        raise ValueError(
            f"unknown diary {name!r} "
            f"(choose from {', '.join(sorted(DIARIES))})") from None
