"""Sharded fleet execution over the grid's process pool and result cache.

A fleet run is embarrassingly parallel: each household session is a pure
function of ``(household label, derived seed)``.  The runner

* partitions households into fixed-size shards whose boundaries depend
  only on N (never on ``--jobs``), so the fold structure — fold within a
  shard, merge shards in index order — is identical however many workers
  execute it, and the aggregate report is byte-identical across job
  counts;
* executes shards on a :class:`~concurrent.futures.ProcessPoolExecutor`
  after :func:`~repro.experiments.grid.warm_assets` builds the shared
  per-country assets pre-fork;
* memoizes each household capture in the content-addressed
  :class:`~repro.experiments.grid.ResultCache` (keyed by household
  label, diary duration and derived seed), so a repeated or *grown*
  fleet only simulates new households;
* folds each household's audit into a
  :class:`~repro.fleet.aggregate.FleetAggregate` inside the worker and
  returns only the shard aggregate — captures never cross the process
  boundary and parent memory stays constant in N.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import time
from typing import Callable, List, Optional, Tuple

from ..analysis.pipeline import AuditPipeline, ColumnarAuditPipeline
from ..faults import (NULL_PLAN, FaultPlan, produce_with_retries,
                      salvage_pcap_bytes, tamper_pcap_bytes)
from ..findings import Finding
from ..experiments.grid import (CacheReadError, ResultCache,
                                record_from_result, warm_assets)
from ..net.addresses import Ipv4Address
from ..net.pcap import GLOBAL_HEADER, PcapError
from ..net.tiers import resolve_tier
from ..obs.metrics import get_registry, metrics_enabled, scoped
from ..testbed.runner import run_session
from ..testbed.validation import validate_session
from .aggregate import FleetAggregate, merge_all, summarize_household
from .population import HouseholdSpec, PopulationSpec
from .shm import ColumnArena, shm_key

#: Households per shard.  Fixed (not derived from --jobs) so the shard
#: partition — and therefore the fold/merge structure — depends only on
#: the population, which is what makes reports job-count invariant.
SHARD_SIZE = 16

ProgressFn = Callable[[int, int, int, int], None]

#: Richer progress hook: (done shards, total shards, executed, cached,
#: aggregate folded so far) — what the dashboard renders from.
ObserverFn = Callable[[int, int, int, int, FleetAggregate], None]


class FleetRunError(RuntimeError):
    """A household session failed validation."""


def household_record(household: HouseholdSpec,
                     cache: Optional[ResultCache],
                     validate_results: bool = True):
    """Produce (or recall) one household's capture record.

    Returns ``(record, executed)``.  A cached capture that turns out to
    be unreadable is dropped and the household re-run, mirroring the
    grid's self-healing behaviour.  This is the single capture-
    production step shared by the batch shard workers below and the
    streaming service tier (:mod:`repro.service`), which chops the
    record's pcap into segments instead of auditing it in one piece.
    """
    diary = household.diary_obj
    record = cache.load_for(household.label, diary.duration_ns,
                            household.seed) if cache else None
    executed = False
    if record is not None:
        try:
            record.pcap_bytes
        except CacheReadError:
            record = None
    if record is None:
        with get_registry().span("fleet.simulate"):
            result = run_session(
                household.vendor, household.country, household.phase,
                diary.as_runner_segments(), seed=household.seed,
                label=household.label)
        if validate_results:
            report = validate_session(result, diary.scenarios)
            if not report.ok:
                raise FleetRunError(
                    f"household {household.label} (seed "
                    f"{household.seed}) failed validation: "
                    f"{report.failures}")
        record = record_from_result(result)
        record.label = household.label
        executed = True
        if cache:
            cache.store(record)
    return record, executed


def _audit_household(household: HouseholdSpec,
                     cache: Optional[ResultCache],
                     validate_results: bool,
                     tier: Optional[str] = None,
                     arena: Optional[ColumnArena] = None,
                     faults: FaultPlan = NULL_PLAN
                     ) -> Tuple[dict, bool, Optional[str]]:
    """Run (or recall) one household and reduce it to a summary.

    Returns ``(summary, executed, touched shm key or None)``.  With an
    arena, a household already published to shared memory is audited
    straight from the attached columns — no pcap read, no decode — and
    a freshly decoded one is published for the next process."""
    registry = get_registry()
    key = None
    if arena is not None:
        key = shm_key(household.label, household.diary_obj.duration_ns,
                      household.seed, cache.version if cache else None)
        if faults and faults.fires("shm.vanish", household.index):
            # The published segment disappears out from under us (a
            # purge, a reboot, another run's unlink); recovery is the
            # local decode below.
            registry.inc("faults.injected.shm.vanish")
            ColumnArena.unlink(key)
            registry.inc("faults.recovered.shm.fallback")
        attached = arena.attach(key)
        if attached is not None:
            capture, meta = attached
            pipeline = ColumnarAuditPipeline(
                capture, Ipv4Address.parse(meta["tv_ip"]))
            summary = summarize_household(household, pipeline,
                                          meta["packet_count"],
                                          meta["pcap_len"])
            registry.inc("fleet.households")
            del pipeline, capture
            return summary, False, key
    record, executed = household_record(household, cache,
                                        validate_results)
    pcap_bytes = record.pcap_bytes
    packet_count, pcap_len = record.packet_count, record.pcap_len
    if faults:
        pcap_bytes, __ = tamper_pcap_bytes(faults, pcap_bytes,
                                           household.index)
    quarantined: List[Finding] = []
    tv_ip = Ipv4Address.parse(record.tv_ip)
    with registry.span("fleet.decode"):
        try:
            pipeline = AuditPipeline.from_pcap_bytes(
                pcap_bytes, tv_ip, tier=tier)
        except (PcapError, ValueError) as exc:
            # Quarantine-and-continue: salvage what still decodes and
            # surface every dropped record as a counted finding instead
            # of aborting the shard.
            clean, drops = salvage_pcap_bytes(pcap_bytes)
            registry.inc("faults.degraded.captures")
            registry.inc("faults.degraded.records", len(drops))
            for record_index, reason in drops:
                quarantined.append(Finding.degradation(
                    household.label, household.index, None,
                    record_index, reason))
            pipeline = AuditPipeline.from_pcap_bytes(
                clean, tv_ip, tier=tier) if clean \
                else AuditPipeline.incremental(tv_ip)
            packet_count = len(pipeline.packets)
            pcap_len = max(len(clean), GLOBAL_HEADER.size)
    touched = None
    if (arena is not None and not quarantined
            and isinstance(pipeline, ColumnarAuditPipeline)):
        touched = arena.publish(
            key, pipeline.packets,
            {"tv_ip": record.tv_ip, "label": household.label,
             "packet_count": record.packet_count,
             "pcap_len": record.pcap_len})
    summary = summarize_household(household, pipeline,
                                  packet_count, pcap_len)
    if quarantined:
        summary["findings"] = quarantined
    registry.inc("fleet.households")
    # Drop the heavy objects before the next household: the aggregate
    # keeps only the summary's integers.
    del pipeline, record
    return summary, executed, touched


def _run_shard(payload) -> Tuple[FleetAggregate, int, int,
                                 Optional[dict], Tuple[str, ...]]:
    """Pool worker: audit one shard, return its merged aggregate.

    Takes only primitives (household tuples + cache coordinates + tier
    and shared-memory flags) and returns the shard's
    :class:`FleetAggregate` plus executed/cached counts, — when the
    parent had metrics enabled — the shard's own metrics snapshot,
    collected in a worker-local registry so the parent can absorb it
    without double counting, and the shm keys it touched (published or
    attached).  Never a capture.
    """
    (household_tuples, cache_root, cache_version, validate_results,
     collect_metrics, tier, shm_columns, plan_tuple) = payload
    cache = ResultCache(cache_root, version=cache_version) \
        if cache_root else None
    faults = FaultPlan.from_tuple(plan_tuple)
    arena = ColumnArena() \
        if shm_columns and resolve_tier(tier) == "columnar" else None
    aggregate = FleetAggregate()
    executed = cached = 0
    touched: List[str] = []
    with scoped(collect_metrics) as registry:
        with get_registry().span("fleet.shard"):
            for values in household_tuples:
                household = HouseholdSpec.from_tuple(values)
                # An injected audit-worker crash/hang kills this
                # household's attempt mid-shard; the bounded retry
                # makes the shard self-healing.
                (summary, ran, key), __ = produce_with_retries(
                    faults, (household.index,),
                    lambda: _audit_household(
                        household, cache, validate_results, tier,
                        arena, faults))
                aggregate.fold(summary)
                if key is not None:
                    touched.append(key)
                if ran:
                    executed += 1
                else:
                    cached += 1
        get_registry().inc("fleet.shards.completed")
        snapshot = registry.snapshot() if registry is not None else None
    return aggregate, executed, cached, snapshot, tuple(touched)


class FleetResult:
    """Outcome of one fleet run: the aggregate plus execution stats."""

    __slots__ = ("aggregate", "households", "shards", "executed",
                 "cached", "elapsed_s")

    def __init__(self, aggregate: FleetAggregate, households: int,
                 shards: int, executed: int, cached: int,
                 elapsed_s: float) -> None:
        self.aggregate = aggregate
        self.households = households
        self.shards = shards
        self.executed = executed
        self.cached = cached
        self.elapsed_s = elapsed_s

    def __repr__(self) -> str:
        return (f"FleetResult({self.households} households in "
                f"{self.shards} shards, {self.executed} executed, "
                f"{self.cached} cached, {self.elapsed_s:.1f}s)")


class FleetRunner:
    """Execute a population, sharded, through the result cache."""

    def __init__(self, cache: Optional[ResultCache] = None, jobs: int = 1,
                 shard_size: int = SHARD_SIZE,
                 validate_results: bool = True,
                 decode_tier: Optional[str] = None,
                 shm_columns: bool = False,
                 shm_keep: bool = False,
                 faults: FaultPlan = NULL_PLAN) -> None:
        if shard_size <= 0:
            raise ValueError("shard size must be positive")
        self.cache = cache
        self.jobs = max(1, jobs)
        self.shard_size = shard_size
        self.validate_results = validate_results
        #: Resolved once here so workers get an explicit tier rather
        #: than relying on inheriting the parent's process default.
        self.decode_tier = resolve_tier(decode_tier)
        self.shm_columns = shm_columns
        self.shm_keep = shm_keep
        self.faults = faults

    def _payloads(self, population: PopulationSpec) -> List[Tuple]:
        cache_root = self.cache.root if self.cache else None
        cache_version = self.cache.version if self.cache else None
        households = [household.as_tuple() for household in population]
        return [
            (tuple(households[start:start + self.shard_size]),
             cache_root, cache_version, self.validate_results,
             metrics_enabled(), self.decode_tier, self.shm_columns,
             self.faults.as_tuple())
            for start in range(0, len(households), self.shard_size)]

    def run(self, population: PopulationSpec,
            progress: Optional[ProgressFn] = None,
            observer: Optional[ObserverFn] = None) -> FleetResult:
        """Audit every household; constant parent memory in N.

        ``progress`` receives plain shard counts; ``observer``
        additionally receives the aggregate folded so far (shards merge
        in index order), which is what the live dashboard renders —
        both are observation only and never affect the result.
        """
        started = time.perf_counter()
        payloads = self._payloads(population)
        shard_outputs: List[Optional[Tuple]] = [None] * len(payloads)

        def collect(index: int, output: Tuple) -> None:
            shard_outputs[index] = output
            get_registry().absorb(output[3])
            registry = get_registry()
            if registry.enabled:
                elapsed = time.perf_counter() - started
                folded = sum(o[0].households for o in shard_outputs
                             if o is not None)
                if elapsed > 0:
                    registry.gauge_set("fleet.households_per_s",
                                       round(folded / elapsed, 3))
            self._report(progress, observer, shard_outputs)

        if self.jobs == 1 or len(payloads) == 1:
            for index, payload in enumerate(payloads):
                collect(index, _run_shard(payload))
        else:
            workers = min(self.jobs, len(payloads))
            if multiprocessing.get_start_method() == "fork":
                # Same pre-fork warm-up the grid runner does: workers
                # inherit the per-country reference libraries
                # copy-on-write instead of each rebuilding them.
                warm_assets(countries=population.countries())
            failed: List[int] = []
            with concurrent.futures.ProcessPoolExecutor(workers) as pool:
                futures = {
                    pool.submit(_run_shard, payload): index
                    for index, payload in enumerate(payloads)}
                for future in concurrent.futures.as_completed(futures):
                    try:
                        collect(futures[future], future.result())
                    except concurrent.futures.process.BrokenProcessPool:
                        # A worker died for real (OOM-kill, segfault).
                        # The pool is unusable from here on; requeue
                        # every lost shard for the serial pass below.
                        failed.append(futures[future])
            for index in sorted(failed):
                get_registry().inc("retry.shard.requeued")
                collect(index, _run_shard(payloads[index]))

        aggregate = merge_all(output[0] for output in shard_outputs)
        executed = sum(output[1] for output in shard_outputs)
        cached = sum(output[2] for output in shard_outputs)
        if self.shm_columns and not self.shm_keep:
            # Shared-memory columns are a per-run decode cache by
            # default: every segment this run touched (published or
            # attached) is removed.  --shm-keep leaves them for the
            # next run/process to attach.
            for output in shard_outputs:
                for key in output[4]:
                    ColumnArena.unlink(key)
        return FleetResult(aggregate, population.households,
                           len(payloads), executed, cached,
                           time.perf_counter() - started)

    @staticmethod
    def _report(progress: Optional[ProgressFn],
                observer: Optional[ObserverFn],
                shard_outputs: List) -> None:
        if progress is None and observer is None:
            return
        done = [output for output in shard_outputs if output is not None]
        counts = (len(done), len(shard_outputs),
                  sum(output[1] for output in done),
                  sum(output[2] for output in done))
        if progress is not None:
            progress(*counts)
        if observer is not None:
            # Index order keeps the partial aggregate canonical (the
            # same discipline as the final merge).
            observer(*counts, merge_all(
                output[0] for output in shard_outputs
                if output is not None))
