"""Constant-memory streaming aggregation over household audits.

A fleet of N households produces N captures; nothing population-scale
should ever hold more than one of them.  The flow is::

    capture -> AuditPipeline -> summarize_household() -> small int dict
                                        |
                                        v  fold()            merge()
                              FleetAggregate  <———  shard aggregates

``summarize_household`` reduces one decoded capture to a handful of
integers, after which the capture is discarded.  :class:`FleetAggregate`
folds summaries and merges with other aggregates; every accumulator is
an integer (or a Counter of integers), so ``merge`` is associative *and*
commutative in exact arithmetic — shard results combine in any order and
a ``--jobs 8`` fleet report is byte-identical to a serial one.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Mapping

from ..analysis.pipeline import AuditPipeline
from ..findings import DEGRADATION_CODE, Finding, FindingsLedger
from ..sim.clock import seconds


def _add_nonzero(counter: Counter, key, amount: int) -> None:
    """Accumulate without ever materializing a zero-count entry.

    ``Counter`` equality is plain dict equality, so a counter holding an
    explicit zero entry compares unequal to an empty one even though
    they describe the same population.  If
    folds and merges were allowed to leave explicit zeros behind, an
    aggregate restored from a checkpoint (which serializes only nonzero
    counts) would compare unequal to the live aggregate it snapshotted,
    and ``FleetAggregate()`` would stop being a true merge identity.
    Every accumulation therefore goes through this guard.
    """
    if amount:
        counter[key] += amount

#: TV→ACR packets closer together than this belong to one contact burst.
BURST_GAP_NS = seconds(5)


def summarize_household(household, pipeline: AuditPipeline,
                        packet_count: int, pcap_len: int
                        ) -> Dict[str, object]:
    """Reduce one household's decoded capture to a flat summary dict.

    The summary is all primitives (strings, ints, a small list of
    domain names), so it pickles cheaply and folds in O(1) memory.
    ``household`` needs ``vendor``/``country``/``phase``/``diary``
    attributes (a :class:`~repro.fleet.population.HouseholdSpec`).
    """
    domains = pipeline.acr_candidate_domains()
    acr_bytes = sum(pipeline.bytes_for(domain) for domain in domains)
    upload = sum(pipeline.bytes_sent_to(domain) for domain in domains)

    uploads_ts = pipeline.upload_timestamps(domains)
    burst_starts: List[int] = []
    previous = None
    for timestamp in uploads_ts:
        if previous is None or timestamp - previous > BURST_GAP_NS:
            burst_starts.append(timestamp)
        previous = timestamp
    intervals = [after - before for before, after
                 in zip(burst_starts, burst_starts[1:])]

    return {
        "label": household.label,
        "index": household.index,
        "vendor": household.vendor.value,
        "country": household.country.value,
        "phase": household.phase.value,
        "diary": household.diary,
        "opted_in": household.phase.opted_in,
        "packets": packet_count,
        "pcap_len": pcap_len,
        "acr_domains": sorted(domains),
        "acr_bytes": acr_bytes,
        "acr_upload_bytes": upload,
        "acr_packets": len(uploads_ts),
        "acr_bursts": len(burst_starts),
        "cadence_sum_ns": sum(intervals),
        "cadence_intervals": len(intervals),
    }


class FleetAggregate:
    """Streaming population statistics with an associative ``merge``.

    ``FleetAggregate()`` is the identity: merging it with anything
    returns that thing's statistics unchanged.
    """

    __slots__ = (
        "households", "packets", "pcap_bytes",
        "vendors", "countries", "phases", "diaries",
        "acr_households", "acr_households_by_vendor",
        "acr_households_by_country",
        "households_by_vendor_country",
        "acr_households_by_vendor_country",
        "acr_bytes", "acr_bytes_by_vendor", "acr_bytes_by_country",
        "acr_upload_bytes", "acr_upload_bytes_by_vendor",
        "acr_packets", "acr_bursts",
        "cadence_sum_ns_by_vendor", "cadence_intervals_by_vendor",
        "optin_households", "optin_acr_households",
        "optout_households", "optout_acr_households",
        "domain_households", "degradations", "findings",
    )

    def __init__(self) -> None:
        self.households = 0
        self.packets = 0
        self.pcap_bytes = 0
        self.vendors: Counter = Counter()
        self.countries: Counter = Counter()
        self.phases: Counter = Counter()
        self.diaries: Counter = Counter()
        self.acr_households = 0
        self.acr_households_by_vendor: Counter = Counter()
        self.acr_households_by_country: Counter = Counter()
        #: "vendor/country" -> households (and the ACR-showing subset);
        #: the live dashboard's heatmap is a pure view over these two.
        self.households_by_vendor_country: Counter = Counter()
        self.acr_households_by_vendor_country: Counter = Counter()
        self.acr_bytes = 0
        self.acr_bytes_by_vendor: Counter = Counter()
        self.acr_bytes_by_country: Counter = Counter()
        self.acr_upload_bytes = 0
        self.acr_upload_bytes_by_vendor: Counter = Counter()
        self.acr_packets = 0
        self.acr_bursts = 0
        self.cadence_sum_ns_by_vendor: Counter = Counter()
        self.cadence_intervals_by_vendor: Counter = Counter()
        self.optin_households = 0
        self.optin_acr_households = 0
        self.optout_households = 0
        self.optout_acr_households = 0
        #: domain -> number of households that contacted it
        self.domain_households: Counter = Counter()
        #: evidence string -> occurrences, one per capture record (or
        #: segment) quarantined instead of audited.  Empty on every
        #: clean run, so the report and checkpoints are byte-identical
        #: with and without the fault layer present.  Derived from the
        #: ``DEG`` findings in :attr:`findings` (same fold, one source).
        self.degradations: Counter = Counter()
        #: Every structured finding the fleet produced: degradation
        #: quarantines folded from summaries plus the opt-out
        #: violations this aggregate emits itself.  Merges with the
        #: same associative/commutative algebra as the Counters.
        self.findings = FindingsLedger()

    # -- accumulation -----------------------------------------------------------

    def fold(self, summary: Mapping[str, object]) -> "FleetAggregate":
        """Absorb one household summary (then the caller discards it)."""
        vendor = summary["vendor"]
        country = summary["country"]
        has_acr = summary["acr_packets"] > 0 or bool(
            summary["acr_domains"])

        self.households += 1
        self.packets += summary["packets"]
        self.pcap_bytes += summary["pcap_len"]
        self.vendors[vendor] += 1
        self.countries[country] += 1
        self.phases[summary["phase"]] += 1
        self.diaries[summary["diary"]] += 1

        self.households_by_vendor_country[f"{vendor}/{country}"] += 1
        if has_acr:
            self.acr_households += 1
            self.acr_households_by_vendor[vendor] += 1
            self.acr_households_by_country[country] += 1
            self.acr_households_by_vendor_country[
                f"{vendor}/{country}"] += 1
        self.acr_bytes += summary["acr_bytes"]
        _add_nonzero(self.acr_bytes_by_vendor, vendor,
                     summary["acr_bytes"])
        _add_nonzero(self.acr_bytes_by_country, country,
                     summary["acr_bytes"])
        self.acr_upload_bytes += summary["acr_upload_bytes"]
        _add_nonzero(self.acr_upload_bytes_by_vendor, vendor,
                     summary["acr_upload_bytes"])
        self.acr_packets += summary["acr_packets"]
        self.acr_bursts += summary["acr_bursts"]
        _add_nonzero(self.cadence_sum_ns_by_vendor, vendor,
                     summary["cadence_sum_ns"])
        _add_nonzero(self.cadence_intervals_by_vendor, vendor,
                     summary["cadence_intervals"])

        if summary["opted_in"]:
            self.optin_households += 1
            self.optin_acr_households += int(has_acr)
        else:
            self.optout_households += 1
            self.optout_acr_households += int(has_acr)

        for domain in summary["acr_domains"]:
            self.domain_households[domain] += 1
        for finding in summary.get("findings", ()):
            self.findings.fold(finding)
            if finding.code == DEGRADATION_CODE and finding.evidence:
                self.degradations[finding.evidence[0].text] += 1
        if not summary["opted_in"] and has_acr:
            # Emitted here — the single fold point shared by the batch
            # fleet and the streaming service — so the two paths cannot
            # diverge on what counts as a violation.
            self.findings.fold(Finding.optout_violation(
                summary.get("label"), summary.get("index"),
                vendor, country, summary["phase"],
                summary["acr_bytes"], summary["acr_domains"]))
        return self

    def merge(self, other: "FleetAggregate") -> "FleetAggregate":
        """A new aggregate combining two (shards combine this way).

        Zero counts never cross a merge: ``Counter.update`` would copy
        an explicit zero entry verbatim, which would make the result
        compare unequal to an arithmetically identical aggregate built
        down a different fold path (see :func:`_add_nonzero`).
        """
        merged = FleetAggregate()
        for part in (self, other):
            for slot in FleetAggregate.__slots__:
                value = getattr(part, slot)
                if isinstance(value, Counter):
                    target = getattr(merged, slot)
                    for key, count in value.items():
                        _add_nonzero(target, key, count)
                else:
                    # Integers add; the findings ledger's __add__ is
                    # its own (equally associative) merge.
                    setattr(merged, slot, getattr(merged, slot) + value)
        return merged

    # -- checkpoint serialization -----------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot: integers verbatim, Counters as sorted
        dicts of their nonzero entries (the canonical form — equality
        with a live aggregate survives the round-trip)."""
        state: Dict[str, object] = {}
        for slot in FleetAggregate.__slots__:
            value = getattr(self, slot)
            if isinstance(value, Counter):
                state[slot] = {key: count for key, count
                               in sorted(value.items()) if count}
            elif isinstance(value, FindingsLedger):
                state[slot] = value.to_jsonable()
            else:
                state[slot] = value
        return state

    @classmethod
    def from_dict(cls, state: Mapping[str, object]) -> "FleetAggregate":
        """Rebuild a snapshot written by :meth:`to_dict`."""
        aggregate = cls()
        for slot in cls.__slots__:
            value = state.get(slot)
            if value is None:
                # A snapshot written before this slot existed: keep the
                # (empty/zero) default rather than refusing the resume.
                continue
            if isinstance(getattr(aggregate, slot), Counter):
                counter = getattr(aggregate, slot)
                for key, count in value.items():
                    _add_nonzero(counter, key, int(count))
            elif isinstance(getattr(aggregate, slot), FindingsLedger):
                setattr(aggregate, slot,
                        FindingsLedger.from_jsonable(value))
            else:
                setattr(aggregate, slot, int(value))
        return aggregate

    # -- derived views ----------------------------------------------------------

    def acr_fraction(self) -> float:
        return self.acr_households / self.households \
            if self.households else 0.0

    def mean_cadence_s(self, vendor: str) -> float:
        intervals = self.cadence_intervals_by_vendor[vendor]
        if not intervals:
            return 0.0
        return (self.cadence_sum_ns_by_vendor[vendor]
                / intervals / 1e9)

    def optout_leak_fraction(self) -> float:
        """Fraction of opted-out households that still show ACR flows."""
        return self.optout_acr_households / self.optout_households \
            if self.optout_households else 0.0

    def optin_acr_fraction(self) -> float:
        return self.optin_acr_households / self.optin_households \
            if self.optin_households else 0.0

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, FleetAggregate)
                and all(getattr(self, slot) == getattr(other, slot)
                        for slot in FleetAggregate.__slots__))

    def __repr__(self) -> str:
        return (f"FleetAggregate({self.households} households, "
                f"{self.acr_households} with ACR flows)")


def merge_all(aggregates) -> FleetAggregate:
    """Left-fold ``merge`` over shard aggregates (associative, so the
    grouping is irrelevant; callers still pass shards in index order so
    even floating-point *consumers* of the result see one canonical
    object)."""
    merged = FleetAggregate()
    for aggregate in aggregates:
        merged = merged.merge(aggregate)
    return merged
