"""Shared-memory column arena: decode a capture once per machine.

The columnar tier's columns are plain contiguous arrays, so a fleet
worker that has decoded a household can *publish* them — raw pcap
buffer included — into a named ``multiprocessing.shared_memory``
segment, and every later audit of that household (another job count,
a repeated run, a serve refresh) *attaches* read-only instead of
re-decoding.  Segments are content-addressed the same way the result
cache is — ``(household label, diary duration, seed, cache version)``
— and captures are deterministic functions of those coordinates, so an
attached segment is always byte-equivalent to a fresh decode.

Lifetime is managed explicitly, not by the interpreter:
``SharedMemory`` registers every open (create *and* attach) with the
``resource_tracker``, which would unlink segments as soon as any single
process exits; the arena unregisters each open immediately and the
fleet runner unlinks published segments at the end of the run (unless
``--shm-keep`` leaves them for the next one).

Everything in the segment is integers, JSON and raw bytes — no
pickling — so any process on the machine can attach regardless of how
it was started.
"""

from __future__ import annotations

import hashlib
import json
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from ..net.columnar import COLUMN_NAMES, ColumnarCapture
from ..obs.metrics import get_registry

#: Name prefix for every arena segment (also the purge filter).
SHM_PREFIX = "repro-col-"

#: Per-capture publish cap: captures whose columns + pcap exceed this
#: are simply not published (counted, never an error).
DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Take ownership of a segment's lifetime away from the
    resource tracker (which would unlink it at process exit)."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class _Segment(shared_memory.SharedMemory):
    """A segment whose finalizer tolerates still-exported views.

    Numpy columns attached over the mapping may outlive the capture
    that owns the segment (a consumer keeps a column array around);
    ``mmap.close()`` then raises ``BufferError``.  The mapping is
    reclaimed anyway once the last view dies, so the finalizer just
    leaves it to that instead of surfacing an unraisable error."""

    def __del__(self) -> None:
        try:
            super().__del__()
        except BufferError:
            pass


def _align8(value: int) -> int:
    return (value + 7) & ~7


def shm_key(label: str, duration_ns: int, seed: int,
            version: Optional[str]) -> str:
    """Content address of one household capture's column segment."""
    coordinates = f"{label}:{duration_ns}:{seed}:{version}"
    return SHM_PREFIX + hashlib.sha256(
        coordinates.encode()).hexdigest()[:16]


class ColumnArena:
    """Publish/attach :class:`ColumnarCapture` columns over shared
    memory.  One arena per process; it keeps every segment it has
    opened alive for as long as attached captures may be in use."""

    def __init__(self, budget_bytes: int = DEFAULT_BUDGET_BYTES) -> None:
        self.budget_bytes = budget_bytes
        self._open: Dict[str, shared_memory.SharedMemory] = {}

    # -- publish ----------------------------------------------------------------

    def publish(self, key: str, capture: ColumnarCapture,
                meta: dict) -> Optional[str]:
        """Write a capture's columns + pcap buffer under ``key``.

        Returns the key on success, ``None`` when skipped (over budget,
        multi-segment, or lost a create race — the racer's segment is
        equivalent).  ``meta`` must hold everything an attacher needs
        to audit without the result cache (tv_ip at minimum).
        """
        registry = get_registry()
        if capture.segment_count != 1 \
                or capture.nbytes > self.budget_bytes:
            if registry.enabled:
                registry.inc("decode.columnar.shm.skipped")
            return None
        columns = capture.columns()
        pcap = capture.buffer
        descriptors = []
        cursor = 0
        for name in COLUMN_NAMES:
            array = columns[name]
            descriptors.append({"name": name,
                                "dtype": array.dtype.str,
                                "count": len(array),
                                "offset": cursor})
            cursor = _align8(cursor + array.nbytes)
        header = json.dumps({"meta": meta,
                             "columns": descriptors,
                             "pcap": {"offset": cursor,
                                      "length": len(pcap)}}).encode()
        data_start = _align8(8 + len(header))
        total = data_start + cursor + len(pcap)
        try:
            segment = _Segment(name=key, create=True, size=total)
        except FileExistsError:
            # Another worker published the same capture first; theirs
            # is byte-equivalent.
            if registry.enabled:
                registry.inc("decode.columnar.shm.skipped")
            return None
        _untrack(segment)
        buf = segment.buf
        buf[0:8] = len(header).to_bytes(8, "little")
        buf[8:8 + len(header)] = header
        for descriptor, name in zip(descriptors, COLUMN_NAMES):
            start = data_start + descriptor["offset"]
            blob = columns[name].tobytes()
            buf[start:start + len(blob)] = blob
        buf[data_start + cursor:total] = bytes(pcap)
        self._open[key] = segment
        if registry.enabled:
            registry.inc("decode.columnar.shm.publish")
        return key

    # -- attach -----------------------------------------------------------------

    def attach(self, key: str
               ) -> Optional[Tuple[ColumnarCapture, dict]]:
        """Open a published segment read-only.

        Returns ``(capture, meta)``, or ``None`` when nothing is
        published under ``key``.  The capture is frozen; its arrays and
        pcap buffer alias the shared segment with zero copies.
        """
        registry = get_registry()
        with registry.span("decode.columnar.shm.attach"):
            try:
                segment = _Segment(name=key)
            except FileNotFoundError:
                return None
            _untrack(segment)
            try:
                buf = segment.buf
                header_len = int.from_bytes(buf[0:8], "little")
                header = json.loads(bytes(buf[8:8 + header_len]))
                data_start = _align8(8 + header_len)
                columns: Dict[str, np.ndarray] = {}
                for descriptor in header["columns"]:
                    array = np.frombuffer(
                        buf, dtype=np.dtype(descriptor["dtype"]),
                        count=descriptor["count"],
                        offset=data_start + descriptor["offset"])
                    array.flags.writeable = False
                    columns[descriptor["name"]] = array
                pcap_start = data_start + header["pcap"]["offset"]
                pcap = buf[pcap_start:
                           pcap_start + header["pcap"]["length"]] \
                    .toreadonly()
                capture = ColumnarCapture.from_columns(columns, pcap,
                                                       owner=segment)
            except (BufferError, ValueError, KeyError, IndexError,
                    TypeError, OSError, json.JSONDecodeError):
                # A vanished mapping, torn header, or garbage segment
                # is a cache miss, never an error: the caller decodes
                # the capture locally instead.
                registry.inc("decode.columnar.shm.attach_error")
                try:
                    segment.close()
                except BufferError:
                    pass
                return None
            self._open[key] = segment
        if registry.enabled:
            registry.inc("decode.columnar.shm.attach")
        return capture, header["meta"]

    # -- lifetime ---------------------------------------------------------------

    @staticmethod
    def unlink(key: str) -> bool:
        """Remove one published segment; True if it existed."""
        try:
            segment = shared_memory.SharedMemory(name=key)
        except FileNotFoundError:
            return False
        segment.close()
        # close() balanced the attach's register; unlink() re-pairs by
        # removing the name it would have unregistered — do both here
        # in the canonical order.
        try:
            segment.unlink()
        except FileNotFoundError:
            return False
        return True

    def __repr__(self) -> str:
        return (f"ColumnArena({len(self._open)} open, "
                f"budget={self.budget_bytes >> 20}MB)")
