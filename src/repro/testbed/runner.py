"""Run one experiment end to end.

The workflow mirrors §3.2 exactly: start capture, power the TV on through
the smart plug (boot DNS burst), trigger the scenario through the remote,
run for the experiment duration, power off, stop capture.  The output is a
real pcap plus the out-of-band handles (backend, registry) that only our
white-box reproduction can offer.

:func:`run_experiment` drives the paper's single-scenario cells;
:func:`run_session` drives a multi-segment *viewing diary* (e.g. idle →
linear → OTT → cast) through the same workflow, switching the input
source at each segment boundary inside one capture.  The fleet layer
builds on the latter.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..acr.server import AcrBackend
from ..dnsinfra.registry import DomainRegistry
from ..dnsinfra.zones import Zone
from ..media.sources import (FastApp, HdmiInput, HomeScreen, InputSource,
                             OttApp, ScreenCast, Tuner)
from ..net.packet import CapturedPacket
from ..net.stack import HostStack
from ..sim.clock import seconds
from ..sim.events import EventLoop
from ..sim.rng import RngRegistry
from ..tv.device import SmartTV
from ..tv.power import SmartPlug
from ..tv.remote import RemoteControl
from . import assets
from .access_point import AccessPoint
from .experiment import (ExperimentSpec, POWER_ON_AT_NS, Scenario,
                         SCENARIO_START_NS, Vendor, vendor_profile_of)


class ExperimentResult:
    """Everything one experiment produced."""

    __slots__ = ("spec", "seed", "pcap_bytes", "packet_count", "tv_mac",
                 "tv_ip", "device_id", "backend", "registry", "zone",
                 "action_log", "power_log", "acr_stats", "mitm_proxy")

    def __init__(self, spec: ExperimentSpec, seed: int, pcap_bytes: bytes,
                 packet_count: int, tv_mac: str, tv_ip: str,
                 device_id: str, backend: AcrBackend,
                 registry: DomainRegistry, zone: Zone,
                 action_log: List, power_log: List,
                 acr_stats, mitm_proxy=None) -> None:
        self.spec = spec
        self.seed = seed
        self.pcap_bytes = pcap_bytes
        self.packet_count = packet_count
        self.tv_mac = tv_mac
        self.tv_ip = tv_ip
        self.device_id = device_id
        self.backend = backend
        self.registry = registry
        self.zone = zone
        self.action_log = action_log
        self.power_log = power_log
        self.acr_stats = acr_stats
        self.mitm_proxy = mitm_proxy

    def __repr__(self) -> str:
        return (f"ExperimentResult({self.spec.label}, seed={self.seed}, "
                f"{self.packet_count} packets, "
                f"{len(self.pcap_bytes)} pcap bytes)")


def build_source(spec: ExperimentSpec, seed: int) -> InputSource:
    """The input source for a scenario, over the cached country assets."""
    country = spec.country.value
    library = assets.media_library(country, 0)
    if spec.scenario is Scenario.IDLE:
        return HomeScreen(assets.ui_item())
    if spec.scenario is Scenario.LINEAR:
        return Tuner(assets.linear_channel(country, 0))
    if spec.scenario is Scenario.FAST:
        app = vendor_profile_of(spec.vendor).fast_app_id
        return FastApp(app, assets.fast_channel(country, 0))
    if spec.scenario is Scenario.OTT:
        return OttApp("netflix", assets.ott_playlist(country, 0))
    if spec.scenario is Scenario.HDMI:
        return HdmiInput([library.desktop(), library.game()], dwell_s=300)
    if spec.scenario is Scenario.SCREEN_CAST:
        return ScreenCast(library.movies[2])
    raise ValueError(f"unhandled scenario: {spec.scenario}")


Segment = Tuple[Scenario, int]
SESSION_TAIL_NS = seconds(30)


def session_duration_ns(segments: Sequence[Segment]) -> int:
    """Total capture duration for a multi-segment session.

    The single source of truth for lead-in + dwells + tail: the fleet
    layer keys its capture cache on this value, so it must always agree
    with what :func:`run_session` actually simulates.
    """
    return (SCENARIO_START_NS
            + sum(dwell_ns for __, dwell_ns in segments)
            + SESSION_TAIL_NS)


def run_experiment(spec: ExperimentSpec, seed: int = 0,
                   registry: Optional[DomainRegistry] = None,
                   mitm: bool = False,
                   dns_blocklist=None) -> ExperimentResult:
    """Execute one experiment cell and return its artifacts.

    ``mitm=True`` installs the testbed CA on the TV and routes every TLS
    session through a pinning-aware interception proxy; the result then
    carries a :class:`~repro.mitm.proxy.MitmProxy` full of plaintext for
    non-pinned hosts (the paper's future-work payload study).

    ``dns_blocklist`` (anything with ``is_listed(name)``) sinkholes
    listed names at the AP resolver — the Pi-hole/Blokada intervention
    whose effectiveness the blocklist evaluation measures.
    """
    return _run_workflow(
        spec, seed, spec.label,
        [(SCENARIO_START_NS, build_source(spec, seed))],
        registry=registry, mitm=mitm, dns_blocklist=dns_blocklist)


def run_session(vendor: Vendor, country, phase, segments: Sequence[Segment],
                seed: int = 0, label: Optional[str] = None,
                registry: Optional[DomainRegistry] = None,
                mitm: bool = False,
                dns_blocklist=None) -> ExperimentResult:
    """Drive a multi-segment viewing session through one capture.

    ``segments`` is a sequence of ``(Scenario, dwell_ns)`` pairs; the
    remote switches the input source at each segment boundary, so a
    single household session composes several of the paper's scenarios
    (idle → linear → OTT → ...).  The capture runs from power-on through
    every segment plus a short tail, and — like single-cell experiments
    — is a pure function of ``(vendor, country, phase, segments, seed)``.

    ``label`` names the session's RNG universe (the fleet layer passes
    the household label); it defaults to a name derived from the segment
    scenarios so distinct diaries never share random streams.
    """
    segments = list(segments)
    if not segments:
        raise ValueError("session needs at least one segment")
    for __, dwell_ns in segments:
        if dwell_ns <= 0:
            raise ValueError("segment dwell must be positive")
    duration_ns = session_duration_ns(segments)
    spec = ExperimentSpec(vendor, country, segments[0][0], phase,
                          duration_ns)
    rng_label = label or (
        f"{vendor.value}-{country.value}-"
        + "+".join(scenario.value for scenario, __ in segments)
        + f"-{phase.value}")
    plan: List[Tuple[int, InputSource]] = []
    at_ns = SCENARIO_START_NS
    for scenario, dwell_ns in segments:
        segment_spec = ExperimentSpec(vendor, country, scenario, phase,
                                      duration_ns)
        plan.append((at_ns, build_source(segment_spec, seed)))
        at_ns += dwell_ns
    return _run_workflow(spec, seed, rng_label, plan, registry=registry,
                         mitm=mitm, dns_blocklist=dns_blocklist)


def _run_workflow(spec: ExperimentSpec, seed: int, rng_label: str,
                  source_plan: Sequence[Tuple[int, InputSource]],
                  registry: Optional[DomainRegistry] = None,
                  mitm: bool = False,
                  dns_blocklist=None) -> ExperimentResult:
    """The §3.2 workflow over an arbitrary source schedule."""
    rng = RngRegistry(seed).fork(rng_label)
    loop = EventLoop()
    registry = registry or DomainRegistry()
    zone = Zone(registry)
    ap = AccessPoint(spec.country.vantage, zone, rng)
    ap.register_servers(registry.ipspace.all_servers())
    if dns_blocklist is not None:
        from ..dnsinfra.resolver import FilteringResolver
        ap.resolver = FilteringResolver(ap.resolver, dns_blocklist)
    stack = HostStack(
        mac=_tv_mac(spec, seed),
        ip=ap.tv_ip,
        gateway_mac=ap.mac,
        latency=ap.latency,
        rng=rng,
        capture=ap.capture,
    )
    backend = assets.fresh_backend(spec.vendor.value, spec.country.value)
    tv_class = vendor_profile_of(spec.vendor).device_class
    tv: SmartTV = tv_class(
        country=spec.country.value,
        loop=loop,
        rng=rng,
        stack=stack,
        resolver=ap.resolver,
        resolver_ip=ap.lan_ip,
        registry=registry,
        backend=backend,
        seed=seed,
    )
    # Phase configuration happens before power-on: the paper re-runs the
    # whole workflow per phase with the TV already in that state.
    if spec.phase.logged_in:
        tv.settings.login()
        tv.identifiers.link_account(seed)
    if not spec.phase.opted_in:
        tv.settings.opt_out_all()

    proxy = None
    if mitm:
        from ..mitm import MitmProxy, TESTBED_CA, TrustStore
        trust_store = TrustStore(spec.vendor.value)
        trust_store.install_root(TESTBED_CA)
        proxy = MitmProxy(trust_store)
        tv.mitm_proxy = proxy

    plug = SmartPlug(loop, tv)
    remote = RemoteControl(loop, tv)

    ap.start_capture()
    plug.power_on_at(POWER_ON_AT_NS)
    for at_ns, source in source_plan:
        remote.select_source_at(at_ns, source)
    plug.power_off_at(spec.duration_ns - seconds(1))
    loop.run_until(spec.duration_ns)
    packets: List[CapturedPacket] = ap.stop_capture()

    return ExperimentResult(
        spec=spec,
        seed=seed,
        pcap_bytes=ap.to_pcap_bytes(),
        packet_count=len(packets),
        tv_mac=str(stack.mac),
        tv_ip=str(stack.ip),
        device_id=tv.identifiers.acr_device_id,
        backend=backend,
        registry=registry,
        zone=zone,
        action_log=list(remote.action_log),
        power_log=list(plug.transitions),
        acr_stats=tv.acr_client.stats,
        mitm_proxy=proxy,
    )


def _tv_mac(spec: ExperimentSpec, seed: int):
    # Stable across processes (unlike hash(), which PYTHONHASHSEED
    # randomizes) so cached captures are byte-identical to fresh runs.
    import hashlib

    from ..net.addresses import mac_from_seed
    digest = hashlib.sha256(
        f"{spec.vendor.value}:{seed}".encode()).digest()
    return mac_from_seed(int.from_bytes(digest[:3], "big")
                         | 0x020000000000)
