"""The Mon(IoT)r-style capture access point.

One AP per TV: it is the TV's Wi-Fi gateway and DNS resolver, and it taps
every frame the TV sends or receives.  At the end of an experiment the tap
is serialized to a real pcap file, which is all the analysis pipeline gets —
exactly the paper's black-box vantage.
"""

from __future__ import annotations

import zlib
from typing import List, Optional

from ..dnsinfra.resolver import RecursiveResolver
from ..dnsinfra.zones import Zone
from ..net.addresses import Ipv4Address, MacAddress, mac_from_seed
from ..net.link import LatencyModel
from ..net.packet import CapturedPacket
from ..net.pcap import dump_bytes, save_file
from ..sim.rng import RngRegistry

AP_LAN_IP = "192.168.1.1"
TV_LAN_IP = "192.168.1.50"


class AccessPoint:
    """Gateway + resolver + packet tap for one testbed."""

    def __init__(self, vantage: str, zone: Zone, rng: RngRegistry) -> None:
        self.vantage = vantage
        self.lan_ip = Ipv4Address.parse(AP_LAN_IP)
        self.tv_ip = Ipv4Address.parse(TV_LAN_IP)
        # crc32, not hash(): PYTHONHASHSEED randomizes str hashing per
        # process, and captures must be byte-identical across processes
        # for the grid result cache.
        self.mac: MacAddress = mac_from_seed(
            0xAABB00 + zlib.crc32(vantage.encode()) % 255)
        self.resolver = RecursiveResolver(zone)
        self.latency = LatencyModel(vantage, rng)
        self.latency.register_server(
            self.lan_ip, "london" if vantage == "uk" else "us_west")
        self._tap: List[CapturedPacket] = []
        self.capturing = False

    # -- capture control ----------------------------------------------------

    def start_capture(self) -> None:
        self._tap.clear()
        self.capturing = True

    def stop_capture(self) -> List[CapturedPacket]:
        self.capturing = False
        return self.packets

    def capture(self, packet: CapturedPacket) -> None:
        """The tap callback handed to the TV's host stack."""
        if self.capturing:
            self._tap.append(packet)

    @property
    def packets(self) -> List[CapturedPacket]:
        """Tap contents in capture-time order."""
        return sorted(self._tap, key=lambda p: p.timestamp)

    @property
    def packet_count(self) -> int:
        return len(self._tap)

    # -- serialization ----------------------------------------------------------

    def to_pcap_bytes(self) -> bytes:
        return dump_bytes(self.packets)

    def save_pcap(self, path: str) -> int:
        return save_file(path, self.packets)

    def register_servers(self, servers) -> None:
        """Teach the latency model where every ground-truth server is."""
        for record in servers:
            self.latency.register_server(record.address,
                                         record.city.region_key)

    def __repr__(self) -> str:
        state = "capturing" if self.capturing else "idle"
        return (f"AccessPoint({self.vantage}, {state}, "
                f"{self.packet_count} packets)")
