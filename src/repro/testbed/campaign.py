"""Campaign orchestration: run experiment matrices with a disk-backed cache.

One-hour captures are deterministic in (spec, seed), so a campaign memoizes
each cell as a pcap plus a small metadata record.  Benches and the
per-figure experiment drivers all pull from the same cache, which is how a
full 6x4x2x2 matrix stays tractable.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Callable, Dict, List, Optional

from ..util import atomic_write_bytes, atomic_write_text
from .experiment import ExperimentSpec, full_matrix
from .runner import ExperimentResult, run_experiment
from .validation import validate


def cell_key(label: str, seed: int, duration_ns: int) -> str:
    """The canonical ``label-seed-duration`` cell key.

    Every cache layer (the campaign's in-memory/artifact memo and the
    grid's content-addressed :class:`~repro.experiments.grid.ResultCache`)
    identifies a finished capture by this one string, so the layers can
    never disagree about what "the same cell" means.
    """
    return f"{label}-s{seed}-d{duration_ns}"


class CampaignRunner:
    """Runs and memoizes experiment cells."""

    def __init__(self, seed: int = 0, artifact_dir: Optional[str] = None,
                 validate_results: bool = True) -> None:
        self.seed = seed
        self.artifact_dir = artifact_dir
        self.validate_results = validate_results
        self._memory: Dict[str, ExperimentResult] = {}
        self.runs = 0
        self.cache_hits = 0
        if artifact_dir:
            os.makedirs(artifact_dir, exist_ok=True)

    # -- cache keys -------------------------------------------------------------

    def _key(self, spec: ExperimentSpec) -> str:
        return cell_key(spec.label, self.seed, spec.duration_ns)

    def _pcap_path(self, spec: ExperimentSpec) -> Optional[str]:
        if not self.artifact_dir:
            return None
        return os.path.join(self.artifact_dir, self._key(spec) + ".pcap")

    # -- execution ----------------------------------------------------------------

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Run (or recall) one experiment."""
        key = self._key(spec)
        cached = self._memory.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        result = run_experiment(spec, seed=self.seed)
        self.runs += 1
        if self.validate_results:
            report = validate(result)
            if not report.ok:
                raise RuntimeError(
                    f"experiment {spec.label} failed validation: "
                    f"{report.failures}")
        path = self._pcap_path(spec)
        if path:
            # Atomic (write-then-rename, matching ResultCache.store): a
            # crashed run never leaves a readable partial capture.
            atomic_write_bytes(path, result.pcap_bytes)
            self._write_metadata(spec, result)
        self._memory[key] = result
        return result

    def run_all(self, specs: List[ExperimentSpec],
                progress: Optional[Callable[[ExperimentSpec], None]] = None
                ) -> List[ExperimentResult]:
        results = []
        for spec in specs:
            if progress:
                progress(spec)
            results.append(self.run(spec))
        return results

    def run_full_matrix(self, duration_ns: Optional[int] = None
                        ) -> List[ExperimentResult]:
        specs = full_matrix(duration_ns) if duration_ns else full_matrix()
        return self.run_all(specs)

    def _write_metadata(self, spec: ExperimentSpec,
                        result: ExperimentResult) -> None:
        path = os.path.join(self.artifact_dir, self._key(spec) + ".json")
        metadata = {
            "label": spec.label,
            "seed": self.seed,
            "duration_ns": spec.duration_ns,
            "packets": result.packet_count,
            "tv_mac": result.tv_mac,
            "tv_ip": result.tv_ip,
            "device_id": result.device_id,
            "actions": [[t, a] for t, a in result.action_log],
        }
        atomic_write_text(path, json.dumps(metadata, indent=2))

    def evict(self, spec: ExperimentSpec) -> None:
        """Drop one cell from the in-memory cache (pcap on disk remains)."""
        self._memory.pop(self._key(spec), None)

    def __repr__(self) -> str:
        return (f"CampaignRunner(seed={self.seed}, runs={self.runs}, "
                f"hits={self.cache_hits}, cached={len(self._memory)})")


def default_artifact_dir() -> str:
    """A workspace-local artifact directory."""
    return os.path.join(tempfile.gettempdir(), "repro-acr-artifacts")
