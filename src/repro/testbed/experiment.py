"""Experiment vocabulary: scenarios, phases, countries, vendors, specs.

One :class:`ExperimentSpec` names a single one-hour capture; the paper's
own matrix is 6 scenarios x 4 phases x 2 vendors x 2 countries, and every
vendor registered in :mod:`repro.tv.vendors` widens the vendor axis (the
extension vendors make the full grid 4-wide).
"""

from __future__ import annotations

from enum import Enum
from typing import List, Tuple

from ..sim.clock import hours, seconds
from ..tv import vendors as vendor_registry

#: The vendor axis, generated from the plugin registry in registration
#: order (paper pair first) — registering a fifth vendor extends the grid
#: without touching this module.
Vendor = Enum("Vendor", [(name.upper(), name)
                         for name in vendor_registry.vendor_names()],
              module=__name__, qualname="Vendor")
Vendor.__doc__ = "One registered TV vendor (see repro.tv.vendors)."


def paper_vendors() -> List["Vendor"]:
    """The vendors the source paper audited, for the scorecard/tables."""
    return [Vendor(name) for name in vendor_registry.paper_vendor_names()]


def vendor_profile_of(vendor: "Vendor"):
    """The registered profile behind one enum member."""
    return vendor_registry.get(vendor.value)


class Country(Enum):
    UK = "uk"
    US = "us"

    @property
    def vantage(self) -> str:
        """Region key for the latency model / traceroute vantage."""
        return "uk" if self is Country.UK else "us_west"


class Scenario(Enum):
    """The six experimental scenarios (§3.2)."""

    IDLE = "idle"
    LINEAR = "linear"
    FAST = "fast"
    OTT = "ott"
    HDMI = "hdmi"
    SCREEN_CAST = "screen_cast"


class Phase(Enum):
    """The four privacy-configuration phases (§3.2, Figure 3)."""

    LIN_OIN = "LIn-OIn"       # logged in,  opted in
    LOUT_OIN = "LOut-OIn"     # logged out, opted in
    LIN_OOUT = "LIn-OOut"     # logged in,  opted out
    LOUT_OOUT = "LOut-OOut"   # logged out, opted out

    @property
    def logged_in(self) -> bool:
        return self in (Phase.LIN_OIN, Phase.LIN_OOUT)

    @property
    def opted_in(self) -> bool:
        return self in (Phase.LIN_OIN, Phase.LOUT_OIN)


DEFAULT_DURATION_NS = hours(1)
POWER_ON_AT_NS = seconds(2)
SCENARIO_START_NS = seconds(30)


class ExperimentSpec:
    """One experiment cell in the paper's matrix."""

    __slots__ = ("vendor", "country", "scenario", "phase", "duration_ns")

    def __init__(self, vendor: Vendor, country: Country,
                 scenario: Scenario, phase: Phase,
                 duration_ns: int = DEFAULT_DURATION_NS) -> None:
        if duration_ns <= SCENARIO_START_NS:
            raise ValueError("experiment too short for the workflow")
        self.vendor = vendor
        self.country = country
        self.scenario = scenario
        self.phase = phase
        self.duration_ns = duration_ns

    @property
    def label(self) -> str:
        return (f"{self.vendor.value}-{self.country.value}-"
                f"{self.scenario.value}-{self.phase.value}")

    def __repr__(self) -> str:
        return f"ExperimentSpec({self.label})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ExperimentSpec)
                and other.label == self.label
                and other.duration_ns == self.duration_ns)

    def __hash__(self) -> int:
        return hash((self.label, self.duration_ns))


def full_matrix(duration_ns: int = DEFAULT_DURATION_NS
                ) -> List[ExperimentSpec]:
    """Every cell of the design: scenarios x phases x countries x every
    registered vendor (the paper's 6x4x2x2 grid, widened per plugin)."""
    specs: List[ExperimentSpec] = []
    for vendor in Vendor:
        for country in Country:
            for scenario in Scenario:
                for phase in Phase:
                    specs.append(ExperimentSpec(
                        vendor, country, scenario, phase, duration_ns))
    return specs


def scenario_sweep(vendor: Vendor, country: Country, phase: Phase,
                   duration_ns: int = DEFAULT_DURATION_NS
                   ) -> List[ExperimentSpec]:
    """All six scenarios for one vendor/country/phase (one table row set)."""
    return [ExperimentSpec(vendor, country, scenario, phase, duration_ns)
            for scenario in Scenario]


def phase_pair(vendor: Vendor, country: Country, scenario: Scenario,
               phases: Tuple[Phase, Phase],
               duration_ns: int = DEFAULT_DURATION_NS
               ) -> List[ExperimentSpec]:
    """Two phases of the same cell, for differential comparisons."""
    return [ExperimentSpec(vendor, country, scenario, phase, duration_ns)
            for phase in phases]
