"""Experiment orchestration: the capture access point, experiment
vocabulary, the single-experiment runner, validation scripts, and
campaign-level caching."""

from .access_point import AccessPoint
from .assets import (fast_channel, fresh_backend, linear_channel,
                     media_library, ott_playlist, reference_library,
                     ui_item)
from .campaign import CampaignRunner, default_artifact_dir
from .experiment import (Country, DEFAULT_DURATION_NS, ExperimentSpec,
                         Phase, POWER_ON_AT_NS, Scenario,
                         SCENARIO_START_NS, Vendor, full_matrix,
                         paper_vendors, phase_pair, scenario_sweep,
                         vendor_profile_of)
from .runner import (ExperimentResult, build_source, run_experiment,
                     run_session)
from .validation import ValidationReport, validate, validate_session

__all__ = [
    "AccessPoint",
    "CampaignRunner",
    "Country",
    "DEFAULT_DURATION_NS",
    "ExperimentResult",
    "ExperimentSpec",
    "POWER_ON_AT_NS",
    "Phase",
    "SCENARIO_START_NS",
    "Scenario",
    "ValidationReport",
    "Vendor",
    "build_source",
    "default_artifact_dir",
    "fast_channel",
    "fresh_backend",
    "full_matrix",
    "linear_channel",
    "media_library",
    "ott_playlist",
    "paper_vendors",
    "phase_pair",
    "vendor_profile_of",
    "reference_library",
    "run_experiment",
    "run_session",
    "scenario_sweep",
    "ui_item",
    "validate",
    "validate_session",
]
