"""Validation scripts: did the experiment actually do what it claims?

The paper's methodology includes scripts "verifying the correct execution
of the experiments"; these are the equivalents, run over an
:class:`~repro.testbed.runner.ExperimentResult`.
"""

from __future__ import annotations

from typing import List

from ..net.pcap import load_bytes
from ..sim.clock import seconds
from .experiment import Phase, POWER_ON_AT_NS, Scenario
from .runner import ExperimentResult


class ValidationReport:
    """Outcome of all validation checks for one experiment."""

    __slots__ = ("label", "checks", "failures")

    def __init__(self, label: str) -> None:
        self.label = label
        self.checks: List[str] = []
        self.failures: List[str] = []

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(name)
        if not passed:
            self.failures.append(f"{name}: {detail}" if detail else name)

    @property
    def ok(self) -> bool:
        return not self.failures

    def __repr__(self) -> str:
        state = "OK" if self.ok else f"FAILED ({len(self.failures)})"
        return f"ValidationReport({self.label}, {state})"


_EXPECTED_SOURCE = {
    Scenario.IDLE: "home", Scenario.LINEAR: "tuner",
    Scenario.FAST: "fast", Scenario.OTT: "ott",
    Scenario.HDMI: "hdmi", Scenario.SCREEN_CAST: "cast",
}


def _workflow_checks(report: ValidationReport,
                     result: ExperimentResult) -> None:
    """The scenario-independent checks shared by cells and sessions."""
    report.record("capture-nonempty", result.packet_count > 0,
                  "no packets captured")

    packets = load_bytes(result.pcap_bytes)
    report.record("pcap-roundtrip", len(packets) == result.packet_count,
                  f"pcap has {len(packets)} of {result.packet_count}")

    timestamps = [p.timestamp for p in packets]
    report.record("timestamps-sorted", timestamps == sorted(timestamps))

    report.record(
        "powered-on-then-off",
        [kind for __, kind in result.power_log] == ["on", "off"],
        f"power log: {result.power_log}")

    # Boot burst: traffic within 10 s of power-on (§3.2: most DNS happens
    # in the first few seconds) — except when fully opted out AND idle,
    # where only gated-but-allowed services speak.
    early = [t for t in timestamps
             if t <= POWER_ON_AT_NS + seconds(10)]
    report.record("boot-burst", len(early) > 0,
                  "no traffic within 10s of power-on")


def _optout_check(report: ValidationReport, result: ExperimentResult,
                  single_scenario: bool = True) -> None:
    if result.spec.phase not in (Phase.LIN_OOUT, Phase.LOUT_OOUT):
        return
    from ..acr.policy import CaptureDecision, capture_decision
    from ..media.sources import SourceType
    from ..tv import vendors
    profile = vendors.get(result.spec.vendor.value)
    stats = result.acr_stats
    if profile.contract.optout == vendors.OPTOUT_SILENCE:
        report.record("opted-out-client-silent",
                      stats.full_batches == 0 and stats.beacons == 0,
                      f"acr stats: {stats}")
        return
    # Downsample-on-opt-out vendors must keep uploading at a reduced
    # rate (no beacons, no bursts) — full silence would be a bug.
    passed = (stats.beacons == 0 and stats.burst_uploads == 0
              and stats.disabled_slots > 0)
    if single_scenario:
        # For a single-scenario cell we can also demand the uploads
        # actually happened: required whenever the scenario's capture
        # decision is FULL and the capture spans at least one
        # downsampled slot.  (Diary sessions mix scenarios, so only the
        # weaker shape check applies there.)
        acr = profile.acr_profiles[result.spec.country.value]
        decision = capture_decision(
            profile.name, result.spec.country.value,
            SourceType(_EXPECTED_SOURCE[result.spec.scenario]))
        slots = result.spec.duration_ns // acr.batch_interval_ns
        if decision is CaptureDecision.FULL and \
                slots > acr.optout_downsample_every:
            passed = passed and stats.downsampled_batches > 0
    report.record("opted-out-client-downsampled", passed,
                  f"acr stats: {stats}")


def _scenario_actions(result: ExperimentResult) -> List[str]:
    return [label for __, label in result.action_log
            if label.startswith("select-source")]


def validate(result: ExperimentResult) -> ValidationReport:
    """Run every check against one experiment result."""
    report = ValidationReport(result.spec.label)
    _workflow_checks(report, result)

    scenario_actions = _scenario_actions(result)
    report.record("scenario-triggered", len(scenario_actions) == 1,
                  f"actions: {result.action_log}")

    expected_source = _EXPECTED_SOURCE[result.spec.scenario]
    report.record(
        "correct-source", scenario_actions == [
            f"select-source:{expected_source}"],
        f"got {scenario_actions}")

    _optout_check(report, result)
    return report


def validate_session(result: ExperimentResult,
                     scenarios: List[Scenario]) -> ValidationReport:
    """Validate a multi-segment (diary) session capture.

    Same workflow checks as :func:`validate`, but the remote is expected
    to have triggered one source switch per segment, in diary order.
    """
    report = ValidationReport(result.spec.label)
    _workflow_checks(report, result)

    expected = [f"select-source:{_EXPECTED_SOURCE[scenario]}"
                for scenario in scenarios]
    report.record("segments-triggered",
                  _scenario_actions(result) == expected,
                  f"got {_scenario_actions(result)}, want {expected}")

    _optout_check(report, result, single_scenario=False)
    return report
