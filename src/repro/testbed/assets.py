"""Shared, cached testbed assets.

Building a reference fingerprint database over a full media library is the
expensive part of standing up an operator backend; it depends only on
(country, seed), so experiments share it.  Channels are cached with it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from ..acr.library import ReferenceLibrary
from ..acr.server import AcrBackend
from ..media.content import ContentItem, launcher_item
from ..media.library import MediaLibrary, standard_library
from ..media.schedule import Channel, build_channel


@lru_cache(maxsize=8)
def media_library(country: str, seed: int = 0) -> MediaLibrary:
    """The (cached) content catalog for one country."""
    return standard_library(country, seed)


@lru_cache(maxsize=8)
def reference_library(country: str, seed: int = 0) -> ReferenceLibrary:
    """The (cached) operator fingerprint database for one country.

    Broadcast inventory (shows, ads) is fingerprinted in full since the
    operator ingests the feeds it has agreements over; live feeds keep a
    rolling prefix; the long-tail on-demand catalog keeps a short prefix
    (it is never fingerprinted by the client anyway — OTT is restricted).
    """
    library = media_library(country, seed)
    reference = ReferenceLibrary()
    reference.ingest_all(library.shows)
    reference.ingest_all(library.ads)
    reference.ingest_all(library.live_feeds, max_seconds=900)
    reference.ingest_all(library.movies, max_seconds=240)
    reference.ingest_all(library.episodes, max_seconds=240)
    return reference


@lru_cache(maxsize=16)
def linear_channel(country: str, seed: int = 0) -> Channel:
    return build_channel(f"{country}-linear-1",
                         media_library(country, seed), kind="linear")


@lru_cache(maxsize=16)
def fast_channel(country: str, seed: int = 0) -> Channel:
    return build_channel(f"{country}-fast-1",
                         media_library(country, seed), kind="fast",
                         offset=6)


@lru_cache(maxsize=4)
def ui_item() -> ContentItem:
    """The launcher 'content' shown in the Idle scenario."""
    return launcher_item()


def fresh_backend(vendor: str, country: str, seed: int = 0) -> AcrBackend:
    """A new operator backend over the shared reference library."""
    from ..tv import vendors
    operator = vendors.get(vendor).operator
    return AcrBackend(operator, reference_library(country, seed))


def ott_playlist(country: str, seed: int = 0) -> List[ContentItem]:
    """What the OTT scenario streams (a couple of movies)."""
    library = media_library(country, seed)
    return [library.movies[0], library.movies[1]]
