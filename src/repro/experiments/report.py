"""Generate the EXPERIMENTS.md paper-vs-measured report.

Run as a module to regenerate the file from live simulations::

    python -m repro.experiments.report > EXPERIMENTS.md

Every section reads cells through the shared
:class:`~repro.experiments.grid.GridResults` cache;
``generate(jobs=N)`` (or ``python -m repro.cli report --jobs N``)
prefetches the full set on a process pool first, and a warm on-disk
cache makes regeneration incremental.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import analyze_periodicity, median_step_interval_s
from ..analysis.compare import acr_volume_total
from ..reporting import render_markdown
from ..testbed.experiment import (Country, ExperimentSpec, Phase, Scenario,
                                  Vendor, paper_vendors, vendor_profile_of)
from . import cache
from .fig_cdf import transmitted_curve
from .fig_timelines import SCENARIO_LABELS, build_figure
from .findings import run_all_checks
from .findings import required_specs as scorecard_specs
from .geolocation import run_geo_experiment
from .grid import enumerate_cells
from .tables_volumes import (SCENARIO_NAMES, build_table, comparison_rows)

_PAPER_TABLE_TITLES = {
    ("uk", Phase.LIN_OIN): "Table 2 — UK, LIn-OIn",
    ("uk", Phase.LOUT_OIN): "Table 3 — UK, LOut-OIn",
    ("us", Phase.LIN_OIN): "Table 4 — US, LIn-OIn",
    ("us", Phase.LOUT_OIN): "Table 5 — US, LOut-OIn",
}


def volume_tables_section(seed: int) -> List[str]:
    lines: List[str] = ["## Tables 2-5: KB to/from ACR domains", ""]
    for (country_key, phase), title in _PAPER_TABLE_TITLES.items():
        country = Country.UK if country_key == "uk" else Country.US
        table = build_table(country, phase, seed)
        rows = comparison_rows(table, country, phase)
        lines.append(f"### {title}")
        lines.append("")
        lines.append(render_markdown(
            ["Domain", "Scenario", "Paper KB", "Measured KB"], rows))
        lines.append("")
    return lines


def timeline_section(seed: int) -> List[str]:
    lines = ["## Figures 4/6/8-11: traffic timelines", ""]
    for figure_name, country, phase in (
            ("Figure 4 (also Figure 8)", Country.UK, Phase.LIN_OIN),
            ("Figure 9", Country.UK, Phase.LOUT_OIN),
            ("Figure 6 (also Figure 10)", Country.US, Phase.LIN_OIN),
            ("Figure 11", Country.US, Phase.LOUT_OIN)):
        rows = []
        for vendor in paper_vendors():
            panel = build_figure(vendor, country, phase, seed)
            for scenario in Scenario:
                timeline = panel.timelines[scenario]
                rows.append([vendor.value, SCENARIO_LABELS[scenario],
                             str(timeline.total_packets),
                             str(timeline.peak)])
        lines.append(f"### {figure_name} — {country.value.upper()} "
                     f"{phase.value}")
        lines.append("")
        lines.append(render_markdown(
            ["Vendor", "Scenario", "packets in 10 min window",
             "peak pkts/ms"], rows))
        lines.append("")
    return lines


def cdf_section(seed: int) -> List[str]:
    lines = ["## Figures 5/7: CDF cadences", "",
             "Median interval between transmission steps on the "
             "fingerprint channel (paper: LG every 15 s, Samsung every "
             "minute):", ""]
    rows = []
    for country in Country:
        lg_curve = transmitted_curve(ExperimentSpec(
            Vendor.LG, country, Scenario.LINEAR, Phase.LIN_OIN), seed)
        fp_domain = ("acr-eu-prd.samsungcloud.tv" if country is Country.UK
                     else "acr-us-prd.samsungcloud.tv")
        samsung_curve = transmitted_curve(
            ExperimentSpec(Vendor.SAMSUNG, country, Scenario.LINEAR,
                           Phase.LIN_OIN), seed, domains=[fp_domain])
        rows.append([country.value.upper(),
                     f"{median_step_interval_s(lg_curve):.1f} s",
                     f"{median_step_interval_s(samsung_curve):.1f} s"])
    lines.append(render_markdown(
        ["Country", "LG step (paper ~15 s)", "Samsung step (paper ~60 s)"],
        rows))
    lines.append("")
    return lines


def geolocation_section(seed: int) -> List[str]:
    lines = ["## §4.1/§4.3: geolocation", ""]
    paper_cities = {
        "eu-acr": "Amsterdam", "tkacr": "US",
        "acr-eu-prd.samsungcloud.tv": "London",
        "acr-us-prd.samsungcloud.tv": "US",
        "acr0.samsungcloudsolution.com": "Amsterdam",
        "log-config.samsungacr.com": "New York",
        "log-ingestion-eu.samsungacr.com": "London",
        "log-ingestion.samsungacr.com": "US",
    }
    for country in Country:
        experiment = run_geo_experiment(country, seed)
        rows = []
        for domain in experiment.domains:
            expected = next((city for prefix, city in paper_cities.items()
                             if domain.startswith(prefix)
                             or domain == prefix), "?")
            rows.append([domain, expected, experiment.city_of(domain),
                         "yes" if experiment.dpf_ok[domain] else "no"])
        lines.append(f"### {country.value.upper()} vantage")
        lines.append("")
        lines.append(render_markdown(
            ["Domain", "Paper location", "Measured location",
             "DPF listed"], rows))
        lines.append("")
    return lines


def scorecard_section(seed: int, vendors=None) -> List[str]:
    checks = run_all_checks(seed, vendors=vendors)
    # The paper-pair slice keeps its historical heading (and bytes);
    # extension findings widen it.
    extended = any(check.finding_id.startswith("X") for check in checks)
    title = ("## Findings scorecard (S1-S12 + vendor extensions)"
             if extended else "## Findings scorecard (S1-S12)")
    lines = [title, ""]
    rows = []
    for check in checks:
        rows.append([check.finding_id,
                     "PASS" if check.passed else "FAIL",
                     check.description,
                     check.evidence_text().replace("|", "/")])
    lines.append(render_markdown(
        ["Id", "Result", "Paper finding", "Measured evidence"], rows))
    lines.append("")
    return lines


def _extension_vendors(vendors=None) -> List[Vendor]:
    """The selected non-paper vendors, in registration order."""
    chosen = (set(vendors) if vendors is not None
              else {member.value for member in Vendor})
    paper = {vendor.value for vendor in paper_vendors()}
    return [member for member in Vendor
            if member.value in chosen - paper]


def extension_section(seed: int, vendors=None) -> List[str]:
    """Measured behaviour of the extension vendors, per country.

    These vendors have no paper reference columns; the table reports the
    registry-declared contract next to what the analysis pipeline
    actually measured on the Linear cell of each phase class.
    """
    extensions = _extension_vendors(vendors)
    if not extensions:
        return []
    lines = ["## Vendor extensions: registry contract vs measured", ""]
    for vendor in extensions:
        profile = vendor_profile_of(vendor)
        contract = profile.contract
        declared_cadence = ("bursty (content-gated)" if contract.bursty
                            else f"{contract.cadence_s:.0f} s")
        lines.append(f"### {profile.display_name} — declared: cadence "
                     f"{declared_cadence}, opt-out {contract.optout}")
        lines.append("")
        rows = []
        for country in Country:
            for phase in (Phase.LIN_OIN, Phase.LIN_OOUT):
                pipeline = cache.grid(seed).pipeline(ExperimentSpec(
                    vendor, country, Scenario.LINEAR, phase))
                domains = pipeline.acr_candidate_domains()
                volume = acr_volume_total(pipeline)
                cadence = "-"
                if domains:
                    report = analyze_periodicity(
                        domains[0], pipeline.packets_for(domains[0]))
                    if report.period_s is not None:
                        cadence = f"{report.period_s:.1f} s"
                rows.append([
                    country.value.upper(), phase.value,
                    profile.expected_activity(country.value, phase),
                    str(len(domains)), f"{volume:.1f}", cadence])
        lines.append(render_markdown(
            ["Country", "Phase", "Declared activity", "ACR domains",
             "KB", "Measured cadence"], rows))
        lines.append("")
    return lines


def cadence_section(seed: int) -> List[str]:
    lines = ["## §4.1 cadence findings", ""]
    lg = cache.grid(seed).pipeline(ExperimentSpec(
        Vendor.LG, Country.UK, Scenario.LINEAR, Phase.LIN_OIN))
    lg_domain = lg.acr_candidate_domains()[0]
    lg_report = analyze_periodicity(lg_domain, lg.packets_for(lg_domain))
    samsung = cache.grid(seed).pipeline(ExperimentSpec(
        Vendor.SAMSUNG, Country.UK, Scenario.LINEAR, Phase.LIN_OIN))
    samsung_report = analyze_periodicity(
        "acr-eu-prd.samsungcloud.tv",
        samsung.packets_for("acr-eu-prd.samsungcloud.tv"))
    rows = [
        ["LG batching", "10 ms captures batched every 15 s",
         f"period {lg_report.period_s:.1f} s, CV {lg_report.cv:.2f}"],
        ["Samsung batching", "500 ms captures batched every minute",
         f"period {samsung_report.period_s:.1f} s, "
         f"CV {samsung_report.cv:.2f}"],
    ]
    lines.append(render_markdown(["Finding", "Paper", "Measured"], rows))
    lines.append("")
    return lines


def required_specs(vendors=None) -> List[ExperimentSpec]:
    """Every cell the report reads (56 of the paper's 96-cell sub-matrix,
    plus the scorecard/extension cells of any selected extension vendor)."""
    specs = {}
    groups = [
        # Tables 2-5, Figures 4-11 and the CDFs: every scenario in
        # both opted-in phases — paper vendors only.
        enumerate_cells({"vendor": set(paper_vendors()),
                         "phase": {Phase.LIN_OIN, Phase.LOUT_OIN}}),
        # The embedded scorecard additionally reads opt-out cells (and
        # the extension checks' cells when their vendors are selected).
        scorecard_specs(vendors),
    ]
    for vendor in _extension_vendors(vendors):
        groups.append(enumerate_cells({
            "vendor": {vendor}, "scenario": {Scenario.LINEAR},
            "phase": {Phase.LIN_OIN, Phase.LIN_OOUT}}))
    for group in groups:
        for spec in group:
            specs.setdefault(spec.label, spec)
    return list(specs.values())


def generate(seed: int = cache.DEFAULT_SEED,
             jobs: Optional[int] = None, vendors=None) -> str:
    """The full EXPERIMENTS.md content.

    ``jobs > 1`` prefetches every cell through the grid runner first;
    the rendered report is identical to a serial run.  ``vendors``
    restricts the scorecard and extension sections — the paper sections
    always cover exactly the paper's pair, so
    ``generate(vendors=("samsung", "lg"))`` reproduces the pre-registry
    report byte for byte.
    """
    if jobs and jobs > 1:
        cache.grid(seed).ensure(required_specs(vendors), jobs=jobs)
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Every table and figure of the paper's evaluation, regenerated on "
        "the simulated testbed (seed "
        f"{seed}, one simulated hour per cell).  Absolute numbers are "
        "calibrated; the *shape* — who wins, by what factor, where the "
        "crossovers fall — is asserted by `tests/test_experiments.py` and "
        "the benches in `benchmarks/`.",
        "",
        "Regenerate with: `python -m repro.experiments.report > "
        "EXPERIMENTS.md`",
        "",
        "Known deviations (documented, not hidden):",
        "",
        "- `acr0.samsungcloudsolution.com` shows ~10 KB in Idle/Antenna "
        "where paper Table 2 prints `-`; the paper's own Table 3 reports "
        "11.1 KB for the same cells, so our always-on keep-alive model "
        "sides with Table 3.",
        "- `log-ingestion-eu` in the UK FAST cell measures ~158 KB vs the "
        "paper's 125 KB (we model one telemetry tier; the paper's two "
        "phases disagree on this cell by 30% themselves).",
        "- LG Screen Cast in the US measures ~168 KB vs 240 KB (paper's "
        "two phases differ by 8%; our US beacon tier is calibrated to the "
        "Idle/OTT cells).",
        "- `acr0.samsungcloudsolution.com` Screen Cast: paper Table 2 "
        "says 11.7 KB and Table 3 says 24.3 KB for the same keep-alive; "
        "our model matches the Table 2 value (~10.9 KB) in both phases.",
        "",
    ]
    lines += scorecard_section(seed, vendors)
    lines += volume_tables_section(seed)
    lines += timeline_section(seed)
    lines += cdf_section(seed)
    lines += cadence_section(seed)
    lines += geolocation_section(seed)
    lines += extension_section(seed, vendors)
    return "\n".join(lines)


if __name__ == "__main__":
    print(generate())
