"""Shared campaign cache for the per-figure experiment drivers.

Every table and figure draws from the same 6x4x2x2 matrix, so drivers and
benchmarks share one :class:`~repro.testbed.campaign.CampaignRunner` and a
memoized :class:`~repro.analysis.pipeline.AuditPipeline` per cell.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.pipeline import AuditPipeline
from ..testbed.campaign import CampaignRunner
from ..testbed.experiment import ExperimentSpec
from ..testbed.runner import ExperimentResult

DEFAULT_SEED = 7

_campaign: Optional[CampaignRunner] = None
_pipelines: Dict[str, AuditPipeline] = {}


def campaign(seed: int = DEFAULT_SEED) -> CampaignRunner:
    """The process-wide campaign runner (created on first use)."""
    global _campaign
    if _campaign is None or _campaign.seed != seed:
        _campaign = CampaignRunner(seed=seed)
        _pipelines.clear()
    return _campaign


def result_for(spec: ExperimentSpec,
               seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Run (or recall) one cell."""
    return campaign(seed).run(spec)


def pipeline_for(spec: ExperimentSpec,
                 seed: int = DEFAULT_SEED) -> AuditPipeline:
    """The decoded audit pipeline for one cell, memoized."""
    key = f"{spec.label}-s{seed}-d{spec.duration_ns}"
    pipeline = _pipelines.get(key)
    if pipeline is None:
        pipeline = AuditPipeline.from_result(result_for(spec, seed))
        _pipelines[key] = pipeline
    return pipeline


def reset() -> None:
    """Drop all cached runs (tests use this for isolation)."""
    global _campaign
    _campaign = None
    _pipelines.clear()
