"""Process-wide :class:`~repro.experiments.grid.GridResults` facade.

Every table and figure draws from the same 6x4x2x2 matrix, so drivers,
tests and benchmarks share one grid-results object.  Cells are served
from memory, then from the content-addressed on-disk cache (see
:mod:`repro.experiments.grid`), and only then simulated — which is what
makes ``scorecard`` and ``report`` incremental across invocations.

The legacy helpers (:func:`result_for`, :func:`pipeline_for`,
:func:`campaign`) remain as thin wrappers so existing callers keep
working; new code should go through :func:`grid`.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.pipeline import AuditPipeline
from ..testbed.campaign import CampaignRunner
from ..testbed.experiment import ExperimentSpec
from ..testbed.runner import ExperimentResult
from .grid import DEFAULT_SEED, GridResults

_grid: Optional[GridResults] = None


def grid(seed: int = DEFAULT_SEED) -> GridResults:
    """The process-wide grid results (created on first use)."""
    global _grid
    if _grid is None or _grid.seed != seed:
        _grid = GridResults(seed=seed)
    return _grid


def campaign(seed: int = DEFAULT_SEED) -> CampaignRunner:
    """The grid's in-process campaign runner (full-result memo)."""
    return grid(seed).campaign


def result_for(spec: ExperimentSpec,
               seed: int = DEFAULT_SEED) -> ExperimentResult:
    """Run (or recall) one cell with its ground-truth handles."""
    return grid(seed).result(spec)


def pipeline_for(spec: ExperimentSpec,
                 seed: int = DEFAULT_SEED) -> AuditPipeline:
    """The decoded audit pipeline for one cell, memoized."""
    return grid(seed).pipeline(spec)


def reset() -> None:
    """Drop all cached runs (tests use this for isolation)."""
    global _grid
    _grid = None
