"""MITM payload audit — the paper's future-work experiment, executed.

Re-runs a cell with the interception proxy in path and asks the questions
the black-box study had to leave open:

* which ACR domains actually carry fingerprint batches vs telemetry?
* what identifier keys the tracking (the advertising ID conjecture)?
* how often was the client really capturing (LG's 10 ms claim)?
* which channels stay opaque behind certificate pinning?
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..mitm.inspect import DomainPayloadReport, PayloadInspector
from ..testbed.experiment import Country, ExperimentSpec, Phase, Scenario, Vendor
from ..testbed.runner import run_experiment
from . import cache


class MitmAuditResult:
    """Everything the payload audit learned for one cell."""

    __slots__ = ("spec", "reports", "opaque_domains", "identifiers",
                 "advertising_id", "fingerprint_domains",
                 "capture_cadence_ms")

    def __init__(self, spec: ExperimentSpec,
                 reports: Dict[str, DomainPayloadReport],
                 opaque_domains: List[str], identifiers: List[str],
                 advertising_id: str,
                 fingerprint_domains: List[str],
                 capture_cadence_ms: Optional[float]) -> None:
        self.spec = spec
        self.reports = reports
        self.opaque_domains = opaque_domains
        self.identifiers = identifiers
        self.advertising_id = advertising_id
        self.fingerprint_domains = fingerprint_domains
        self.capture_cadence_ms = capture_cadence_ms

    @property
    def advertising_id_observed(self) -> bool:
        """Does the advertising ID appear in decrypted ACR payloads?
        (§4.2's conjecture, confirmed at payload level.)"""
        return any(self.advertising_id.endswith(identifier)
                   or identifier in self.advertising_id
                   for identifier in self.identifiers)

    def __repr__(self) -> str:
        return (f"MitmAuditResult({self.spec.label}, "
                f"{len(self.reports)} domains decrypted, "
                f"{len(self.opaque_domains)} pinned)")


def run_mitm_audit(vendor: Vendor, country: Country = Country.UK,
                   scenario: Scenario = Scenario.LINEAR,
                   phase: Phase = Phase.LIN_OIN,
                   seed: int = cache.DEFAULT_SEED) -> MitmAuditResult:
    """Run one MITM-instrumented cell and inspect every payload."""
    spec = ExperimentSpec(vendor, country, scenario, phase)
    result = run_experiment(spec, seed=seed, mitm=True)
    proxy = result.mitm_proxy
    inspector = PayloadInspector(proxy)
    reports = inspector.inspect_all()
    cadences = [report.capture_cadence_ms
                for report in reports.values()
                if report.capture_cadence_ms is not None]
    # The device id carried by payloads is "<vendor>-<advertising uuid>".
    advertising_uuid = result.device_id.split("-", 1)[1]
    return MitmAuditResult(
        spec=spec,
        reports=reports,
        opaque_domains=proxy.opaque_domains,
        identifiers=inspector.device_identifiers(),
        advertising_id=advertising_uuid,
        fingerprint_domains=inspector.fingerprint_domains(),
        capture_cadence_ms=min(cadences) if cadences else None,
    )
