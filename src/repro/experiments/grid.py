"""Parallel experiment-grid runner with a content-addressed result cache.

The paper's evaluation (Tables 1-5, Figures 4-11, findings S1-S12) is one
big grid: ``Vendor x Country x Scenario x Phase``.  This module runs that
grid as a first-class object instead of one cell at a time:

* :func:`enumerate_cells` expands the matrix, optionally restricted by
  ``axis=value[,value...]`` filters (the CLI's ``--filter``).
* :class:`GridRunner` executes cells — serially or on a
  :class:`concurrent.futures.ProcessPoolExecutor` — and memoizes each
  finished cell in a :class:`ResultCache`.
* :class:`ResultCache` is a content-addressed on-disk store keyed by
  ``(spec, seed, code-version)``: captures survive across processes and
  are invalidated automatically whenever the simulator sources change.
* :class:`GridResults` is the single API the scorecard, report and the
  per-figure drivers consume cells through, so warm caches make
  ``scorecard``/``report`` incremental instead of recomputing everything.

Captures are deterministic in ``(spec, seed)``, so a parallel run is
byte-identical to a serial one — ``tests/test_grid.py`` asserts it.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import multiprocessing
import os
import time
import zlib
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple, Union)

from ..analysis.pipeline import AuditPipeline
from ..faults import NULL_PLAN, FaultPlan, produce_with_retries
from ..net.addresses import Ipv4Address
from ..obs.metrics import get_registry, metrics_enabled, scoped
from ..testbed.campaign import CampaignRunner, cell_key
from ..util import atomic_write_bytes
from ..testbed.experiment import (Country, DEFAULT_DURATION_NS,
                                  ExperimentSpec, Phase, Scenario, Vendor)
from ..testbed.runner import run_experiment
from ..testbed.validation import validate

DEFAULT_SEED = 7

FILTER_AXES = {
    "vendor": Vendor,
    "country": Country,
    "scenario": Scenario,
    "phase": Phase,
}

Filters = Mapping[str, Set]
ProgressFn = Callable[[ExperimentSpec, "CellRecord"], None]


class GridFilterError(ValueError):
    """A ``--filter`` expression names an unknown axis or value."""


class CacheReadError(RuntimeError):
    """A cached capture could not be read back (corrupt/missing pcap)."""


# -- cell enumeration ---------------------------------------------------------


def parse_filters(expressions: Optional[Iterable[str]]) -> Dict[str, Set]:
    """Parse ``axis=value[,value...]`` expressions into enum-value sets.

    Repeated expressions for the same axis union their values::

        parse_filters(["vendor=lg", "scenario=linear,hdmi"])
    """
    filters: Dict[str, Set] = {}
    for expression in expressions or ():
        if "=" not in expression:
            raise GridFilterError(
                f"bad filter {expression!r}: expected axis=value[,value]")
        axis, __, raw_values = expression.partition("=")
        axis = axis.strip().lower()
        enum_cls = FILTER_AXES.get(axis)
        if enum_cls is None:
            raise GridFilterError(
                f"unknown filter axis {axis!r} "
                f"(choose from {', '.join(sorted(FILTER_AXES))})")
        chosen = filters.setdefault(axis, set())
        for value in raw_values.split(","):
            value = value.strip()
            try:
                chosen.add(enum_cls(value))
            except ValueError:
                valid = ", ".join(member.value for member in enum_cls)
                raise GridFilterError(
                    f"unknown {axis} {value!r} (choose from {valid})") \
                    from None
    return filters


def enumerate_cells(filters: Union[Filters, Iterable[str], None] = None,
                    duration_ns: int = DEFAULT_DURATION_NS
                    ) -> List[ExperimentSpec]:
    """The (filtered) experiment grid, in deterministic matrix order."""
    if filters is not None and not isinstance(filters, Mapping):
        filters = parse_filters(filters)
    filters = filters or {}

    def keep(axis: str, member) -> bool:
        chosen = filters.get(axis)
        return chosen is None or member in chosen

    return [ExperimentSpec(vendor, country, scenario, phase, duration_ns)
            for vendor in Vendor if keep("vendor", vendor)
            for country in Country if keep("country", country)
            for scenario in Scenario if keep("scenario", scenario)
            for phase in Phase if keep("phase", phase)]


# -- code-version fingerprint -------------------------------------------------

_code_version: Optional[str] = None


def code_version() -> str:
    """A digest of every ``repro`` source file, for cache invalidation.

    Any edit to the simulator changes the digest, so stale captures can
    never satisfy a lookup.  ``REPRO_CODE_VERSION`` overrides the scan
    (tests use it to exercise invalidation cheaply).
    """
    global _code_version
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if _code_version is None:
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for directory, __, names in sorted(os.walk(package_root)):
            for name in sorted(names):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(directory, name)
                digest.update(os.path.relpath(path, package_root).encode())
                with open(path, "rb") as fileobj:
                    digest.update(fileobj.read())
        _code_version = digest.hexdigest()[:16]
    return _code_version


# -- cell records -------------------------------------------------------------


class CellRecord:
    """One finished grid cell: capture metadata plus its (lazy) pcap."""

    __slots__ = ("label", "seed", "duration_ns", "packet_count",
                 "pcap_len", "tv_mac", "tv_ip", "device_id", "elapsed_s",
                 "from_cache", "_pcap_bytes", "_pcap_z", "_pcap_path")

    def __init__(self, label: str, seed: int, duration_ns: int,
                 packet_count: int, pcap_len: int, tv_mac: str,
                 tv_ip: str, device_id: str, elapsed_s: float,
                 from_cache: bool = False,
                 pcap_bytes: Optional[bytes] = None,
                 pcap_z: Optional[bytes] = None,
                 pcap_path: Optional[str] = None) -> None:
        self.label = label
        self.seed = seed
        self.duration_ns = duration_ns
        self.packet_count = packet_count
        self.pcap_len = pcap_len
        self.tv_mac = tv_mac
        self.tv_ip = tv_ip
        self.device_id = device_id
        self.elapsed_s = elapsed_s
        self.from_cache = from_cache
        self._pcap_bytes = pcap_bytes
        self._pcap_z = pcap_z
        self._pcap_path = pcap_path

    @property
    def pcap_bytes(self) -> bytes:
        """The raw capture (decompressed lazily on first access)."""
        if self._pcap_bytes is None:
            try:
                compressed = self._pcap_z
                if compressed is None:
                    with open(self._pcap_path, "rb") as fileobj:
                        compressed = fileobj.read()
                self._pcap_bytes = zlib.decompress(compressed)
            except (OSError, zlib.error) as exc:
                raise CacheReadError(
                    f"cached capture for {self.label} unreadable: "
                    f"{exc}") from exc
        return self._pcap_bytes

    @property
    def pcap_compressed(self) -> bytes:
        """The zlib payload (reused so captures are compressed once)."""
        if self._pcap_z is None:
            self._pcap_z = zlib.compress(self.pcap_bytes, 1)
        return self._pcap_z

    def pipeline(self, tier: Optional[str] = None) -> AuditPipeline:
        """Decode this cell's capture into an audit pipeline (the
        process-default decode tier unless one is named)."""
        with get_registry().span("grid.decode"):
            return AuditPipeline.from_pcap_bytes(
                self.pcap_bytes, Ipv4Address.parse(self.tv_ip),
                tier=tier)

    def meta(self) -> Dict:
        return {
            "label": self.label,
            "seed": self.seed,
            "duration_ns": self.duration_ns,
            "packet_count": self.packet_count,
            "pcap_len": self.pcap_len,
            "tv_mac": self.tv_mac,
            "tv_ip": self.tv_ip,
            "device_id": self.device_id,
            "elapsed_s": self.elapsed_s,
        }

    def __repr__(self) -> str:
        origin = "cache" if self.from_cache else "run"
        return (f"CellRecord({self.label}, seed={self.seed}, "
                f"{self.packet_count} packets, {origin})")


def record_from_result(result, elapsed_s: float = 0.0) -> CellRecord:
    """A :class:`CellRecord` view of an in-process ExperimentResult."""
    return CellRecord(
        label=result.spec.label, seed=result.seed,
        duration_ns=result.spec.duration_ns,
        packet_count=result.packet_count,
        pcap_len=len(result.pcap_bytes), tv_mac=result.tv_mac,
        tv_ip=result.tv_ip, device_id=result.device_id,
        elapsed_s=elapsed_s, pcap_bytes=result.pcap_bytes)


# -- the on-disk cache --------------------------------------------------------


class ResultCache:
    """Content-addressed store of finished cells.

    The key is a SHA-256 over the canonical ``(spec label, duration,
    seed, code-version)`` tuple; entries live two levels deep
    (``<root>/<key[:2]>/<key>.{json,pcap.z}``) so directories stay small
    even for large grids.
    """

    def __init__(self, root: str,
                 version: Optional[str] = None) -> None:
        self.root = root
        self.version = version or code_version()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        os.makedirs(root, exist_ok=True)

    def key(self, spec: ExperimentSpec, seed: int) -> str:
        return self.key_for(spec.label, spec.duration_ns, seed)

    def key_for(self, label: str, duration_ns: int, seed: int) -> str:
        # One canonical cell identity (shared with CampaignRunner via
        # cell_key), salted with the code version for invalidation.
        canonical = f"{cell_key(label, seed, duration_ns)}:{self.version}"
        return hashlib.sha256(canonical.encode()).hexdigest()

    def _paths(self, key: str) -> Tuple[str, str]:
        shard = os.path.join(self.root, key[:2])
        return (os.path.join(shard, key + ".json"),
                os.path.join(shard, key + ".pcap.z"))

    def load(self, spec: ExperimentSpec, seed: int) -> Optional[CellRecord]:
        """Recall one cell, or ``None`` on a miss (or corrupt entry)."""
        return self.load_for(spec.label, spec.duration_ns, seed)

    def load_for(self, label: str, duration_ns: int,
                 seed: int) -> Optional[CellRecord]:
        """Label-addressed recall (fleet households have no spec)."""
        meta_path, pcap_path = self._paths(
            self.key_for(label, duration_ns, seed))
        try:
            with open(meta_path, "r", encoding="utf-8") as fileobj:
                meta = json.load(fileobj)
            record = CellRecord(from_cache=True, pcap_path=pcap_path,
                                **meta)
        except (OSError, ValueError, TypeError):
            self.misses += 1
            get_registry().inc("cache.miss")
            return None
        if not os.path.exists(pcap_path):
            self.misses += 1
            get_registry().inc("cache.miss")
            return None
        self.hits += 1
        get_registry().inc("cache.hit")
        return record

    def store(self, record: CellRecord) -> None:
        """Persist one cell (atomic per file: write-then-rename)."""
        meta_path, pcap_path = self._paths(self.key_for(
            record.label, record.duration_ns, record.seed))
        os.makedirs(os.path.dirname(meta_path), exist_ok=True)
        for path, payload in (
                (pcap_path, record.pcap_compressed),
                (meta_path,
                 json.dumps(record.meta(), indent=2).encode())):
            atomic_write_bytes(path, payload)
        record._pcap_path = pcap_path
        self.stores += 1
        get_registry().inc("cache.store")

    def entry_count(self) -> int:
        return sum(name.endswith(".json")
                   for __, ___, names in os.walk(self.root)
                   for name in names)

    def __repr__(self) -> str:
        return (f"ResultCache({self.root}, {self.entry_count()} entries, "
                f"hits={self.hits}, misses={self.misses})")


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else a per-user XDG cache location."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-acr", "grid")


def default_cache() -> Optional[ResultCache]:
    """The process default cache (``REPRO_NO_CACHE=1`` disables it).

    An unwritable cache location degrades to no caching rather than
    failing the run.
    """
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    try:
        return ResultCache(default_cache_dir())
    except OSError:
        return None


# -- execution ----------------------------------------------------------------


def _execute_cell(payload: Tuple) -> Tuple[Dict, bytes, Optional[Dict]]:
    """Process-pool worker: run one cell, return (meta, compressed pcap,
    metrics snapshot).

    Takes and returns only primitives so it pickles cleanly; the heavy
    ground-truth handles (backend, registry, zone) stay in the worker.
    The snapshot (``None`` unless the parent had metrics enabled) is
    collected in a worker-local registry so the parent can absorb it
    without double counting.
    """
    (vendor, country, scenario, phase, duration_ns, seed,
     validate_results, collect_metrics, plan_tuple) = payload
    spec = ExperimentSpec(Vendor(vendor), Country(country),
                          Scenario(scenario), Phase(phase), duration_ns)
    faults = FaultPlan.from_tuple(plan_tuple)
    with scoped(collect_metrics) as registry:
        started = time.perf_counter()

        def simulate():
            with get_registry().span("grid.simulate"):
                return run_experiment(spec, seed=seed)

        # Injected worker crashes/hangs are keyed by the cell label, so
        # the retry counters are identical at any job count.
        result, __ = produce_with_retries(faults, (spec.label,),
                                          simulate)
        if validate_results:
            report = validate(result)
            if not report.ok:
                raise RuntimeError(f"experiment {spec.label} failed "
                                   f"validation: {report.failures}")
        get_registry().inc("grid.cells.executed")
        record = record_from_result(
            result, elapsed_s=time.perf_counter() - started)
        snapshot = registry.snapshot() if registry is not None else None
    return record.meta(), zlib.compress(result.pcap_bytes, 1), snapshot


def _payload(spec: ExperimentSpec, seed: int, validate_results: bool,
             faults: FaultPlan = NULL_PLAN) -> Tuple:
    return (spec.vendor.value, spec.country.value, spec.scenario.value,
            spec.phase.value, spec.duration_ns, seed, validate_results,
            metrics_enabled(), faults.as_tuple())


def warm_assets(specs: Sequence[ExperimentSpec] = (),
                countries: Iterable[str] = ()) -> None:
    """Pre-build the shared per-country assets in this process.

    Building a reference fingerprint database takes far longer than
    simulating a cell, but it is memoized per country.  Pool workers are
    forked from the parent (Linux default), so warming before the fork
    lets every worker inherit the assets copy-on-write instead of each
    rebuilding them from scratch.

    Callers name the countries either through ``specs`` (grid cells) or
    directly via ``countries`` (the fleet runner, which has households
    rather than specs).
    """
    from ..testbed import assets
    for country in sorted({spec.country.value for spec in specs}
                          | set(countries)):
        assets.media_library(country, 0)
        assets.reference_library(country, 0)
        assets.linear_channel(country, 0)
        assets.fast_channel(country, 0)
    assets.ui_item()


class GridRunner:
    """Execute a set of cells, in parallel, through the result cache."""

    def __init__(self, seed: int = DEFAULT_SEED,
                 cache: Optional[ResultCache] = None, jobs: int = 1,
                 validate_results: bool = True,
                 faults: FaultPlan = NULL_PLAN) -> None:
        self.seed = seed
        self.cache = cache
        self.jobs = max(1, jobs)
        self.validate_results = validate_results
        self.faults = faults

    def run(self, specs: Sequence[ExperimentSpec],
            progress: Optional[ProgressFn] = None) -> List[CellRecord]:
        """Run every cell (cache hits are recalled, misses executed)."""
        records: Dict[int, CellRecord] = {}
        missing: List[Tuple[int, ExperimentSpec]] = []
        for index, spec in enumerate(specs):
            cached = self.cache.load(spec, self.seed) if self.cache \
                else None
            if cached is not None:
                records[index] = cached
                if progress:
                    progress(spec, cached)
            else:
                missing.append((index, spec))
        if missing:
            for index, spec, record in self._execute(missing):
                if self.cache:
                    self.cache.store(record)
                records[index] = record
                if progress:
                    progress(spec, record)
        return [records[index] for index in range(len(specs))]

    def _execute(self, missing: List[Tuple[int, ExperimentSpec]]):
        if self.jobs == 1 or len(missing) == 1:
            for index, spec in missing:
                meta, compressed, snapshot = _execute_cell(
                    _payload(spec, self.seed, self.validate_results,
                             self.faults))
                get_registry().absorb(snapshot)
                yield index, spec, self._record(meta, compressed)
            return
        workers = min(self.jobs, len(missing))
        if multiprocessing.get_start_method() == "fork":
            # Workers inherit warm assets copy-on-write; under spawn
            # they re-import from scratch, so parent warming would be
            # pure waste.
            warm_assets([spec for __, spec in missing])
        with concurrent.futures.ProcessPoolExecutor(workers) as pool:
            futures = {
                pool.submit(_execute_cell, _payload(
                    spec, self.seed, self.validate_results,
                    self.faults)):
                (index, spec)
                for index, spec in missing}
            for future in concurrent.futures.as_completed(futures):
                index, spec = futures[future]
                meta, compressed, snapshot = future.result()
                get_registry().absorb(snapshot)
                yield index, spec, self._record(meta, compressed)

    @staticmethod
    def _record(meta: Dict, compressed: bytes) -> CellRecord:
        # Keep the worker's compressed payload: the cache stores it
        # verbatim, and consumers decompress lazily only when they
        # actually read the capture.
        return CellRecord(pcap_z=compressed, **meta)


# -- the consumer API ---------------------------------------------------------


class GridResults:
    """Single access point for experiment-cell artifacts.

    Every scorecard check, table and figure driver asks this object for
    cells.  Pipelines are served from memory, then from the on-disk
    :class:`ResultCache` (no simulation), and only then by running the
    cell.  Full :class:`~repro.testbed.runner.ExperimentResult` objects
    (which carry unpicklable ground-truth handles — registry, zone,
    backend) always come from an in-process
    :class:`~repro.testbed.campaign.CampaignRunner`.
    """

    def __init__(self, seed: int = DEFAULT_SEED,
                 cache: Union[ResultCache, None, str] = "default") -> None:
        self.seed = seed
        if cache == "default":
            cache = default_cache()
        self.cache = cache
        self.campaign = CampaignRunner(seed=seed)
        self._records: Dict[Tuple[str, int], CellRecord] = {}
        self._pipelines: Dict[Tuple[str, int], AuditPipeline] = {}

    def _key(self, spec: ExperimentSpec) -> Tuple[str, int]:
        return (spec.label, spec.duration_ns)

    def ensure(self, specs: Sequence[ExperimentSpec], jobs: int = 1,
               progress: Optional[ProgressFn] = None) -> List[CellRecord]:
        """Prefetch cells (parallel when ``jobs > 1``) into this object."""
        runner = GridRunner(seed=self.seed, cache=self.cache, jobs=jobs)
        records = runner.run(specs, progress=progress)
        for spec, record in zip(specs, records):
            self._records.setdefault(self._key(spec), record)
        return records

    def record(self, spec: ExperimentSpec) -> CellRecord:
        """The capture record for one cell (memo -> disk -> run)."""
        key = self._key(spec)
        record = self._records.get(key)
        if record is None:
            record = self.cache.load(spec, self.seed) if self.cache \
                else None
        if record is None:
            started = time.perf_counter()
            with get_registry().span("grid.simulate"):
                result = self.campaign.run(spec)
            record = record_from_result(
                result, elapsed_s=time.perf_counter() - started)
            if self.cache:
                self.cache.store(record)
        self._records[key] = record
        return record

    def pipeline(self, spec: ExperimentSpec) -> AuditPipeline:
        """The decoded audit pipeline for one cell, memoized.

        A cache entry whose capture turns out to be unreadable (e.g. a
        pcap damaged on disk) is dropped and the cell re-run, so
        corruption self-heals instead of poisoning every later run.
        """
        key = self._key(spec)
        pipeline = self._pipelines.get(key)
        if pipeline is None:
            try:
                pipeline = self.record(spec).pipeline()
            except CacheReadError:
                self._records.pop(key, None)
                record = record_from_result(self.campaign.run(spec))
                if self.cache:
                    self.cache.store(record)
                self._records[key] = record
                pipeline = record.pipeline()
            self._pipelines[key] = pipeline
        return pipeline

    def result(self, spec: ExperimentSpec):
        """The full in-process result (ground-truth handles included)."""
        result = self.campaign.run(spec)
        key = self._key(spec)
        if key not in self._records:
            record = record_from_result(result)
            if self.cache:
                self.cache.store(record)
            self._records[key] = record
        return result

    def __repr__(self) -> str:
        return (f"GridResults(seed={self.seed}, "
                f"{len(self._records)} records, "
                f"cache={'on' if self.cache else 'off'})")
