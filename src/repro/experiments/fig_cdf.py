"""Figures 5 and 7: CDFs of bytes transmitted to ACR domains.

"the CDF of data transferred to ACR domains (in bytes) in each scenario
during the LIn-OIn and LOut-OIn phases" — UK in Figure 5, US in Figure 7.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..analysis.cdf import (CumulativeCurve, cumulative_bytes,
                            median_step_interval_s)
from ..net.addresses import Ipv4Address
from ..sim.clock import minutes
from ..testbed.experiment import (Country, ExperimentSpec, Phase, Scenario,
                                  Vendor, paper_vendors)
from . import cache

CDF_WINDOW_START = minutes(5)
CDF_WINDOW_MINUTES = 50

CurveKey = Tuple[Vendor, Scenario, Phase]


class CdfFigure:
    """One country's CDF panel across vendors/scenarios/phases."""

    def __init__(self, country: Country,
                 curves: Dict[CurveKey, CumulativeCurve]) -> None:
        self.country = country
        self.curves = curves

    def curve(self, vendor: Vendor, scenario: Scenario,
              phase: Phase) -> CumulativeCurve:
        return self.curves[(vendor, scenario, phase)]

    def total_kb(self, vendor: Vendor, scenario: Scenario,
                 phase: Phase) -> float:
        return self.curve(vendor, scenario, phase).total_bytes / 1000.0

    def transfer_period_s(self, vendor: Vendor, scenario: Scenario,
                          phase: Phase) -> float:
        """The step cadence visible in the CDF (LG 15 s vs Samsung 60 s)."""
        return median_step_interval_s(self.curve(vendor, scenario, phase))

    def __repr__(self) -> str:
        return f"CdfFigure({self.country.value}, {len(self.curves)} curves)"


def transmitted_curve(spec: ExperimentSpec,
                      seed: int = cache.DEFAULT_SEED,
                      domains=None) -> CumulativeCurve:
    """Cumulative bytes the TV *sent* to ACR domains in one capture.

    ``domains`` restricts the curve (e.g. to the fingerprint endpoint so
    the vendor's batch cadence is visible); by default every "acr"
    candidate contributes, as in the paper's aggregate CDFs.
    """
    pipeline = cache.grid(seed).pipeline(spec)
    targets = domains if domains is not None \
        else pipeline.acr_candidate_domains()
    packets = pipeline.packets_for_all(targets)
    start = CDF_WINDOW_START
    end = start + minutes(CDF_WINDOW_MINUTES)
    return cumulative_bytes(packets, start, end,
                            sent_only_from=pipeline.tv_ip)


def build_cdf_figure(country: Country,
                     seed: int = cache.DEFAULT_SEED) -> CdfFigure:
    """Figure 5 (UK) or Figure 7 (US): the paper vendors, all scenarios,
    both opted-in phases."""
    curves: Dict[CurveKey, CumulativeCurve] = {}
    for vendor in paper_vendors():
        for scenario in Scenario:
            for phase in (Phase.LIN_OIN, Phase.LOUT_OIN):
                spec = ExperimentSpec(vendor, country, scenario, phase)
                curves[(vendor, scenario, phase)] = transmitted_curve(
                    spec, seed)
    return CdfFigure(country, curves)


def figure5(seed: int = cache.DEFAULT_SEED) -> CdfFigure:
    return build_cdf_figure(Country.UK, seed)


def figure7(seed: int = cache.DEFAULT_SEED) -> CdfFigure:
    return build_cdf_figure(Country.US, seed)
