"""§4.1/§4.3 geolocation experiment.

Workflow exactly as the paper: take the ACR domains observed in captures,
geolocate their addresses with MaxMind and IP2Location, arbitrate
disagreements via traceroute + RIPE IPmap, then check the operators
against the DPF list.
"""

from __future__ import annotations

from typing import Dict, List

from ..geo.audit import GeolocationAudit, GeolocationFinding
from ..sim.rng import RngRegistry
from ..testbed.experiment import (Country, ExperimentSpec, Phase, Scenario,
                                  Vendor, paper_vendors)
from . import cache


class GeoExperiment:
    """Geolocation findings for every observed ACR domain in one country."""

    def __init__(self, country: Country,
                 findings: Dict[str, GeolocationFinding],
                 dpf_ok: Dict[str, bool]) -> None:
        self.country = country
        self.findings = findings
        self.dpf_ok = dpf_ok

    def city_of(self, domain: str) -> str:
        finding = self.findings[domain]
        return finding.city.name if finding.city else "unknown"

    def country_of(self, domain: str) -> str:
        finding = self.findings[domain]
        return finding.country or "unknown"

    @property
    def domains(self) -> List[str]:
        return sorted(self.findings)

    def __repr__(self) -> str:
        return (f"GeoExperiment({self.country.value}, "
                f"{len(self.findings)} domains)")


def observed_acr_domains(country: Country,
                         seed: int = cache.DEFAULT_SEED) -> List[str]:
    """ACR candidates across the paper vendors' Linear captures (the
    scenario where every ACR channel is active)."""
    domains: List[str] = []
    for vendor in paper_vendors():
        spec = ExperimentSpec(vendor, country, Scenario.LINEAR,
                              Phase.LIN_OIN)
        pipeline = cache.grid(seed).pipeline(spec)
        domains.extend(pipeline.acr_candidate_domains())
    return sorted(set(domains))


def run_geo_experiment(country: Country,
                       seed: int = cache.DEFAULT_SEED) -> GeoExperiment:
    """Locate every observed ACR endpoint from this country's vantage."""
    # Any cell's result carries the registry/zone the capture ran against
    # (ground-truth handles require a full in-process result, so this one
    # cell is simulated even when the capture grid is warm on disk).
    spec = ExperimentSpec(Vendor.LG, country, Scenario.LINEAR,
                          Phase.LIN_OIN)
    result = cache.grid(seed).result(spec)
    resolver = result.zone
    audit = GeolocationAudit(
        result.registry.ipspace, RngRegistry(seed).fork("geo"),
        ptr_lookup=lambda address: (
            resolver.lookup_ptr(address).target_name
            if resolver.lookup_ptr(address) else None))
    findings: Dict[str, GeolocationFinding] = {}
    dpf_ok: Dict[str, bool] = {}
    for domain in observed_acr_domains(country, seed):
        address = result.registry.server(domain).address
        findings[domain] = audit.locate(address, country.vantage, domain)
        provider = result.registry.record(domain).provider
        dpf_ok[domain] = audit.transfer_allowed(provider)
    return GeoExperiment(country, findings, dpf_ok)
