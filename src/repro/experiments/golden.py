"""The golden-corpus artifact recipe — one definition for both sides.

``scripts/update_golden.py`` *writes* these artifacts under
``tests/golden/`` and ``tests/test_golden_corpus.py`` *regenerates and
compares* them; both iterate :func:`artifacts` so the name set, vendor
selections and byte-level conventions (e.g. the CLI's trailing newline
on the report) can never drift apart.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .findings import render_checks, run_all_checks
from .report import generate

DEFAULT_SEED = 7


def artifacts(seed: int = DEFAULT_SEED,
              jobs: Optional[int] = None) -> Iterator[Tuple[str, str]]:
    """Yield ``(artifact name, content)`` for every golden pin.

    Everything is a pure function of (seed, one simulated hour per
    cell), so the bytes are identical on every machine and across job
    counts.  ``scorecard_paper.txt`` and ``report_paper.md`` double as
    the executed proof that the registry refactor left the paper
    vendors' output untouched.
    """
    yield "scorecard_paper.txt", render_checks(
        run_all_checks(seed, jobs=jobs, vendors=("samsung", "lg")))
    yield "scorecard_roku.txt", render_checks(
        run_all_checks(seed, jobs=jobs, vendors=("roku",)))
    yield "scorecard_vizio.txt", render_checks(
        run_all_checks(seed, jobs=jobs, vendors=("vizio",)))
    # print() appends the newline in the CLI, so the file carries it too.
    yield "report_paper.md", generate(
        seed, jobs=jobs, vendors=("samsung", "lg")) + "\n"
