"""Figures 4, 6 and 8-11: per-scenario ACR traffic timelines.

Each figure shows "10 minutes of ACR traffic in different scenarios" for
one vendor in one country during one phase, in packets-per-millisecond
format.  Figures 4/6 are the LIn-OIn views (UK/US); Figures 8-11 are the
full phase-country grids.
"""

from __future__ import annotations

from typing import Dict, List

from ..analysis.pipeline import AuditPipeline
from ..analysis.timeline import Timeline, packets_per_ms
from ..sim.clock import minutes
from ..testbed.experiment import (Country, ExperimentSpec, Phase, Scenario,
                                  Vendor)
from . import cache

WINDOW_START = minutes(15)
WINDOW_MINUTES = 10

SCENARIO_LABELS = {
    Scenario.IDLE: "Idle",
    Scenario.LINEAR: "Antenna",
    Scenario.FAST: "FAST",
    Scenario.OTT: "OTT",
    Scenario.HDMI: "HDMI",
    Scenario.SCREEN_CAST: "Screen Cast",
}


class TimelineFigure:
    """One (vendor, country, phase) panel: a timeline per scenario."""

    def __init__(self, vendor: Vendor, country: Country, phase: Phase,
                 timelines: Dict[Scenario, Timeline]) -> None:
        self.vendor = vendor
        self.country = country
        self.phase = phase
        self.timelines = timelines

    def peak(self, scenario: Scenario) -> int:
        return self.timelines[scenario].peak

    def peak_reduction(self, active: Scenario,
                       restricted: Scenario) -> float:
        """How much smaller restricted-scenario spikes are (§4.1: "peaks
        get reduced by up to 12x")."""
        restricted_peak = self.peak(restricted)
        if restricted_peak == 0:
            return float("inf")
        return self.peak(active) / restricted_peak

    def __repr__(self) -> str:
        return (f"TimelineFigure({self.vendor.value}/{self.country.value}"
                f"/{self.phase.value}, {len(self.timelines)} scenarios)")


def acr_timeline(pipeline: AuditPipeline) -> Timeline:
    """The packets/ms series over the figure window for a capture's ACR
    candidate domains."""
    packets = pipeline.packets_for_all(pipeline.acr_candidate_domains())
    start = WINDOW_START
    end = start + minutes(WINDOW_MINUTES)
    return packets_per_ms(packets, start, end)


def build_figure(vendor: Vendor, country: Country,
                 phase: Phase = Phase.LIN_OIN,
                 seed: int = cache.DEFAULT_SEED) -> TimelineFigure:
    """Build one figure panel (e.g. Figure 4a = LG/UK/LIn-OIn)."""
    timelines: Dict[Scenario, Timeline] = {}
    for scenario in Scenario:
        spec = ExperimentSpec(vendor, country, scenario, phase)
        timelines[scenario] = acr_timeline(
            cache.grid(seed).pipeline(spec))
    return TimelineFigure(vendor, country, phase, timelines)


def figure4(seed: int = cache.DEFAULT_SEED) -> List[TimelineFigure]:
    """Figure 4: (a) LG and (b) Samsung, UK, LIn-OIn."""
    return [build_figure(Vendor.LG, Country.UK, Phase.LIN_OIN, seed),
            build_figure(Vendor.SAMSUNG, Country.UK, Phase.LIN_OIN, seed)]


def figure6(seed: int = cache.DEFAULT_SEED) -> List[TimelineFigure]:
    """Figure 6: (a) LG and (b) Samsung, US, LIn-OIn."""
    return [build_figure(Vendor.LG, Country.US, Phase.LIN_OIN, seed),
            build_figure(Vendor.SAMSUNG, Country.US, Phase.LIN_OIN, seed)]


def figures_8_to_11(seed: int = cache.DEFAULT_SEED
                    ) -> Dict[str, List[TimelineFigure]]:
    """The appendix grids: both vendors for each (country, opted-in phase).

    Figure 8 = UK LIn-OIn, 9 = UK LOut-OIn, 10 = US LIn-OIn,
    11 = US LOut-OIn.
    """
    grids: Dict[str, List[TimelineFigure]] = {}
    for name, country, phase in (
            ("figure8", Country.UK, Phase.LIN_OIN),
            ("figure9", Country.UK, Phase.LOUT_OIN),
            ("figure10", Country.US, Phase.LIN_OIN),
            ("figure11", Country.US, Phase.LOUT_OIN)):
        grids[name] = [build_figure(Vendor.LG, country, phase, seed),
                       build_figure(Vendor.SAMSUNG, country, phase, seed)]
    return grids
