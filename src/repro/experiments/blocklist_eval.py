"""DNS-blocklist effectiveness against ACR (related-work gap).

Varmarken et al. showed DNS blocklists are leaky for smart-TV tracking;
this experiment quantifies one concrete mechanism on our testbed: LG
rotates the number in ``eu-acrX.alphonso.tv``, so a hosts-file snapshot
that has only ever seen indices 1..4 silently passes traffic whenever the
rotation lands on 5 or 6 — while suffix-level lists (or blocking the
whole zone) hold.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.blocklists import HostsFileBlocklist, stale_hosts_snapshot
from ..analysis.compare import acr_volume_total
from ..analysis.pipeline import AuditPipeline
from ..sim.clock import minutes
from ..testbed.experiment import (Country, ExperimentSpec, Phase, Scenario,
                                  Vendor)
from ..testbed.runner import run_experiment
from . import cache

SWEEP_DURATION_NS = minutes(12)


class BlocklistTrial:
    """One seed's outcome under a blocklist."""

    __slots__ = ("seed", "active_domain", "listed", "leaked_kb",
                 "baseline_kb")

    def __init__(self, seed: int, active_domain: str, listed: bool,
                 leaked_kb: float, baseline_kb: float) -> None:
        self.seed = seed
        self.active_domain = active_domain
        self.listed = listed
        self.leaked_kb = leaked_kb
        self.baseline_kb = baseline_kb

    @property
    def leaked(self) -> bool:
        return self.leaked_kb > 0.1 * max(self.baseline_kb, 1.0)

    def __repr__(self) -> str:
        state = "LEAKED" if self.leaked else "blocked"
        return (f"BlocklistTrial(seed={self.seed}, "
                f"{self.active_domain}, {state}, "
                f"{self.leaked_kb:.1f}/{self.baseline_kb:.1f} KB)")


class BlocklistEvaluation:
    """Aggregate outcome of the sweep."""

    __slots__ = ("trials", "blocklist_size")

    def __init__(self, trials: List[BlocklistTrial],
                 blocklist_size: int) -> None:
        self.trials = trials
        self.blocklist_size = blocklist_size

    @property
    def leak_rate(self) -> float:
        if not self.trials:
            return 0.0
        return sum(t.leaked for t in self.trials) / len(self.trials)

    @property
    def leaked_trials(self) -> List[BlocklistTrial]:
        return [t for t in self.trials if t.leaked]

    def __repr__(self) -> str:
        return (f"BlocklistEvaluation({len(self.trials)} trials, "
                f"leak rate {self.leak_rate:.0%})")


def run_trial(seed: int,
              blocklist: Optional[HostsFileBlocklist] = None,
              vendor: Vendor = Vendor.LG,
              country: Country = Country.UK) -> BlocklistTrial:
    """One (seed, blocklist) cell: short Linear run, measure ACR KB."""
    spec = ExperimentSpec(vendor, country, Scenario.LINEAR,
                          Phase.LIN_OIN, duration_ns=SWEEP_DURATION_NS)
    blocklist = blocklist or stale_hosts_snapshot()
    baseline = run_experiment(spec, seed=seed)
    baseline_pipeline = AuditPipeline.from_result(baseline)
    baseline_kb = acr_volume_total(baseline_pipeline)
    # fingerprint_domain resolves through the vendor profile, which
    # covers rotating schemes (LG) and fixed endpoints alike.
    active_domain = baseline.registry.fingerprint_domain(
        vendor.value, country.value, 0, seed)
    blocked = run_experiment(spec, seed=seed, dns_blocklist=blocklist)
    blocked_pipeline = AuditPipeline.from_result(blocked)
    leaked_kb = acr_volume_total(blocked_pipeline)
    return BlocklistTrial(seed, active_domain,
                          blocklist.is_listed(active_domain),
                          leaked_kb, baseline_kb)


def run_evaluation(seeds: List[int],
                   blocklist: Optional[HostsFileBlocklist] = None,
                   vendor: Vendor = Vendor.LG,
                   country: Country = Country.UK) -> BlocklistEvaluation:
    """Sweep rotation outcomes across seeds under one blocklist."""
    blocklist = blocklist or stale_hosts_snapshot()
    trials = [run_trial(seed, blocklist, vendor, country)
              for seed in seeds]
    return BlocklistEvaluation(trials, len(blocklist))
