"""Per-figure/table experiment drivers, the findings scorecard, the
parallel grid runner with its on-disk result cache, and the future-work
studies (MITM payloads, ads linkage, blocklist evaluation)."""

from . import cache
from .blocklist_eval import (BlocklistEvaluation, BlocklistTrial,
                             run_evaluation, run_trial)
from .grid import (CellRecord, GridFilterError, GridResults, GridRunner,
                   ResultCache, code_version, default_cache_dir,
                   enumerate_cells, parse_filters)
from .mitm_audit import MitmAuditResult, run_mitm_audit
from .fig_cdf import (CdfFigure, build_cdf_figure, figure5, figure7,
                      transmitted_curve)
from .fig_timelines import (TimelineFigure, acr_timeline, build_figure,
                            figure4, figure6, figures_8_to_11)
from .findings import (ALL_CHECKS, FindingCheck, run_all_checks, scorecard)
from .geolocation import (GeoExperiment, observed_acr_domains,
                          run_geo_experiment)
from .tables_volumes import (build_table, comparison_rows, paper_reference,
                             table2, table3, table4, table5)

__all__ = [
    "ALL_CHECKS",
    "CellRecord",
    "GridFilterError",
    "GridResults",
    "GridRunner",
    "ResultCache",
    "code_version",
    "default_cache_dir",
    "enumerate_cells",
    "parse_filters",
    "BlocklistEvaluation",
    "BlocklistTrial",
    "CdfFigure",
    "MitmAuditResult",
    "run_evaluation",
    "run_mitm_audit",
    "run_trial",
    "FindingCheck",
    "GeoExperiment",
    "TimelineFigure",
    "acr_timeline",
    "build_cdf_figure",
    "build_figure",
    "build_table",
    "cache",
    "comparison_rows",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figures_8_to_11",
    "observed_acr_domains",
    "paper_reference",
    "run_all_checks",
    "run_geo_experiment",
    "scorecard",
    "table2",
    "table3",
    "table4",
    "table5",
    "transmitted_curve",
]
