"""Tables 2-5: kilobytes exchanged with ACR domains per scenario.

Each table is one (country, phase) slice over both vendors' ACR domains
and all six scenarios.  Paper reference values are included so benches can
print paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.volumes import VolumeTable, build_volume_table
from ..testbed.experiment import (Country, ExperimentSpec, Phase, Scenario,
                                  paper_vendors)
from . import cache

SCENARIO_ORDER = [Scenario.IDLE, Scenario.LINEAR, Scenario.FAST,
                  Scenario.OTT, Scenario.HDMI, Scenario.SCREEN_CAST]
SCENARIO_NAMES = ["Idle", "Antenna", "FAST", "OTT", "HDMI", "Screen Cast"]

# Paper values (KB), None where the paper prints "-".
PAPER_TABLE2: Dict[str, List[Optional[float]]] = {
    "eu-acrX.alphonso.tv": [264.7, 4759.7, 262.8, 264.3, 4296.5, 266.2],
    "acr-eu-prd.samsungcloud.tv": [None, 440.9, 8.5, 8.6, 204.8, 30.3],
    "acr0.samsungcloudsolution.com": [None, None, 11.1, 11.3, 11.0, 11.7],
    "log-config.samsungacr.com": [9.5, 10.8, 9.2, 8.9, 9.3, 10.0],
    "log-ingestion-eu.samsungacr.com": [176.9, 298.4, 125.4, 161.6,
                                        162.3, None],
}

PAPER_TABLE3: Dict[str, List[Optional[float]]] = {
    "eu-acrX.alphonso.tv": [258.0, 4801.9, 255.5, 250.6, 4229.5, 272.8],
    "acr-eu-prd.samsungcloud.tv": [8.6, 463.9, 8.6, 8.5, 184.0, 16.1],
    "acr0.samsungcloudsolution.com": [11.1, 11.1, 11.0, 11.1, 11.0, 24.3],
    "log-config.samsungacr.com": [9.2, 9.1, None, 9.1, 9.2, 10.4],
    "log-ingestion-eu.samsungacr.com": [159.9, 232.3, None, 169.8, 170.6,
                                        195.3],
}

PAPER_TABLE4: Dict[str, List[Optional[float]]] = {
    "tkacrX.alphonso.tv": [215.3, 4583.2, 4948.3, 214.9, 4125.0, 240.4],
    "acr-us-prd.samsungcloud.tv": [None, 184.4, 176.6, None, 148.5, None],
    "log-config.samsungacr.com": [10.5, 10.5, None, 9.7, 19.7, 10.1],
    "log-ingestion.samsungacr.com": [143.5, 253.2, 237.4, 156.1, 224.8,
                                     172.1],
}

PAPER_TABLE5: Dict[str, List[Optional[float]]] = {
    "tkacrX.alphonso.tv": [236.3, 4612.4, 4832.5, 191.3, 4633.5, 222.0],
    "acr-us-prd.samsungcloud.tv": [None, 153.5, 166.1, None, 160.2, None],
    "log-config.samsungacr.com": [9.6, 9.6, 9.6, 10.4, 10.4, 9.6],
    "log-ingestion.samsungacr.com": [112.7, 216.3, 247.5, 187.5, 146.9,
                                     157.9],
}

PAPER_TABLES = {
    ("uk", Phase.LIN_OIN): PAPER_TABLE2,
    ("uk", Phase.LOUT_OIN): PAPER_TABLE3,
    ("us", Phase.LIN_OIN): PAPER_TABLE4,
    ("us", Phase.LOUT_OIN): PAPER_TABLE5,
}


def build_table(country: Country, phase: Phase,
                seed: int = cache.DEFAULT_SEED) -> VolumeTable:
    """One appendix table: the paper vendors' ACR traffic, all scenarios
    (extension vendors are reported separately — the paper has no
    reference columns for them)."""
    pipelines = {}
    acr_domains = {}
    for scenario, name in zip(SCENARIO_ORDER, SCENARIO_NAMES):
        merged_packets_domains: List[str] = []
        for vendor in paper_vendors():
            spec = ExperimentSpec(vendor, country, scenario, phase)
            pipeline = cache.grid(seed).pipeline(spec)
            merged_packets_domains.extend(pipeline.acr_candidate_domains())
            # Keep the *vendor-specific* pipeline keyed by a compound name
            # so both vendors' rows land in one table.
            pipelines[f"{name}:{vendor.value}"] = pipeline
            acr_domains[f"{name}:{vendor.value}"] = \
                pipeline.acr_candidate_domains()
    table = build_volume_table(pipelines, acr_domains)
    return _merge_vendor_columns(table)


def _merge_vendor_columns(table: VolumeTable) -> VolumeTable:
    """Collapse "<scenario>:<vendor>" columns back to scenario columns
    (each domain only has traffic under one vendor)."""
    merged = VolumeTable(SCENARIO_NAMES)
    for domain in table.domains:
        for compound in table.scenarios:
            cell = table.cell(domain, compound)
            if cell is None or not cell.present:
                continue
            scenario = compound.split(":")[0]
            existing = merged.cell(domain, scenario)
            kilobytes = cell.kilobytes + (existing.kilobytes
                                          if existing else 0.0)
            packets = cell.packets + (existing.packets if existing else 0)
            from ..analysis.volumes import VolumeCell
            merged.add(VolumeCell(domain, scenario, kilobytes, packets))
    return merged


def table2(seed: int = cache.DEFAULT_SEED) -> VolumeTable:
    return build_table(Country.UK, Phase.LIN_OIN, seed)


def table3(seed: int = cache.DEFAULT_SEED) -> VolumeTable:
    return build_table(Country.UK, Phase.LOUT_OIN, seed)


def table4(seed: int = cache.DEFAULT_SEED) -> VolumeTable:
    return build_table(Country.US, Phase.LIN_OIN, seed)


def table5(seed: int = cache.DEFAULT_SEED) -> VolumeTable:
    return build_table(Country.US, Phase.LOUT_OIN, seed)


def paper_reference(country: Country,
                    phase: Phase) -> Dict[str, List[Optional[float]]]:
    return PAPER_TABLES[(country.value, phase)]


def comparison_rows(table: VolumeTable, country: Country,
                    phase: Phase) -> List[List[str]]:
    """Paper-vs-measured rows for one table."""
    reference = paper_reference(country, phase)
    rows: List[List[str]] = []
    for domain, paper_values in reference.items():
        for scenario, paper_value in zip(SCENARIO_NAMES, paper_values):
            cell = table.cell(domain, scenario)
            measured = cell.render() if cell else "-"
            paper = f"{paper_value:.1f}" if paper_value is not None \
                else "-"
            rows.append([domain, scenario, paper, measured])
    return rows
