"""The paper's headline findings as executable checks (S1-S12), plus the
extension-vendor findings (X1-X6) contributed by the plugin registry.

Each check returns a first-class :class:`~repro.findings.Finding` —
code, title, severity, confidence, pass/fail verdict and structured
:class:`~repro.findings.Evidence` pointers beside the measured evidence
text — so benches can print the whole scorecard, tests can assert every
shape target from DESIGN.md, and ``--findings-out`` can export the run
as schema-v1 JSONL.  Cells are consumed through the shared
:class:`~repro.experiments.grid.GridResults` API;
:func:`required_specs` names every cell the scorecard reads so
``run_all_checks(jobs=N)`` can prefetch them on a process pool.

Severity encodes the triage priority of a *failed* instance of the
check (an opt-out leak is ``critical``; an endpoint-inventory drift is
``medium``); confidence encodes the measurement methodology (exact
byte/domain accounting is 1.0, periodicity and ratio statistics 0.9,
RTT-derived geolocation 0.75, the blocklist heuristic 0.85).  The
rendered scorecard ignores both, so the plain-text output — pinned by
the golden corpus — is byte-identical to the pre-model output.

Every check declares the vendor set it covers; ``run_all_checks`` (and
the CLI's ``scorecard --vendors``) filters on it.  The S checks read only
the paper's pair, so a ``--vendors samsung,lg`` scorecard is byte-for-
byte the pre-registry output.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from ..analysis.acr_domains import AcrDomainAuditor, no_new_acr_domains
from ..analysis.compare import (CountryComparison, PhaseComparison,
                                acr_volume_total)
from ..analysis.periodicity import analyze_periodicity
from ..analysis.volumes import normalize_rotating
from ..findings import Evidence, Finding, FindingsLedger
from ..testbed.experiment import (Country, ExperimentSpec, Phase, Scenario,
                                  Vendor, paper_vendors)
from . import cache
from .fig_timelines import build_figure
from .geolocation import run_geo_experiment
from .grid import enumerate_cells

_PAPER_VENDOR_NAMES = frozenset(v.value for v in paper_vendors())

#: Historical alias: scorecard checks now *are* findings.
FindingCheck = Finding


def covers(*vendor_names: str) -> Callable:
    """Decorator tagging a check with the vendors it reads cells for."""
    def tag(check: Callable) -> Callable:
        check.vendors = frozenset(vendor_names)
        return check
    return tag


def paper_finding(check: Callable) -> Callable:
    """A check over the paper's audited pair only."""
    check.vendors = _PAPER_VENDOR_NAMES
    return check


def _pipe(vendor, country, scenario, phase, seed):
    return cache.grid(seed).pipeline(
        ExperimentSpec(vendor, country, scenario, phase))


def _evidence(entries: List[Evidence], default_text: str
              ) -> tuple:
    """Per-failure evidence entries, or the all-pass default line.

    The texts join with '; ' in :meth:`Finding.evidence_text`, which
    reproduces the historical single-string evidence byte for byte.
    """
    return tuple(entries) if entries else (Evidence(text=default_text),)


def _cell_evidence(text: str, vendor, country, scenario, phase
                   ) -> Evidence:
    """Evidence pointing at one grid cell."""
    return Evidence(
        text=text,
        capture=ExperimentSpec(vendor, country, scenario, phase).label,
        vendor=vendor.value, country=country.value, phase=phase.value)


def _paper_filter(**extra) -> Dict[str, Set]:
    filters = {"vendor": set(paper_vendors())}
    filters.update(extra)
    return filters


def required_specs(vendors: Optional[Iterable[str]] = None
                   ) -> List[ExperimentSpec]:
    """Every cell the selected checks read.

    For the paper pair that is 34 cells (of its 96-cell sub-matrix); the
    extension checks add their own, much smaller, cell sets.
    """
    chosen = _chosen_vendors(vendors)
    specs: Dict[str, ExperimentSpec] = {}
    groups: List[List[ExperimentSpec]] = []
    if _PAPER_VENDOR_NAMES <= chosen:
        groups += [
            # S1/S3-S8/S12: Linear in every phase, vendor and country.
            enumerate_cells(_paper_filter(scenario={Scenario.LINEAR})),
            # S1: HDMI in both opted-in phases.
            enumerate_cells(_paper_filter(
                scenario={Scenario.HDMI},
                phase={Phase.LIN_OIN, Phase.LOUT_OIN})),
            # S9: FAST vs Linear in both countries.
            enumerate_cells(_paper_filter(scenario={Scenario.FAST},
                                          phase={Phase.LIN_OIN})),
            # S2/S11: full UK scenario panels.
            enumerate_cells(_paper_filter(country={Country.UK},
                                          phase={Phase.LIN_OIN})),
        ]
    for check in ALL_CHECKS:
        if check.vendors <= chosen and not check.vendors <= \
                _PAPER_VENDOR_NAMES:
            groups.append([ExperimentSpec(*cell)
                           for cell in check.required_cells])
    for group in groups:
        for spec in group:
            specs.setdefault(spec.label, spec)
    return list(specs.values())


def check_s1_linear_and_hdmi_active(seed: int = cache.DEFAULT_SEED
                                    ) -> Finding:
    """S1: ACR traffic present in Linear and HDMI for every opted-in
    phase, vendor and country."""
    failures = []
    for vendor in paper_vendors():
        for country in Country:
            for phase in (Phase.LIN_OIN, Phase.LOUT_OIN):
                for scenario in (Scenario.LINEAR, Scenario.HDMI):
                    volume = acr_volume_total(
                        _pipe(vendor, country, scenario, phase, seed))
                    if volume < 50.0:
                        failures.append(_cell_evidence(
                            f"{vendor.value}/{country.value}/"
                            f"{scenario.value}/{phase.value}: "
                            f"{volume:.1f}KB",
                            vendor, country, scenario, phase))
    return Finding(
        "S1", "ACR active during Linear and HDMI (incl. dumb-display use)",
        severity="high", confidence=1.0, passed=not failures,
        evidence=_evidence(failures, "all cells show ACR traffic"))


def check_s2_peak_reduction(seed: int = cache.DEFAULT_SEED) -> Finding:
    """S2: restricted-scenario peaks are several-fold smaller (up to ~12x)."""
    figure = build_figure(Vendor.LG, Country.UK, Phase.LIN_OIN, seed)
    ratio = figure.peak_reduction(Scenario.LINEAR, Scenario.OTT)
    passed = ratio >= 3.0
    return Finding(
        "S2", "Linear/HDMI spikes dwarf restricted-scenario spikes",
        severity="high", confidence=0.9, passed=passed,
        evidence=(_cell_evidence(
            f"LG UK Linear/OTT peak ratio = {ratio:.1f}x",
            Vendor.LG, Country.UK, Scenario.LINEAR, Phase.LIN_OIN),))


def check_s3_cadences(seed: int = cache.DEFAULT_SEED) -> Finding:
    """S3: LG ships every ~15 s; Samsung every ~60 s."""
    lg = _pipe(Vendor.LG, Country.UK, Scenario.LINEAR, Phase.LIN_OIN, seed)
    lg_domain = lg.acr_candidate_domains()[0]
    lg_period = analyze_periodicity(
        lg_domain, lg.packets_for(lg_domain)).period_s
    samsung = _pipe(Vendor.SAMSUNG, Country.UK, Scenario.LINEAR,
                    Phase.LIN_OIN, seed)
    fp_domain = "acr-eu-prd.samsungcloud.tv"
    samsung_period = analyze_periodicity(
        fp_domain, samsung.packets_for(fp_domain)).period_s
    passed = (lg_period is not None and 13 <= lg_period <= 17
              and samsung_period is not None
              and 50 <= samsung_period <= 70)
    return Finding(
        "S3", "LG batches every ~15 s, Samsung every ~60 s",
        severity="medium", confidence=0.9, passed=passed,
        evidence=(Evidence(
            text=f"LG period={lg_period}, Samsung period={samsung_period}",
            country=Country.UK.value, phase=Phase.LIN_OIN.value,
            flow=fp_domain),))


def check_s4_samsung_more_chatter(seed: int = cache.DEFAULT_SEED
                                  ) -> Finding:
    """S4: Samsung's log/ingestion endpoints speak more often than LG's
    beacons at the same restricted scenario (higher frequency), while
    LG's single domain dominates raw KB when fingerprinting."""
    lg = _pipe(Vendor.LG, Country.UK, Scenario.LINEAR, Phase.LIN_OIN, seed)
    samsung = _pipe(Vendor.SAMSUNG, Country.UK, Scenario.LINEAR,
                    Phase.LIN_OIN, seed)
    lg_kb = acr_volume_total(lg)
    samsung_kb = acr_volume_total(samsung)
    samsung_domains = len(samsung.acr_candidate_domains())
    passed = lg_kb > samsung_kb and samsung_domains >= 3
    return Finding(
        "S4", "LG ships more raw KB; Samsung spreads over more endpoints",
        severity="medium", confidence=1.0, passed=passed,
        evidence=(Evidence(
            text=f"LG={lg_kb:.0f}KB on 1 domain; Samsung={samsung_kb:.0f}KB "
                 f"on {samsung_domains} domains",
            country=Country.UK.value, phase=Phase.LIN_OIN.value),))


def check_s5_optout_silence(seed: int = cache.DEFAULT_SEED) -> Finding:
    """S5: opting out silences every ACR domain; none appear anew."""
    failures = []
    for vendor in paper_vendors():
        for country in Country:
            opted_in = _pipe(vendor, country, Scenario.LINEAR,
                             Phase.LIN_OIN, seed)
            for phase in (Phase.LIN_OOUT, Phase.LOUT_OOUT):
                opted_out = _pipe(vendor, country, Scenario.LINEAR,
                                  phase, seed)
                comparison = PhaseComparison(
                    "in", opted_in, "out", opted_out)
                if not comparison.b_is_silent:
                    failures.append(_cell_evidence(
                        f"{vendor.value}/{country.value}/"
                        f"{phase.value} still speaks",
                        vendor, country, Scenario.LINEAR, phase))
                if not no_new_acr_domains(opted_in, opted_out):
                    failures.append(_cell_evidence(
                        f"{vendor.value}/{country.value}/"
                        f"{phase.value} new acr domains",
                        vendor, country, Scenario.LINEAR, phase))
    return Finding(
        "S5", "Opt-out stops all ACR traffic; no new ACR domains",
        severity="critical", confidence=1.0, passed=not failures,
        evidence=_evidence(failures, "silent in all 8 cells"))


def check_s6_login_no_effect(seed: int = cache.DEFAULT_SEED
                             ) -> Finding:
    """S6: LIn-OIn vs LOut-OIn: same ACR domain set, similar volumes."""
    failures = []
    for vendor in paper_vendors():
        for country in Country:
            a = _pipe(vendor, country, Scenario.LINEAR, Phase.LIN_OIN,
                      seed)
            b = _pipe(vendor, country, Scenario.LINEAR, Phase.LOUT_OIN,
                      seed)
            comparison = PhaseComparison("LIn-OIn", a, "LOut-OIn", b)
            if not comparison.same_domain_set:
                failures.append(_cell_evidence(
                    f"{vendor.value}/{country.value}: domain sets differ",
                    vendor, country, Scenario.LINEAR, Phase.LOUT_OIN))
            elif not comparison.volumes_similar(tolerance=0.5):
                failures.append(_cell_evidence(
                    f"{vendor.value}/{country.value}: volumes diverge",
                    vendor, country, Scenario.LINEAR, Phase.LOUT_OIN))
    return Finding(
        "S6", "Login status does not affect ACR traffic",
        severity="low", confidence=1.0, passed=not failures,
        evidence=_evidence(failures,
                           "identical domains, similar volumes"))


def check_s7_uk_domain_sets(seed: int = cache.DEFAULT_SEED) -> Finding:
    """S7: the UK domain sets match §4.1."""
    lg = _pipe(Vendor.LG, Country.UK, Scenario.LINEAR, Phase.LIN_OIN,
               seed)
    lg_set = {normalize_rotating(d) for d in lg.acr_candidate_domains()}
    samsung = _pipe(Vendor.SAMSUNG, Country.UK, Scenario.LINEAR,
                    Phase.LIN_OIN, seed)
    samsung_set = set(samsung.acr_candidate_domains())
    expected_samsung = {"acr-eu-prd.samsungcloud.tv",
                        "acr0.samsungcloudsolution.com",
                        "log-config.samsungacr.com",
                        "log-ingestion-eu.samsungacr.com"}
    passed = lg_set == {"eu-acrX.alphonso.tv"} and \
        samsung_set == expected_samsung
    return Finding(
        "S7", "UK: LG uses one rotating Alphonso domain; Samsung uses 4",
        severity="medium", confidence=1.0, passed=passed,
        evidence=(Evidence(
            text=f"LG={sorted(lg_set)}, Samsung={sorted(samsung_set)}",
            country=Country.UK.value, phase=Phase.LIN_OIN.value),))


def check_s8_us_domain_sets(seed: int = cache.DEFAULT_SEED) -> Finding:
    """S8: the US sets use tkacrX / drop the cloudsolution domain."""
    lg = _pipe(Vendor.LG, Country.US, Scenario.LINEAR, Phase.LIN_OIN,
               seed)
    lg_set = {normalize_rotating(d) for d in lg.acr_candidate_domains()}
    samsung = _pipe(Vendor.SAMSUNG, Country.US, Scenario.LINEAR,
                    Phase.LIN_OIN, seed)
    samsung_set = set(samsung.acr_candidate_domains())
    expected_samsung = {"acr-us-prd.samsungcloud.tv",
                        "log-config.samsungacr.com",
                        "log-ingestion.samsungacr.com"}
    passed = lg_set == {"tkacrX.alphonso.tv"} and \
        samsung_set == expected_samsung
    comparison = CountryComparison(
        _pipe(Vendor.SAMSUNG, Country.UK, Scenario.LINEAR, Phase.LIN_OIN,
              seed), samsung)
    passed = passed and comparison.distinct_domain_names
    return Finding(
        "S8", "US: tkacrX for LG; Samsung omits samsungcloudsolution",
        severity="medium", confidence=1.0, passed=passed,
        evidence=(Evidence(
            text=f"LG={sorted(lg_set)}, Samsung={sorted(samsung_set)}",
            country=Country.US.value, phase=Phase.LIN_OIN.value),))


def check_s9_fast_divergence(seed: int = cache.DEFAULT_SEED
                             ) -> Finding:
    """S9: FAST behaves like Linear in the US but not in the UK."""
    evidence = []
    passed = True
    for vendor in paper_vendors():
        uk_fast = acr_volume_total(_pipe(vendor, Country.UK,
                                         Scenario.FAST, Phase.LIN_OIN,
                                         seed))
        uk_linear = acr_volume_total(_pipe(vendor, Country.UK,
                                           Scenario.LINEAR, Phase.LIN_OIN,
                                           seed))
        us_fast = acr_volume_total(_pipe(vendor, Country.US,
                                         Scenario.FAST, Phase.LIN_OIN,
                                         seed))
        us_linear = acr_volume_total(_pipe(vendor, Country.US,
                                           Scenario.LINEAR, Phase.LIN_OIN,
                                           seed))
        uk_ratio = uk_fast / uk_linear
        us_ratio = us_fast / us_linear
        evidence.append(Evidence(
            text=f"{vendor.value}: UK FAST/Linear={uk_ratio:.2f}, "
                 f"US={us_ratio:.2f}",
            vendor=vendor.value, phase=Phase.LIN_OIN.value))
        passed = passed and uk_ratio < 0.3 and us_ratio > 0.7
    return Finding(
        "S9", "US FAST tracked like Linear; UK FAST restricted",
        severity="high", confidence=0.9, passed=passed,
        evidence=tuple(evidence))


def check_s10_geolocation(seed: int = cache.DEFAULT_SEED) -> Finding:
    """S10: endpoint locations and DPF participation match §4.1/§4.3."""
    uk = run_geo_experiment(Country.UK, seed)
    us = run_geo_experiment(Country.US, seed)
    failures = []
    for domain in uk.domains:
        city = uk.city_of(domain)
        if domain.endswith("alphonso.tv") and city != "Amsterdam":
            failures.append(Evidence(text=f"{domain} -> {city}",
                                     country=Country.UK.value,
                                     flow=domain))
        if domain == "acr-eu-prd.samsungcloud.tv" and city != "London":
            failures.append(Evidence(text=f"{domain} -> {city}",
                                     country=Country.UK.value,
                                     flow=domain))
        if domain == "log-config.samsungacr.com" and city != "New York":
            failures.append(Evidence(text=f"{domain} -> {city}",
                                     country=Country.UK.value,
                                     flow=domain))
    for domain in us.domains:
        if us.country_of(domain) != "US":
            failures.append(Evidence(
                text=f"{domain} -> {us.country_of(domain)}",
                country=Country.US.value, flow=domain))
    if not all(uk.dpf_ok.values()):
        failures.append(Evidence(
            text="a vendor is missing from the DPF list"))
    return Finding(
        "S10", "LG UK -> Amsterdam; Samsung UK -> London/Amsterdam/NYC; "
        "US endpoints in US; vendors on DPF",
        severity="medium", confidence=0.75, passed=not failures,
        evidence=_evidence(failures,
                           "all endpoint locations as reported"))


def check_s11_restricted_modes(seed: int = cache.DEFAULT_SEED
                               ) -> Finding:
    """S11: UK OTT and Screen Cast carry only light keep-alive traffic."""
    evidence = []
    passed = True
    for vendor in paper_vendors():
        for scenario in (Scenario.OTT, Scenario.SCREEN_CAST):
            volume = acr_volume_total(_pipe(vendor, Country.UK, scenario,
                                            Phase.LIN_OIN, seed))
            linear = acr_volume_total(_pipe(vendor, Country.UK,
                                            Scenario.LINEAR,
                                            Phase.LIN_OIN, seed))
            evidence.append(_cell_evidence(
                f"{vendor.value}/{scenario.value}: "
                f"{volume:.0f}KB vs linear {linear:.0f}KB",
                vendor, Country.UK, scenario, Phase.LIN_OIN))
            # Paper Table 2 itself gives Samsung OTT/Linear ~= 25%
            # (190.4 / 750.1 KB) — the floor is the always-on telemetry.
            passed = passed and volume < 0.30 * linear
    return Finding(
        "S11", "OTT/cast carry only keep-alive-level ACR traffic (UK)",
        severity="high", confidence=0.9, passed=passed,
        evidence=tuple(evidence))


def check_s12_heuristic_validation(seed: int = cache.DEFAULT_SEED
                                   ) -> Finding:
    """S12: the heuristic's three validations all hold."""
    auditor = AcrDomainAuditor()
    opted_in = _pipe(Vendor.SAMSUNG, Country.UK, Scenario.LINEAR,
                     Phase.LIN_OIN, seed)
    opted_out = _pipe(Vendor.SAMSUNG, Country.UK, Scenario.LINEAR,
                      Phase.LIN_OOUT, seed)
    findings = auditor.audit(opted_in, opted_out)
    failures = [f.domain for f in findings if not f.validated]
    ads = auditor.counterexample_regularity(opted_in)
    irregular_ads = [report for report in ads.values()
                     if not report.regular]
    passed = bool(findings) and not failures and bool(irregular_ads)
    return Finding(
        "S12", "'acr' domains blocklist-confirmed, regular, vanish on "
        "opt-out; ads domains irregular",
        severity="medium", confidence=0.85, passed=passed,
        evidence=(Evidence(
            text=f"{len(findings)} validated; ads contrast: "
                 f"{[r.domain for r in irregular_ads]}",
            country=Country.UK.value),))


# -- extension-vendor findings (registry-declared behaviours) -----------------


def _ext(name: str):
    """The enum member for one extension vendor name."""
    return Vendor(name)


@covers("roku")
def check_x1_roku_burst_gating(seed: int = cache.DEFAULT_SEED
                               ) -> Finding:
    """X1: Roku-style uploads are content-gated bursts, not periodic."""
    roku = _ext("roku")
    linear = _pipe(roku, Country.UK, Scenario.LINEAR, Phase.LIN_OIN, seed)
    hdmi = _pipe(roku, Country.UK, Scenario.HDMI, Phase.LIN_OIN, seed)
    fp = next((d for d in linear.acr_candidate_domains()
               if "ingest" in d), None)
    if fp is None:
        return Finding(
            "X1", "Roku-style SDK uploads burst on content change",
            severity="high", confidence=0.9, passed=False,
            evidence=(_cell_evidence(
                "no ingest domain observed", roku, Country.UK,
                Scenario.LINEAR, Phase.LIN_OIN),))
    cadence = analyze_periodicity(fp, linear.packets_for(fp))
    linear_kb = linear.kilobytes_for(fp)
    hdmi_kb = sum(hdmi.kilobytes_for(d)
                  for d in hdmi.acr_candidate_domains() if "ingest" in d)
    # Static HDMI content (5-minute dwells) must upload far less than
    # linear TV with its show/ad boundaries, and the channel must not
    # look like a fixed-period upload loop.
    passed = linear_kb > 2 * max(hdmi_kb, 0.1) and not cadence.regular
    return Finding(
        "X1", "Roku-style SDK uploads burst on content change",
        severity="high", confidence=0.9, passed=passed,
        evidence=(Evidence(
            text=f"linear ingest={linear_kb:.0f}KB, hdmi "
                 f"ingest={hdmi_kb:.0f}KB, linear cadence "
                 f"regular={cadence.regular}",
            vendor=roku.value, country=Country.UK.value,
            phase=Phase.LIN_OIN.value, flow=fp),))


check_x1_roku_burst_gating.required_cells = [
    (Vendor("roku"), Country.UK, Scenario.LINEAR, Phase.LIN_OIN),
    (Vendor("roku"), Country.UK, Scenario.HDMI, Phase.LIN_OIN),
]


@covers("roku")
def check_x2_roku_optout_downsamples(seed: int = cache.DEFAULT_SEED
                                     ) -> Finding:
    """X2: Roku-style opt-out reduces — but never silences — uploads."""
    roku = _ext("roku")
    opted_in = _pipe(roku, Country.UK, Scenario.LINEAR, Phase.LIN_OIN,
                     seed)
    opted_out = _pipe(roku, Country.UK, Scenario.LINEAR, Phase.LIN_OOUT,
                      seed)
    in_kb = acr_volume_total(opted_in)
    out_kb = acr_volume_total(opted_out)
    passed = (out_kb > 0
              and out_kb < 0.5 * in_kb
              and no_new_acr_domains(opted_in, opted_out))
    return Finding(
        "X2", "Roku-style opt-out only downsamples ACR traffic",
        severity="critical", confidence=1.0, passed=passed,
        evidence=(_cell_evidence(
            f"opted-in={in_kb:.0f}KB, opted-out={out_kb:.0f}KB "
            f"({100 * out_kb / in_kb if in_kb else 0:.0f}%)",
            roku, Country.UK, Scenario.LINEAR, Phase.LIN_OOUT),))


check_x2_roku_optout_downsamples.required_cells = [
    (Vendor("roku"), Country.UK, Scenario.LINEAR, Phase.LIN_OIN),
    (Vendor("roku"), Country.UK, Scenario.LINEAR, Phase.LIN_OOUT),
]


@covers("roku")
def check_x3_roku_sdk_config_unconditional(
        seed: int = cache.DEFAULT_SEED) -> Finding:
    """X3: the third-party SDK config channel survives a full opt-out."""
    roku = _ext("roku")
    opted_out = _pipe(roku, Country.UK, Scenario.LINEAR, Phase.LOUT_OOUT,
                      seed)
    cfg = [d for d in opted_out.acr_candidate_domains() if "cfg" in d]
    passed = bool(cfg) and all(
        opted_out.kilobytes_for(d) > 0 for d in cfg)
    return Finding(
        "X3", "Roku-style SDK config channel ignores the opt-out",
        severity="critical", confidence=1.0, passed=passed,
        evidence=(_cell_evidence(
            f"config domains in LOut-OOut: {cfg or 'none'}",
            roku, Country.UK, Scenario.LINEAR, Phase.LOUT_OOUT),))


check_x3_roku_sdk_config_unconditional.required_cells = [
    (Vendor("roku"), Country.UK, Scenario.LINEAR, Phase.LOUT_OOUT),
]


@covers("vizio")
def check_x4_vizio_continuous_cadence(seed: int = cache.DEFAULT_SEED
                                      ) -> Finding:
    """X4: Vizio-style fingerprinting is a continuous 10 s drizzle (US)."""
    vizio = _ext("vizio")
    us = _pipe(vizio, Country.US, Scenario.LINEAR, Phase.LIN_OIN, seed)
    domains = us.acr_candidate_domains()
    if not domains:
        return Finding(
            "X4", "Vizio-style continuous 10 s fingerprint cadence (US)",
            severity="high", confidence=0.9, passed=False,
            evidence=(_cell_evidence(
                "no acr domains observed", vizio, Country.US,
                Scenario.LINEAR, Phase.LIN_OIN),))
    report = analyze_periodicity(domains[0], us.packets_for(domains[0]))
    passed = (report.regular and report.period_s is not None
              and 8 <= report.period_s <= 12)
    return Finding(
        "X4", "Vizio-style continuous 10 s fingerprint cadence (US)",
        severity="high", confidence=0.9, passed=passed,
        evidence=(Evidence(
            text=f"{domains[0]}: period={report.period_s}, "
                 f"CV={report.cv}",
            vendor=vizio.value, country=Country.US.value,
            phase=Phase.LIN_OIN.value, flow=domains[0]),))


check_x4_vizio_continuous_cadence.required_cells = [
    (Vendor("vizio"), Country.US, Scenario.LINEAR, Phase.LIN_OIN),
]


@covers("vizio")
def check_x5_vizio_consent_default(seed: int = cache.DEFAULT_SEED
                                   ) -> Finding:
    """X5: the UK consent default keeps even 'opted-in' phases quiet."""
    vizio = _ext("vizio")
    uk = _pipe(vizio, Country.UK, Scenario.LINEAR, Phase.LIN_OIN, seed)
    us = _pipe(vizio, Country.US, Scenario.LINEAR, Phase.LIN_OIN, seed)
    uk_kb = acr_volume_total(uk)
    us_kb = acr_volume_total(us)
    passed = us_kb > 100.0 and uk_kb < 0.25 * us_kb
    return Finding(
        "X5", "Vizio-style country consent default (UK ships opted out)",
        severity="high", confidence=1.0, passed=passed,
        evidence=(Evidence(
            text=f"UK LIn-OIn={uk_kb:.0f}KB vs US LIn-OIn={us_kb:.0f}KB",
            vendor=vizio.value, phase=Phase.LIN_OIN.value),))


check_x5_vizio_consent_default.required_cells = [
    (Vendor("vizio"), Country.UK, Scenario.LINEAR, Phase.LIN_OIN),
    (Vendor("vizio"), Country.US, Scenario.LINEAR, Phase.LIN_OIN),
]


@covers("vizio")
def check_x6_vizio_shared_endpoint(seed: int = cache.DEFAULT_SEED
                                   ) -> Finding:
    """X6: the shared second-party endpoint stays warm without ACR.

    In the UK the consent default disables fingerprinting, yet the
    ``acr-…`` hostname still appears in captures because the ad stack
    rides the same endpoint — domain presence alone cannot certify ACR.
    """
    vizio = _ext("vizio")
    uk = _pipe(vizio, Country.UK, Scenario.LINEAR, Phase.LIN_OIN, seed)
    domains = uk.acr_candidate_domains()
    kb = sum(uk.kilobytes_for(d) for d in domains)
    passed = bool(domains) and kb > 0
    return Finding(
        "X6", "Vizio-style shared ad/ACR endpoint stays warm sans ACR",
        severity="medium", confidence=1.0, passed=passed,
        evidence=(_cell_evidence(
            f"UK LIn-OIn acr-named domains={domains}, {kb:.0f}KB",
            vizio, Country.UK, Scenario.LINEAR, Phase.LIN_OIN),))


check_x6_vizio_shared_endpoint.required_cells = [
    (Vendor("vizio"), Country.UK, Scenario.LINEAR, Phase.LIN_OIN),
]


_S_CHECKS: List[Callable[..., Finding]] = [
    check_s1_linear_and_hdmi_active,
    check_s2_peak_reduction,
    check_s3_cadences,
    check_s4_samsung_more_chatter,
    check_s5_optout_silence,
    check_s6_login_no_effect,
    check_s7_uk_domain_sets,
    check_s8_us_domain_sets,
    check_s9_fast_divergence,
    check_s10_geolocation,
    check_s11_restricted_modes,
    check_s12_heuristic_validation,
]
for _check in _S_CHECKS:
    paper_finding(_check)

ALL_CHECKS: List[Callable[..., Finding]] = _S_CHECKS + [
    check_x1_roku_burst_gating,
    check_x2_roku_optout_downsamples,
    check_x3_roku_sdk_config_unconditional,
    check_x4_vizio_continuous_cadence,
    check_x5_vizio_consent_default,
    check_x6_vizio_shared_endpoint,
]


def _chosen_vendors(vendors: Optional[Iterable[str]]) -> Set[str]:
    if vendors is None:
        return {member.value for member in Vendor}
    chosen = set(vendors)
    if not chosen:
        raise ValueError("empty vendor selection")
    unknown = chosen - {member.value for member in Vendor}
    if unknown:
        raise ValueError(f"unknown vendors: {sorted(unknown)}")
    return chosen


def selected_checks(vendors: Optional[Iterable[str]] = None
                    ) -> List[Callable[..., Finding]]:
    """The checks whose full vendor coverage fits the selection.

    An empty result is an error, never a silent no-op: "verified
    nothing, exit 0" must be unreachable from the CLI.
    """
    chosen = _chosen_vendors(vendors)
    checks = [check for check in ALL_CHECKS if check.vendors <= chosen]
    if not checks:
        raise ValueError(
            f"no findings cover vendors {sorted(chosen)} — the paper "
            f"findings S1-S12 need samsung and lg selected together")
    return checks


def run_all_checks(seed: int = cache.DEFAULT_SEED,
                   jobs: Optional[int] = None,
                   vendors: Optional[Iterable[str]] = None
                   ) -> List[Finding]:
    """The scorecard for the selected vendors (default: every vendor).

    ``jobs > 1`` prefetches every required cell on a process pool (and
    through the on-disk cache) before the checks read them serially, so
    the verdicts are identical to a serial run.  Restricting ``vendors``
    to the paper pair reproduces the S1-S12 scorecard byte for byte.
    """
    if jobs and jobs > 1:
        cache.grid(seed).ensure(required_specs(vendors), jobs=jobs)
    return [check(seed) for check in selected_checks(vendors)]


def scorecard(seed: int = cache.DEFAULT_SEED,
              vendors: Optional[Iterable[str]] = None,
              jobs: Optional[int] = None) -> Dict[str, bool]:
    """``{finding code: passed}`` for the selected vendors.

    ``jobs`` is forwarded to :func:`run_all_checks` so the dict API can
    prefetch through the process pool exactly like the CLI scorecard;
    the verdicts are identical to a serial run.
    """
    return {check.code: check.passed
            for check in run_all_checks(seed, jobs=jobs,
                                        vendors=vendors)}


def ledger_from_checks(checks: Iterable[Finding]) -> FindingsLedger:
    """A ledger over one scorecard run (passes and failures both)."""
    return FindingsLedger(checks)


def render_checks(checks: List[Finding]) -> str:
    """The canonical plain-text scorecard.

    Shared by the CLI and the golden-corpus pins so "byte-identical
    scorecard" is one representation, not two print loops.  The status
    line is :meth:`Finding.status_line` — the same formatter behind
    ``repr()`` — so the two can never drift.  An empty selection
    renders as the empty string, not a phantom blank line.
    """
    if not checks:
        return ""
    lines = []
    for check in checks:
        lines.append(check.status_line())
        lines.append(f"       {check.evidence_text()}")
    return "\n".join(lines) + "\n"
