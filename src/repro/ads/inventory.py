"""Ad inventory: the creatives an ad server can place on a smart TV.

Each creative targets an audience segment (or is a run-of-network "house"
ad); the linkage study measures whether the creatives a TV receives
correlate with what its ACR profile says it watched.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..acr.segments import SEGMENT_LABELS
from ..sim.rng import RngRegistry

HOUSE_SEGMENT = "house"


class AdCreative:
    """One ad with its targeting segment."""

    __slots__ = ("creative_id", "title", "segment", "cpm_millis")

    def __init__(self, creative_id: str, title: str, segment: str,
                 cpm_millis: int) -> None:
        if cpm_millis <= 0:
            raise ValueError("CPM must be positive")
        self.creative_id = creative_id
        self.title = title
        self.segment = segment
        self.cpm_millis = cpm_millis

    @property
    def is_targeted(self) -> bool:
        return self.segment != HOUSE_SEGMENT

    def __repr__(self) -> str:
        return (f"AdCreative({self.creative_id}, {self.segment}, "
                f"cpm={self.cpm_millis / 1000:.2f})")


class AdInventory:
    """A reproducible catalog of creatives covering every segment."""

    def __init__(self, seed: int = 0, per_segment: int = 4,
                 house_ads: int = 6) -> None:
        if per_segment < 1 or house_ads < 1:
            raise ValueError("inventory needs at least one ad per bucket")
        rng = RngRegistry(seed).stream("ads:inventory")
        self._by_segment: Dict[str, List[AdCreative]] = {}
        counter = 0
        for segment in sorted(set(SEGMENT_LABELS.values())):
            creatives = []
            for __ in range(per_segment):
                counter += 1
                creatives.append(AdCreative(
                    f"cr-{counter:04d}",
                    f"{segment} creative {counter}",
                    segment,
                    cpm_millis=rng.randint(8000, 30000)))
            self._by_segment[segment] = creatives
        house = []
        for __ in range(house_ads):
            counter += 1
            house.append(AdCreative(
                f"cr-{counter:04d}", f"House ad {counter}",
                HOUSE_SEGMENT, cpm_millis=rng.randint(500, 2000)))
        self._by_segment[HOUSE_SEGMENT] = house

    def creatives_for(self, segment: str) -> List[AdCreative]:
        return list(self._by_segment.get(segment, ()))

    @property
    def house_ads(self) -> List[AdCreative]:
        return list(self._by_segment[HOUSE_SEGMENT])

    @property
    def segments(self) -> List[str]:
        return sorted(s for s in self._by_segment if s != HOUSE_SEGMENT)

    @property
    def all_creatives(self) -> List[AdCreative]:
        return [c for creatives in self._by_segment.values()
                for c in creatives]

    def __len__(self) -> int:
        return len(self.all_creatives)
